"""Worker teardown: graceful exit first, escalation only as a fallback.

Regression guard for the shutdown path: ``RemoteShard.close()`` used to
``terminate()`` workers outright, so every parallel run ended with its
workers SIGTERM-killed (nonzero exit codes) and any worker blocked
mid-reply could be cut down with its pipe half-written.  The fixed path
sends ``("exit",)``, drains stale replies so a blocked worker can
finish writing, joins within a grace period, and only then escalates.

The observable contract tested here: after a completed (traced) run,
every worker process exited *by itself* with code 0, and the merged
trace carries exactly the events of the single-engine reference run.
"""

from collections import Counter

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.shard import worker as worker_mod
from repro.shard.coordinator import ShardedSystem
from repro.shard.shard_system import ShardObsSpec
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

CONFIG = SystemConfig.default().with_overrides(n_clusters=4, inter_link_latency=8)
NC = NetCrafterConfig.full()


def _trace():
    return get_workload("gups").build(
        n_gpus=CONFIG.n_gpus, scale=Scale.tiny(), seed=0
    )


def _event_signature(records):
    """Order-insensitive trace identity: each record as a sorted tuple."""
    return Counter(tuple(sorted(r.items())) for r in records)


def test_teardown_after_completed_run_is_graceful_and_lossless(monkeypatch):
    spawned = []
    original_init = worker_mod.RemoteShard.__init__

    def recording_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        spawned.append(self)

    monkeypatch.setattr(worker_mod.RemoteShard, "__init__", recording_init)

    node = ShardedSystem(
        config=CONFIG,
        netcrafter=NC,
        seed=0,
        n_shards=2,
        parallel=True,
        obs_spec=ShardObsSpec(trace=True),
    )
    node.load(_trace())
    node.run()

    assert len(spawned) == 2
    for handle in spawned:
        handle._process.join(timeout=10)
        # exitcode 0 == the worker left its verb loop on ("exit",);
        # a negative code would mean close() had to SIGTERM/SIGKILL it
        assert handle._process.exitcode == 0

    # the sequential drive mode runs the identical shard semantics with
    # no worker processes, hence no teardown to lose events to — its
    # merged trace is the lossless reference, record for record
    reference = ShardedSystem(
        config=CONFIG,
        netcrafter=NC,
        seed=0,
        n_shards=2,
        parallel=False,
        obs_spec=ShardObsSpec(trace=True),
    )
    reference.load(_trace())
    reference.run()

    merged = node.merged_obs().tracer
    assert merged.dropped == 0
    assert _event_signature(merged.events()) == _event_signature(
        reference.merged_obs().tracer.events()
    )


def test_close_is_idempotent_and_safe_after_worker_death():
    """Closing a handle whose worker is already gone must not raise."""
    shard = worker_mod.RemoteShard(
        CONFIG,
        NC,
        0,
        0,
        1,
        ShardObsSpec(),
        _trace(),
    )
    shard.start("begin")
    shard.collect()
    shard.close()
    assert shard._process.exitcode == 0
    # second close: the pipe is gone, the process reaped
    shard.close()
