"""Bit-identity of the sharded simulator against the single engine.

The tentpole guarantee: for any window size in ``1..W`` (W = the
inter-cluster link latency) and any shard count dividing the cluster
count, sequential-windowed and process-parallel runs reproduce the
single-engine results byte-for-byte.  The digest used here is the same
one the benchmark suite and CI gates track.
"""

import pytest

from repro.bench.smoke import results_digest
from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.shard.coordinator import ShardedSystem
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

#: 4 clusters x 2 GPUs, lookahead W = 8
CONFIG = SystemConfig.default().with_overrides(n_clusters=4, inter_link_latency=8)
WINDOW = CONFIG.effective_inter_link_latency


def _run(workload: str, node) -> str:
    trace = get_workload(workload).build(
        n_gpus=CONFIG.n_gpus, scale=Scale.tiny(), seed=0
    )
    node.load(trace)
    return results_digest([node.run().to_dict()])


def _single_digest(workload: str = "gups") -> str:
    return _run(
        workload,
        MultiGpuSystem(config=CONFIG, netcrafter=NetCrafterConfig.full(), seed=0),
    )


def _sharded_digest(workload: str = "gups", **kwargs) -> str:
    return _run(
        workload,
        ShardedSystem(
            config=CONFIG, netcrafter=NetCrafterConfig.full(), seed=0, **kwargs
        ),
    )


class TestSequentialWindowed:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_shard_counts_reproduce_the_single_engine(self, n_shards):
        assert _sharded_digest(n_shards=n_shards) == _single_digest()

    @pytest.mark.parametrize("window", [1, WINDOW // 2, WINDOW])
    def test_window_sizes_reproduce_the_single_engine(self, window):
        assert _sharded_digest(n_shards=2, window=window) == _single_digest()

    @pytest.mark.parametrize("workload", ["mt", "mis"])
    def test_other_workloads_reproduce_the_single_engine(self, workload):
        assert _sharded_digest(workload, n_shards=4) == _single_digest(workload)

    def test_baseline_variant_reproduces_the_single_engine(self):
        single = _run(
            "gups",
            MultiGpuSystem(
                config=CONFIG, netcrafter=NetCrafterConfig.baseline(), seed=0
            ),
        )
        sharded = _run(
            "gups",
            ShardedSystem(
                config=CONFIG,
                netcrafter=NetCrafterConfig.baseline(),
                seed=0,
                n_shards=2,
            ),
        )
        assert sharded == single


class TestProcessParallel:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_worker_processes_reproduce_the_single_engine(self, n_shards):
        assert (
            _sharded_digest(n_shards=n_shards, parallel=True) == _single_digest()
        )

    def test_parallel_matches_sequential_at_narrow_window(self):
        assert _sharded_digest(
            n_shards=2, window=1, parallel=True
        ) == _sharded_digest(n_shards=2, window=1)


class TestValidation:
    def test_shards_must_divide_clusters(self):
        with pytest.raises(ValueError):
            ShardedSystem(config=CONFIG, n_shards=3)

    @pytest.mark.parametrize("window", [0, WINDOW + 1])
    def test_window_must_respect_the_lookahead_bound(self, window):
        with pytest.raises(ValueError):
            ShardedSystem(config=CONFIG, n_shards=2, window=window)
