"""Unit tests for the boundary mailbox's validation and ordering."""

import pytest

from repro.network.flit import Flit
from repro.network.link import DELIVERY_RANK_SPAN
from repro.network.packet import Packet, PacketType
from repro.shard.mailbox import (
    BoundaryFlitLink,
    DuplicateDeliveryError,
    LateDeliveryError,
    MailBatch,
    MailItem,
    Mailbox,
)
from repro.sim.engine import Engine


def _flit() -> Flit:
    packet = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=2)
    return Flit(packet=packet, index=0, used_bytes=12, flit_size=16)


def _item(arrival, skey, src=0, dst=1, link_seq=0) -> MailItem:
    return MailItem(
        arrival=arrival,
        skey=skey,
        send_cycle=arrival - 8,
        src_cluster=src,
        dst_cluster=dst,
        link_seq=link_seq,
        flit=_flit(),
    )


class TestCollateValidation:
    def test_late_delivery_raises(self):
        # arrival at the boundary is late: the receiver already simulated
        # that cycle
        mailbox = Mailbox()
        with pytest.raises(LateDeliveryError):
            mailbox.collate([_item(arrival=10, skey=-100)], boundary=10)

    def test_arrival_before_boundary_raises(self):
        mailbox = Mailbox()
        with pytest.raises(LateDeliveryError):
            mailbox.collate([_item(arrival=7, skey=-100)], boundary=10)

    def test_arrival_just_beyond_boundary_is_accepted(self):
        mailbox = Mailbox()
        out = mailbox.collate([_item(arrival=11, skey=-100)], boundary=10)
        assert len(out) == 1

    def test_duplicate_delivery_raises(self):
        mailbox = Mailbox()
        mailbox.collate([_item(arrival=11, skey=-100, link_seq=3)], boundary=10)
        with pytest.raises(DuplicateDeliveryError):
            mailbox.collate(
                [_item(arrival=20, skey=-99, link_seq=3)], boundary=19
            )

    def test_regressed_sequence_within_a_batch_raises(self):
        mailbox = Mailbox()
        with pytest.raises(DuplicateDeliveryError):
            mailbox.collate(
                [
                    _item(arrival=11, skey=-100, link_seq=1),
                    _item(arrival=12, skey=-99, link_seq=0),
                ],
                boundary=10,
            )

    def test_sequences_are_tracked_per_directed_link(self):
        # the same link_seq on different (src, dst) pairs is no duplicate
        mailbox = Mailbox()
        out = mailbox.collate(
            [
                _item(arrival=11, skey=-300, src=0, dst=1, link_seq=0),
                _item(arrival=11, skey=-200, src=1, dst=0, link_seq=0),
                _item(arrival=11, skey=-100, src=0, dst=2, link_seq=0),
            ],
            boundary=10,
        )
        assert len(out) == 3


class TestCollateOrdering:
    def test_sorted_by_arrival_then_skey(self):
        # input order is per-link ascending (what shards produce) but
        # globally jumbled; the collated order is by (arrival, skey)
        items = [
            _item(arrival=11, skey=-90, src=0, dst=1, link_seq=0),
            _item(arrival=13, skey=-50, src=0, dst=1, link_seq=1),
            _item(arrival=11, skey=-20, src=1, dst=0, link_seq=0),
            _item(arrival=12, skey=-70, src=0, dst=2, link_seq=0),
        ]
        out = Mailbox().collate(items, boundary=10)
        assert [(i.arrival, i.skey) for i in out] == [
            (11, -90),
            (11, -20),
            (12, -70),
            (13, -50),
        ]

    def test_order_is_independent_of_batch_arrival_order(self):
        # shards hand their outboxes to the coordinator in shard order;
        # the delivery order must not depend on it
        def batch(reverse):
            items = [
                _item(arrival=11, skey=-90 + k, src=0, dst=1, link_seq=k)
                for k in range(4)
            ] + [
                _item(arrival=11, skey=-290 + k, src=1, dst=0, link_seq=k)
                for k in range(4)
            ]
            if reverse:
                items = items[::-1]
                # keep per-link sequences ascending for validation
                items.sort(key=lambda i: (i.src_cluster, i.link_seq))
            return items

        forward = Mailbox().collate(batch(reverse=False), boundary=10)
        shuffled = Mailbox().collate(batch(reverse=True), boundary=10)
        assert [(i.arrival, i.skey) for i in forward] == [
            (i.arrival, i.skey) for i in shuffled
        ]


class TestMailBatch:
    def _items(self):
        return [
            _item(arrival=11, skey=-90, src=0, dst=2, link_seq=0),
            _item(arrival=13, skey=-50, src=0, dst=2, link_seq=1),
            _item(arrival=15, skey=-20, src=1, dst=3, link_seq=0),
        ]

    def test_encode_decode_round_trip(self):
        items = self._items()
        batch = MailBatch.encode(items)
        assert len(batch) == 3
        out = batch.decode()
        assert [
            (i.arrival, i.skey, i.send_cycle, i.src_cluster, i.dst_cluster, i.link_seq)
            for i in out
        ] == [
            (i.arrival, i.skey, i.send_cycle, i.src_cluster, i.dst_cluster, i.link_seq)
            for i in items
        ]
        # the payload carries real flits with their packets intact
        assert [i.flit.packet.ptype for i in out] == [
            i.flit.packet.ptype for i in items
        ]

    def test_header_columns_survive_pickle_without_payload_decode(self):
        import pickle

        batch = MailBatch.encode(self._items())
        clone = pickle.loads(pickle.dumps(batch, pickle.HIGHEST_PROTOCOL))
        # routing/validation metadata is readable straight off the columns
        assert list(clone.arrivals) == [11, 13, 15]
        assert list(clone.iter_links()) == [(0, 2, 0, 2), (1, 3, 0, 1)]
        assert clone.payload == batch.payload
        assert [i.arrival for i in clone.decode()] == [11, 13, 15]

    def test_non_contiguous_sequences_split_runs(self):
        # a gap in a link's sequence numbers must not be papered over by
        # run-length encoding: it starts a new run, which validation then
        # inspects on its own
        items = [
            _item(arrival=11, skey=-90, src=0, dst=2, link_seq=0),
            _item(arrival=13, skey=-50, src=0, dst=2, link_seq=5),
        ]
        batch = MailBatch.encode(items)
        assert list(batch.iter_links()) == [(0, 2, 0, 1), (0, 2, 5, 1)]
        assert [i.link_seq for i in batch.decode()] == [0, 5]

    def test_validate_batch_enforces_the_boundary(self):
        batch = MailBatch.encode(self._items())
        with pytest.raises(LateDeliveryError):
            Mailbox().validate_batch(batch, boundary=11)
        Mailbox().validate_batch(batch, boundary=10)  # strictly beyond: ok

    def test_validate_batch_rejects_replayed_sequences(self):
        mailbox = Mailbox()
        mailbox.validate_batch(MailBatch.encode(self._items()), boundary=10)
        replay = MailBatch.encode(
            [_item(arrival=21, skey=-10, src=0, dst=2, link_seq=1)]
        )
        with pytest.raises(DuplicateDeliveryError):
            mailbox.validate_batch(replay, boundary=20)

    def test_validate_batch_tracks_sequences_like_collate(self):
        # a batch validated on headers feeds the same per-link sequence
        # state that live collate uses, so the two paths agree
        mailbox = Mailbox()
        mailbox.validate_batch(MailBatch.encode(self._items()), boundary=10)
        with pytest.raises(DuplicateDeliveryError):
            mailbox.collate(
                [_item(arrival=21, skey=-10, src=1, dst=3, link_seq=0)],
                boundary=20,
            )


class TestBoundaryFlitLink:
    def _link(self):
        engine = Engine()
        link = BoundaryFlitLink(
            engine,
            "c0->c1",
            bytes_per_cycle=32.0,
            latency=8,
            src_cluster=0,
            dst_cluster=1,
        )
        link.delivery_rank = 0 * 4 + 1  # src * n_clusters + dst
        return link

    def test_deliveries_land_in_the_outbox_with_monotone_sequence(self):
        link = self._link()
        link._deliver(9, _flit())
        link._deliver(12, _flit())
        items = link.drain_outbox()
        assert [i.link_seq for i in items] == [0, 1]
        assert [i.arrival for i in items] == [9, 12]
        assert link.outbox == []

    def test_delivery_skeys_are_negative_and_rank_spaced(self):
        link = self._link()
        link._deliver(9, _flit())
        link._deliver(9, _flit())
        first, second = link.drain_outbox()
        assert first.skey < 0 and second.skey < 0
        # consecutive deliveries are one full rank span apart, so two
        # links' same-cycle deliveries interleave by (seq, rank)
        assert second.skey - first.skey == DELIVERY_RANK_SPAN

    def test_sink_is_unreachable(self):
        link = self._link()
        with pytest.raises(RuntimeError):
            link.sink(_flit())
