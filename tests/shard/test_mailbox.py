"""Unit tests for the boundary mailbox's validation and ordering."""

import pytest

from repro.network.flit import Flit
from repro.network.link import DELIVERY_RANK_SPAN
from repro.network.packet import Packet, PacketType
from repro.shard.mailbox import (
    BoundaryFlitLink,
    DuplicateDeliveryError,
    LateDeliveryError,
    MailItem,
    Mailbox,
)
from repro.sim.engine import Engine


def _flit() -> Flit:
    packet = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=2)
    return Flit(packet=packet, index=0, used_bytes=12, flit_size=16)


def _item(arrival, skey, src=0, dst=1, link_seq=0) -> MailItem:
    return MailItem(
        arrival=arrival,
        skey=skey,
        send_cycle=arrival - 8,
        src_cluster=src,
        dst_cluster=dst,
        link_seq=link_seq,
        flit=_flit(),
    )


class TestCollateValidation:
    def test_late_delivery_raises(self):
        # arrival at the boundary is late: the receiver already simulated
        # that cycle
        mailbox = Mailbox()
        with pytest.raises(LateDeliveryError):
            mailbox.collate([_item(arrival=10, skey=-100)], boundary=10)

    def test_arrival_before_boundary_raises(self):
        mailbox = Mailbox()
        with pytest.raises(LateDeliveryError):
            mailbox.collate([_item(arrival=7, skey=-100)], boundary=10)

    def test_arrival_just_beyond_boundary_is_accepted(self):
        mailbox = Mailbox()
        out = mailbox.collate([_item(arrival=11, skey=-100)], boundary=10)
        assert len(out) == 1

    def test_duplicate_delivery_raises(self):
        mailbox = Mailbox()
        mailbox.collate([_item(arrival=11, skey=-100, link_seq=3)], boundary=10)
        with pytest.raises(DuplicateDeliveryError):
            mailbox.collate(
                [_item(arrival=20, skey=-99, link_seq=3)], boundary=19
            )

    def test_regressed_sequence_within_a_batch_raises(self):
        mailbox = Mailbox()
        with pytest.raises(DuplicateDeliveryError):
            mailbox.collate(
                [
                    _item(arrival=11, skey=-100, link_seq=1),
                    _item(arrival=12, skey=-99, link_seq=0),
                ],
                boundary=10,
            )

    def test_sequences_are_tracked_per_directed_link(self):
        # the same link_seq on different (src, dst) pairs is no duplicate
        mailbox = Mailbox()
        out = mailbox.collate(
            [
                _item(arrival=11, skey=-300, src=0, dst=1, link_seq=0),
                _item(arrival=11, skey=-200, src=1, dst=0, link_seq=0),
                _item(arrival=11, skey=-100, src=0, dst=2, link_seq=0),
            ],
            boundary=10,
        )
        assert len(out) == 3


class TestCollateOrdering:
    def test_sorted_by_arrival_then_skey(self):
        # input order is per-link ascending (what shards produce) but
        # globally jumbled; the collated order is by (arrival, skey)
        items = [
            _item(arrival=11, skey=-90, src=0, dst=1, link_seq=0),
            _item(arrival=13, skey=-50, src=0, dst=1, link_seq=1),
            _item(arrival=11, skey=-20, src=1, dst=0, link_seq=0),
            _item(arrival=12, skey=-70, src=0, dst=2, link_seq=0),
        ]
        out = Mailbox().collate(items, boundary=10)
        assert [(i.arrival, i.skey) for i in out] == [
            (11, -90),
            (11, -20),
            (12, -70),
            (13, -50),
        ]

    def test_order_is_independent_of_batch_arrival_order(self):
        # shards hand their outboxes to the coordinator in shard order;
        # the delivery order must not depend on it
        def batch(reverse):
            items = [
                _item(arrival=11, skey=-90 + k, src=0, dst=1, link_seq=k)
                for k in range(4)
            ] + [
                _item(arrival=11, skey=-290 + k, src=1, dst=0, link_seq=k)
                for k in range(4)
            ]
            if reverse:
                items = items[::-1]
                # keep per-link sequences ascending for validation
                items.sort(key=lambda i: (i.src_cluster, i.link_seq))
            return items

        forward = Mailbox().collate(batch(reverse=False), boundary=10)
        shuffled = Mailbox().collate(batch(reverse=True), boundary=10)
        assert [(i.arrival, i.skey) for i in forward] == [
            (i.arrival, i.skey) for i in shuffled
        ]


class TestBoundaryFlitLink:
    def _link(self):
        engine = Engine()
        link = BoundaryFlitLink(
            engine,
            "c0->c1",
            bytes_per_cycle=32.0,
            latency=8,
            src_cluster=0,
            dst_cluster=1,
        )
        link.delivery_rank = 0 * 4 + 1  # src * n_clusters + dst
        return link

    def test_deliveries_land_in_the_outbox_with_monotone_sequence(self):
        link = self._link()
        link._deliver(9, _flit())
        link._deliver(12, _flit())
        items = link.drain_outbox()
        assert [i.link_seq for i in items] == [0, 1]
        assert [i.arrival for i in items] == [9, 12]
        assert link.outbox == []

    def test_delivery_skeys_are_negative_and_rank_spaced(self):
        link = self._link()
        link._deliver(9, _flit())
        link._deliver(9, _flit())
        first, second = link.drain_outbox()
        assert first.skey < 0 and second.skey < 0
        # consecutive deliveries are one full rank span apart, so two
        # links' same-cycle deliveries interleave by (seq, rank)
        assert second.skey - first.skey == DELIVERY_RANK_SPAN

    def test_sink_is_unreachable(self):
        link = self._link()
        with pytest.raises(RuntimeError):
            link.sink(_flit())
