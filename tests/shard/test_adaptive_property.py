"""Property test: adaptive lookahead is byte-identical to fixed windows.

Adaptive windowing (``ShardedSystem(adaptive=True)``) derives each
shard's window boundary from deterministically replicated simulation
state, so for *every* combination of fixed window size, shard count,
drive mode (sequential-windowed vs process-parallel), fabric topology,
and workload, the adaptive run must reproduce the fixed-window digest —
which itself reproduces the single-engine digest.

Hypothesis samples the cross product ``window {1, W/2, W} x shards
{1, 2, 4} x {sequential, parallel} x {mesh, star} x {gups, ar_ring}``;
the pinned examples cover the corners the acceptance gate names
(collective traffic on both fabrics, both drive modes, extreme
windows).  Digests are memoized per configuration so repeated draws of
the same reference run cost nothing.
"""

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.bench.smoke import results_digest
from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.shard.coordinator import ShardedSystem
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

#: 4 clusters x 2 GPUs, lookahead W = 8 (4 shards must divide clusters)
W = 8
_BASE = SystemConfig.default().with_overrides(
    n_clusters=4, inter_link_latency=W
)

_digest_cache = {}


def _digest(topology, workload, **kwargs):
    key = (topology, workload, tuple(sorted(kwargs.items())))
    digest = _digest_cache.get(key)
    if digest is None:
        config = (
            _BASE
            if topology == "mesh"
            else _BASE.with_overrides(inter_topology=topology)
        )
        node = ShardedSystem(
            config=config, netcrafter=NetCrafterConfig.full(), seed=0, **kwargs
        )
        trace = get_workload(workload).build(
            n_gpus=config.n_gpus, scale=Scale.tiny(), seed=0
        )
        node.load(trace)
        digest = results_digest([node.run().to_dict()])
        _digest_cache[key] = digest
    return digest


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    window=st.sampled_from([1, W // 2, W]),
    n_shards=st.sampled_from([1, 2, 4]),
    parallel=st.booleans(),
    topology=st.sampled_from(["mesh", "star"]),
    workload=st.sampled_from(["gups", "ar_ring"]),
)
@example(window=1, n_shards=2, parallel=True, topology="mesh", workload="gups")
@example(window=W, n_shards=4, parallel=False, topology="mesh", workload="gups")
@example(
    window=W // 2, n_shards=2, parallel=True, topology="star", workload="ar_ring"
)
@example(
    window=W, n_shards=4, parallel=False, topology="star", workload="ar_ring"
)
@example(window=1, n_shards=1, parallel=False, topology="mesh", workload="ar_ring")
def test_adaptive_matches_fixed_window(
    window, n_shards, parallel, topology, workload
):
    fixed = _digest(
        topology,
        workload,
        n_shards=n_shards,
        window=window,
        parallel=parallel,
    )
    adaptive = _digest(
        topology,
        workload,
        n_shards=n_shards,
        parallel=parallel,
        adaptive=True,
    )
    assert adaptive == fixed, (
        f"adaptive diverged from fixed window {window} "
        f"({n_shards} shard(s), parallel={parallel}, {topology}, {workload})"
    )
