"""Cross-mode bit-identity for the collective workload family.

Collectives stress the sharded drive modes in ways Table 3 does not:
many small kernels (one per schedule step), phase-labelled per-phase
accounting closed at every proven boundary, and bubble kernels that
quiesce instantly with zero accesses.  Each workload must produce
byte-identical results across single-engine, sequential-windowed and
2-shard process-parallel drives — on the paper mesh and on a
virtual-switch fabric (the CI gate runs the same grids at small scale).
"""

import pytest

from repro.bench.smoke import results_digest
from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.shard.coordinator import ShardedSystem
from repro.workloads.base import Scale
from repro.workloads.registry import collective_workload_names, get_workload

MESH = SystemConfig.default()
STAR = SystemConfig.default().with_overrides(
    n_clusters=4, gpus_per_cluster=1, inter_topology="star"
)


def _digest(node, trace) -> str:
    node.load(trace)
    return results_digest([node.run().to_dict()])


@pytest.mark.parametrize("workload", collective_workload_names())
@pytest.mark.parametrize("config", [MESH, STAR], ids=["mesh", "star"])
def test_collective_three_mode_parity(workload, config):
    trace = get_workload(workload).build(config.n_gpus, Scale.tiny(), seed=0)
    nc = NetCrafterConfig.full()
    single = _digest(MultiGpuSystem(config, nc, seed=0), trace)
    sequential = _digest(
        ShardedSystem(config, nc, seed=0, n_shards=2), trace
    )
    parallel = _digest(
        ShardedSystem(config, nc, seed=0, n_shards=2, parallel=True), trace
    )
    assert sequential == single
    assert parallel == single


def test_phase_blocks_survive_shard_merge():
    """The merged sharded result carries the same per-phase blocks as
    the single engine — traffic sums across shards, kernels/cycles are
    global, and the latency histograms agree."""
    trace = get_workload("trainmix").build(MESH.n_gpus, Scale.tiny(), seed=0)
    nc = NetCrafterConfig.full()
    single = MultiGpuSystem(MESH, nc, seed=0)
    single.load(trace)
    s_result = single.run()
    sharded = ShardedSystem(MESH, nc, seed=0, n_shards=2)
    sharded.load(trace)
    m_result = sharded.run()
    s_phases = s_result.phase_breakdown()
    m_phases = m_result.phase_breakdown()
    assert sorted(s_phases) == sorted(m_phases) == [
        "dp_allreduce",
        "pp_bubble",
        "tp_allreduce",
    ]
    for name in s_phases:
        assert s_phases[name].to_dict() == m_phases[name].to_dict(), name
    # attribution is complete: phase deltas partition the run totals
    assert sum(b.inter_flits for b in s_phases.values()) == s_result.inter_flits_sent
    assert sum(b.cycles for b in s_phases.values()) == s_result.cycles
    assert sum(b.kernels for b in s_phases.values()) == len(trace.kernels)
