"""Property-based tests: the egress controller never loses or dupes data.

A random stream of packets is pushed through a controller + link +
reassembly buffer under a random NetCrafter configuration; every packet
must be delivered exactly once with its payload intact, regardless of
stitching, trimming, pooling or priority decisions.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import NetCrafterConfig, PriorityMode
from repro.core.controller import NetCrafterController
from repro.network.link import FlitLink
from repro.network.packet import Packet, PacketType
from repro.network.switch import ReassemblyBuffer
from repro.sim.engine import Engine

packet_types = st.sampled_from(list(PacketType))

configs = st.builds(
    NetCrafterConfig,
    enable_stitching=st.booleans(),
    enable_pooling=st.booleans(),
    selective_pooling=st.booleans(),
    pooling_window=st.sampled_from([16, 32, 64]),
    enable_trimming=st.booleans(),
    enable_sequencing=st.booleans(),
    priority_mode=st.sampled_from(list(PriorityMode)),
    partition_by_type=st.booleans(),
    scheduler=st.sampled_from(["age", "rr"]),
    early_release=st.booleans(),
    pooling_grace=st.sampled_from([0, 8]),
    stitch_search_depth=st.sampled_from([1, 8]),
)

streams = st.lists(
    st.tuples(
        packet_types,
        st.integers(0, 500),   # injection delay
        st.integers(1, 64),    # bytes needed
        st.booleans(),         # trim bits set
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(config=configs, stream=streams, bandwidth=st.sampled_from([16.0, 128.0]))
def test_every_packet_delivered_exactly_once(config, stream, bandwidth):
    eng = Engine()
    delivered = []
    reassembly = ReassemblyBuffer(16, delivered.append)
    link = FlitLink(eng, "l", bandwidth, latency=4, sink=reassembly.receive)
    ctrl = NetCrafterController(eng, "c", link, 16, config, queue_capacity=64)

    sent = []
    for ptype, delay, needed, trim in stream:
        pkt = Packet(
            ptype=ptype,
            src_gpu=0,
            dst_gpu=2,
            bytes_needed=needed,
            trim_allowed=trim,
        )
        sent.append(pkt)
        eng.schedule(delay, ctrl.accept_packet, pkt)
    eng.run(max_events=200_000)

    assert eng.pending_events() == 0, "egress deadlocked"
    assert len(delivered) == len(sent)
    assert {p.pid for p in delivered} == {p.pid for p in sent}
    # conservation at the controller
    assert ctrl.stats.flits_entered == ctrl.stats.flits_sent + ctrl.stats.flits_absorbed
    # trimmed packets still arrive with a coherent (smaller) payload
    for pkt in delivered:
        if pkt.trimmed:
            assert pkt.ptype is PacketType.READ_RSP
            assert pkt.payload_bytes == config.trim_sector_bytes
            assert pkt.original_payload_bytes == 64


@settings(max_examples=30, deadline=None)
@given(stream=streams)
def test_baseline_preserves_fifo_order(stream):
    """With no features the controller is byte-exact FIFO."""
    eng = Engine()
    delivered = []
    reassembly = ReassemblyBuffer(16, delivered.append)
    link = FlitLink(eng, "l", 16.0, latency=0, sink=reassembly.receive)
    ctrl = NetCrafterController(
        eng, "c", link, 16, NetCrafterConfig.baseline(), queue_capacity=1024
    )
    sent = []
    for ptype, _delay, needed, trim in stream:
        pkt = Packet(ptype=ptype, src_gpu=0, dst_gpu=2, bytes_needed=needed)
        sent.append(pkt)
        ctrl.accept_packet(pkt)  # all at cycle 0, in order
    eng.run()
    assert [p.pid for p in delivered] == [p.pid for p in sent]
