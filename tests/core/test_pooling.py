"""Tests for (Selective) Flit Pooling decisions."""

import pytest

from repro.core.pooling import (
    MIN_POOLABLE_EMPTY_BYTES,
    MIN_WHOLE_PACKET_BYTES,
    PoolingGovernor,
)
from repro.network.flit import segment_packet
from repro.network.packet import Packet, PacketType


def _flit(ptype, index=-1):
    return segment_packet(Packet(ptype=ptype, src_gpu=0, dst_gpu=2), 16)[index]


def test_invalid_window():
    with pytest.raises(ValueError):
        PoolingGovernor(window=0, selective=False)


def test_pools_padded_tail():
    gov = PoolingGovernor(window=32, selective=False)
    tail = _flit(PacketType.READ_RSP)  # 12 empty
    assert gov.should_pool(tail)


def test_never_pools_twice():
    gov = PoolingGovernor(window=32, selective=False)
    tail = _flit(PacketType.READ_RSP)
    unblock = gov.pool(tail, now=100)
    assert unblock == 132
    assert tail.pooled
    assert not gov.should_pool(tail)


def test_full_flit_never_pooled():
    gov = PoolingGovernor(window=32, selective=False)
    body = _flit(PacketType.READ_RSP, index=0)  # 16/16 used
    assert not gov.should_pool(body)


def test_plain_pooling_pools_barely_padded_flits():
    """Paper-literal plain pooling: a READ_REQ flit (4 empty bytes) pools
    — this is exactly what makes plain Flit Pooling degrade
    latency-sensitive traffic in Figure 18."""
    gov = PoolingGovernor(window=32, selective=False)
    req = _flit(PacketType.READ_REQ)
    assert req.empty_bytes == MIN_WHOLE_PACKET_BYTES
    assert gov.should_pool(req)


def test_selective_skips_barely_padded_flits():
    """Selective pooling only waits when a fragment candidate could fit."""
    gov = PoolingGovernor(window=32, selective=True)
    req = _flit(PacketType.READ_REQ)
    assert req.empty_bytes < MIN_POOLABLE_EMPTY_BYTES
    assert not gov.should_pool(req)


def test_selective_exempts_ptw():
    selective = PoolingGovernor(window=32, selective=True)
    plain = PoolingGovernor(window=32, selective=False)
    pt = _flit(PacketType.PT_RSP)
    # PT_RSP: 12 used, 4 empty -> plain pools it, selective never does
    assert plain.should_pool(pt)
    assert not selective.should_pool(pt)
    # a padded non-PTW flit pools under both
    wr = _flit(PacketType.WRITE_RSP)
    assert plain.should_pool(wr)
    assert selective.should_pool(wr)


def test_outcome_accounting_only_for_pooled_flits():
    gov = PoolingGovernor(window=32, selective=False)
    tail = _flit(PacketType.READ_RSP)
    gov.record_outcome(tail, stitched=True)  # not pooled yet: ignored
    assert gov.pooled_then_stitched == 0
    gov.pool(tail, now=0)
    gov.record_outcome(tail, stitched=True)
    gov.record_outcome(_flit(PacketType.WRITE_RSP), stitched=False)  # unpooled
    assert gov.pooled_then_stitched == 1
    assert gov.pooled_then_ejected == 0
    assert gov.flits_pooled == 1


def test_pooled_then_ejected_counted():
    gov = PoolingGovernor(window=32, selective=True)
    tail = _flit(PacketType.READ_RSP)
    gov.pool(tail, now=0)
    gov.record_outcome(tail, stitched=False)
    assert gov.pooled_then_ejected == 1
