"""Tests for the Trim Engine."""

import pytest

from repro.core.trimming import TrimEngine
from repro.network.packet import Packet, PacketType


def _rsp(bytes_needed=8, trim_allowed=True, payload=64):
    return Packet(
        ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=2,
        bytes_needed=bytes_needed, trim_allowed=trim_allowed,
        payload_bytes=payload,
    )


def test_trims_eligible_response():
    engine = TrimEngine(threshold_bytes=16, sector_bytes=16)
    pkt = _rsp(bytes_needed=8)
    assert engine.maybe_trim(pkt)
    assert pkt.payload_bytes == 16
    assert pkt.original_payload_bytes == 64
    assert pkt.trimmed
    assert engine.packets_trimmed == 1
    assert engine.bytes_saved == 48


def test_trim_reduces_flit_count():
    engine = TrimEngine()
    pkt = _rsp(bytes_needed=8)
    assert pkt.flit_count(16) == 5
    engine.maybe_trim(pkt)
    assert pkt.flit_count(16) == 2  # 4 B header + 16 B sector


def test_above_threshold_not_trimmed():
    engine = TrimEngine(threshold_bytes=16)
    pkt = _rsp(bytes_needed=32)
    assert not engine.maybe_trim(pkt)
    assert pkt.payload_bytes == 64


def test_trim_bits_unset_not_trimmed():
    engine = TrimEngine()
    pkt = _rsp(trim_allowed=False)
    assert not engine.maybe_trim(pkt)


def test_non_read_rsp_never_trimmed():
    engine = TrimEngine()
    pkt = Packet(
        ptype=PacketType.WRITE_REQ, src_gpu=0, dst_gpu=2,
        bytes_needed=8, trim_allowed=True,
    )
    assert not engine.maybe_trim(pkt)


def test_already_small_payload_not_trimmed():
    engine = TrimEngine(sector_bytes=16)
    pkt = _rsp(bytes_needed=8, payload=16)
    assert not engine.maybe_trim(pkt)


def test_exactly_threshold_is_trimmed():
    engine = TrimEngine(threshold_bytes=16)
    pkt = _rsp(bytes_needed=16)
    assert engine.maybe_trim(pkt)


def test_smaller_granularities():
    for g in (4, 8):
        engine = TrimEngine(threshold_bytes=g, sector_bytes=g)
        pkt = _rsp(bytes_needed=g)
        assert engine.maybe_trim(pkt)
        assert pkt.payload_bytes == g


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        TrimEngine(sector_bytes=0)
    with pytest.raises(ValueError):
        TrimEngine(threshold_bytes=8, sector_bytes=16)


def test_bytes_saved_accumulates():
    engine = TrimEngine()
    for _ in range(3):
        engine.maybe_trim(_rsp())
    assert engine.bytes_saved == 3 * 48
