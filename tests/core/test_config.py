"""Tests for NetCrafterConfig presets and derived properties."""

import pytest

from repro.core.config import NetCrafterConfig, PriorityMode


def test_baseline_has_nothing_enabled():
    cfg = NetCrafterConfig.baseline()
    assert not cfg.enable_stitching
    assert not cfg.enable_trimming
    assert not cfg.enable_sequencing
    assert not cfg.enable_pooling
    assert not cfg.partition_by_type
    assert not cfg.any_feature_enabled
    assert cfg.effective_priority is PriorityMode.NONE
    assert not cfg.separate_ptw_partition


def test_stitching_only():
    cfg = NetCrafterConfig.stitching_only()
    assert cfg.enable_stitching
    assert not cfg.enable_pooling
    assert cfg.partition_by_type
    assert not cfg.separate_ptw_partition


def test_stitching_with_pooling_window():
    cfg = NetCrafterConfig.stitching_with_pooling(64)
    assert cfg.enable_pooling
    assert not cfg.selective_pooling
    assert cfg.pooling_window == 64
    # plain pooling does not isolate PTW flits
    assert not cfg.separate_ptw_partition


def test_selective_pooling_separates_ptw():
    cfg = NetCrafterConfig.stitching_with_selective_pooling(32)
    assert cfg.selective_pooling
    assert cfg.separate_ptw_partition


def test_stitch_trim_builds_on_selective_pooling():
    cfg = NetCrafterConfig.stitch_trim()
    assert cfg.enable_stitching and cfg.enable_trimming
    assert cfg.selective_pooling
    assert not cfg.enable_sequencing


def test_full_enables_all_three_mechanisms():
    cfg = NetCrafterConfig.full()
    assert cfg.enable_stitching
    assert cfg.enable_trimming
    assert cfg.enable_sequencing
    assert cfg.effective_priority is PriorityMode.PTW
    assert cfg.separate_ptw_partition
    assert cfg.any_feature_enabled


def test_sequencing_only():
    cfg = NetCrafterConfig.sequencing_only()
    assert cfg.effective_priority is PriorityMode.PTW
    assert not cfg.enable_stitching


def test_trimming_only():
    cfg = NetCrafterConfig.trimming_only()
    assert cfg.enable_trimming
    assert not cfg.enable_stitching


def test_priority_mode_override_beats_sequencing_default():
    cfg = NetCrafterConfig(
        enable_sequencing=True, priority_mode=PriorityMode.DATA_MATCHED
    )
    assert cfg.effective_priority is PriorityMode.DATA_MATCHED


def test_with_overrides_returns_new_frozen_copy():
    cfg = NetCrafterConfig.baseline()
    other = cfg.with_overrides(enable_trimming=True)
    assert other.enable_trimming and not cfg.enable_trimming
    with pytest.raises(Exception):
        cfg.enable_trimming = True  # frozen


def test_configs_are_hashable_for_caching():
    a = NetCrafterConfig.full()
    b = NetCrafterConfig.full()
    assert hash(a) == hash(b)
    assert a == b


def test_data_matched_priority_gets_priority_partition():
    cfg = NetCrafterConfig(priority_mode=PriorityMode.DATA_MATCHED)
    assert cfg.effective_priority is PriorityMode.DATA_MATCHED
    assert not cfg.separate_ptw_partition
