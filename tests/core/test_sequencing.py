"""Tests for the Sequencing (priority) policy."""

from repro.core.cluster_queue import PRIORITY_DATA_PARTITION, PTW_PARTITION
from repro.core.config import PriorityMode
from repro.core.sequencing import SequencingPolicy
from repro.network.packet import Packet, PacketType


def _pkt(ptype=PacketType.READ_RSP):
    return Packet(ptype=ptype, src_gpu=0, dst_gpu=2)


def test_none_mode_has_no_preference():
    policy = SequencingPolicy(PriorityMode.NONE)
    assert policy.preferred_partition is None
    assert not policy.tag_priority_data(_pkt())


def test_ptw_mode_prefers_ptw_partition():
    policy = SequencingPolicy(PriorityMode.PTW)
    assert policy.preferred_partition == PTW_PARTITION
    # PTW mode never tags data
    assert not policy.tag_priority_data(_pkt())


def test_data_matched_prefers_priority_partition():
    policy = SequencingPolicy(PriorityMode.DATA_MATCHED)
    assert policy.preferred_partition == PRIORITY_DATA_PARTITION


def test_data_matched_tags_roughly_the_fraction():
    policy = SequencingPolicy(PriorityMode.DATA_MATCHED, 0.13, seed=1)
    n = 5000
    tagged = sum(policy.tag_priority_data(_pkt()) for _ in range(n))
    assert 0.09 * n < tagged < 0.17 * n
    assert policy.prioritized_packets == tagged


def test_data_matched_never_tags_ptw():
    policy = SequencingPolicy(PriorityMode.DATA_MATCHED, 1.0, seed=1)
    assert not policy.tag_priority_data(_pkt(PacketType.PT_REQ))
    assert policy.tag_priority_data(_pkt(PacketType.READ_RSP))


def test_tagging_deterministic_per_seed():
    a = SequencingPolicy(PriorityMode.DATA_MATCHED, 0.5, seed=7)
    b = SequencingPolicy(PriorityMode.DATA_MATCHED, 0.5, seed=7)
    seq_a = [a.tag_priority_data(_pkt()) for _ in range(100)]
    seq_b = [b.tag_priority_data(_pkt()) for _ in range(100)]
    assert seq_a == seq_b
