"""Tests for the Section 4.5 hardware-overhead model."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.core.overhead import (
    MI250X_L2_BYTES,
    TOFINO_SRAM_BYTES,
    controller_overhead,
    overhead_report,
)


def test_paper_numbers_with_table2_config():
    """Section 4.5: 16 KB CQ + 16 B buffer = 16.02 KB per cluster."""
    overhead = controller_overhead(SystemConfig.table2(), NetCrafterConfig.full())
    assert overhead.cluster_queue_bytes == 16 * 1024
    assert overhead.stitch_buffer_bytes == 16
    assert overhead.total_kib == pytest.approx(16.02, abs=0.01)


def test_fraction_of_mi250x_l2():
    """Paper: ~0.098% of the MI250X's 16 MB L2."""
    overhead = controller_overhead(SystemConfig.table2(), NetCrafterConfig.full())
    assert overhead.fraction_of(MI250X_L2_BYTES) == pytest.approx(0.00098, abs=0.00002)


def test_fraction_of_tofino():
    """Paper: ~0.024% of a Tofino-class switch's 64 MB SRAM."""
    overhead = controller_overhead(SystemConfig.table2(), NetCrafterConfig.full())
    assert overhead.fraction_of(TOFINO_SRAM_BYTES) == pytest.approx(0.000245, abs=0.00001)


def test_scales_with_cq_entries_and_flit_size():
    small = controller_overhead(
        SystemConfig.default(),
        NetCrafterConfig.full().with_overrides(cluster_queue_entries=256),
    )
    assert small.cluster_queue_bytes == 256 * 16
    wide = controller_overhead(
        SystemConfig.default().with_overrides(flit_size=8), NetCrafterConfig.full()
    )
    assert wide.cluster_queue_bytes == 1024 * 8
    assert wide.stitch_buffer_bytes == 8


def test_invalid_reference_rejected():
    overhead = controller_overhead()
    with pytest.raises(ValueError):
        overhead.fraction_of(0)


def test_report_renders():
    report = overhead_report(SystemConfig.table2())
    assert "16.02 KiB" in report
    assert "0.098%" in report
