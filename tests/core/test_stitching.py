"""Tests for the Stitch Engine's candidate search and stitching."""

from repro.core.cluster_queue import ClusterQueue
from repro.core.stitching import StitchEngine
from repro.network.flit import STITCH_METADATA_BYTES, segment_packet
from repro.network.packet import Packet, PacketType


def _queue():
    return ClusterQueue(capacity=64, partition_by_type=True, separate_ptw=False)


def _flits(ptype, payload=None):
    kwargs = {} if payload is None else {"payload_bytes": payload}
    return segment_packet(Packet(ptype=ptype, src_gpu=0, dst_gpu=2, **kwargs), 16)


def _rsp_tail():
    return _flits(PacketType.READ_RSP)[-1]  # 4 used, 12 empty


def test_no_candidates_in_empty_queue():
    engine = StitchEngine()
    assert engine.find_candidate(_rsp_tail(), _queue()) is None


def test_finds_fitting_whole_packet():
    engine = StitchEngine()
    q = _queue()
    req = _flits(PacketType.READ_REQ)[0]  # cost 12
    q.push(req)
    assert engine.find_candidate(_rsp_tail(), q) is req


def test_best_fit_prefers_largest_cost():
    engine = StitchEngine()
    q = _queue()
    small = _flits(PacketType.WRITE_RSP)[0]  # cost 4
    large = _flits(PacketType.READ_REQ)[0]  # cost 12
    q.push(small)
    q.push(large)
    assert engine.find_candidate(_rsp_tail(), q) is large


def test_oversized_candidates_skipped():
    engine = StitchEngine()
    q = _queue()
    full = _flits(PacketType.READ_RSP)[0]  # 16 used: cost 19
    q.push(full)
    assert engine.find_candidate(_rsp_tail(), q) is None


def test_partial_candidate_cost_includes_metadata():
    engine = StitchEngine()
    q = _queue()
    other_tail = _rsp_tail()  # cost 4 + metadata
    q.push(other_tail)
    parent = _rsp_tail()
    assert engine.find_candidate(parent, q) is other_tail
    engine.stitch_all(parent, q)
    assert parent.segments[0].wire_bytes == 4 + STITCH_METADATA_BYTES


def test_stitch_all_removes_candidates_from_queue():
    engine = StitchEngine()
    q = _queue()
    a = _flits(PacketType.WRITE_RSP)[0]
    b = _flits(PacketType.WRITE_RSP)[0]
    q.push(a)
    q.push(b)
    parent = _rsp_tail()
    absorbed = engine.stitch_all(parent, q)
    assert absorbed == 2
    assert q.is_empty()
    assert {seg.flit for seg in parent.segments} == {a, b}


def test_stitch_all_respects_space():
    engine = StitchEngine()
    q = _queue()
    for _ in range(5):
        q.push(_flits(PacketType.WRITE_RSP)[0])  # cost 4 each
    parent = _rsp_tail()  # 12 empty -> 3 fit
    absorbed = engine.stitch_all(parent, q)
    assert absorbed == 3
    assert len(q) == 2
    assert parent.empty_bytes == 0


def test_search_depth_bounds_visibility():
    engine = StitchEngine(search_depth=2)
    q = _queue()
    # bury the only fitting candidate behind two oversized ones
    for _ in range(2):
        q.push(_flits(PacketType.READ_RSP)[0])  # full flits, never fit
    fitting = _flits(PacketType.WRITE_RSP)[0]
    q.push(fitting)  # third in its own partition, so still visible
    parent = _rsp_tail()
    assert engine.find_candidate(parent, q) is fitting


def test_statistics_accumulate():
    engine = StitchEngine()
    q = _queue()
    q.push(_flits(PacketType.READ_REQ)[0])
    parent = _rsp_tail()
    engine.stitch_all(parent, q)
    assert engine.parents_stitched == 1
    assert engine.candidates_absorbed == 1
    assert engine.bytes_stitched == 12


def test_no_stitch_leaves_stats_untouched():
    engine = StitchEngine()
    q = _queue()
    parent = _flits(PacketType.READ_RSP)[0]  # full: nothing fits
    assert engine.stitch_all(parent, q) == 0
    assert engine.parents_stitched == 0


def test_perfect_fit_early_exit():
    engine = StitchEngine()
    q = _queue()
    perfect = _flits(PacketType.READ_REQ)[0]  # cost 12 == empty 12
    q.push(perfect)
    parent = _rsp_tail()
    assert engine.find_candidate(parent, q) is perfect
