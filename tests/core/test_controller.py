"""End-to-end tests of the NetCrafter egress controller."""

import pytest

from repro.core.config import NetCrafterConfig, PriorityMode
from repro.core.controller import NetCrafterController, PassthroughController
from repro.network.link import FlitLink
from repro.network.packet import Packet, PacketType
from repro.network.switch import ReassemblyBuffer
from repro.sim.engine import Engine


def _setup(config, bandwidth=16.0, latency=0, capacity=None):
    eng = Engine()
    flits = []
    link = FlitLink(eng, "link", bandwidth, latency, sink=flits.append)
    ctrl = NetCrafterController(
        eng, "ctrl", link, 16, config, queue_capacity=capacity
    )
    return eng, ctrl, link, flits


def _pkt(ptype=PacketType.READ_RSP, **kwargs):
    return Packet(ptype=ptype, src_gpu=0, dst_gpu=2, **kwargs)


class TestBaselineEgress:
    def test_passthrough_sends_all_flits_fifo(self):
        eng, ctrl, link, flits = _setup(NetCrafterConfig.baseline())
        pkts = [_pkt(PacketType.READ_REQ) for _ in range(3)]
        for p in pkts:
            ctrl.accept_packet(p)
        eng.run()
        assert [f.packet.pid for f in flits] == [p.pid for p in pkts]
        assert ctrl.stats.flits_sent == 3

    def test_passthrough_controller_class(self):
        eng = Engine()
        flits = []
        link = FlitLink(eng, "l", 16.0, 0, flits.append)
        ctrl = PassthroughController(eng, "c", link, 16)
        ctrl.accept_packet(_pkt())
        eng.run()
        assert len(flits) == 5
        assert ctrl.stats.flits_absorbed == 0

    def test_multi_packet_flit_accounting(self):
        eng, ctrl, link, flits = _setup(NetCrafterConfig.baseline())
        ctrl.accept_packet(_pkt(PacketType.READ_RSP))  # 5 flits
        ctrl.accept_packet(_pkt(PacketType.WRITE_RSP))  # 1 flit
        eng.run()
        assert ctrl.stats.flits_entered == 6
        assert ctrl.stats.flits_sent == 6

    def test_occupancy_histogram_records_entry_sizes(self):
        eng, ctrl, link, flits = _setup(NetCrafterConfig.baseline())
        ctrl.accept_packet(_pkt(PacketType.READ_RSP))
        eng.run()
        assert ctrl.stats.occupancy[16] == 4
        assert ctrl.stats.occupancy[4] == 1
        dist = ctrl.stats.padded_fraction_distribution(16)
        assert dist[0.0] == 4 and dist[0.75] == 1

    def test_ptw_vs_data_accounting(self):
        eng, ctrl, link, flits = _setup(NetCrafterConfig.baseline())
        ctrl.accept_packet(_pkt(PacketType.PT_REQ))
        ctrl.accept_packet(_pkt(PacketType.READ_REQ))
        eng.run()
        assert ctrl.stats.ptw_flits == 1
        assert ctrl.stats.data_flits == 1
        assert ctrl.stats.ptw_bytes == 12


class TestStitching:
    def test_tail_absorbs_read_request(self):
        cfg = NetCrafterConfig.stitching_only()
        eng, ctrl, link, flits = _setup(cfg)
        ctrl.accept_packet(_pkt(PacketType.READ_RSP))
        ctrl.accept_packet(_pkt(PacketType.READ_REQ))
        eng.run()
        # 5 rsp flits + 1 req flit = 6 entered; req rides in the rsp tail
        assert ctrl.stats.flits_entered == 6
        assert ctrl.stats.flits_sent == 5
        assert ctrl.stats.flits_absorbed == 1
        assert ctrl.stitch_rate() == pytest.approx(1 / 6)

    def test_unstitched_when_nothing_fits(self):
        cfg = NetCrafterConfig.stitching_only()
        eng, ctrl, link, flits = _setup(cfg)
        ctrl.accept_packet(_pkt(PacketType.READ_REQ))
        ctrl.accept_packet(_pkt(PacketType.READ_REQ))  # 12 > 4 empty
        eng.run()
        assert ctrl.stats.flits_sent == 2
        assert ctrl.stats.flits_absorbed == 0

    def test_stitched_flits_unstitch_at_receiver(self):
        cfg = NetCrafterConfig.stitching_only()
        eng, ctrl, link, flits = _setup(cfg)
        rsp, req = _pkt(PacketType.READ_RSP), _pkt(PacketType.READ_REQ)
        ctrl.accept_packet(rsp)
        ctrl.accept_packet(req)
        eng.run()
        done = []
        buf = ReassemblyBuffer(16, done.append)
        for flit in flits:
            buf.receive(flit)
        assert set(done) == {rsp, req}

    def test_wire_bytes_reduced_vs_baseline(self):
        def run(cfg):
            eng, ctrl, link, flits = _setup(cfg)
            for _ in range(10):
                ctrl.accept_packet(_pkt(PacketType.READ_RSP))
                ctrl.accept_packet(_pkt(PacketType.READ_REQ))
            eng.run()
            return link.stats.wire_bytes

        base = run(NetCrafterConfig.baseline())
        stitched = run(NetCrafterConfig.stitching_only())
        assert stitched < base


class TestTrimming:
    def test_trim_applied_at_egress(self):
        cfg = NetCrafterConfig.trimming_only()
        eng, ctrl, link, flits = _setup(cfg)
        pkt = _pkt(bytes_needed=8, trim_allowed=True)
        ctrl.accept_packet(pkt)
        eng.run()
        assert pkt.trimmed
        assert ctrl.packets_trimmed == 1
        assert ctrl.trim_bytes_saved == 48
        assert len(flits) == 2  # 20 B -> 2 flits instead of 5

    def test_trim_skipped_without_bits(self):
        cfg = NetCrafterConfig.trimming_only()
        eng, ctrl, link, flits = _setup(cfg)
        ctrl.accept_packet(_pkt(bytes_needed=8, trim_allowed=False))
        eng.run()
        assert len(flits) == 5
        assert ctrl.packets_trimmed == 0

    def test_trim_disabled_in_baseline(self):
        eng, ctrl, link, flits = _setup(NetCrafterConfig.baseline())
        ctrl.accept_packet(_pkt(bytes_needed=8, trim_allowed=True))
        eng.run()
        assert len(flits) == 5


class TestSequencing:
    def test_ptw_flits_jump_the_queue(self):
        cfg = NetCrafterConfig.sequencing_only()
        eng, ctrl, link, flits = _setup(cfg)
        data = [_pkt(PacketType.READ_RSP) for _ in range(3)]
        for p in data:
            ctrl.accept_packet(p)
        pt = _pkt(PacketType.PT_RSP)
        ctrl.accept_packet(pt)
        eng.run()
        # the PT flit must not be last even though it arrived last
        order = [f.packet.pid for f in flits]
        assert order.index(pt.pid) < len(order) - 1

    def test_no_priority_in_baseline(self):
        eng, ctrl, link, flits = _setup(NetCrafterConfig.baseline())
        data = [_pkt(PacketType.READ_RSP) for _ in range(3)]
        for p in data:
            ctrl.accept_packet(p)
        pt = _pkt(PacketType.PT_RSP)
        ctrl.accept_packet(pt)
        eng.run()
        assert flits[-1].packet.pid == pt.pid  # strict FIFO


class TestPooling:
    def test_idle_link_overrides_pooling(self):
        """Work-conserving egress: with nothing else to send, a pooled
        flit is served instead of idling the link for the window."""
        cfg = NetCrafterConfig.stitching_with_selective_pooling(200)
        eng = Engine()
        arrivals = []
        link = FlitLink(eng, "link", 16.0, 0, sink=lambda f: arrivals.append(eng.now))
        ctrl = NetCrafterController(eng, "ctrl", link, 16, cfg)
        ctrl.accept_packet(_pkt(PacketType.READ_RSP))
        eng.run()
        assert len(arrivals) == 5
        assert ctrl.pooling.flits_pooled == 1
        assert ctrl.pooling.pooled_then_ejected == 1
        assert arrivals[-1] < 32  # not delayed by the 200-cycle window

    def test_override_serves_at_pooled_at_plus_grace(self):
        """The override fires at ``pooled_at + pooling_grace`` exactly:
        the grace lets in-flight candidates arrive, after which idling
        the link any longer has no upside."""
        cfg = NetCrafterConfig.stitching_with_selective_pooling(200).with_overrides(
            pooling_grace=8
        )
        eng = Engine()
        arrivals = []
        link = FlitLink(eng, "link", 16.0, 0, sink=lambda f: arrivals.append(eng.now))
        ctrl = NetCrafterController(eng, "ctrl", link, 16, cfg)
        ctrl.accept_packet(_pkt(PacketType.READ_RSP))
        eng.run()
        # 4 full flits depart cycles 0-3 (arrive 1-4); the tail pools at
        # cycle 4 and the override serves it at 4 + 8 (arrival 13), far
        # before the 200-cycle window expires
        assert arrivals == [1, 2, 3, 4, 13]
        assert ctrl.pooling.pooled_then_ejected == 1

    def test_override_defers_to_a_window_shorter_than_grace(self):
        """min(blocked_until, pooled_at + grace): a window that expires
        before the grace would is what unblocks the partition."""
        cfg = NetCrafterConfig.stitching_with_selective_pooling(16).with_overrides(
            pooling_grace=300
        )
        eng = Engine()
        arrivals = []
        link = FlitLink(eng, "link", 16.0, 0, sink=lambda f: arrivals.append(eng.now))
        ctrl = NetCrafterController(eng, "ctrl", link, 16, cfg)
        ctrl.accept_packet(_pkt(PacketType.READ_RSP))
        eng.run()
        # tail pools at cycle 4 until 4 + 16 = 20; served there, arrives 21
        assert arrivals[-1] == 21

    def test_pooled_flit_waits_while_link_has_other_work(self):
        """With competing traffic the pooled partition genuinely defers:
        its tail is served later than strict FIFO order would have."""
        cfg = NetCrafterConfig.stitching_with_selective_pooling(64)
        eng, ctrl, link, flits = _setup(cfg)
        rsp = _pkt(PacketType.READ_RSP)
        ctrl.accept_packet(rsp)
        for _ in range(4):  # write bursts keep the link busy
            ctrl.accept_packet(_pkt(PacketType.WRITE_REQ))
        eng.run()
        order = [f.packet.pid for f in flits]
        # the pooled rsp tail was deferred behind younger write flits
        assert order[-1] == rsp.pid or order.index(rsp.pid) > 5
        assert ctrl.pooling.flits_pooled >= 1

    def test_arrival_releases_pooled_flit_early(self):
        cfg = NetCrafterConfig.stitching_with_selective_pooling(200)
        eng = Engine()
        arrivals = []
        link = FlitLink(eng, "link", 16.0, 0, sink=lambda f: arrivals.append(eng.now))
        ctrl = NetCrafterController(eng, "ctrl", link, 16, cfg)
        ctrl.accept_packet(_pkt(PacketType.READ_RSP))
        # competing stream so the pooled tail is genuinely waiting
        for _ in range(3):
            ctrl.accept_packet(_pkt(PacketType.WRITE_REQ))
        eng.run(until=8)
        ctrl.accept_packet(_pkt(PacketType.READ_REQ))
        eng.run()
        # the READ_REQ was stitched into the waiting rsp tail
        assert ctrl.stats.flits_absorbed >= 1

    def test_stitched_away_pooled_head_frees_its_partition(self):
        """Regression: when a pooled partition head is absorbed into a
        parent from another partition, its pooling timer must die with
        it — the never-pooled successor behind it must not wait out the
        stale window.  ``early_release=False`` and a grace as long as the
        window isolate the timer-clearing path."""
        cfg = NetCrafterConfig.stitching_with_selective_pooling(300).with_overrides(
            early_release=False, pooling_grace=300
        )
        eng = Engine()
        arrivals = []
        link = FlitLink(
            eng, "link", 16.0, 0, sink=lambda f: arrivals.append((eng.now, f))
        )
        ctrl = NetCrafterController(eng, "ctrl", link, 16, cfg)
        rsp_a = _pkt(PacketType.READ_RSP)
        ctrl.accept_packet(rsp_a)
        eng.run(until=8)  # A's 4 full flits depart; its tail pools until ~305
        assert ctrl.pooling.flits_pooled == 1
        rsp_b = _pkt(PacketType.READ_RSP)
        ctrl.accept_packet(rsp_b)  # queued behind the pooled tail
        eng.run(until=10)
        wr = _pkt(PacketType.WRITE_RSP)  # 4 used/12 empty: absorbs A's tail
        ctrl.accept_packet(wr)
        eng.run()
        assert ctrl.stats.flits_absorbed >= 1
        assert ctrl.queue.stale_timers_cleared == 1
        # B's head flit departs as soon as the wire frees, not at timer
        # expiry (~305, which is where it sat before the fix)
        first_b = min(t for t, f in arrivals if f.packet is rsp_b)
        assert first_b < 100

    def test_ptw_never_pooled_under_selective(self):
        cfg = NetCrafterConfig.stitching_with_selective_pooling(1000)
        eng, ctrl, link, flits = _setup(cfg)
        ctrl.accept_packet(_pkt(PacketType.PT_RSP))
        eng.run()
        assert len(flits) == 1
        assert eng.now < 100
        assert ctrl.pooling.flits_pooled == 0


class TestBackpressure:
    def test_pending_packets_admitted_as_queue_drains(self):
        eng, ctrl, link, flits = _setup(NetCrafterConfig.baseline(), capacity=16)
        for _ in range(10):  # 50 flits > 16 entries
            ctrl.accept_packet(_pkt(PacketType.READ_RSP))
        eng.run()
        assert len(flits) == 50
        assert ctrl.stats.flits_sent == 50

    def test_minimum_capacity_enforced(self):
        with pytest.raises(ValueError):
            _setup(NetCrafterConfig.baseline(), capacity=0)


class TestDataMatchedPriority:
    def test_tagged_data_preferred(self):
        cfg = NetCrafterConfig(
            priority_mode=PriorityMode.DATA_MATCHED, data_priority_fraction=1.0
        )
        eng, ctrl, link, flits = _setup(cfg)
        first = _pkt(PacketType.PT_REQ)  # never tagged
        ctrl.accept_packet(first)
        tagged = _pkt(PacketType.READ_REQ)
        ctrl.accept_packet(tagged)
        eng.run()
        assert flits[0].packet.pid in (first.pid, tagged.pid)
        assert ctrl.sequencer.prioritized_packets == 1
