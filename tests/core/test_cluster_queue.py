"""Tests for the Cluster Queue's partitioning and scheduling."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cluster_queue import (
    CapacityError,
    ClusterQueue,
    FIFO_PARTITION,
    PRIORITY_DATA_PARTITION,
    PTW_PARTITION,
)
from repro.network.flit import segment_packet
from repro.network.packet import Packet, PacketType


def _flit(ptype=PacketType.READ_REQ, index=0):
    return segment_packet(Packet(ptype=ptype, src_gpu=0, dst_gpu=2), 16)[index]


def _queue(capacity=64, by_type=True, ptw=False, scheduler="age"):
    return ClusterQueue(
        capacity=capacity, partition_by_type=by_type, separate_ptw=ptw,
        scheduler=scheduler,
    )


def test_invalid_capacity():
    with pytest.raises(ValueError):
        _queue(capacity=0)


def test_invalid_scheduler():
    with pytest.raises(ValueError):
        _queue(scheduler="priority")


def test_fifo_partition_when_untyped():
    q = _queue(by_type=False)
    q.push(_flit(PacketType.READ_REQ))
    q.push(_flit(PacketType.WRITE_RSP))
    parts = q.partitions()
    assert len(parts) == 1
    assert parts[0].key == FIFO_PARTITION


def test_type_partitions():
    q = _queue(by_type=True)
    q.push(_flit(PacketType.READ_REQ))
    q.push(_flit(PacketType.WRITE_RSP))
    keys = {p.key for p in q.partitions()}
    assert keys == {"read_req", "write_rsp"}


def test_ptw_partition_split_out():
    q = _queue(by_type=True, ptw=True)
    q.push(_flit(PacketType.PT_REQ))
    q.push(_flit(PacketType.PT_RSP))
    q.push(_flit(PacketType.READ_REQ))
    keys = {p.key for p in q.partitions()}
    assert PTW_PARTITION in keys
    assert q.get_partition(PTW_PARTITION) is not None
    assert len(q.get_partition(PTW_PARTITION)) == 2


def test_ptw_partition_even_when_untyped():
    """Figure 8 uses priority over a FIFO baseline: PTW still separates."""
    q = _queue(by_type=False, ptw=True)
    q.push(_flit(PacketType.PT_REQ))
    q.push(_flit(PacketType.READ_REQ))
    keys = {p.key for p in q.partitions()}
    assert keys == {PTW_PARTITION, FIFO_PARTITION}


def test_priority_data_partition():
    q = _queue(by_type=False)
    q.push(_flit(), priority_data=True)
    assert q.partitions()[0].key == PRIORITY_DATA_PARTITION


def test_capacity_rejects_and_counts():
    q = _queue(capacity=2)
    assert q.push(_flit())
    assert q.push(_flit())
    assert not q.push(_flit())
    assert q.rejected == 1
    assert q.free_entries == 0


def test_age_selection_serves_oldest_across_partitions():
    q = _queue(scheduler="age")
    first = _flit(PacketType.WRITE_RSP)
    second = _flit(PacketType.READ_REQ)
    q.push(first)
    q.push(second)
    part, _ = q.select_partition(now=0)
    assert part.flits[0] is first


def test_age_selection_is_fifo_equivalent_in_single_partition():
    q = _queue(by_type=False, scheduler="age")
    flits = [_flit() for _ in range(5)]
    for f in flits:
        q.push(f)
    popped = []
    while not q.is_empty():
        part, _ = q.select_partition(now=0)
        popped.append(q.pop_from(part))
    assert popped == flits


def test_rr_selection_rotates():
    q = _queue(scheduler="rr")
    for _ in range(2):
        q.push(_flit(PacketType.READ_REQ))
        q.push(_flit(PacketType.WRITE_RSP))
    served = []
    while not q.is_empty():
        part, _ = q.select_partition(now=0)
        served.append(part.key)
        q.pop_from(part)
    assert served == ["read_req", "write_rsp", "read_req", "write_rsp"]


def test_prefer_overrides_order():
    q = _queue(ptw=True)
    q.push(_flit(PacketType.READ_REQ))
    q.push(_flit(PacketType.PT_REQ))
    part, _ = q.select_partition(now=0, prefer=PTW_PARTITION)
    assert part.key == PTW_PARTITION


def test_prefer_ignored_when_empty():
    q = _queue(ptw=True)
    q.push(_flit(PacketType.READ_REQ))
    part, _ = q.select_partition(now=0, prefer=PTW_PARTITION)
    assert part.key == "read_req"


def test_blocked_partition_skipped_until_expiry():
    q = _queue()
    q.push(_flit(PacketType.READ_REQ))
    part = q.partitions()[0]
    part.blocked_until = 100
    chosen, earliest = q.select_partition(now=50)
    assert chosen is None and earliest == 100
    chosen, _ = q.select_partition(now=100)
    assert chosen is part


def test_blocked_partition_earliest_reported():
    q = _queue()
    q.push(_flit(PacketType.READ_REQ))
    q.push(_flit(PacketType.WRITE_RSP))
    a, b = q.partitions()
    a.blocked_until, b.blocked_until = 80, 40
    _, earliest = q.select_partition(now=0)
    assert earliest == 40


def test_empty_queue_selects_nothing():
    q = _queue()
    assert q.select_partition(now=0) == (None, None)


def test_remove_flit():
    q = _queue()
    keep, drop = _flit(), _flit()
    q.push(keep)
    q.push(drop)
    assert q.remove_flit(drop)
    assert not q.remove_flit(drop)
    assert len(q) == 1


def test_remove_pooled_head_clears_partition_timer():
    q = _queue()
    pooled, successor = _flit(), _flit()
    pooled.pooled = True
    q.push(pooled)
    q.push(successor)
    part = q.partitions()[0]
    part.blocked_until, part.pooled_at = 100, 68
    assert q.remove_flit(pooled)
    # the timer belonged to the stitched-away head; the successor was
    # never pooled and must not inherit the block
    assert part.blocked_until == 0
    assert part.pooled_at == 0
    assert q.stale_timers_cleared == 1
    chosen, _ = q.select_partition(now=70)
    assert chosen is part


def test_remove_non_head_flit_keeps_timer():
    q = _queue()
    pooled, other = _flit(), _flit()
    pooled.pooled = True
    q.push(pooled)
    q.push(other)
    part = q.partitions()[0]
    part.blocked_until = 100
    assert q.remove_flit(other)
    assert part.blocked_until == 100
    assert q.stale_timers_cleared == 0


def test_remove_unpooled_head_keeps_timer():
    q = _queue()
    head = _flit()  # never pooled: the timer is not its to release
    q.push(head)
    part = q.partitions()[0]
    part.blocked_until = 100
    assert q.remove_flit(head)
    assert part.blocked_until == 100
    assert q.stale_timers_cleared == 0


def test_push_front_restores_head():
    q = _queue()
    a, b = _flit(), _flit()
    q.push(a)
    q.push(b)
    part = q.partitions()[0]
    head = q.pop_from(part)
    q.push_front(head, part.key)
    assert part.flits[0] is a
    assert len(q) == 2


def test_push_front_cannot_exceed_capacity():
    """Regression: the pop -> push_front round-trip used to bypass the
    capacity check, driving ``_count`` above ``capacity`` (and
    ``free_entries`` negative) whenever admissions landed in between."""
    q = _queue(capacity=2, by_type=False)
    a, b = _flit(), _flit()
    q.push(a)
    q.push(b)
    part = q.partitions()[0]
    popped = q.pop_from(part)
    assert q.push(_flit())  # an admission steals the freed slot
    with pytest.raises(CapacityError):
        q.push_front(popped, part.key)
    assert len(q) == 2
    assert q.free_entries == 0


def test_pop_reserved_holds_the_entry():
    q = _queue(capacity=2, by_type=False)
    a, b = _flit(), _flit()
    q.push(a)
    q.push(b)
    part = q.partitions()[0]
    popped = q.pop_reserved(part)
    # the freed slot is reserved for the popped flit's possible return
    assert q.free_entries == 0
    assert q.reserved_entries == 1
    assert not q.push(_flit())
    q.push_front(popped, part.key, reserved=True)
    assert q.reserved_entries == 0
    assert part.flits[0] is popped
    assert len(q) == 2


def test_release_reservation_frees_the_entry():
    q = _queue(capacity=2, by_type=False)
    q.push(_flit())
    q.push(_flit())
    part = q.partitions()[0]
    q.pop_reserved(part)
    q.release_reservation()
    assert q.reserved_entries == 0
    assert q.free_entries == 1
    assert q.push(_flit())


def test_reservation_misuse_raises():
    q = _queue(capacity=4, by_type=False)
    q.push(_flit())
    with pytest.raises(RuntimeError):
        q.release_reservation()
    with pytest.raises(RuntimeError):
        q.push_front(_flit(), FIFO_PARTITION, reserved=True)


def test_push_front_allowed_when_space_exists():
    q = _queue(capacity=4, by_type=False)
    a = _flit()
    q.push(a)
    part = q.partitions()[0]
    popped = q.pop_from(part)
    q.push_front(popped, part.key)  # plenty of room: no error
    assert len(q) == 1


def test_earliest_blocked_picks_soonest_expiry():
    q = _queue()
    q.push(_flit(PacketType.READ_REQ))
    q.push(_flit(PacketType.WRITE_RSP))
    a, b = q.partitions()
    a.blocked_until, b.blocked_until = 80, 40
    assert q.earliest_blocked(now=0) is b
    # expired timers no longer count as blocked
    assert q.earliest_blocked(now=40) is a
    assert q.earliest_blocked(now=100) is None


def test_earliest_blocked_ignores_empty_partitions():
    q = _queue()
    q.push(_flit(PacketType.READ_REQ))
    part = q.partitions()[0]
    part.blocked_until = 50
    q.pop_from(part)  # now empty: nothing to serve even if "blocked"
    assert q.earliest_blocked(now=0) is None


def test_stitch_candidates_cross_partitions_bounded_depth():
    q = _queue()
    parent = segment_packet(
        Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=2), 16
    )[-1]
    for _ in range(12):
        q.push(_flit(PacketType.READ_REQ))
    q.push(_flit(PacketType.WRITE_RSP))
    seen = list(q.stitch_candidates(parent, search_depth=8))
    # 8 of the read_reqs (depth bound) + the write_rsp
    assert len(seen) == 9


def test_stitch_candidates_skip_parent():
    q = _queue()
    parent = _flit(PacketType.READ_REQ)
    q.push(parent)
    assert list(q.stitch_candidates(parent, 8)) == []


def test_blocked_partitions_listing():
    q = _queue()
    q.push(_flit(PacketType.READ_REQ))
    part = q.partitions()[0]
    assert q.blocked_partitions(now=0) == []
    part.blocked_until = 10
    assert q.blocked_partitions(now=5) == [part]
    assert q.blocked_partitions(now=10) == []


@given(
    kinds=st.lists(st.sampled_from(list(PacketType)), min_size=1, max_size=50),
    scheduler=st.sampled_from(["age", "rr"]),
)
def test_every_pushed_flit_is_eventually_served(kinds, scheduler):
    """Property: draining via select/pop returns exactly what was pushed."""
    q = ClusterQueue(capacity=128, partition_by_type=True, separate_ptw=True,
                     scheduler=scheduler)
    pushed = []
    for kind in kinds:
        flit = _flit(kind)
        assert q.push(flit)
        pushed.append(flit)
    drained = []
    while not q.is_empty():
        part, earliest = q.select_partition(now=0)
        assert part is not None
        drained.append(q.pop_from(part))
    assert sorted(f.fid for f in drained) == sorted(f.fid for f in pushed)
