"""Tests for the sector-capable set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import (
    SectorCache,
    full_sector_mask,
    sector_mask_for,
)


def _cache(size=1024, ways=2, line=64, sector=16):
    return SectorCache(size_bytes=size, ways=ways, line_bytes=line, sector_bytes=sector)


class TestSectorMasks:
    def test_full_mask(self):
        assert full_sector_mask(64, 16) == 0b1111
        assert full_sector_mask(64, 8) == 0xFF

    def test_single_sector(self):
        assert sector_mask_for(0, 8, 64, 16) == 0b0001
        assert sector_mask_for(16, 16, 64, 16) == 0b0010
        assert sector_mask_for(48, 16, 64, 16) == 0b1000

    def test_spanning_sectors(self):
        assert sector_mask_for(8, 16, 64, 16) == 0b0011
        assert sector_mask_for(0, 64, 64, 16) == 0b1111

    def test_zero_bytes_touches_one_sector(self):
        assert sector_mask_for(20, 0, 64, 16) == 0b0010

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            sector_mask_for(64, 4, 64, 16)

    @given(offset=st.integers(0, 63), nbytes=st.integers(1, 64))
    def test_mask_contiguous_and_covering(self, offset, nbytes):
        mask = sector_mask_for(offset, nbytes, 64, 16)
        assert mask != 0
        # mask bits are contiguous
        low = mask & -mask
        assert (mask // low + 1) & (mask // low) == 0
        # first touched sector is set
        assert mask & (1 << (offset // 16))


class TestBasicCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SectorCache(size_bytes=1000, ways=3, line_bytes=64)
        with pytest.raises(ValueError):
            SectorCache(size_bytes=1024, ways=2, line_bytes=64, sector_bytes=48)

    def test_miss_then_hit_after_fill(self):
        c = _cache()
        assert c.lookup(0x100) == "miss"
        c.fill(0x100)
        assert c.lookup(0x100) == "hit"
        assert c.hits == 1 and c.misses == 1

    def test_same_line_different_offsets_hit(self):
        c = _cache()
        c.fill(0x100)
        assert c.lookup(0x13F) == "hit"

    def test_lru_eviction(self):
        c = _cache(size=256, ways=2, line=64)  # 2 sets
        # addresses mapping to set 0: line index multiples of 2
        a, b, d = 0x000, 0x080, 0x100
        c.fill(a)
        c.fill(b)
        c.lookup(a)  # touch a so b is LRU
        evicted = c.fill(d)
        assert evicted is not None
        assert c.lookup(b) == "miss"
        assert c.lookup(a) == "hit"

    def test_eviction_returns_dirty_state(self):
        c = _cache(size=128, ways=1, line=64)
        c.fill(0x000)
        c.mark_dirty(0x000)
        evicted = c.fill(0x400)
        assert evicted.dirty
        assert c.dirty_evictions == 1

    def test_write_updates_only_present_lines(self):
        c = _cache()
        assert not c.write(0x100, 8)  # no-allocate
        c.fill(0x100)
        assert c.write(0x100, 8)

    def test_invalidate(self):
        c = _cache()
        c.fill(0x100)
        assert c.invalidate(0x100)
        assert not c.invalidate(0x100)
        assert c.lookup(0x100) == "miss"

    def test_clear_keeps_statistics(self):
        c = _cache()
        c.fill(0x100)
        c.lookup(0x100)
        hits_before = c.hits
        c.clear()
        assert c.occupancy() == 0
        assert c.hits == hits_before
        assert c.lookup(0x100) == "miss"

    def test_probe_does_not_touch_stats(self):
        c = _cache()
        assert c.probe(0x100) is None
        c.fill(0x100)
        assert c.probe(0x100) is not None
        assert c.hits == 0 and c.misses == 0


class TestSectoredBehaviour:
    def test_partial_fill_gives_sector_miss(self):
        c = _cache()
        c.fill(0x100, sector_mask=0b0001)
        assert c.lookup(0x100, 0b0001) == "hit"
        assert c.lookup(0x100, 0b0010) == "partial"
        assert c.sector_misses == 1

    def test_partial_then_completed_fill(self):
        c = _cache()
        c.fill(0x100, 0b0001)
        c.fill(0x100, 0b0010)
        assert c.lookup(0x100, 0b0011) == "hit"

    def test_full_fill_validates_all_sectors(self):
        c = _cache()
        c.fill(0x100)
        assert c.lookup(0x100, c.full_mask) == "hit"

    def test_sector_mask_helper_uses_cache_geometry(self):
        c = _cache(sector=8)
        assert c.sector_mask(0x108, 8) == 0b10

    def test_miss_rate_counts_sector_misses(self):
        c = _cache()
        c.fill(0x100, 0b0001)
        c.lookup(0x100, 0b0010)  # partial
        c.lookup(0x200)  # miss
        c.lookup(0x100, 0b0001)  # hit
        assert c.miss_rate() == pytest.approx(2 / 3)


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 31), st.booleans()),  # (line index, fill?)
        max_size=100,
    )
)
def test_cache_agrees_with_reference_model(ops):
    """Property: hit/miss outcomes match a simple LRU reference model."""
    ways, n_sets = 2, 4
    c = SectorCache(size_bytes=ways * n_sets * 64, ways=ways, line_bytes=64)
    model = {s: [] for s in range(n_sets)}  # set -> list of tags (LRU first)
    for line_index, do_fill in ops:
        addr = line_index * 64
        set_idx = line_index % n_sets
        tag = line_index // n_sets
        if do_fill:
            c.fill(addr)
            if tag in model[set_idx]:
                model[set_idx].remove(tag)
            elif len(model[set_idx]) >= ways:
                model[set_idx].pop(0)
            model[set_idx].append(tag)
        else:
            outcome = c.lookup(addr)
            expected = "hit" if tag in model[set_idx] else "miss"
            assert outcome == expected
            if tag in model[set_idx]:
                model[set_idx].remove(tag)
                model[set_idx].append(tag)
