"""Tests for the MSHR pool."""

import pytest

from repro.memory.mshr import Mshr


def test_invalid_size():
    with pytest.raises(ValueError):
        Mshr(0)


def test_allocate_then_merge():
    m = Mshr(4)
    assert m.allocate(0x100, "a") == "allocated"
    assert m.allocate(0x100, "b") == "merged"
    assert len(m) == 1
    assert m.merges == 1
    assert m.allocations == 1


def test_full_reported():
    m = Mshr(1)
    assert m.allocate(0x100, "a") == "allocated"
    assert m.allocate(0x200, "b") == "full"
    assert m.full_stalls == 1


def test_merge_possible_even_when_full():
    m = Mshr(1)
    m.allocate(0x100, "a")
    assert m.allocate(0x100, "b") == "merged"


def test_release_returns_waiters_in_order():
    m = Mshr(4)
    m.allocate(0x100, "a")
    m.allocate(0x100, "b")
    m.allocate(0x100, "c")
    assert m.release(0x100) == ["a", "b", "c"]
    assert len(m) == 0


def test_release_unknown_key_is_empty():
    m = Mshr(4)
    assert m.release(0x999) == []


def test_lookup():
    m = Mshr(4)
    m.allocate(0x100, "a")
    assert m.lookup(0x100).waiters == ["a"]
    assert m.lookup(0x200) is None


def test_slot_reusable_after_release():
    m = Mshr(1)
    m.allocate(0x100, "a")
    m.release(0x100)
    assert m.allocate(0x200, "b") == "allocated"


def test_tuple_keys_supported():
    """The L1 keys entries by (line, fetch_mask) for sector fetches."""
    m = Mshr(4)
    assert m.allocate((0x100, 0b0001), "a") == "allocated"
    assert m.allocate((0x100, 0b0010), "b") == "allocated"
    assert m.allocate((0x100, 0b0001), "c") == "merged"
    assert m.release((0x100, 0b0001)) == ["a", "c"]
