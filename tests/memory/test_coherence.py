"""Tests for the hardware-coherence extension (directory + system)."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.cta import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.gpu.system import MultiGpuSystem
from repro.memory.coherence import Directory
from repro.vm.page_table import PAGE_SIZE

HW = SystemConfig.default().with_overrides(coherence="hardware")


class TestDirectory:
    def test_record_and_query(self):
        d = Directory(home_gpu=0)
        d.record_sharer(0x1000, 2)
        d.record_sharer(0x1008, 3)  # same line
        assert d.sharers_of(0x1000) == {2, 3}
        assert d.lines_tracked == 1

    def test_invalidation_targets_exclude_writer(self):
        d = Directory(home_gpu=0)
        for gpu in (1, 2, 3):
            d.record_sharer(0x40, gpu)
        targets = d.take_invalidation_targets(0x40, writer_gpu=2)
        assert targets == [1, 3]
        # writer keeps its copy; others were dropped
        assert d.sharers_of(0x40) == {2}

    def test_no_sharers_no_targets(self):
        d = Directory(home_gpu=0)
        assert d.take_invalidation_targets(0x40, writer_gpu=1) == []

    def test_writer_not_a_sharer_drops_line(self):
        d = Directory(home_gpu=0)
        d.record_sharer(0x40, 3)
        assert d.take_invalidation_targets(0x40, writer_gpu=1) == [3]
        assert d.lines_tracked == 0

    def test_drop_line(self):
        d = Directory(home_gpu=0)
        d.record_sharer(0x40, 1)
        d.drop_line(0x47)
        assert d.sharers_of(0x40) == set()

    def test_peak_tracking(self):
        d = Directory(home_gpu=0)
        d.record_sharer(0x0, 1)
        d.record_sharer(0x40, 1)
        d.take_invalidation_targets(0x0, writer_gpu=2)
        assert d.lines_tracked_peak == 2
        assert d.invalidations_issued == 1


def _workload(kernels):
    return WorkloadTrace(name="coh", kernels=kernels)


def _kernel(name, ctas, owners):
    return KernelTrace(name=name, ctas=ctas, page_owner=owners)


def _wf(accesses, gpu):
    return CtaTrace(gpu=gpu, wavefronts=[WavefrontTrace(accesses=accesses)])


class TestSystemCoherence:
    def test_remote_write_invalidates_sharer(self):
        """GPU0 caches a line of GPU1's; GPU2 writes it; GPU0's copy dies
        so its next read re-fetches."""
        addr = PAGE_SIZE * 10
        owners = {10: 1}
        reader = _wf([MemAccess(vaddr=addr, nbytes=8)], gpu=0)
        writer = _wf([MemAccess(vaddr=addr, nbytes=8, is_write=True)], gpu=2)
        rereader = _wf([MemAccess(vaddr=addr, nbytes=8)], gpu=0)
        trace = _workload(
            [
                _kernel("read", [reader], owners),
                _kernel("write", [writer], owners),
                _kernel("reread", [rereader], owners),
            ]
        )
        system = MultiGpuSystem(config=HW)
        system.load(trace)
        result = system.run()
        assert result.stats.coherence_inv_sent >= 1
        # the re-read misses (copy was invalidated, not kernel-flushed)
        assert result.stats.remote_reads_intra + result.stats.remote_reads_inter >= 2

    def test_l1_survives_kernel_boundary_without_writes(self):
        addr = PAGE_SIZE * 10
        owners = {10: 3}
        trace = _workload(
            [
                _kernel("a", [_wf([MemAccess(vaddr=addr, nbytes=8)], 0)], owners),
                _kernel("b", [_wf([MemAccess(vaddr=addr, nbytes=8)], 0)], owners),
            ]
        )
        system = MultiGpuSystem(config=HW)
        system.load(trace)
        result = system.run()
        # second kernel hits in the still-warm L1 (software mode refetches)
        assert result.stats.l1_hits >= 1
        assert result.stats.remote_reads_inter == 1
        assert result.stats.coherence_inv_sent == 0

    def test_software_mode_sends_no_invalidations(self):
        addr = PAGE_SIZE * 10
        owners = {10: 1}
        trace = _workload(
            [_kernel("w", [_wf([MemAccess(vaddr=addr, nbytes=8, is_write=True)], 0)], owners)]
        )
        system = MultiGpuSystem()
        system.load(trace)
        result = system.run()
        assert result.stats.coherence_inv_sent == 0
        assert all(gpu.directory is None for gpu in system.gpus.values())

    def test_local_write_invalidates_remote_sharers(self):
        addr = PAGE_SIZE * 10
        owners = {10: 1}
        reader = _wf([MemAccess(vaddr=addr, nbytes=8)], gpu=3)
        home_writer = _wf([MemAccess(vaddr=addr, nbytes=8, is_write=True)], gpu=1)
        trace = _workload(
            [_kernel("r", [reader], owners), _kernel("w", [home_writer], owners)]
        )
        system = MultiGpuSystem(config=HW)
        system.load(trace)
        result = system.run()
        assert result.stats.coherence_inv_sent == 1
        assert result.stats.coherence_inv_received == 1

    def test_all_invalidations_acknowledged(self):
        from repro.workloads.base import Scale
        from repro.workloads.registry import get_workload

        trace = get_workload("gups").build(n_gpus=4, scale=Scale.tiny(), seed=0)
        system = MultiGpuSystem(config=HW, netcrafter=NetCrafterConfig.full())
        system.load(trace)
        result = system.run()
        assert result.stats.coherence_inv_sent == result.stats.coherence_inv_received
        for gpu in system.gpus.values():
            assert gpu.rdma.outstanding_invalidations == 0

    def test_invalid_coherence_value_rejected(self):
        with pytest.raises(ValueError, match="coherence"):
            SystemConfig.default().with_overrides(coherence="magic")
