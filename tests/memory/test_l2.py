"""Tests for the banked write-back L2."""

import pytest

from repro.memory.dram import Dram
from repro.memory.l2 import L2Cache
from repro.sim.engine import Engine


def _l2(eng, lookup=100, banks=16, mshr=64, size=64 * 1024):
    dram = Dram(eng, "dram", latency=100, bytes_per_cycle=1024.0)
    return L2Cache(
        eng, "l2", dram=dram, size_bytes=size, ways=16, banks=banks,
        lookup_latency=lookup, mshr_entries=mshr,
    ), dram


def test_miss_goes_to_dram_then_hits():
    eng = Engine()
    l2, dram = _l2(eng)
    times = []
    l2.request(0x1000, 64, False, lambda: times.append(eng.now))
    eng.run()
    assert times[0] >= 100 + 100  # lookup + dram
    assert dram.reads == 1
    l2.request(0x1000, 64, False, lambda: times.append(eng.now))
    start = eng.now
    eng.run()
    assert times[1] - start == pytest.approx(100, abs=2)  # hit: lookup only
    assert dram.reads == 1  # no new dram access


def test_mshr_merges_same_line():
    eng = Engine()
    l2, dram = _l2(eng)
    done = []
    for _ in range(4):
        l2.request(0x2000, 64, False, lambda: done.append(eng.now))
    eng.run()
    assert len(done) == 4
    assert dram.reads == 1


def test_write_installs_dirty_line_without_fetch():
    eng = Engine()
    l2, dram = _l2(eng)
    done = []
    l2.request(0x3000, 64, True, lambda: done.append(eng.now))
    eng.run()
    assert dram.reads == 0  # full-line write: no fetch
    line = l2.tags.probe(0x3000)
    assert line is not None and line.dirty


def test_dirty_eviction_writes_back():
    eng = Engine()
    l2, dram = _l2(eng, size=1024)  # 1 set... small: 16 ways * 64B = 1024
    # fill all 16 ways of set 0 with dirty lines, then one more
    step = 1024  # same set each time (n_sets = 1)
    for i in range(17):
        l2.request(i * step, 64, True, lambda: None)
    eng.run()
    assert dram.writes >= 1


def test_bank_serialization():
    eng = Engine()
    l2, dram = _l2(eng, lookup=10, banks=1)
    done = []
    # same bank: starts are serialized one per cycle
    l2.request(0x0, 64, True, lambda: done.append(eng.now))
    l2.request(0x40, 64, True, lambda: done.append(eng.now))
    eng.run()
    assert done[1] == done[0] + 1


def test_different_banks_parallel():
    eng = Engine()
    l2, dram = _l2(eng, lookup=10, banks=16)
    done = []
    l2.request(0x0, 64, True, lambda: done.append(eng.now))
    l2.request(0x40, 64, True, lambda: done.append(eng.now))
    eng.run()
    assert done[0] == done[1]


def test_mshr_full_stalls_then_retries():
    eng = Engine()
    l2, dram = _l2(eng, mshr=1)
    done = []
    l2.request(0x1000, 64, False, lambda: done.append("a"))
    l2.request(0x2000, 64, False, lambda: done.append("b"))
    eng.run()
    assert sorted(done) == ["a", "b"]
    assert dram.reads == 2


def test_request_counters():
    eng = Engine()
    l2, _ = _l2(eng)
    l2.request(0x0, 64, False, lambda: None)
    l2.request(0x40, 64, True, lambda: None)
    eng.run()
    assert l2.read_requests == 1
    assert l2.write_requests == 1
