"""Tests for the DRAM latency/bandwidth model."""

from repro.memory.dram import Dram
from repro.sim.engine import Engine


def test_fixed_latency_plus_transfer():
    eng = Engine()
    dram = Dram(eng, "d", latency=100, bytes_per_cycle=64.0)
    done = []
    dram.access(64, lambda: done.append(eng.now))
    eng.run()
    assert done == [101]  # 100 latency + 1 transfer cycle


def test_small_access_rounds_up_transfer():
    eng = Engine()
    dram = Dram(eng, "d", latency=10, bytes_per_cycle=1024.0)
    done = []
    dram.access(8, lambda: done.append(eng.now))
    eng.run()
    assert done == [11]


def test_reads_and_writes_counted():
    eng = Engine()
    dram = Dram(eng, "d")
    dram.access(64, lambda: None)
    dram.access(64, lambda: None, is_write=True)
    eng.run()
    assert dram.reads == 1
    assert dram.writes == 1
    assert dram.bytes_transferred == 128


def test_outstanding_cap_queues_excess():
    eng = Engine()
    dram = Dram(eng, "d", latency=100, bytes_per_cycle=1024.0, max_outstanding=2)
    done = []
    for _ in range(4):
        dram.access(64, lambda: done.append(eng.now))
    assert dram.outstanding == 4
    eng.run()
    # first two complete at 101, queued pair starts then: 202
    assert done == [101, 101, 202, 202]
    assert dram.outstanding == 0


def test_parallelism_within_cap():
    eng = Engine()
    dram = Dram(eng, "d", latency=100, max_outstanding=64)
    done = []
    for _ in range(8):
        dram.access(64, lambda: done.append(eng.now))
    eng.run()
    assert done == [101] * 8
