"""Tests for the RDMA engine using a loopback network stub."""

import pytest

from repro.memory.rdma import RdmaEngine
from repro.network.packet import Packet, PacketType
from repro.sim.engine import Engine
from repro.stats.collectors import RunStats

CLUSTER_OF = lambda gpu: gpu // 2  # noqa: E731 - 4 GPUs, 2 clusters


class _FakeL2:
    """Services requests after a fixed delay."""

    def __init__(self, engine, delay=10):
        self.engine = engine
        self.delay = delay
        self.requests = []

    def request(self, addr, nbytes, is_write, callback):
        self.requests.append((addr, nbytes, is_write))
        self.engine.schedule(self.delay, callback)


def _pair(eng, delay=10, network_delay=20):
    """Two RDMA engines joined by a fixed-latency 'network'."""
    stats = RunStats()
    a = RdmaEngine(eng, "rdma0", 0, CLUSTER_OF, stats)
    b = RdmaEngine(eng, "rdma2", 2, CLUSTER_OF, stats)
    engines = {0: a, 2: b}

    def deliver(packet):
        eng.schedule(network_delay, engines[packet.dst_gpu].receive_packet, packet)

    l2a, l2b = _FakeL2(eng, delay), _FakeL2(eng, delay)
    a.attach(inject=deliver, l2_request=l2a.request)
    b.attach(inject=deliver, l2_request=l2b.request)
    return a, b, l2a, l2b, stats


def test_read_round_trip():
    eng = Engine()
    a, b, l2a, l2b, stats = _pair(eng)
    got = []
    a.remote_read(2, 0x1000, bytes_needed=8, sector_offset=0, on_complete=got.append)
    eng.run()
    assert len(got) == 1
    rsp = got[0]
    assert rsp.ptype is PacketType.READ_RSP
    assert rsp.payload_bytes == 64
    assert rsp.addr == 0x1000
    assert l2b.requests == [(0x1000, 64, False)]
    # latency = 2 network hops + L2 delay
    assert stats.remote_read_latency_inter.count == 1
    assert stats.remote_read_latency_inter.mean() == 50


def test_read_latency_classified_by_cluster():
    eng = Engine()
    stats = RunStats()
    a = RdmaEngine(eng, "rdma0", 0, CLUSTER_OF, stats)
    peer = RdmaEngine(eng, "rdma1", 1, CLUSTER_OF, stats)
    engines = {0: a, 1: peer}
    deliver = lambda p: eng.schedule(5, engines[p.dst_gpu].receive_packet, p)  # noqa: E731
    l2 = _FakeL2(eng)
    a.attach(inject=deliver, l2_request=l2.request)
    peer.attach(inject=deliver, l2_request=l2.request)
    a.remote_read(1, 0x0, 8, 0, on_complete=lambda p: None)
    eng.run()
    assert stats.remote_read_latency_intra.count == 1
    assert stats.remote_read_latency_inter.count == 0


def test_trim_bits_copied_to_response():
    eng = Engine()
    a, b, _, _, _ = _pair(eng)
    got = []
    a.remote_read(
        2, 0x40, bytes_needed=8, sector_offset=3,
        on_complete=got.append, trim_allowed=True,
    )
    eng.run()
    rsp = got[0]
    assert rsp.trim_allowed
    assert rsp.bytes_needed == 8
    assert rsp.sector_offset == 3


def test_sector_fetch_returns_only_requested_sectors():
    eng = Engine()
    a, b, _, _, _ = _pair(eng)
    got = []
    a.remote_read(
        2, 0x40, bytes_needed=8, sector_offset=0, on_complete=got.append,
        sector_fetch=True, fetch_sector_mask=0b0011,
    )
    eng.run()
    rsp = got[0]
    assert rsp.payload_bytes == 32
    assert rsp.filled_sector_mask == 0b0011


def test_write_acknowledged():
    eng = Engine()
    a, b, _, l2b, _ = _pair(eng)
    a.remote_write(2, 0x80)
    assert a.outstanding_writes == 1
    eng.run()
    assert a.outstanding_writes == 0
    assert l2b.requests == [(0x80, 64, True)]


def test_pt_read_round_trip():
    eng = Engine()
    a, b, _, l2b, _ = _pair(eng)
    done = []
    a.remote_pt_read(2, 0x1238, on_complete=lambda: done.append(eng.now))
    eng.run()
    assert done == [50]
    assert l2b.requests == [(0x1238, 8, False)]


def test_unattached_engine_raises():
    eng = Engine()
    rdma = RdmaEngine(eng, "r", 0, CLUSTER_OF, RunStats())
    with pytest.raises(RuntimeError):
        rdma.remote_write(1, 0x0)


def test_counters():
    eng = Engine()
    a, b, _, _, _ = _pair(eng)
    a.remote_read(2, 0x0, 8, 0, on_complete=lambda p: None)
    a.remote_write(2, 0x40)
    eng.run()
    assert a.requests_sent == 2
    assert b.requests_served == 2
    assert a.responses_received == 2
