"""Tests for the compute unit's access pipeline via small systems."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.cta import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.gpu.system import MultiGpuSystem
from repro.vm.page_table import PAGE_SIZE


def _workload(accesses_by_wavefront, page_owner):
    ctas = [
        CtaTrace(gpu=0, wavefronts=[WavefrontTrace(accesses=accs)])
        for accs in accesses_by_wavefront
    ]
    kernel = KernelTrace(name="k", ctas=ctas, page_owner=page_owner)
    return WorkloadTrace(name="t", kernels=[kernel])


def _run(workload, config=None, netcrafter=None):
    system = MultiGpuSystem(config=config, netcrafter=netcrafter)
    system.load(workload)
    return system.run(), system


def test_wavefront_mlp_overlaps_accesses():
    """With MLP 4 a 4-access wavefront finishes much faster than serial."""
    accesses = [
        [MemAccess(vaddr=PAGE_SIZE * 10 + i * 64, nbytes=8) for i in range(4)]
    ]
    owner = {10: 3}
    fast, _ = _run(
        _workload(accesses, owner),
        config=SystemConfig.default().with_overrides(wavefront_mlp=4),
    )
    slow, _ = _run(
        _workload(accesses, owner),
        config=SystemConfig.default().with_overrides(wavefront_mlp=1),
    )
    assert fast.cycles < slow.cycles


def test_mshr_merges_same_line_requests():
    """Two wavefronts missing the same line issue one remote fetch."""
    acc = [MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8)]
    workload = _workload([list(acc), list(acc)], {10: 3})
    result, system = _run(workload)
    # both wavefronts run on cu0 (round-robin assigns both to same CU? they
    # are separate CTAs, so cu0 and cu1): count total remote reads instead
    assert result.stats.remote_reads_inter <= 2
    assert result.stats.mem_ops == 2


def test_sector_mode_fetches_partial_line():
    """Sector mode: the fill brings one sector; re-reading it hits, and the
    response on the wire is sector-sized (fewer inter-cluster flits)."""
    accs = [[
        MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8),
        MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8),
    ]]
    cfg = SystemConfig.sector_cache_baseline().with_overrides(wavefront_mlp=1)
    sector_res, _ = _run(_workload(accs, {10: 3}), config=cfg)
    line_cfg = SystemConfig.default().with_overrides(wavefront_mlp=1)
    line_res, _ = _run(_workload(accs, {10: 3}), config=line_cfg)
    assert sector_res.stats.l1_hits == 1  # second read hits the sector
    # sector response (4+16 B -> 2 flits) vs full line (68 B -> 5 flits)
    assert sector_res.inter_flits_sent < line_res.inter_flits_sent


def test_sector_mode_refetch_on_other_sector():
    """Sequential dependent reads of different sectors: second is a
    sector miss that triggers a second fetch."""
    accs = [[
        MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8),
        MemAccess(vaddr=PAGE_SIZE * 10 + 32, nbytes=8),
    ]]
    cfg = SystemConfig.sector_cache_baseline().with_overrides(wavefront_mlp=1)
    result, _ = _run(_workload(accs, {10: 3}), config=cfg)
    assert result.stats.l1_sector_misses == 1
    assert result.stats.remote_reads_inter == 2


def test_line_mode_single_fetch_covers_all_sectors():
    accs = [[
        MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8),
        MemAccess(vaddr=PAGE_SIZE * 10 + 32, nbytes=8),
    ]]
    cfg = SystemConfig.default().with_overrides(wavefront_mlp=1)
    result, _ = _run(_workload(accs, {10: 3}), config=cfg)
    assert result.stats.l1_hits == 1
    assert result.stats.remote_reads_inter == 1


def test_trimmed_fill_marks_single_sector():
    """A trimmed fill validates only its sector: re-reading the same sector
    hits, reading a different sector of the same line sector-misses."""
    accs = [[
        MemAccess(vaddr=PAGE_SIZE * 10 + 16, nbytes=8),
        MemAccess(vaddr=PAGE_SIZE * 10 + 16, nbytes=8),
        MemAccess(vaddr=PAGE_SIZE * 10 + 48, nbytes=8),
    ]]
    cfg = SystemConfig.default().with_overrides(wavefront_mlp=1)
    result, _ = _run(
        _workload(accs, {10: 3}),
        config=cfg,
        netcrafter=NetCrafterConfig.trimming_only(),
    )
    assert result.packets_trimmed == 2  # first and third fetch both trim
    assert result.stats.l1_hits == 1
    assert result.stats.l1_sector_misses == 1


def test_unaligned_small_read_not_trim_eligible():
    """A read spanning two sectors cannot be trimmed to one."""
    acc = [[MemAccess(vaddr=PAGE_SIZE * 10 + 12, nbytes=8)]]  # sectors 0+1
    result, _ = _run(
        _workload(acc, {10: 3}), netcrafter=NetCrafterConfig.trimming_only()
    )
    assert result.packets_trimmed == 0


def test_write_through_propagates_to_home_l2():
    acc = [[MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8, is_write=True)]]
    result, system = _run(_workload(acc, {10: 1}))
    assert result.stats.remote_writes_intra == 1
    assert system.gpus[1].l2.write_requests == 1


def test_local_write_goes_to_own_l2():
    acc = [[MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8, is_write=True)]]
    result, system = _run(_workload(acc, {10: 0}))
    assert result.stats.local_writes == 1
    assert system.gpus[0].l2.write_requests == 1


def test_fig7_histogram_buckets_inter_cluster_reads():
    accs = [[
        MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8),
        MemAccess(vaddr=PAGE_SIZE * 10 + 64, nbytes=40),
        MemAccess(vaddr=PAGE_SIZE * 10 + 128, nbytes=64),
    ]]
    result, _ = _run(_workload(accs, {10: 3}))
    hist = result.stats.read_req_bytes_hist
    assert hist[16] == 1 and hist[48] == 1 and hist[64] == 1


def test_intra_cluster_reads_not_in_fig7_histogram():
    acc = [[MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8)]]
    result, _ = _run(_workload(acc, {10: 1}))
    assert sum(result.stats.read_req_bytes_hist.values()) == 0
