"""Tests for the GPU assembly's wiring and hooks."""

import pytest

from repro.config import SystemConfig
from repro.gpu.gpu import Gpu
from repro.network.link import PacketLink
from repro.network.packet import Packet, PacketType
from repro.sim.engine import Engine
from repro.stats.collectors import RunStats
from repro.vm.page_table import PageTable
from repro.vm.placement import AddressSpace


def _gpu(engine, gpu_id=0, config=None):
    config = config or SystemConfig.default()
    space = AddressSpace(config.n_gpus)
    table = PageTable(space)
    return Gpu(engine, f"gpu{gpu_id}", gpu_id, config, RunStats(), space, table), space


def test_inject_without_uplink_raises():
    eng = Engine()
    gpu, _ = _gpu(eng)
    with pytest.raises(RuntimeError, match="no uplink"):
        gpu.inject_packet(Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1))


def test_inject_retries_on_backpressure():
    eng = Engine()
    gpu, _ = _gpu(eng)
    delivered = []
    link = PacketLink(
        eng, "up", 16.0, 0, 16, sink=delivered.append, buffer_entries=1
    )
    gpu.attach_uplink(link)
    for _ in range(3):
        gpu.inject_packet(Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1))
    eng.run()
    assert len(delivered) == 3


def test_local_pte_access_goes_to_own_l2():
    eng = Engine()
    gpu, space = _gpu(eng)
    done = []
    addr = space.alloc_frame(0)
    gpu._pte_access(addr, 0, lambda: done.append(eng.now))
    eng.run()
    assert done and done[0] >= gpu.config.l2_latency


def test_remote_pte_access_goes_via_rdma():
    eng = Engine()
    gpu, space = _gpu(eng)
    sent = []
    gpu.rdma._inject = sent.append  # intercept the network
    addr = space.alloc_frame(2)
    gpu._pte_access(addr, 2, lambda: None)
    assert len(sent) == 1
    assert sent[0].ptype is PacketType.PT_REQ
    assert sent[0].dst_gpu == 2


def test_cu_count_matches_config():
    eng = Engine()
    cfg = SystemConfig.default().with_overrides(cus_per_gpu=3)
    gpu, _ = _gpu(eng, config=cfg)
    assert len(gpu.cus) == 3


def test_directory_absent_under_software_coherence():
    eng = Engine()
    gpu, _ = _gpu(eng)
    assert gpu.directory is None
    # hooks are safe no-ops
    gpu.record_sharer(0x40, 1)
    gpu.coherence_write(0x40, 1)


def test_directory_present_under_hardware_coherence():
    eng = Engine()
    cfg = SystemConfig.default().with_overrides(coherence="hardware")
    gpu, _ = _gpu(eng, config=cfg)
    assert gpu.directory is not None
    gpu.record_sharer(0x40, 2)
    assert gpu.directory.sharers_of(0x40) == {2}


def test_invalidate_line_clears_all_cus():
    eng = Engine()
    gpu, _ = _gpu(eng)
    for cu in gpu.cus:
        cu.l1.fill(0x1000)
    gpu.invalidate_line(0x1000)
    for cu in gpu.cus:
        assert cu.l1.probe(0x1000) is None


def test_home_and_cluster_helpers():
    eng = Engine()
    gpu, space = _gpu(eng)
    addr = space.alloc_frame(3)
    assert gpu.home_of(addr) == 3
    assert gpu.cluster_of(3) == 1
