"""Tests for the trace data model."""

import pytest

from repro.gpu.cta import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.vm.page_table import PAGE_SIZE


def test_access_validation():
    MemAccess(vaddr=0, nbytes=64)  # fine
    with pytest.raises(ValueError):
        MemAccess(vaddr=0, nbytes=0)
    with pytest.raises(ValueError):
        MemAccess(vaddr=0, nbytes=65)
    with pytest.raises(ValueError):
        MemAccess(vaddr=32, nbytes=64)  # straddles


def test_access_derived_fields():
    acc = MemAccess(vaddr=PAGE_SIZE * 3 + 130, nbytes=8)
    assert acc.vpn == 3
    assert acc.line_vaddr == PAGE_SIZE * 3 + 128


def test_kernel_counts():
    wf = WavefrontTrace(accesses=[MemAccess(vaddr=0, nbytes=8)] * 3)
    kernel = KernelTrace(
        name="k",
        ctas=[CtaTrace(gpu=0, wavefronts=[wf, wf]), CtaTrace(gpu=1, wavefronts=[wf])],
        page_owner={0: 0},
    )
    assert kernel.wavefront_count() == 3
    assert kernel.access_count() == 9
    assert kernel.touched_vpns() == {0}


def test_placement_validation_catches_missing_pages():
    wf = WavefrontTrace(accesses=[MemAccess(vaddr=PAGE_SIZE * 5, nbytes=8)])
    kernel = KernelTrace(name="k", ctas=[CtaTrace(gpu=0, wavefronts=[wf])])
    with pytest.raises(ValueError, match="lack an owner"):
        kernel.validate_placement()
    kernel.page_owner[5] = 2
    kernel.validate_placement()


def test_workload_validation():
    with pytest.raises(ValueError, match="no kernels"):
        WorkloadTrace(name="w").validate()


def test_workload_totals():
    wf = WavefrontTrace(accesses=[MemAccess(vaddr=0, nbytes=8)] * 2)
    kernel = KernelTrace(
        name="k", ctas=[CtaTrace(gpu=0, wavefronts=[wf])], page_owner={0: 0}
    )
    trace = WorkloadTrace(name="w", kernels=[kernel, kernel])
    trace.validate()
    assert trace.total_accesses() == 4
    assert list(trace.iter_page_owners()) == [(0, 0), (0, 0)]
