"""End-to-end system tests on hand-built and generated workloads."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.cta import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.gpu.system import MultiGpuSystem
from repro.vm.page_table import PAGE_SIZE
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload


def _simple_workload(n_accesses=4, owner=3, write=False):
    """One wavefront on GPU 0 reading pages owned by ``owner``."""
    accesses = [
        MemAccess(vaddr=PAGE_SIZE * 10 + i * 64, nbytes=8, is_write=write)
        for i in range(n_accesses)
    ]
    kernel = KernelTrace(
        name="k",
        ctas=[CtaTrace(gpu=0, wavefronts=[WavefrontTrace(accesses=accesses)])],
        page_owner={10: owner},
    )
    return WorkloadTrace(name="simple", kernels=[kernel])


def test_run_without_load_raises():
    with pytest.raises(RuntimeError):
        MultiGpuSystem().run()


def test_simple_remote_read_completes():
    system = MultiGpuSystem()
    system.load(_simple_workload())
    result = system.run()
    assert result.cycles > 0
    assert result.stats.mem_ops == 4
    assert result.stats.reads == 4
    # GPU 0 reading GPU 3's memory crosses clusters
    assert result.stats.remote_reads_inter >= 1
    assert result.inter_flits_sent > 0


def test_local_accesses_skip_network():
    system = MultiGpuSystem()
    system.load(_simple_workload(owner=0))
    result = system.run()
    assert result.stats.local_reads >= 1
    assert result.inter_flits_sent == 0


def test_intra_cluster_remote_does_not_use_inter_link():
    system = MultiGpuSystem()
    system.load(_simple_workload(owner=1))  # GPU 1 is in GPU 0's cluster
    result = system.run()
    assert result.stats.remote_reads_intra >= 1
    assert result.inter_flits_sent == 0


def test_writes_complete_and_ack():
    system = MultiGpuSystem()
    system.load(_simple_workload(write=True, owner=2))
    result = system.run()
    assert result.stats.writes == 4
    assert result.stats.remote_writes_inter >= 1
    for gpu in system.gpus.values():
        assert gpu.rdma.outstanding_writes == 0


def test_l1_caches_remote_data():
    """Two reads of the same line: second hits in L1."""
    accesses = [MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8)] * 2
    kernel = KernelTrace(
        name="k",
        ctas=[CtaTrace(gpu=0, wavefronts=[WavefrontTrace(accesses=accesses)])],
        page_owner={10: 3},
    )
    system = MultiGpuSystem(
        config=SystemConfig.default().with_overrides(wavefront_mlp=1)
    )
    system.load(WorkloadTrace(name="w", kernels=[kernel]))
    result = system.run()
    assert result.stats.l1_hits == 1
    assert result.stats.remote_reads_inter == 1


def test_kernel_boundary_invalidates_l1():
    accesses = [MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8)]
    def kernel():
        return KernelTrace(
            name="k",
            ctas=[CtaTrace(gpu=0, wavefronts=[WavefrontTrace(accesses=list(accesses))])],
            page_owner={10: 3},
        )
    system = MultiGpuSystem()
    system.load(WorkloadTrace(name="w", kernels=[kernel(), kernel()]))
    result = system.run()
    assert result.stats.kernel_count == 2
    # same line fetched again after the flush
    assert result.stats.remote_reads_inter == 2


def test_determinism_same_seed():
    results = []
    for _ in range(2):
        trace = get_workload("gups").build(n_gpus=4, scale=Scale.tiny(), seed=3)
        system = MultiGpuSystem(seed=3)
        system.load(trace)
        results.append(system.run().cycles)
    assert results[0] == results[1]


def test_different_seeds_give_different_traces():
    def addresses(seed):
        trace = get_workload("gups").build(n_gpus=4, scale=Scale.tiny(), seed=seed)
        return [
            acc.vaddr
            for kernel in trace.kernels
            for cta in kernel.ctas
            for wf in cta.wavefronts
            for acc in wf.accesses
        ]

    assert addresses(0) != addresses(1)


def test_netcrafter_delivers_all_traffic():
    """Conservation: with NetCrafter on, every entered flit is either sent
    as a parent or absorbed into one, and all wavefronts complete."""
    trace = get_workload("gups").build(n_gpus=4, scale=Scale.tiny(), seed=0)
    system = MultiGpuSystem(netcrafter=NetCrafterConfig.full())
    system.load(trace)
    result = system.run()
    assert result.flits_entered == result.flits_absorbed + result.inter_flits_sent
    assert result.stats.finish_cycle is not None


def test_trim_config_must_match_sector_size():
    bad = NetCrafterConfig.trimming_only().with_overrides(trim_sector_bytes=8)
    with pytest.raises(ValueError, match="granularity"):
        MultiGpuSystem(netcrafter=bad)


def test_config_label():
    assert MultiGpuSystem()._config_label() == "baseline"
    assert (
        MultiGpuSystem(netcrafter=NetCrafterConfig.full())._config_label()
        == "stitch+sfp32+trim+seq"
    )
    assert (
        MultiGpuSystem(config=SystemConfig.sector_cache_baseline())._config_label()
        == "sector16"
    )


def test_result_collects_controller_stats():
    trace = get_workload("spmv").build(n_gpus=4, scale=Scale.tiny(), seed=0)
    system = MultiGpuSystem(netcrafter=NetCrafterConfig.stitch_trim())
    system.load(trace)
    result = system.run()
    assert result.flits_entered > 0
    assert result.packets_trimmed > 0
    assert result.inter_links == 2


def test_empty_kernel_is_skipped():
    kernel = KernelTrace(name="empty", ctas=[], page_owner={})
    follow = KernelTrace(
        name="k",
        ctas=[CtaTrace(gpu=0, wavefronts=[WavefrontTrace(
            accesses=[MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8)])])],
        page_owner={10: 0},
    )
    system = MultiGpuSystem()
    system.load(WorkloadTrace(name="w", kernels=[kernel, follow]))
    result = system.run()
    assert result.stats.kernel_count == 2
