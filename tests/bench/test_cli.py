"""Tests for ``python -m repro.bench`` (report emission and --compare).

These drive :func:`repro.bench.__main__.main` directly, running only the
cheapest benchmark at quick size so the suite stays fast.
"""

import json

from repro.bench.__main__ import main
from repro.bench.harness import (
    compare_reports,
    comparison_markdown,
    overhead_markdown,
)
from repro.bench.schema import validate_report

FAST = ["--only", "engine_dispatch", "--quick", "--repeats", "1"]


def _run(tmp_path, extra=(), name="out.json"):
    out = tmp_path / name
    code = main([*FAST, "--out", str(out), *extra])
    doc = json.loads(out.read_text()) if out.exists() else None
    return code, doc


class TestEmission:
    def test_writes_schema_valid_report(self, tmp_path):
        code, doc = _run(tmp_path)
        assert code == 0
        validate_report(doc)
        (row,) = doc["benchmarks"]
        assert row["name"] == "engine_dispatch"
        assert row["work_units"] > 0
        assert row["units_per_second"] > 0

    def test_update_baseline_promotes_the_run(self, tmp_path):
        code, first = _run(tmp_path)
        assert code == 0
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(first))
        code, second = _run(
            tmp_path,
            extra=["--compare", str(baseline), "--update-baseline"],
            name="second.json",
        )
        assert code == 0
        promoted = json.loads(baseline.read_text())
        # the baseline now holds this run, minus the (stale the moment it
        # is promoted) comparison block
        expected = {k: v for k, v in second.items() if k != "comparison"}
        assert promoted == expected

    def test_update_baseline_preserves_pinned_thresholds(self, tmp_path):
        code, first = _run(tmp_path)
        assert code == 0
        (row,) = first["benchmarks"]
        row["fail_threshold"] = 2.5  # hand-pinned in the committed baseline
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(first))
        code, _ = _run(
            tmp_path,
            extra=["--compare", str(baseline), "--update-baseline"],
            name="second.json",
        )
        assert code == 0
        promoted = json.loads(baseline.read_text())
        (promoted_row,) = promoted["benchmarks"]
        assert promoted_row["fail_threshold"] == 2.5


class TestCompare:
    def _baseline(self, tmp_path, rate):
        doc = {
            "schema": 1,
            "python": "3.11.0",
            "platform": "test",
            "quick": True,
            "benchmarks": [
                {
                    "name": "engine_dispatch",
                    "kind": "micro",
                    "work_units": 1000,
                    "wall_seconds": 1000 / rate,
                    "units_per_second": rate,
                    "peak_rss_kb": 1,
                }
            ],
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(doc))
        return path

    def test_comparable_baseline_passes(self, tmp_path):
        baseline = self._baseline(tmp_path, rate=1.0)  # anything beats 1/s
        code, doc = _run(tmp_path, extra=["--compare", str(baseline)])
        assert code == 0
        assert doc["comparison"]["regressions"] == []
        (row,) = doc["comparison"]["benchmarks"]
        assert row["speedup"] > 1.0

    def test_regression_past_threshold_fails(self, tmp_path):
        baseline = self._baseline(tmp_path, rate=1e12)  # unbeatable
        code, doc = _run(tmp_path, extra=["--compare", str(baseline)])
        assert code == 1
        assert doc["comparison"]["regressions"] == ["engine_dispatch"]

    def test_missing_baseline_is_an_error(self, tmp_path):
        code, _ = _run(tmp_path, extra=["--compare", str(tmp_path / "nope.json")])
        assert code == 2

    def test_invalid_baseline_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        code, _ = _run(tmp_path, extra=["--compare", str(bad)])
        assert code == 2

    def test_schema_violating_baseline_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 1, "benchmarks": []}))
        code, _ = _run(tmp_path, extra=["--compare", str(bad)])
        assert code == 2


def _doc(rows):
    return {
        "schema": 1,
        "python": "3.11.0",
        "platform": "test",
        "quick": False,
        "benchmarks": rows,
    }


def _sharded_row(
    rate,
    wall,
    cpus=1,
    pickle_per_window=50_000.0,
    trips=272,
):
    return {
        "name": "sharded_speedup",
        "kind": "e2e",
        "work_units": 10_000,
        "wall_seconds": 10_000 / rate,
        "units_per_second": rate,
        "peak_rss_kb": 1,
        "sharded_wall_seconds": wall,
        "cpus": cpus,
        "fail_threshold": 2.5,
        "pickle_bytes_per_window": pickle_per_window,
        "verb_round_trips": trips,
        "idle_wait_seconds": 1.0,
    }


class TestShardedGates:
    """Satellite gates: single-CPU wall comparison, pickle-bytes ratio."""

    def test_single_cpu_gates_on_sharded_wall_not_rate(self):
        # rate collapsed 10x (would regress past 2.5x) but the sharded
        # wall itself improved: on a 1-CPU host the wall gate wins
        base = _doc([_sharded_row(rate=3000.0, wall=3.2)])
        cur = _doc([_sharded_row(rate=300.0, wall=2.4)])
        comparison = compare_reports(cur, base)
        assert comparison["regressions"] == []
        (row,) = comparison["benchmarks"]
        assert row["gated_on"] == "sharded_wall_seconds"
        assert row["speedup"] > 1.3

    def test_single_cpu_wall_regression_still_fails(self):
        base = _doc([_sharded_row(rate=3000.0, wall=3.0)])
        cur = _doc([_sharded_row(rate=3000.0, wall=9.0)])
        comparison = compare_reports(cur, base)
        assert comparison["regressions"] == ["sharded_speedup"]

    def test_multi_cpu_keeps_the_rate_gate(self):
        base = _doc([_sharded_row(rate=3000.0, wall=3.0, cpus=8)])
        cur = _doc([_sharded_row(rate=2900.0, wall=2.9, cpus=8)])
        comparison = compare_reports(cur, base)
        (row,) = comparison["benchmarks"]
        assert "gated_on" not in row
        assert comparison["regressions"] == []

    def test_pickle_bytes_doubling_regresses(self):
        base = _doc([_sharded_row(rate=3000.0, wall=3.0)])
        cur = _doc(
            [_sharded_row(rate=3000.0, wall=3.0, pickle_per_window=150_000.0)]
        )
        comparison = compare_reports(cur, base)
        assert comparison["regressions"] == ["sharded_speedup (pickle bytes)"]
        (row,) = comparison["benchmarks"]
        assert row["pickle_bytes_ratio"] == 3.0
        # the markdown row is flagged even though only the pickle gate fired
        markdown = "\n".join(comparison_markdown(comparison))
        assert "regressed" in markdown

    def test_overhead_table_renders_counters(self):
        base = _doc([_sharded_row(rate=3000.0, wall=3.0)])
        cur = _doc([_sharded_row(rate=3000.0, wall=3.0)])
        comparison = compare_reports(cur, base)
        lines = overhead_markdown(comparison["benchmarks"])
        joined = "\n".join(lines)
        assert "Coordination overhead" in joined
        assert "272" in joined and "50,000" in joined

    def test_overhead_table_empty_without_counters(self):
        assert overhead_markdown([{"name": "engine_dispatch"}]) == []


class TestBaselinePromotion:
    """--update-baseline must not lose rows or per-row keys."""

    def test_only_subset_keeps_unrun_benchmark_rows(self, tmp_path):
        code, first = _run(tmp_path)
        assert code == 0
        extra_row = _sharded_row(rate=3000.0, wall=3.0)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_doc(first["benchmarks"] + [extra_row]))
        )
        code, _ = _run(
            tmp_path,
            extra=["--compare", str(baseline), "--update-baseline"],
            name="second.json",
        )
        assert code == 0
        promoted = json.loads(baseline.read_text())
        validate_report(promoted)
        by_name = {row["name"]: row for row in promoted["benchmarks"]}
        # the benchmark this invocation did not run survives intact,
        # overhead fields and all
        assert by_name["sharded_speedup"] == extra_row

    def test_round_trip_loses_no_keys(self, tmp_path):
        code, first = _run(tmp_path)
        assert code == 0
        (row,) = first["benchmarks"]
        # simulate a baseline recorded by a fuller run: pinned threshold
        # plus overhead counters the quick re-run does not emit
        row["fail_threshold"] = 2.5
        row["verb_round_trips"] = 99
        row["pickle_bytes_per_window"] = 123.4
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(first))
        code, second = _run(
            tmp_path,
            extra=["--compare", str(baseline), "--update-baseline"],
            name="second.json",
        )
        assert code == 0
        promoted = json.loads(baseline.read_text())
        (promoted_row,) = promoted["benchmarks"]
        before = set(row)
        after = set(promoted_row)
        assert before <= after, f"lost keys: {before - after}"
        assert promoted_row["fail_threshold"] == 2.5
        assert promoted_row["verb_round_trips"] == 99
        # fresh measurements win over stale ones
        assert (
            promoted_row["units_per_second"]
            == {r["name"]: r for r in second["benchmarks"]}["engine_dispatch"][
                "units_per_second"
            ]
        )
