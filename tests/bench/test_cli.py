"""Tests for ``python -m repro.bench`` (report emission and --compare).

These drive :func:`repro.bench.__main__.main` directly, running only the
cheapest benchmark at quick size so the suite stays fast.
"""

import json

from repro.bench.__main__ import main
from repro.bench.schema import validate_report

FAST = ["--only", "engine_dispatch", "--quick", "--repeats", "1"]


def _run(tmp_path, extra=(), name="out.json"):
    out = tmp_path / name
    code = main([*FAST, "--out", str(out), *extra])
    doc = json.loads(out.read_text()) if out.exists() else None
    return code, doc


class TestEmission:
    def test_writes_schema_valid_report(self, tmp_path):
        code, doc = _run(tmp_path)
        assert code == 0
        validate_report(doc)
        (row,) = doc["benchmarks"]
        assert row["name"] == "engine_dispatch"
        assert row["work_units"] > 0
        assert row["units_per_second"] > 0

    def test_update_baseline_promotes_the_run(self, tmp_path):
        code, first = _run(tmp_path)
        assert code == 0
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(first))
        code, second = _run(
            tmp_path,
            extra=["--compare", str(baseline), "--update-baseline"],
            name="second.json",
        )
        assert code == 0
        promoted = json.loads(baseline.read_text())
        # the baseline now holds this run, minus the (stale the moment it
        # is promoted) comparison block
        expected = {k: v for k, v in second.items() if k != "comparison"}
        assert promoted == expected

    def test_update_baseline_preserves_pinned_thresholds(self, tmp_path):
        code, first = _run(tmp_path)
        assert code == 0
        (row,) = first["benchmarks"]
        row["fail_threshold"] = 2.5  # hand-pinned in the committed baseline
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(first))
        code, _ = _run(
            tmp_path,
            extra=["--compare", str(baseline), "--update-baseline"],
            name="second.json",
        )
        assert code == 0
        promoted = json.loads(baseline.read_text())
        (promoted_row,) = promoted["benchmarks"]
        assert promoted_row["fail_threshold"] == 2.5


class TestCompare:
    def _baseline(self, tmp_path, rate):
        doc = {
            "schema": 1,
            "python": "3.11.0",
            "platform": "test",
            "quick": True,
            "benchmarks": [
                {
                    "name": "engine_dispatch",
                    "kind": "micro",
                    "work_units": 1000,
                    "wall_seconds": 1000 / rate,
                    "units_per_second": rate,
                    "peak_rss_kb": 1,
                }
            ],
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(doc))
        return path

    def test_comparable_baseline_passes(self, tmp_path):
        baseline = self._baseline(tmp_path, rate=1.0)  # anything beats 1/s
        code, doc = _run(tmp_path, extra=["--compare", str(baseline)])
        assert code == 0
        assert doc["comparison"]["regressions"] == []
        (row,) = doc["comparison"]["benchmarks"]
        assert row["speedup"] > 1.0

    def test_regression_past_threshold_fails(self, tmp_path):
        baseline = self._baseline(tmp_path, rate=1e12)  # unbeatable
        code, doc = _run(tmp_path, extra=["--compare", str(baseline)])
        assert code == 1
        assert doc["comparison"]["regressions"] == ["engine_dispatch"]

    def test_missing_baseline_is_an_error(self, tmp_path):
        code, _ = _run(tmp_path, extra=["--compare", str(tmp_path / "nope.json")])
        assert code == 2

    def test_invalid_baseline_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        code, _ = _run(tmp_path, extra=["--compare", str(bad)])
        assert code == 2

    def test_schema_violating_baseline_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 1, "benchmarks": []}))
        code, _ = _run(tmp_path, extra=["--compare", str(bad)])
        assert code == 2
