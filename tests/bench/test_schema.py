"""Tests for the ``BENCH_core.json`` schema validator."""

import pytest

from repro.bench.schema import (
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    validate_report,
)


def _row(**overrides):
    row = {
        "name": "engine_dispatch",
        "kind": "micro",
        "work_units": 1000,
        "wall_seconds": 0.5,
        "units_per_second": 2000.0,
        "peak_rss_kb": 1024,
    }
    row.update(overrides)
    return row


def _doc(**overrides):
    doc = {
        "schema": BENCH_SCHEMA_VERSION,
        "python": "3.11.0",
        "platform": "test",
        "quick": False,
        "benchmarks": [_row()],
    }
    doc.update(overrides)
    return doc


class TestValidateReport:
    def test_valid_document_passes(self):
        validate_report(_doc())

    def test_non_dict_rejected(self):
        with pytest.raises(BenchSchemaError, match="must be an object"):
            validate_report(["not", "a", "report"])

    @pytest.mark.parametrize(
        "missing", ["schema", "python", "platform", "quick", "benchmarks"]
    )
    def test_missing_top_level_field_rejected(self, missing):
        doc = _doc()
        del doc[missing]
        with pytest.raises(BenchSchemaError, match=missing):
            validate_report(doc)

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(BenchSchemaError, match="unsupported schema"):
            validate_report(_doc(schema=BENCH_SCHEMA_VERSION + 1))

    def test_empty_benchmark_list_rejected(self):
        with pytest.raises(BenchSchemaError, match="empty"):
            validate_report(_doc(benchmarks=[]))

    @pytest.mark.parametrize(
        "missing",
        ["name", "kind", "work_units", "wall_seconds", "units_per_second"],
    )
    def test_missing_row_field_rejected(self, missing):
        row = _row()
        del row[missing]
        with pytest.raises(BenchSchemaError, match=missing):
            validate_report(_doc(benchmarks=[row]))

    def test_bool_not_accepted_where_int_required(self):
        with pytest.raises(BenchSchemaError, match="got bool"):
            validate_report(_doc(benchmarks=[_row(work_units=True)]))

    def test_unknown_kind_rejected(self):
        with pytest.raises(BenchSchemaError, match="kind"):
            validate_report(_doc(benchmarks=[_row(kind="macro")]))

    def test_duplicate_names_rejected(self):
        with pytest.raises(BenchSchemaError, match="duplicate"):
            validate_report(_doc(benchmarks=[_row(), _row()]))

    def test_negative_wall_seconds_rejected(self):
        with pytest.raises(BenchSchemaError, match="wall_seconds"):
            validate_report(_doc(benchmarks=[_row(wall_seconds=-1.0)]))

    def test_negative_work_units_rejected(self):
        with pytest.raises(BenchSchemaError, match="work_units"):
            validate_report(_doc(benchmarks=[_row(work_units=-1)]))

    def test_malformed_e2e_digest_rejected(self):
        row = _row(name="smoke_sweep", kind="e2e", results_digest="short")
        with pytest.raises(BenchSchemaError, match="results_digest"):
            validate_report(_doc(benchmarks=[row]))

    def test_wellformed_e2e_digest_passes(self):
        row = _row(name="smoke_sweep", kind="e2e", results_digest="f" * 64)
        validate_report(_doc(benchmarks=[row]))
