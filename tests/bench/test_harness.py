"""Tests for the benchmark harness: measurement, reports, comparison."""

import pytest

from repro.bench.harness import (
    BenchRecord,
    BenchReport,
    compare_reports,
    comparison_lines,
    measure,
    run_benchmarks,
)
from repro.bench.schema import BENCH_SCHEMA_VERSION, validate_report


def _counting_bench(calls, work_units=100):
    def fn():
        calls.append(1)
        return work_units, {"detail": 7}

    return fn


class TestMeasure:
    def test_record_fields(self):
        calls = []
        rec = measure("x", "micro", _counting_bench(calls))
        assert rec.name == "x"
        assert rec.kind == "micro"
        assert rec.work_units == 100
        assert rec.extra["detail"] == 7
        assert rec.extra["repeats"] == 1
        assert rec.wall_seconds >= 0
        assert rec.peak_rss_kb > 0
        assert len(calls) == 1

    def test_repeats_rerun_the_callable(self):
        calls = []
        rec = measure("x", "micro", _counting_bench(calls), repeats=4)
        assert len(calls) == 4
        assert rec.extra["repeats"] == 4

    def test_non_positive_repeats_rejected(self):
        with pytest.raises(ValueError):
            measure("x", "micro", _counting_bench([]), repeats=0)

    def test_rate(self):
        assert BenchRecord("x", "micro", 100, 2.0, 1).rate == 50.0
        assert BenchRecord("x", "micro", 100, 0.0, 1).rate == 0.0


class TestReport:
    def test_to_dict_is_schema_valid(self):
        report = BenchReport(
            records=[measure("x", "micro", _counting_bench([]))], quick=True
        )
        doc = report.to_dict()
        assert doc["schema"] == BENCH_SCHEMA_VERSION
        validate_report(doc)

    def test_record_lookup_by_name(self):
        rec = measure("x", "micro", _counting_bench([]))
        report = BenchReport(records=[rec], quick=False)
        assert report.record("x") is rec
        assert report.record("missing") is None

    def test_unknown_only_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_benchmarks(only=["not_a_benchmark"])


def _doc(rates, quick=False, digest="a" * 64, points=8):
    """A minimal schema-valid report with the given name->rate mapping."""
    rows = []
    for name, rate in rates.items():
        row = {
            "name": name,
            "kind": "e2e" if name == "smoke_sweep" else "micro",
            "work_units": 1000,
            "wall_seconds": 1000 / rate,
            "units_per_second": rate,
            "peak_rss_kb": 1,
        }
        if name == "smoke_sweep":
            row["results_digest"] = digest
            row["points"] = points
        rows.append(row)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "python": "3.11.0",
        "platform": "test",
        "quick": quick,
        "benchmarks": rows,
    }


class TestCompareReports:
    def test_speedup_computed_per_benchmark(self):
        cmp = compare_reports(_doc({"a": 200.0}), _doc({"a": 100.0}))
        (row,) = cmp["benchmarks"]
        assert row["name"] == "a"
        assert row["speedup"] == pytest.approx(2.0)
        assert cmp["regressions"] == []

    def test_regression_past_threshold_flagged(self):
        cmp = compare_reports(_doc({"a": 40.0}), _doc({"a": 100.0}))
        assert cmp["regressions"] == ["a"]  # 2.5x slower > default 1.3x

    def test_slower_within_threshold_not_flagged(self):
        cmp = compare_reports(_doc({"a": 80.0}), _doc({"a": 100.0}))
        assert cmp["regressions"] == []  # 1.25x slower, under the 1.3x gate

    def test_custom_threshold(self):
        cmp = compare_reports(
            _doc({"a": 80.0}), _doc({"a": 100.0}), fail_threshold=1.2
        )
        assert cmp["regressions"] == ["a"]

    def test_baseline_row_threshold_overrides_the_default(self):
        base = _doc({"a": 100.0})
        base["benchmarks"][0]["fail_threshold"] = 2.0
        # 1.67x slower: past the 1.3x default, within the row's 2x pin
        cmp = compare_reports(_doc({"a": 60.0}), base)
        assert cmp["regressions"] == []
        (row,) = cmp["benchmarks"]
        assert row["fail_threshold"] == 2.0

    def test_row_threshold_only_shields_its_own_benchmark(self):
        base = _doc({"a": 100.0, "b": 100.0})
        base["benchmarks"][0]["fail_threshold"] = 2.0
        cmp = compare_reports(_doc({"a": 60.0, "b": 60.0}), base)
        assert cmp["regressions"] == ["b"]

    def test_benchmark_missing_from_baseline_ignored(self):
        cmp = compare_reports(_doc({"a": 100.0, "b": 1.0}), _doc({"a": 100.0}))
        assert [row["name"] for row in cmp["benchmarks"]] == ["a"]
        assert cmp["regressions"] == []

    def test_digest_match_detected(self):
        cur = _doc({"smoke_sweep": 100.0}, digest="a" * 64)
        assert compare_reports(cur, _doc({"smoke_sweep": 90.0}, digest="a" * 64))[
            "digest_match"
        ]
        assert (
            compare_reports(cur, _doc({"smoke_sweep": 90.0}, digest="b" * 64))[
                "digest_match"
            ]
            is False
        )

    def test_digest_not_compared_across_different_grids(self):
        cur = _doc({"smoke_sweep": 100.0}, digest="a" * 64, points=8)
        base = _doc({"smoke_sweep": 100.0}, digest="b" * 64, points=4)
        assert compare_reports(cur, base)["digest_match"] is None

    def test_digest_not_compared_across_quick_mismatch(self):
        cur = _doc({"smoke_sweep": 100.0}, digest="a" * 64, quick=True)
        base = _doc({"smoke_sweep": 100.0}, digest="b" * 64, quick=False)
        assert compare_reports(cur, base)["digest_match"] is None

    def test_rendering_mentions_regressions_and_digest(self):
        cmp = compare_reports(
            _doc({"smoke_sweep": 40.0}, digest="a" * 64),
            _doc({"smoke_sweep": 100.0}, digest="b" * 64),
        )
        text = "\n".join(comparison_lines(cmp))
        assert "REGRESSIONS" in text
        assert "smoke_sweep" in text
        assert "DIGEST MISMATCH" in text
