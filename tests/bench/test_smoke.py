"""Tests for the smoke sweep's grid shape and result-digest helpers."""

from repro.bench.smoke import (
    _DIGEST_EXCLUDED_FIELDS,
    digestable_payload,
    results_digest,
    smoke_points,
)


class TestGrid:
    def test_full_grid_covers_workloads_and_variants(self):
        points = smoke_points(quick=False)
        assert len(points) == 8
        assert all(variant in ("baseline", "full") for _, variant in points)

    def test_quick_grid_is_a_prefix_of_the_full_grid(self):
        quick = smoke_points(quick=True)
        assert len(quick) == 4
        assert quick == smoke_points(quick=False)[: len(quick)]


class TestDigest:
    def test_effort_fields_are_stripped(self):
        payload = {field: 1 for field in _DIGEST_EXCLUDED_FIELDS}
        payload["cycles"] = 123
        assert digestable_payload(payload) == {"cycles": 123}

    def test_digest_stable_for_equal_payloads(self):
        a = [{"cycles": 1, "stats": {"x": 2}}]
        b = [{"stats": {"x": 2}, "cycles": 1}]  # key order is irrelevant
        assert results_digest(a) == results_digest(b)

    def test_digest_ignores_excluded_fields(self):
        base = [{"cycles": 1}]
        noisy = [{"cycles": 1, "events_processed": 999, "schema": 3}]
        assert results_digest(base) == results_digest(noisy)

    def test_digest_sensitive_to_behaviour(self):
        assert results_digest([{"cycles": 1}]) != results_digest([{"cycles": 2}])

    def test_digest_sensitive_to_run_order(self):
        a = [{"cycles": 1}, {"cycles": 2}]
        assert results_digest(a) != results_digest(list(reversed(a)))

    def test_digest_is_sha256_hex(self):
        digest = results_digest([{"cycles": 1}])
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex
