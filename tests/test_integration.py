"""Cross-module integration invariants.

These run whole workloads through whole systems and check conservation
properties that no single unit test can see: every request is answered,
every flit is accounted for, trimming/stitching never lose data, and
NetCrafter variants agree with the baseline on *what* was computed (the
same memory operations complete) while differing only in timing.
"""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.workloads.base import Scale
from repro.workloads.registry import all_workload_names, get_workload

SCALE = Scale.tiny()

CONFIG_MATRIX = [
    ("baseline", None, NetCrafterConfig.baseline()),
    ("stitch", None, NetCrafterConfig.stitching_only()),
    ("stitch_sfp", None, NetCrafterConfig.stitching_with_selective_pooling(32)),
    ("stitch_fp", None, NetCrafterConfig.stitching_with_pooling(32)),
    ("trim", None, NetCrafterConfig.trimming_only()),
    ("seq", None, NetCrafterConfig.sequencing_only()),
    ("full", None, NetCrafterConfig.full()),
    ("full_rr", None, NetCrafterConfig.full().with_overrides(scheduler="rr")),
    ("sector", SystemConfig.sector_cache_baseline(), NetCrafterConfig.baseline()),
    ("ideal", SystemConfig.ideal(), NetCrafterConfig.baseline()),
    ("flit8", SystemConfig.default().with_overrides(flit_size=8), NetCrafterConfig.full()),
]


def _run(workload_name, system_cfg, nc_cfg, seed=0):
    system_cfg = system_cfg or SystemConfig.default()
    trace = get_workload(workload_name).build(
        n_gpus=system_cfg.n_gpus, scale=SCALE, seed=seed
    )
    system = MultiGpuSystem(config=system_cfg, netcrafter=nc_cfg, seed=seed)
    system.load(trace)
    result = system.run()
    return result, system, trace


@pytest.mark.parametrize("label,sys_cfg,nc_cfg", CONFIG_MATRIX)
def test_all_work_completes_under_every_config(label, sys_cfg, nc_cfg):
    result, system, trace = _run("gups", sys_cfg, nc_cfg)
    assert result.stats.mem_ops == trace.total_accesses()
    assert result.stats.finish_cycle is not None
    for gpu in system.gpus.values():
        assert gpu.rdma.outstanding_writes == 0
        assert gpu.gmmu.walkers_busy == 0
        assert gpu.gmmu.walks_queued == 0
    for switch in system.topology.switches.values():
        assert switch.reassembly.pending_packets() == 0


@pytest.mark.parametrize("label,sys_cfg,nc_cfg", CONFIG_MATRIX)
def test_flit_conservation_at_egress(label, sys_cfg, nc_cfg):
    """Every flit entering a controller leaves as a parent or stitched."""
    result, system, _ = _run("spmv", sys_cfg, nc_cfg)
    assert result.flits_entered == result.inter_flits_sent + result.flits_absorbed
    for controller in system.topology.controllers:
        assert len(controller.queue) == 0
        assert not controller._pending


@pytest.mark.parametrize("label,sys_cfg,nc_cfg", CONFIG_MATRIX)
def test_analytic_traffic_verification(label, sys_cfg, nc_cfg):
    """Controller packet counts match the memory system's predictions."""
    from repro.stats.verification import verify_traffic

    result, system, _ = _run("mvt", sys_cfg, nc_cfg)
    assert verify_traffic(system, result) == []


@pytest.mark.parametrize("workload", all_workload_names())
def test_every_workload_completes_under_full_netcrafter(workload):
    result, _system, trace = _run(workload, None, NetCrafterConfig.full())
    assert result.stats.mem_ops == trace.total_accesses()
    assert result.cycles > 0


@pytest.mark.parametrize("workload", ["gups", "mm2", "vgg16"])
def test_netcrafter_preserves_work_not_timing(workload):
    """Functional equivalence: the same ops, reads, writes and pages are
    processed under baseline and NetCrafter; only cycles differ."""
    base, _, _ = _run(workload, None, NetCrafterConfig.baseline())
    crafted, _, _ = _run(workload, None, NetCrafterConfig.full())
    assert base.stats.mem_ops == crafted.stats.mem_ops
    assert base.stats.reads == crafted.stats.reads
    assert base.stats.writes == crafted.stats.writes
    assert base.stats.kernel_count == crafted.stats.kernel_count


def test_trimming_reduces_wire_bytes_never_work():
    base, _, _ = _run("gups", None, NetCrafterConfig.baseline())
    trim, _, _ = _run("gups", None, NetCrafterConfig.trimming_only())
    assert trim.inter_wire_bytes < base.inter_wire_bytes
    assert trim.stats.mem_ops == base.stats.mem_ops


def test_stitching_reduces_flits_never_bytes_required():
    base, _, _ = _run("spmv", None, NetCrafterConfig.baseline())
    stitched, _, _ = _run("spmv", None, NetCrafterConfig.stitching_only())
    assert stitched.inter_flits_sent < base.inter_flits_sent
    # useful (payload) bytes cannot shrink below what stitching saves in
    # padding: required traffic is conserved
    assert stitched.inter_useful_bytes >= base.inter_useful_bytes - 1


def test_ideal_network_is_never_slower():
    for workload in ("gups", "mis", "bs"):
        base, _, _ = _run(workload, None, NetCrafterConfig.baseline())
        ideal, _, _ = _run(workload, SystemConfig.ideal(), NetCrafterConfig.baseline())
        assert ideal.cycles <= base.cycles * 1.02


def test_deterministic_across_repeats():
    runs = [
        _run("mvt", None, NetCrafterConfig.full(), seed=5)[0].cycles
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def test_rr_scheduler_is_a_valid_alternative():
    """The paper-literal RR scheduler completes identically much work."""
    age, _, trace = _run("atax", None, NetCrafterConfig.full())
    rr, _, _ = _run(
        "atax", None, NetCrafterConfig.full().with_overrides(scheduler="rr")
    )
    assert rr.stats.mem_ops == age.stats.mem_ops == trace.total_accesses()


def test_three_cluster_topology_runs():
    cfg = SystemConfig.default().with_overrides(n_clusters=3, gpus_per_cluster=2)
    result, system, trace = _run("gups", cfg, NetCrafterConfig.full())
    assert result.stats.mem_ops == trace.total_accesses()
    assert result.inter_links == 6


def test_eight_byte_flits_conserve_packets():
    cfg = SystemConfig.default().with_overrides(flit_size=8)
    result, system, trace = _run("gups", cfg, NetCrafterConfig.stitching_only())
    assert result.stats.mem_ops == trace.total_accesses()
    assert result.flits_entered == result.inter_flits_sent + result.flits_absorbed
