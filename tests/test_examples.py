"""Smoke tests that the shipped examples stay runnable."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "custom_workload",
        "topology_explorer",
        "netcrafter_ablation",
        "fault_injection",
    ],
)
def test_example_imports(name):
    module = _load(name)
    assert hasattr(module, "main")


def test_custom_workload_builds_valid_trace():
    module = _load("custom_workload")
    trace = module.build_stencil(4)
    trace.validate()
    assert trace.total_accesses() > 0
    # halo reads are small (trim-eligible) and cross GPUs
    halos = [
        acc
        for kernel in trace.kernels
        for cta in kernel.ctas
        for wf in cta.wavefronts
        for acc in wf.accesses
        if acc.nbytes == 8
    ]
    assert halos


def test_custom_workload_main_runs(capsys):
    module = _load("custom_workload")
    module.main()
    out = capsys.readouterr().out
    assert "NetCrafter speedup" in out
