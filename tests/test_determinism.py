"""System-level determinism: a run is a pure function of its configuration.

The simulator promises that a (workload, configuration, seed) point
produces a byte-identical :class:`RunResult` no matter what ran before
it in the process and no matter whether it ran inline or inside a
``run_many`` worker process.  That promise is what makes the persistent
result cache, the parallel fan-out, and the benchmark suite's result
digest sound — so it gets its own golden tests here, run over a
miniature version of the benchmark smoke grid.

Historically the promise did not hold: ``pid``/``fid`` came from
module-global ``itertools.count()`` streams, so the second run of a
process saw IDs continuing where the first left off and anything keyed
on raw IDs (trace sampling, trace artifacts) silently differed from a
fresh-process run of the same point.
"""

import json

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.experiments.runner import ExperimentPoint, run_many
from repro.gpu.system import MultiGpuSystem
from repro.network.ids import FLIT_IDS, PACKET_IDS
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

SCALE = Scale.tiny()

#: two access patterns under the baseline and the full feature set — the
#: shape of the benchmark smoke grid, shrunk to unit-test size
GRID = [
    ("gups", NetCrafterConfig.baseline()),
    ("gups", NetCrafterConfig.full()),
    ("mt", NetCrafterConfig.baseline()),
    ("mt", NetCrafterConfig.full()),
]


def _run_direct(workload, netcrafter, seed=0):
    """Simulate one point inline, bypassing every cache layer."""
    config = SystemConfig.default()
    trace = get_workload(workload).build(
        n_gpus=config.n_gpus, scale=SCALE, seed=seed
    )
    system = MultiGpuSystem(config=config, netcrafter=netcrafter, seed=seed)
    system.load(trace)
    return system.run()


def _payload(result):
    """The byte string whose equality defines "the same result"."""
    return json.dumps(result.to_dict(), sort_keys=True)


class TestInProcessRepeatability:
    def test_grid_repeat_is_bit_identical(self):
        first = [_payload(_run_direct(w, nc)) for w, nc in GRID]
        second = [_payload(_run_direct(w, nc)) for w, nc in GRID]
        assert first == second

    def test_result_independent_of_what_ran_before(self):
        """A point's result must not depend on process history."""
        w, nc = GRID[0]
        fresh = _payload(_run_direct(w, nc))
        for other_w, other_nc in GRID[1:]:
            _run_direct(other_w, other_nc)  # perturb module-global state
        assert _payload(_run_direct(w, nc)) == fresh

    def test_id_streams_restart_for_every_run(self):
        """Each run draws pids/fids starting at zero.

        Regression test for the module-global ID counters: after a full
        simulation has allocated thousands of IDs, constructing the next
        system must rewind both streams, so an in-process repeat and a
        fresh worker process number their packets identically.
        """
        w, nc = GRID[0]
        _run_direct(w, nc)
        assert PACKET_IDS.peek() > 0
        assert FLIT_IDS.peek() > 0
        MultiGpuSystem(config=SystemConfig.default(), netcrafter=nc, seed=0)
        assert PACKET_IDS.peek() == 0
        assert FLIT_IDS.peek() == 0

    def test_back_to_back_runs_allocate_identical_id_ranges(self):
        w, nc = GRID[0]
        _run_direct(w, nc)
        first = (PACKET_IDS.peek(), FLIT_IDS.peek())
        _run_direct(w, nc)
        assert (PACKET_IDS.peek(), FLIT_IDS.peek()) == first


class TestWorkerProcessEquivalence:
    def test_run_many_two_jobs_matches_inline_runs(self):
        """Fresh worker processes reproduce inline results byte for byte."""
        inline = [_payload(_run_direct(w, nc)) for w, nc in GRID]
        points = [
            ExperimentPoint(workload=w, netcrafter=nc, scale=SCALE)
            for w, nc in GRID
        ]
        fanned = run_many(points, jobs=2, use_cache=False)
        assert [_payload(r) for r in fanned] == inline
