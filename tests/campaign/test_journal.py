"""Tests for the durable campaign journal and endpoint discovery."""

import json
import os

from repro.campaign.journal import (
    JOURNAL_FORMAT_VERSION,
    CampaignJournal,
    default_journal_dir,
)


def _record(cid="abc123", **extra):
    record = {
        "id": cid,
        "name": "nightly",
        "priority": 5,
        "submitted_at": 100.0,
        "state": "active",
        "points": [{"fingerprint": "f" * 64, "label": "gups/seed0", "descriptor": None}],
        "done": [],
    }
    record.update(extra)
    return record


class TestJournal:
    def test_save_load_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.save(_record())
        loaded = journal.load("abc123")
        assert loaded["name"] == "nightly"
        assert loaded["format"] == JOURNAL_FORMAT_VERSION
        assert loaded["points"][0]["label"] == "gups/seed0"

    def test_missing_record_is_none(self, tmp_path):
        assert CampaignJournal(tmp_path).load("nope") is None

    def test_corrupt_record_reads_as_absent(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.save(_record())
        journal._path("abc123").write_text("{torn mid-")
        assert journal.load("abc123") is None
        assert journal.load_all() == []

    def test_format_mismatch_reads_as_absent(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.save(_record())
        path = journal._path("abc123")
        record = json.loads(path.read_text())
        record["format"] = 999
        path.write_text(json.dumps(record))
        assert journal.load("abc123") is None

    def test_load_all_ordered_by_submission(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.save(_record("late", submitted_at=200.0))
        journal.save(_record("early", submitted_at=50.0))
        assert [r["id"] for r in journal.load_all()] == ["early", "late"]

    def test_enum_descriptors_journal_by_value(self, tmp_path):
        """Point descriptors carry config enums (PriorityMode); the save
        path must flatten them instead of crashing."""
        from repro.experiments.cache import point_descriptor
        from repro.experiments.runner import ExperimentPoint
        from repro.workloads.base import Scale

        point = ExperimentPoint(workload="gups", scale=Scale.tiny()).normalized()
        descriptor = point_descriptor(point)
        journal = CampaignJournal(tmp_path)
        journal.save(
            _record(points=[{"fingerprint": "a" * 64, "label": "x", "descriptor": descriptor}])
        )
        loaded = journal.load("abc123")
        mode = loaded["points"][0]["descriptor"]["netcrafter"]["priority_mode"]
        assert mode == "none"

    def test_orphan_tmp_swept_on_open(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.save(_record())
        (tmp_path / "campaigns" / "torn.json.xyz.tmp").write_text("{")
        reopened = CampaignJournal(tmp_path)
        assert reopened.swept_orphans == 1
        assert reopened.load("abc123") is not None


class TestEndpoint:
    def test_publish_read_clear(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        assert journal.read_endpoint() is None
        journal.publish_endpoint("127.0.0.1", 4242)
        endpoint = journal.read_endpoint()
        assert endpoint["host"] == "127.0.0.1"
        assert endpoint["port"] == 4242
        assert endpoint["pid"] == os.getpid()
        journal.clear_endpoint()
        assert journal.read_endpoint() is None

    def test_clear_is_idempotent(self, tmp_path):
        CampaignJournal(tmp_path).clear_endpoint()


def test_default_journal_dir_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_CAMPAIGN_DIR", "/tmp/camps")
    assert default_journal_dir() == "/tmp/camps"
    monkeypatch.delenv("REPRO_CAMPAIGN_DIR")
    assert default_journal_dir() == ".repro_campaigns"
