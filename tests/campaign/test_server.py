"""Tests for the campaign server: dedupe, streaming, durability.

The server is exercised in-process with an injected ``execute_fn`` (no
real simulation, no worker processes), so these tests cover scheduling,
deduplication, journaling and the NDJSON protocol — the actual
simulation path is covered by the runner/bench suites.
"""

import asyncio
import json
import threading
import time

from repro.campaign.server import CampaignServer
from repro.campaign.spec import parse_campaign
from repro.stats.collectors import RunStats
from repro.stats.report import RunResult


def _spec(workloads=("gups", "mt"), priority=0, name="t"):
    return parse_campaign(
        {
            "name": name,
            "priority": priority,
            "grid": {
                "workloads": list(workloads),
                "variants": ["baseline", "full"],
                "scale": "tiny",
            },
        }
    )


class Recorder:
    """An ``execute_fn`` double: counts executions, optionally fails/stalls."""

    def __init__(self, fail_workloads=(), delay=0.0):
        self.calls = []
        self.lock = threading.Lock()
        self.fail_workloads = set(fail_workloads)
        self.delay = delay

    def __call__(self, point):
        with self.lock:
            self.calls.append(point.workload)
        if point.workload in self.fail_workloads:
            raise RuntimeError(f"injected failure for {point.workload}")
        if self.delay:
            time.sleep(self.delay)
        result = RunResult(
            workload=point.workload,
            config_label="test",
            cycles=1000 + len(point.workload),
            stats=RunStats(),
        )
        return result, 0.001


async def _wait_complete(server, cid, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not server.campaigns[cid].complete:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"campaign {cid} incomplete: {server.campaigns[cid].progress()}"
            )
        await asyncio.sleep(0.01)


async def _request(server, payload):
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    line = await reader.readline()
    writer.close()
    await writer.wait_closed()
    return json.loads(line)


def _make_server(tmp_path, execute_fn, jobs=2):
    return CampaignServer(
        cache_dir=str(tmp_path / "cache"),
        journal_dir=str(tmp_path / "journal"),
        jobs=jobs,
        execute_fn=execute_fn,
    )


class TestServing:
    def test_submit_executes_each_point_once_then_serves(self, tmp_path):
        async def scenario():
            recorder = Recorder()
            server = _make_server(tmp_path, recorder)
            await server.start()
            try:
                spec = _spec()
                summary = server.submit(spec)
                assert summary["points"] == 4 and summary["pending"] == 4
                await _wait_complete(server, spec.campaign_id)
                assert sorted(recorder.calls) == ["gups", "gups", "mt", "mt"]
                assert server.metrics.get("points_executed") == 4

                # content-addressed resubmission: zero new executions
                again = server.submit(_spec(name="renamed", priority=9))
                assert again["resubmitted"] and again["complete"]
                assert len(recorder.calls) == 4
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_overlapping_campaigns_share_executions(self, tmp_path):
        async def scenario():
            recorder = Recorder()
            server = _make_server(tmp_path, recorder)
            await server.start()
            try:
                a = _spec(workloads=("gups",), name="a")
                b = _spec(workloads=("gups", "mt"), name="b")
                # both submitted before the dispatcher runs: the shared
                # gups point must execute exactly once
                server.submit(a)
                server.submit(b)
                await _wait_complete(server, a.campaign_id)
                await _wait_complete(server, b.campaign_id)
                assert recorder.calls.count("gups") == 2  # baseline + full
                assert len(recorder.calls) == 4  # not 6
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_fetch_serves_results_with_digest(self, tmp_path):
        async def scenario():
            recorder = Recorder()
            server = _make_server(tmp_path, recorder)
            await server.start()
            try:
                spec = _spec()
                cid = spec.campaign_id
                server.submit(spec)

                # fetch before completion is a structured error
                early = await _request(server, {"op": "fetch", "campaign": cid})
                if not early["ok"]:
                    assert early["error"] == "campaign incomplete"

                await _wait_complete(server, cid)
                fetched = await _request(server, {"op": "fetch", "campaign": cid})
                assert fetched["ok"] and fetched["points"] == 4
                assert len(fetched["digest"]) == 64
                assert [r["workload"] for r in fetched["results"]] == [
                    "gups",
                    "gups",
                    "mt",
                    "mt",
                ]
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_unknown_ops_and_campaigns_are_errors(self, tmp_path):
        async def scenario():
            server = _make_server(tmp_path, Recorder())
            await server.start()
            try:
                assert not (await _request(server, {"op": "bogus"}))["ok"]
                assert not (
                    await _request(server, {"op": "fetch", "campaign": "nope"})
                )["ok"]
                assert not (
                    await _request(server, {"op": "status", "campaign": "nope"})
                )["ok"]
                ping = await _request(server, {"op": "ping"})
                assert ping["ok"] and ping["campaigns"] == 0
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_failed_point_reports_and_campaign_stays_incomplete(self, tmp_path):
        async def scenario():
            recorder = Recorder(fail_workloads={"mt"})
            server = _make_server(tmp_path, recorder)
            await server.start()
            try:
                spec = _spec()
                cid = spec.campaign_id
                server.submit(spec)
                deadline = time.monotonic() + 10.0
                campaign = server.campaigns[cid]
                while (
                    server.metrics.get("points_failed") < 2
                    or len(campaign.done) < 2
                ):
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.01)
                status = await _request(server, {"op": "status", "campaign": cid})
                assert status["ok"] and not status["complete"]
                assert status["done"] == 2  # the gups points still served
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestPriority:
    def test_higher_priority_campaign_dispatches_first(self, tmp_path):
        async def scenario():
            recorder = Recorder()
            server = _make_server(tmp_path, recorder, jobs=1)
            await server.start()
            try:
                low = _spec(workloads=("gups",), priority=1, name="low")
                high = _spec(workloads=("mt",), priority=90, name="high")
                # submitted low-first, before the dispatcher runs once
                server.submit(low)
                server.submit(high)
                await _wait_complete(server, low.campaign_id)
                await _wait_complete(server, high.campaign_id)
                # the high-priority campaign's points all ran first
                assert recorder.calls[:2] == ["mt", "mt"]
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestDurability:
    def test_restart_re_serves_without_execution(self, tmp_path):
        async def scenario():
            recorder = Recorder()
            server = _make_server(tmp_path, recorder)
            await server.start()
            spec = _spec()
            cid = spec.campaign_id
            server.submit(spec)
            await _wait_complete(server, cid)
            await server.stop()
            assert len(recorder.calls) == 4

            # a fresh server over the same dirs recovers the campaign
            # from the journal and serves it from cache — zero executions
            revived = _make_server(tmp_path, recorder)
            await revived.start()
            try:
                assert revived.metrics.get("campaigns_recovered") == 1
                assert revived.campaigns[cid].complete
                again = revived.submit(_spec())
                assert again["resubmitted"] and again["complete"]
                fetched = await _request(revived, {"op": "fetch", "campaign": cid})
                assert fetched["ok"] and fetched["points"] == 4
                assert len(recorder.calls) == 4
            finally:
                await revived.stop()

        asyncio.run(scenario())

    def test_restart_re_executes_pruned_points(self, tmp_path):
        async def scenario():
            recorder = Recorder()
            server = _make_server(tmp_path, recorder)
            await server.start()
            spec = _spec(workloads=("gups",))
            cid = spec.campaign_id
            server.submit(spec)
            await _wait_complete(server, cid)
            await server.stop()

            # prune one cached result behind the journal's back
            victim = spec.fingerprints[0]
            server.cache.path_for(victim).unlink()

            revived = _make_server(tmp_path, recorder)
            await revived.start()
            try:
                assert revived.metrics.get("points_recovered") == 1
                await _wait_complete(revived, cid)
                assert len(recorder.calls) == 3  # 2 original + 1 re-run
            finally:
                await revived.stop()

        asyncio.run(scenario())

    def test_fetch_detects_pruning_and_re_executes(self, tmp_path):
        async def scenario():
            recorder = Recorder()
            server = _make_server(tmp_path, recorder)
            await server.start()
            try:
                spec = _spec(workloads=("gups",))
                cid = spec.campaign_id
                server.submit(spec)
                await _wait_complete(server, cid)
                server.cache.path_for(spec.fingerprints[1]).unlink()

                pruned = await _request(server, {"op": "fetch", "campaign": cid})
                assert not pruned["ok"] and "pruned" in pruned["error"]
                await _wait_complete(server, cid)
                fetched = await _request(server, {"op": "fetch", "campaign": cid})
                assert fetched["ok"] and fetched["points"] == 2
                assert len(recorder.calls) == 3
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_endpoint_published_while_serving(self, tmp_path):
        async def scenario():
            server = _make_server(tmp_path, Recorder())
            await server.start()
            endpoint = server.journal.read_endpoint()
            assert endpoint["port"] == server.port and server.port > 0
            await server.stop()
            assert server.journal.read_endpoint() is None

        asyncio.run(scenario())


class TestWatch:
    def test_watch_streams_point_events_until_complete(self, tmp_path):
        async def scenario():
            recorder = Recorder(delay=0.1)
            server = _make_server(tmp_path, recorder, jobs=1)
            await server.start()
            try:
                spec = _spec(workloads=("gups",))
                cid = spec.campaign_id
                server.submit(spec)

                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    json.dumps({"op": "watch", "campaign": cid}).encode() + b"\n"
                )
                await writer.drain()
                events = []
                while True:
                    line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                    if not line:
                        break
                    events.append(json.loads(line))
                    last = events[-1]
                    if last.get("event") == "campaign" and last.get("state") == "complete":
                        break
                writer.close()
                await writer.wait_closed()

                assert events[0]["event"] == "snapshot" and events[0]["ok"]
                served = [e for e in events if e.get("state") == "served"]
                assert [e["source"] for e in served] == ["executed", "executed"]
                assert all(e["wall_seconds"] > 0 for e in served)
                final = events[-1]
                assert final["state"] == "complete"
                assert final["counters"]["points_executed"] == 2
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_watch_completed_campaign_replays_completion(self, tmp_path):
        async def scenario():
            server = _make_server(tmp_path, Recorder())
            await server.start()
            try:
                spec = _spec(workloads=("gups",))
                cid = spec.campaign_id
                server.submit(spec)
                await _wait_complete(server, cid)

                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    json.dumps({"op": "watch", "campaign": cid}).encode() + b"\n"
                )
                await writer.drain()
                snapshot = json.loads(await reader.readline())
                complete = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                assert snapshot["event"] == "snapshot" and snapshot["complete"]
                assert complete["state"] == "complete"
            finally:
                await server.stop()

        asyncio.run(scenario())
