"""Tests for campaign parsing, grid expansion, and content addressing."""

import json

import pytest

from repro.campaign.spec import (
    CampaignSpecError,
    campaign_id,
    load_campaign,
    parse_campaign,
    point_from_descriptor,
)
from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.experiments.cache import fingerprint, point_descriptor
from repro.experiments.runner import ExperimentPoint
from repro.workloads.base import Scale


def _quick_grid(**extra):
    data = {
        "name": "quick",
        "grid": {
            "workloads": ["gups", "mt"],
            "variants": ["baseline", "full"],
            "scale": "small",
            "seeds": [0],
        },
    }
    data.update(extra)
    return data


class TestGridExpansion:
    def test_workload_major_order_matches_smoke_grid(self):
        """A campaign reproducing the quick smoke sweep must expand in
        the smoke grid's order — that is what makes its fetch digest
        comparable against SMOKE_digest.json."""
        from repro.bench.smoke import smoke_points

        spec = parse_campaign(_quick_grid())
        got = [(p.workload, "full" if p.netcrafter.any_feature_enabled else "baseline") for p in spec.points]
        assert got == smoke_points(quick=True)

    def test_expansion_matches_explicit_points(self):
        spec = parse_campaign(_quick_grid())
        expected = [
            ExperimentPoint(
                workload=w,
                netcrafter=(
                    NetCrafterConfig.baseline() if v == "baseline" else NetCrafterConfig.full()
                ),
                scale=Scale.small(),
                seed=0,
            ).normalized()
            for w, v in (("gups", "baseline"), ("gups", "full"), ("mt", "baseline"), ("mt", "full"))
        ]
        assert [fingerprint(p) for p in spec.points] == [fingerprint(p) for p in expected]
        assert spec.fingerprints == tuple(fingerprint(p) for p in spec.points)

    def test_grid_defaults(self):
        spec = parse_campaign({"grid": {"workloads": ["gups"]}}, default_name="d")
        assert spec.name == "d"
        assert spec.priority == 0
        assert len(spec.points) == 1
        point = spec.points[0]
        assert point.seed == 0
        assert point.scale == Scale.small()
        assert not point.netcrafter.any_feature_enabled

    def test_topology_and_system_block(self):
        spec = parse_campaign(
            {
                "grid": {
                    "workloads": ["gups"],
                    "topologies": ["ring", "star"],
                    "system": {"n_clusters": 4, "gpus_per_cluster": 1},
                }
            }
        )
        assert [p.system.inter_topology for p in spec.points] == ["ring", "star"]
        assert all(p.system.n_clusters == 4 for p in spec.points)

    def test_faults_block_builds_fault_config(self):
        spec = parse_campaign(
            {"points": [{"workload": "gups", "faults": {"ber": 2e-5, "seed": 3}}]}
        )
        faults = spec.points[0].system.faults
        assert faults.ber == 2e-5 and faults.seed == 3

    def test_variant_override_dict(self):
        spec = parse_campaign(
            {"points": [{"workload": "gups", "variant": {"base": "full", "pooling_window": 64}}]}
        )
        nc = spec.points[0].netcrafter
        assert nc.any_feature_enabled and nc.pooling_window == 64

    def test_duplicate_points_collapse_to_first(self):
        spec = parse_campaign(
            {
                "grid": {"workloads": ["gups"]},
                "points": [{"workload": "gups"}, {"workload": "mt"}],
            }
        )
        assert [p.workload for p in spec.points] == ["gups", "mt"]
        assert len(spec.fingerprints) == 2


class TestValidation:
    @pytest.mark.parametrize(
        "data, match",
        [
            ({"grid": {"workloads": []}}, "non-empty"),
            ({"grid": {"workloads": ["nope"]}}, "unknown workload"),
            ({"grid": {"workloads": ["gups"], "bogus": 1}}, "unknown grid keys"),
            ({"grid": {"workloads": ["gups"], "scale": "huge"}}, "unknown scale"),
            ({"grid": {"workloads": ["gups"], "variants": ["fancy"]}}, "unknown variant"),
            ({"points": [{"workload": "gups", "bogus": 1}]}, "unknown point keys"),
            ({"points": [{"variant": "full"}]}, "needs a workload"),
            ({"grid": {"workloads": ["gups"]}, "priority": 101}, "priority"),
            ({"grid": {"workloads": ["gups"]}, "priority": "high"}, "priority"),
            ({"grid": {"workloads": ["gups"]}, "name": ""}, "name"),
            ({"grid": {"workloads": ["gups"]}, "junk": 1}, "unknown keys"),
            ({}, "zero points"),
            (
                {
                    "grid": {
                        "workloads": ["gups"],
                        "topologies": ["ring"],
                        "system": {"inter_topology": "star"},
                    }
                },
                "conflicts",
            ),
        ],
    )
    def test_bad_campaigns_fail_loudly(self, data, match):
        with pytest.raises(CampaignSpecError, match=match):
            parse_campaign(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(CampaignSpecError):
            parse_campaign(["not", "a", "mapping"])


class TestCampaignId:
    def test_content_addressed(self):
        a = parse_campaign(_quick_grid(name="one", priority=3))
        b = parse_campaign(_quick_grid(name="two", priority=77))
        # same point set -> same campaign, regardless of name/priority
        assert a.campaign_id == b.campaign_id

    def test_order_sensitive(self):
        assert campaign_id(["a", "b"]) != campaign_id(["b", "a"])

    def test_different_points_different_id(self):
        a = parse_campaign({"grid": {"workloads": ["gups"]}})
        b = parse_campaign({"grid": {"workloads": ["mt"]}})
        assert a.campaign_id != b.campaign_id


class TestDescriptorRoundTrip:
    def test_fingerprint_exact_round_trip(self):
        """Journal recovery rebuilds points from JSON-flattened
        descriptors; the rebuilt point must fingerprint identically."""
        spec = parse_campaign(
            {
                "points": [
                    {
                        "workload": "gups",
                        "variant": "full",
                        "topology": "star",
                        "system": {"n_clusters": 4, "gpus_per_cluster": 1},
                        "faults": {"ber": 2e-5, "seed": 1},
                        "scale": "tiny",
                        "seed": 5,
                    }
                ]
            }
        )
        point = spec.points[0]
        # simulate the journal's JSON round trip (enums -> values,
        # tuples -> lists)
        blob = json.dumps(point_descriptor(point), default=lambda o: o.value)
        rebuilt = point_from_descriptor(json.loads(blob))
        assert fingerprint(rebuilt) == fingerprint(point)
        assert rebuilt.system == point.system

    def test_default_point_round_trip(self):
        point = ExperimentPoint(workload="mt", scale=Scale.tiny()).normalized()
        blob = json.dumps(point_descriptor(point), default=lambda o: o.value)
        assert fingerprint(point_from_descriptor(json.loads(blob))) == fingerprint(point)


class TestLoadCampaign:
    def test_json_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(_quick_grid()))
        spec = load_campaign(path)
        assert spec.name == "quick" and len(spec.points) == 4

    def test_default_name_is_file_stem(self, tmp_path):
        path = tmp_path / "nightly.json"
        path.write_text(json.dumps({"grid": {"workloads": ["gups"]}}))
        assert load_campaign(path).name == "nightly"

    def test_bad_json_fails_loudly(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{nope")
        with pytest.raises(CampaignSpecError, match="bad JSON"):
            load_campaign(path)

    def test_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="cannot read"):
            load_campaign(tmp_path / "absent.json")

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "c.yaml"
        path.write_text(yaml.safe_dump(_quick_grid()))
        spec = load_campaign(path)
        assert [p.workload for p in spec.points] == ["gups", "gups", "mt", "mt"]


class TestExampleCampaigns:
    def test_smoke_quick_example_matches_smoke_grid(self):
        from repro.bench.smoke import smoke_points

        spec = load_campaign("examples/campaigns/smoke_quick.json")
        got = [(p.workload, "full" if p.netcrafter.any_feature_enabled else "baseline") for p in spec.points]
        assert got == smoke_points(quick=True)
        assert all(p.scale == Scale.small() for p in spec.points)

    def test_topology_tour_example_parses(self):
        pytest.importorskip("yaml")
        spec = load_campaign("examples/campaigns/topology_tour.yaml")
        assert len(spec.points) == 9  # 2 workloads x 2 variants x 2 fabrics + 1
        assert {p.system.inter_topology for p in spec.points} == {"ring", "star"}
        assert spec.points[-1].system.faults.ber == 2e-5

    def test_system_block_defaults_to_none(self):
        spec = parse_campaign({"points": [{"workload": "gups"}]})
        assert spec.points[0].system == SystemConfig.default()
