"""Tests for the campaign CLI surface and the blocking client helpers.

Full serve/submit/fetch round trips run in the server test suite (and
the CI campaign-smoke job); here we cover the CLI's failure modes and
the client's endpoint plumbing, which need no live server.
"""

import json

import pytest

from repro.campaign.__main__ import main
from repro.campaign.client import (
    CampaignClientError,
    discover_endpoint,
    parse_endpoint,
    request,
)
from repro.campaign.journal import CampaignJournal


class TestParseEndpoint:
    def test_host_port(self):
        assert parse_endpoint("127.0.0.1:7791") == ("127.0.0.1", 7791)

    @pytest.mark.parametrize("bad", ["", "localhost", ":80", "host:port"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(CampaignClientError):
            parse_endpoint(bad)


class TestDiscovery:
    def test_no_endpoint_file_fails_loudly(self, tmp_path):
        with pytest.raises(CampaignClientError, match="no campaign server"):
            discover_endpoint(str(tmp_path))

    def test_published_endpoint_discovered(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.publish_endpoint("127.0.0.1", 4141)
        assert discover_endpoint(str(tmp_path)) == ("127.0.0.1", 4141)

    def test_unreachable_server_raises(self, tmp_path):
        # a published endpoint nobody is listening on: connection refused,
        # surfaced as a client error rather than a raw OSError
        with pytest.raises(CampaignClientError, match="cannot reach"):
            request(("127.0.0.1", 1), {"op": "ping"}, timeout=2.0)


class TestCliErrors:
    def test_bad_campaign_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"grid": {"workloads": []}}))
        code = main(["--journal-dir", str(tmp_path), "submit", str(bad)])
        assert code == 2
        assert "bad campaign file" in capsys.readouterr().err

    def test_no_server_exits_1(self, tmp_path, capsys):
        good = tmp_path / "ok.json"
        good.write_text(json.dumps({"grid": {"workloads": ["gups"]}}))
        code = main(["--journal-dir", str(tmp_path), "submit", str(good)])
        assert code == 1
        assert "no campaign server" in capsys.readouterr().err

    def test_status_without_server_exits_1(self, tmp_path):
        assert main(["--journal-dir", str(tmp_path), "status"]) == 1

    def test_explicit_endpoint_overrides_discovery(self, tmp_path, capsys):
        # port 1 is never listening: the explicit endpoint is used (and
        # fails to connect) even though no endpoint file exists either
        code = main(
            ["--journal-dir", str(tmp_path), "--endpoint", "127.0.0.1:1", "status"]
        )
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_jobs_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--journal-dir", str(tmp_path), "serve", "--jobs", "0"])
