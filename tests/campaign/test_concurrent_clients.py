"""Two concurrent ``run_many`` clients sharing one cache directory.

The exactly-once guarantee the campaign server gives *inside* one
process must also hold *across* processes coordinating only through the
shared cache dir's in-flight claims: whichever client wins a point's
claim executes it, the other follows the published result.  Exactly one
execution per unique point, byte-identical results on both sides.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

CLIENT = """\
import json, sys
from repro.experiments import runner
from repro.workloads.base import Scale

runner.set_cache_dir(sys.argv[2])
points = [
    runner.ExperimentPoint(workload=w, scale=Scale.tiny(), seed=0)
    for w in ("gups", "mt")
]
results = runner.run_many(points)
from repro.bench.smoke import results_digest
print(json.dumps({
    "who": sys.argv[1],
    "executed": runner.run_stats.executed,
    "disk_hits": runner.run_stats.disk_hits,
    "inflight_hits": runner.run_stats.inflight_hits,
    "digest": results_digest([r.to_dict() for r in results]),
}))
"""


def _spawn(tmp_path, who, cache_dir):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, str(tmp_path / "client.py"), who, cache_dir],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=tmp_path,
    )


def test_two_clients_execute_each_point_exactly_once(tmp_path):
    (tmp_path / "client.py").write_text(CLIENT)
    cache_dir = str(tmp_path / "shared-cache")

    procs = [_spawn(tmp_path, who, cache_dir) for who in ("a", "b")]
    reports = []
    for proc in procs:
        out, err = proc.communicate(timeout=600)
        assert proc.returncode == 0, err
        reports.append(json.loads(out.strip().splitlines()[-1]))

    # every unique point simulated exactly once across both processes;
    # the loser of each claim either followed the in-flight execution or
    # (if it started late enough) read the already-published entry
    total_executed = sum(r["executed"] for r in reports)
    assert total_executed == 2, reports
    total_served = sum(r["disk_hits"] + r["inflight_hits"] for r in reports)
    assert total_executed + total_served == 4, reports

    # both clients saw byte-identical results
    assert reports[0]["digest"] == reports[1]["digest"], reports

    # no claim debris left behind
    claims = list(Path(cache_dir).glob("inflight/*.claim"))
    assert claims == []
