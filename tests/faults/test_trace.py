"""Fault events in the flit lifecycle trace pass schema validation."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.faults.config import FaultConfig
from repro.gpu.system import MultiGpuSystem
from repro.obs import EventTracer, Observability
from repro.obs.schema import validate_records
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def traced_faulty_run():
    config = SystemConfig.default().with_overrides(
        faults=FaultConfig(ber=2e-4, drop_rate=0.01, seed=7, rdma_timeout=512)
    )
    obs = Observability(tracer=EventTracer())
    trace = get_workload("gups").build(
        n_gpus=config.n_gpus, scale=Scale.tiny(), seed=0
    )
    system = MultiGpuSystem(
        config=config, netcrafter=NetCrafterConfig.full(), seed=0, obs=obs
    )
    system.load(trace)
    result = system.run()
    return result, obs.tracer


def test_faulty_trace_validates(traced_faulty_run):
    _, tracer = traced_faulty_run
    assert validate_records(tracer.events()) == []


def test_fault_events_present(traced_faulty_run):
    result, tracer = traced_faulty_run
    counts = tracer.count_by_event()
    for event in ("corrupt", "drop", "retransmit", "crc_ok"):
        assert counts.get(event, 0) > 0, f"no {event!r} events"
    # the trace and the counters tell the same story
    f = result.stats.faults
    assert counts["corrupt"] == f.flits_corrupted == f.crc_fail
    assert counts["drop"] == f.flits_dropped
    assert counts["retransmit"] == f.flits_retransmitted
    assert counts["crc_ok"] == f.crc_ok
