"""Counter-based fault RNG: order independence is the whole point."""

import pytest

from repro.faults.config import FaultConfig, FlapWindow
from repro.faults.process import (
    FATE_CORRUPT,
    FATE_DROP,
    FATE_OK,
    LinkFaultProcess,
)
from repro.faults.rng import fault_hash, mix64, probability_threshold, string_salt
from repro.network.flit import segment_packet
from repro.network.packet import Packet, PacketType

_MASK64 = (1 << 64) - 1


def _flit(addr=0x1000, inject_cycle=5, src=0, dst=2, ptype=PacketType.READ_RSP):
    packet = Packet(ptype=ptype, src_gpu=src, dst_gpu=dst, addr=addr)
    packet.inject_cycle = inject_cycle
    return segment_packet(packet, 16)[0]


def test_mix64_is_deterministic_and_64_bit():
    assert mix64(1, 2) == mix64(1, 2)
    assert 0 <= mix64(123456789, 987654321) <= _MASK64
    assert mix64(1, 2) != mix64(2, 1)


def test_fault_hash_depends_on_every_value():
    base = fault_hash(7, 1, 2, 3)
    assert fault_hash(7, 1, 2, 3) == base
    assert fault_hash(8, 1, 2, 3) != base
    assert fault_hash(7, 1, 2, 4) != base
    assert fault_hash(7, 1, 2) != base


def test_string_salt_stable():
    assert string_salt("switch0->switch1") == string_salt("switch0->switch1")
    assert string_salt("switch0->switch1") != string_salt("switch1->switch0")


def test_probability_threshold_bounds():
    assert probability_threshold(0.0) == 0
    assert probability_threshold(1.0) == 1 << 64
    assert probability_threshold(-0.5) == 0
    half = probability_threshold(0.5)
    assert 0 < half < (1 << 64)
    assert probability_threshold(0.25) < half


def test_zero_rates_always_ok():
    process = LinkFaultProcess(FaultConfig(), "switch0->switch1", 16)
    for attempt in range(4):
        assert process.fate(_flit(), attempt) == FATE_OK


def test_fate_keyed_on_content_not_identity():
    """Two flits with identical content (different fid/pid) share a fate
    — the property that makes shard-striped ID allocation irrelevant."""
    config = FaultConfig(ber=1e-3, drop_rate=0.05, seed=3)
    process = LinkFaultProcess(config, "switch0->switch1", 16)
    for addr in range(0, 64 * 200, 64):
        a, b = _flit(addr=addr), _flit(addr=addr)
        assert a.fid != b.fid and a.packet.pid != b.packet.pid
        assert process.fate(a, 0) == process.fate(b, 0)


def test_fate_varies_with_content_and_link():
    config = FaultConfig(drop_rate=0.5, seed=1)
    one = LinkFaultProcess(config, "switch0->switch1", 16)
    other = LinkFaultProcess(config, "switch1->switch0", 16)
    fates_one = [one.fate(_flit(addr=64 * i), 0) for i in range(64)]
    fates_other = [other.fate(_flit(addr=64 * i), 0) for i in range(64)]
    assert FATE_DROP in fates_one and FATE_OK in fates_one
    assert fates_one != fates_other


def test_retransmission_redraws_fate():
    config = FaultConfig(drop_rate=0.5, seed=2)
    process = LinkFaultProcess(config, "switch0->switch1", 16)
    flit = _flit()
    fates = {process.fate(flit, attempt) for attempt in range(32)}
    assert FATE_DROP in fates and FATE_OK in fates


def test_corruption_scales_with_flit_size():
    config = FaultConfig(ber=1e-4, seed=0)
    small = LinkFaultProcess(config, "l", 16)
    large = LinkFaultProcess(config, "l", 256)
    assert small._t_corrupt < large._t_corrupt


def test_regime_edges_shape():
    config = FaultConfig(
        flaps=(FlapWindow(100, 200, 0.25), FlapWindow(500, 600, 0.5))
    )
    process = LinkFaultProcess(config, "l", 16)
    edges = process.regime_edges(16.0)
    assert [e[0] for e in edges] == [100, 200, 500, 600]
    assert [e[3] for e in edges] == [True, False, True, False]
    # degraded rate is exactly bpc * factor as an integer ratio
    cycle, num, den, _ = edges[0]
    assert num / den == pytest.approx(4.0)
    assert edges[1][1] / edges[1][2] == pytest.approx(16.0)
