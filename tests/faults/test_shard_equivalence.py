"""Fault injection must not break the sharded simulator's bit-identity.

The fault RNG is keyed on packet *content*, never on allocation order or
shard-striped IDs, and every fault timer is a local event on the shard
that owns the link — so a faulty run must digest identically whether it
executes on one engine, on sequential windowed shards, or in worker
processes.
"""

import pytest

from repro.bench.smoke import results_digest
from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.faults.config import FaultConfig, FlapWindow
from repro.gpu.system import MultiGpuSystem
from repro.shard.coordinator import ShardedSystem
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

FAULTS = FaultConfig(
    ber=2e-4,
    drop_rate=0.01,
    flaps=(FlapWindow(200, 900, 0.25),),
    seed=7,
    rdma_timeout=512,
)
CONFIG = SystemConfig.default().with_overrides(
    n_clusters=4, inter_link_latency=8, faults=FAULTS
)


def _run(node):
    trace = get_workload("gups").build(
        n_gpus=CONFIG.n_gpus, scale=Scale.tiny(), seed=0
    )
    node.load(trace)
    return node.run()


@pytest.fixture(scope="module")
def single_engine():
    return _run(
        MultiGpuSystem(config=CONFIG, netcrafter=NetCrafterConfig.full(), seed=0)
    )


def test_the_reference_run_actually_faults(single_engine):
    f = single_engine.stats.faults
    assert f is not None and f.flits_corrupted > 0
    assert f.flits_dropped > 0
    assert f.flits_retransmitted > 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_shards": 2},
        {"n_shards": 2, "parallel": True},
        {"n_shards": 4, "parallel": True},
    ],
    ids=["2-sequential", "2-parallel", "4-parallel"],
)
def test_faulty_run_is_shard_invariant(single_engine, kwargs):
    sharded = _run(
        ShardedSystem(
            config=CONFIG, netcrafter=NetCrafterConfig.full(), seed=0, **kwargs
        )
    )
    assert results_digest([sharded.to_dict()]) == results_digest(
        [single_engine.to_dict()]
    )
