"""FaultStats aggregation and its embedding in RunStats serialization."""

from repro.stats.collectors import FaultStats, RunStats


def _sample(corrupted=3, dropped=1, latencies=(10, 20)):
    stats = FaultStats()
    stats.flits_corrupted = corrupted
    stats.bytes_corrupted = corrupted * 16
    stats.flits_dropped = dropped
    stats.flits_retransmitted = corrupted + dropped
    stats.crc_ok = 100
    stats.crc_fail = corrupted
    for latency in latencies:
        stats.recovery_latency.record(latency)
    return stats


def test_merge_sums_counters_and_latency():
    a = _sample(corrupted=3, dropped=1, latencies=(10, 20))
    b = _sample(corrupted=2, dropped=4, latencies=(30,))
    a.merge(b)
    assert a.flits_corrupted == 5
    assert a.flits_dropped == 5
    assert a.flits_retransmitted == 10
    assert a.crc_ok == 200
    assert a.recovery_latency.count == 3
    assert a.recovery_latency.mean() == 20.0


def test_merge_is_order_independent():
    left = _sample(corrupted=3, latencies=(10, 20))
    left.merge(_sample(corrupted=2, latencies=(30, 5)))
    right = _sample(corrupted=2, latencies=(30, 5))
    right.merge(_sample(corrupted=3, latencies=(10, 20)))
    assert left.to_dict() == right.to_dict()


def test_round_trip():
    original = _sample()
    rebuilt = FaultStats.from_dict(original.to_dict())
    assert rebuilt.to_dict() == original.to_dict()
    assert rebuilt.recovery_latency.count == original.recovery_latency.count


def test_run_stats_round_trip_with_faults():
    run = RunStats()
    run.mem_ops = 42
    run.faults = _sample()
    data = run.to_dict()
    assert "__faults__" in data["faults"]
    rebuilt = RunStats.from_dict(data)
    assert rebuilt.faults is not None
    assert rebuilt.faults.flits_corrupted == 3
    assert rebuilt.to_dict() == data


def test_run_stats_skips_faults_when_none():
    run = RunStats()
    data = run.to_dict()
    assert "faults" not in data
    rebuilt = RunStats.from_dict(data)
    assert rebuilt.faults is None


def test_run_stats_merge_with_one_sided_faults():
    left = RunStats()
    right = RunStats()
    right.faults = _sample(corrupted=7)
    left.merge(right)
    assert left.faults is not None
    assert left.faults.flits_corrupted == 7
    # and merging a fault-free shard into a faulted one is a no-op
    left.merge(RunStats())
    assert left.faults.flits_corrupted == 7
