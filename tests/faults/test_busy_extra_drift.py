"""Regression: degraded-bandwidth busy time must not drift.

``LinkStats.busy_extra`` used to accumulate a per-flit float delta
(``size/degraded - size/nominal``) for every transmission inside a
bandwidth flap.  Over a long flap the float accumulation drifts —
measurably past 1e-9 cycles within tens of thousands of flits — which
is exactly the accumulation error the exact-integer link timekeeping
was built to eliminate.  Degraded transmissions are now tracked as
integer bytes per ``(num, den, nom_num, nom_den)`` rate regime and
divided once at query time.
"""

from fractions import Fraction

import pytest

from repro.faults.config import FaultConfig, FlapWindow
from repro.faults.process import LinkFaultProcess
from repro.network.flit import segment_packet
from repro.network.link import FlitLink, LinkStats
from repro.network.packet import Packet, PacketType
from repro.sim.engine import Engine
from repro.stats.collectors import FaultStats

#: 16 B flits at nominal 16 B/cycle, degraded to 4.8 B/cycle — the
#: per-flit extra is 10/3 - 1 cycles, inexact in binary floating point,
#: so per-flit accumulation visibly drifts
NOMINAL = 16.0
DEGRADED = 4.8
FLITS = 50_000
SIZE = 16


def _exact_extra(n_flits: int) -> Fraction:
    total = n_flits * SIZE
    return Fraction(total) / Fraction(DEGRADED) - Fraction(total) / Fraction(
        NOMINAL
    )


def test_long_flap_busy_extra_is_exact_where_accumulation_drifts():
    stats = LinkStats(NOMINAL)
    num, den = DEGRADED.as_integer_ratio()
    nom_num, nom_den = NOMINAL.as_integer_ratio()
    for _ in range(FLITS):
        stats.add_degraded_bytes(SIZE, num, den, nom_num, nom_den)

    exact = float(_exact_extra(FLITS))
    assert abs(stats.busy_extra - exact) < 1e-9

    # the old implementation's per-flit float accumulation, run over the
    # same transmissions, drifts well past that bound — the bug
    drifted = 0.0
    for _ in range(FLITS):
        drifted += SIZE * den / num - SIZE * nom_den / nom_num
    assert abs(drifted - exact) > 1e-9


def test_busy_extra_sums_across_rate_regimes():
    stats = LinkStats(NOMINAL)
    stats.busy_bytes = 64  # what the transmissions booked at nominal rate
    stats.add_degraded_bytes(32, *(8.0).as_integer_ratio(), *(16.0).as_integer_ratio())
    stats.add_degraded_bytes(32, *(4.0).as_integer_ratio(), *(16.0).as_integer_ratio())
    # 32 B at 8 vs 16 B/c: +2 cycles; 32 B at 4 vs 16 B/c: +6 cycles
    assert stats.busy_extra == pytest.approx(8.0)
    assert stats.busy_cycles == pytest.approx(64 / 16 + 8.0)


def test_busy_extra_assignment_still_overrides():
    # tests (and merge paths) may fabricate the stat directly; assignment
    # replaces any accumulated regimes rather than stacking on top
    stats = LinkStats(NOMINAL)
    stats.add_degraded_bytes(SIZE, *DEGRADED.as_integer_ratio(), *(16.0).as_integer_ratio())
    stats.busy_extra = 3.0
    assert stats.busy_extra == 3.0


def _flit(addr):
    packet = Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=2, addr=addr)
    packet.inject_cycle = 0
    return segment_packet(packet, SIZE)[0]


def test_end_to_end_flap_matches_closed_form():
    """A wire flapped for its whole lifetime reports the closed-form
    extra busy time to within one division's rounding, however many
    flits crossed it."""
    n_flits = 2_000
    config = FaultConfig(flaps=(FlapWindow(0, 10**9, DEGRADED / NOMINAL),))
    engine = Engine()
    link = FlitLink(engine, "l", NOMINAL, 2, lambda flit: None)
    link.attach_faults(LinkFaultProcess(config, "l", SIZE), FaultStats())
    # one flit every 4 cycles: 16 B at 4.8 B/cycle frees the wire in
    # 10/3 cycles, so every send sees a ready link
    for i in range(n_flits):
        engine.schedule_at(4 * i, link.send, _flit(addr=0x40 + 0x40 * i))
    engine.run()

    assert link.stats.flits == n_flits
    assert abs(link.stats.busy_extra - float(_exact_extra(n_flits))) < 1e-9
    # and the derived busy time can never exceed wall-clock elapsed
    was = LinkStats.strict
    LinkStats.strict = True
    try:
        assert link.stats.utilization(engine.now) <= 1.0
    finally:
        LinkStats.strict = was
