"""FaultConfig validation, the activation tri-state, and cache identity."""

import pytest

from repro.config import SystemConfig
from repro.faults.config import FaultConfig, FlapWindow


def test_defaults_are_inert():
    assert not FaultConfig().active
    assert not SystemConfig.default().faults.active


def test_auto_activation():
    assert FaultConfig(ber=1e-5).active
    assert FaultConfig(drop_rate=0.01).active
    assert FaultConfig(flaps=(FlapWindow(0, 10, 0.5),)).active


def test_enabled_overrides_auto():
    assert not FaultConfig(ber=1e-5, enabled=False).active
    assert FaultConfig(enabled=True).active


@pytest.mark.parametrize(
    "kwargs",
    [
        {"ber": -0.1},
        {"ber": 1.0},
        {"drop_rate": -0.1},
        {"drop_rate": 1.0},
        {"crc_latency": -1},
        {"drop_timeout": 0},
        {"rdma_timeout": 0},
        {"max_link_retries": -1},
        {"max_rdma_retries": -1},
        {"rdma_timeout": 100, "rdma_backoff_cap": 50},
    ],
)
def test_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        FaultConfig(**kwargs)


def test_rejects_bad_flaps():
    with pytest.raises(ValueError):
        FlapWindow(10, 10, 0.5)  # empty window
    with pytest.raises(ValueError):
        FlapWindow(0, 10, 0.0)  # zero bandwidth
    with pytest.raises(ValueError):
        FlapWindow(0, 10, 1.5)  # not a degradation
    with pytest.raises(ValueError):  # overlapping windows
        FaultConfig(flaps=(FlapWindow(0, 100, 0.5), FlapWindow(50, 150, 0.5)))
    with pytest.raises(ValueError):  # out of order
        FaultConfig(flaps=(FlapWindow(100, 200, 0.5), FlapWindow(0, 50, 0.5)))


def test_system_config_requires_fault_config():
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(faults={"ber": 0.1})


def test_cache_fingerprint_covers_fault_config():
    """Two points differing only in faults must hash differently."""
    from repro.experiments.cache import fingerprint
    from repro.experiments.runner import ExperimentPoint

    plain = ExperimentPoint(workload="gups").normalized()
    faulty = ExperimentPoint(
        workload="gups",
        system=SystemConfig.default().with_overrides(
            faults=FaultConfig(ber=1e-4, seed=3)
        ),
    ).normalized()
    assert fingerprint(plain) != fingerprint(faulty)
    reseeded = ExperimentPoint(
        workload="gups",
        system=SystemConfig.default().with_overrides(
            faults=FaultConfig(ber=1e-4, seed=4)
        ),
    ).normalized()
    assert fingerprint(faulty) != fingerprint(reseeded)
