"""Unit tests for the link retransmit path and the RDMA backstop."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.faults.config import FaultConfig, FlapWindow
from repro.faults.process import (
    FATE_CORRUPT,
    FATE_DROP,
    FATE_OK,
    CorruptedTransmission,
    LinkFaultProcess,
)
from repro.gpu.system import MultiGpuSystem
from repro.network.flit import segment_packet
from repro.network.link import FlitLink
from repro.network.packet import Packet, PacketType
from repro.sim.engine import Engine
from repro.stats.collectors import FaultStats
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload


class ScriptedProcess:
    """A fault process whose fates are given in advance (unit testing)."""

    def __init__(self, config, fates):
        self.config = config
        self._fates = list(fates)
        self.asked = []

    def fate(self, flit, attempt):
        self.asked.append((flit.fid, attempt))
        return self._fates.pop(0) if self._fates else FATE_OK

    def regime_edges(self, bytes_per_cycle):
        return []


def _harness(config, fates, bytes_per_cycle=16.0, latency=2):
    engine = Engine()
    delivered = []
    link = FlitLink(
        engine,
        "switch0->switch1",
        bytes_per_cycle,
        latency,
        lambda flit: delivered.append((engine.now, flit)),
    )
    fstats = FaultStats()
    link.attach_faults(ScriptedProcess(config, fates), fstats)
    return engine, link, fstats, delivered


def _flit(addr=0x40):
    packet = Packet(
        ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=2, addr=addr
    )
    packet.inject_cycle = 0
    return segment_packet(packet, 16)[0]


def test_corrupt_then_retransmit():
    config = FaultConfig(ber=1e-4, crc_latency=4, nack_latency=3)
    engine, link, fstats, delivered = _harness(config, [FATE_CORRUPT, FATE_OK])
    flit = _flit()
    link.send(flit)
    engine.run()

    # the damaged copy still arrives (and is discarded by the switch);
    # the clean retransmission follows after the CRC + NACK round trip
    assert len(delivered) == 2
    first_cycle, first = delivered[0]
    second_cycle, second = delivered[1]
    assert type(first) is CorruptedTransmission and first.flit is flit
    assert second is flit
    # arrival = ceil(1 flit @ 16 B/cyc) + latency = 3; retry at
    # arrival + crc(4) + nack(3) = 10; redelivery at 10 + 1 + 2 = 13
    assert first_cycle == 3
    assert second_cycle == 13

    assert fstats.flits_corrupted == 1
    assert fstats.bytes_corrupted == 16
    assert fstats.flits_retransmitted == 1
    assert fstats.flits_abandoned == 0
    assert fstats.recovery_latency.count == 1
    # useful bytes counted exactly once (on the clean copy); wire bytes
    # and flit counts cover both transmissions
    assert link.stats.useful_bytes == flit.useful_payload_bytes
    assert link.stats.wire_bytes == 32
    assert link.stats.flits == 2


def test_drop_then_retransmit():
    config = FaultConfig(drop_rate=0.1, drop_timeout=20)
    engine, link, fstats, delivered = _harness(config, [FATE_DROP, FATE_OK])
    flit = _flit()
    link.send(flit)
    engine.run()

    # nothing arrives for the dropped copy; the retry fires on timeout
    assert len(delivered) == 1
    cycle, arrived = delivered[0]
    assert arrived is flit
    assert cycle == 20 + 1 + 2  # drop_timeout + serialization + latency
    assert fstats.flits_dropped == 1
    assert fstats.flits_retransmitted == 1
    assert link.stats.useful_bytes == flit.useful_payload_bytes


def test_retry_budget_abandons():
    config = FaultConfig(drop_rate=0.1, max_link_retries=0)
    engine, link, fstats, delivered = _harness(config, [FATE_DROP])
    link.send(_flit())
    engine.run()
    assert delivered == []
    assert fstats.flits_dropped == 1
    assert fstats.flits_abandoned == 1
    assert fstats.flits_retransmitted == 0


def test_conservation_identity_over_many_fates():
    fates = [FATE_DROP, FATE_CORRUPT, FATE_OK] * 5 + [FATE_CORRUPT, FATE_OK]
    config = FaultConfig(ber=1e-4, drop_rate=0.1)
    engine, link, fstats, delivered = _harness(config, list(fates))
    for i in range(4):
        engine.schedule_at(i * 100, link.send, _flit(addr=0x40 * (i + 1)))
    engine.run()
    assert (
        fstats.flits_corrupted + fstats.flits_dropped
        == fstats.flits_retransmitted + fstats.flits_abandoned
    )
    assert len(delivered) == 4 + fstats.flits_corrupted


def test_flap_window_slows_serialization():
    """Inside a flap window the wire runs at the degraded rate, and the
    extra busy time is tracked separately (bit-exact nominal otherwise)."""
    config = FaultConfig(flaps=(FlapWindow(5, 100, 0.25),))
    engine = Engine()
    delivered = []
    link = FlitLink(
        engine,
        "switch0->switch1",
        16.0,
        2,
        lambda flit: delivered.append((engine.now, flit)),
    )
    fstats = FaultStats()
    link.attach_faults(LinkFaultProcess(config, link.name, 16), fstats)

    engine.schedule_at(0, link.send, _flit(addr=0x40))  # nominal regime
    engine.schedule_at(10, link.send, _flit(addr=0x80))  # degraded regime
    engine.run()

    assert [cycle for cycle, _ in delivered] == [
        3,  # ceil(0 + 16/16) + 2
        16,  # ceil(10 + 16/4) + 2: quarter bandwidth inside the window
    ]
    assert fstats.degraded_flits == 1
    assert link.stats.busy_extra == pytest.approx(3.0)  # 4 - 1 cycles
    assert link.stats.busy_cycles == pytest.approx(2.0 + 3.0)


def test_flap_window_restores_nominal_rate():
    config = FaultConfig(flaps=(FlapWindow(5, 20, 0.25),))
    engine = Engine()
    delivered = []
    link = FlitLink(
        engine, "l", 16.0, 2, lambda f: delivered.append((engine.now, f))
    )
    link.attach_faults(LinkFaultProcess(config, "l", 16), FaultStats())
    engine.schedule_at(30, link.send, _flit())
    engine.run()
    assert delivered[0][0] == 33  # back to one cycle per flit


def test_rdma_backstop_recovers_abandoned_packets():
    """With link retries off, every faulted flit is lost for good — only
    the end-to-end timeout/retry path can finish the run."""
    faults = FaultConfig(
        ber=5e-4, drop_rate=0.02, seed=3, max_link_retries=0, rdma_timeout=512
    )
    config = SystemConfig.default().with_overrides(faults=faults)
    trace = get_workload("gups").build(
        n_gpus=config.n_gpus, scale=Scale.tiny(), seed=0
    )
    system = MultiGpuSystem(
        config=config, netcrafter=NetCrafterConfig.full(), seed=0
    )
    system.load(trace)
    result = system.run()
    f = result.stats.faults
    assert result.cycles > 0
    assert f.flits_abandoned > 0
    assert f.rdma_retries > 0
    assert f.flits_retransmitted == 0
    assert (
        f.flits_corrupted + f.flits_dropped
        == f.flits_retransmitted + f.flits_abandoned
    )


def test_recovery_is_lossless_end_to_end():
    """A faulty run delivers exactly the payload bytes a fault-free run
    does: corruption and drops cost cycles and wire bytes, never data."""

    def run(faults):
        config = SystemConfig.default().with_overrides(faults=faults)
        trace = get_workload("gups").build(
            n_gpus=config.n_gpus, scale=Scale.tiny(), seed=0
        )
        system = MultiGpuSystem(
            config=config, netcrafter=NetCrafterConfig.full(), seed=0
        )
        system.load(trace)
        return system.run()

    clean = run(FaultConfig())
    faulty = run(
        FaultConfig(
            ber=2e-4,
            drop_rate=0.01,
            flaps=(FlapWindow(200, 900, 0.25),),
            seed=7,
            rdma_timeout=512,
        )
    )
    f = faulty.stats.faults
    assert f.flits_corrupted > 0 and f.flits_dropped > 0
    assert faulty.inter_useful_bytes == clean.inter_useful_bytes
    assert faulty.inter_wire_bytes > clean.inter_wire_bytes
    assert faulty.cycles >= clean.cycles


def test_rdma_duplicate_response_deduped():
    from repro.memory.rdma import RdmaEngine
    from repro.stats.collectors import RunStats

    engine = Engine()
    stats = RunStats()
    rdma = RdmaEngine(engine, "rdma0", 0, lambda gpu: gpu // 2, stats)
    injected = []
    rdma.attach(injected.append, lambda *a: None)
    fstats = FaultStats()
    rdma.attach_faults(FaultConfig(ber=1e-4, rdma_timeout=64), fstats)

    completions = []
    rdma.remote_read(2, 0x40, 64, 0, completions.append)
    engine.run(until=0)
    assert len(injected) == 1
    request = injected[0]

    response = Packet(
        ptype=PacketType.READ_RSP,
        src_gpu=2,
        dst_gpu=0,
        addr=0x40,
        context=request.context,
    )
    rdma._complete_response(response)
    rdma._complete_response(response)  # the clone's answer arrives late
    assert len(completions) == 1
    assert rdma.responses_received == 1
    assert fstats.rdma_duplicate_responses == 1


def test_rdma_backstop_gives_up_eventually():
    from repro.memory.rdma import RdmaEngine
    from repro.stats.collectors import RunStats

    engine = Engine()
    rdma = RdmaEngine(engine, "rdma0", 0, lambda gpu: gpu // 2, RunStats())
    rdma.attach(lambda packet: None, lambda *a: None)  # network eats packets
    rdma.attach_faults(
        FaultConfig(ber=1e-4, rdma_timeout=16, rdma_backoff_cap=32,
                    max_rdma_retries=2),
        FaultStats(),
    )
    rdma.remote_read(2, 0x40, 64, 0, lambda packet: None)
    with pytest.raises(RuntimeError, match="unanswered"):
        engine.run()
