"""Digest discipline: disabled faults must be invisible, bit for bit."""

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.faults.config import FaultConfig, FlapWindow
from repro.gpu.system import MultiGpuSystem
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload


def _run(faults=None):
    config = SystemConfig.default()
    if faults is not None:
        config = config.with_overrides(faults=faults)
    trace = get_workload("gups").build(
        n_gpus=config.n_gpus, scale=Scale.tiny(), seed=0
    )
    system = MultiGpuSystem(
        config=config, netcrafter=NetCrafterConfig.full(), seed=0
    )
    system.load(trace)
    return system.run()


def test_zero_rates_are_byte_identical():
    plain = _run().to_dict()
    zeroed = _run(FaultConfig()).to_dict()
    assert zeroed == plain


def test_enabled_false_is_byte_identical_despite_rates():
    plain = _run().to_dict()
    forced_off = _run(
        FaultConfig(
            ber=1e-3,
            drop_rate=0.05,
            flaps=(FlapWindow(10, 500, 0.25),),
            seed=11,
            enabled=False,
        )
    ).to_dict()
    assert forced_off == plain


def test_enabled_true_at_zero_rates_only_adds_fault_block():
    """Forcing the machinery on at zero rates attaches the CRC counters
    (an intentional, documented digest change) but must not perturb the
    simulation itself: identical timing, identical traffic."""
    plain = _run().to_dict()
    armed = _run(FaultConfig(enabled=True)).to_dict()

    faults_block = armed["stats"].pop("faults")["__faults__"]
    # the armed engine processes extra events (backstop timers that never
    # fire a fault); that meter is engine-internal and digest-excluded
    armed.pop("events_processed", None)
    plain.pop("events_processed", None)
    assert armed == plain
    assert faults_block["crc_ok"] > 0
    for key, value in faults_block.items():
        if key in ("crc_ok", "recovery_latency"):
            continue
        assert value == 0, f"unexpected nonzero fault counter {key}"


def test_zero_rate_runs_collect_no_fault_stats():
    assert _run(FaultConfig()).stats.faults is None
    assert _run().fault_stats is None
