"""Tests for TLBs and the page-walk cache."""

import pytest

from repro.vm.tlb import PageWalkCache, Tlb


class TestTlb:
    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Tlb(0)
        with pytest.raises(ValueError):
            Tlb(10, assoc=3)

    def test_miss_then_hit(self):
        tlb = Tlb(4)
        assert tlb.lookup(1) is None
        tlb.insert(1, 0x1000)
        assert tlb.lookup(1) == 0x1000
        assert tlb.hits == 1 and tlb.misses == 1

    def test_fully_associative_lru(self):
        tlb = Tlb(2)
        tlb.insert(1, 0x1000)
        tlb.insert(2, 0x2000)
        tlb.lookup(1)  # make 2 the LRU
        tlb.insert(3, 0x3000)
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) == 0x1000
        assert tlb.lookup(3) == 0x3000

    def test_set_associative_indexing(self):
        tlb = Tlb(4, assoc=2)  # 2 sets
        # vpns 0 and 2 share set 0; 1 and 3 share set 1
        tlb.insert(0, 0xA)
        tlb.insert(2, 0xB)
        tlb.insert(4, 0xC)  # evicts vpn 0 (set 0 LRU)
        assert tlb.lookup(0) is None
        assert tlb.lookup(2) == 0xB
        assert tlb.lookup(1) is None  # other set untouched

    def test_reinsert_updates_value(self):
        tlb = Tlb(2)
        tlb.insert(1, 0x1000)
        tlb.insert(1, 0x9000)
        assert tlb.lookup(1) == 0x9000

    def test_invalidate(self):
        tlb = Tlb(2)
        tlb.insert(1, 0x1000)
        assert tlb.invalidate(1)
        assert not tlb.invalidate(1)
        assert tlb.lookup(1) is None

    def test_hit_rate(self):
        tlb = Tlb(2)
        tlb.insert(1, 0x1)
        tlb.lookup(1)
        tlb.lookup(2)
        assert tlb.hit_rate() == pytest.approx(0.5)
        assert Tlb(2).hit_rate() == 0.0


class TestPageWalkCache:
    def test_cold_miss_is_level_zero(self):
        pwc = PageWalkCache(8)
        assert pwc.longest_prefix_level(0x12345) == 0
        assert pwc.misses == 1

    def test_full_walk_inserts_three_levels(self):
        pwc = PageWalkCache(8)
        pwc.insert_path(0x12345)
        assert pwc.longest_prefix_level(0x12345) == 3
        assert pwc.hits == 1

    def test_partial_prefix_match(self):
        pwc = PageWalkCache(8)
        pwc.insert_path(0x12345)
        # same level-2 prefix (vpn >> 18), different level-3 prefix
        sibling = (0x12345 & ~((1 << 18) - 1)) | (1 << 17)
        level = pwc.longest_prefix_level(sibling)
        assert level == 2

    def test_same_2mb_region_hits_level3(self):
        pwc = PageWalkCache(8)
        pwc.insert_path(0x200)
        assert pwc.longest_prefix_level(0x3FF) == 3  # same leaf node

    def test_capacity_evicts_lru(self):
        pwc = PageWalkCache(entries=3)  # one walk inserts 3 prefixes
        pwc.insert_path(0x0)
        pwc.insert_path(1 << 27)  # totally disjoint prefixes
        assert pwc.longest_prefix_level(0x0) == 0  # evicted

    def test_accesses_counted(self):
        pwc = PageWalkCache(8)
        pwc.longest_prefix_level(1)
        pwc.insert_path(1)
        pwc.longest_prefix_level(1)
        assert pwc.accesses == 2
