"""Tests for the physical address space and LASP placement."""

import pytest

from repro.vm.page_table import PAGE_SIZE, PageTable
from repro.vm.placement import AddressSpace, FRAMES_PER_GPU, LaspPlacement


def test_invalid_gpu_count():
    with pytest.raises(ValueError):
        AddressSpace(0)


def test_frames_allocated_per_gpu_are_disjoint():
    space = AddressSpace(4)
    a = space.alloc_frame(0)
    b = space.alloc_frame(1)
    c = space.alloc_frame(0)
    assert space.home_of(a) == 0
    assert space.home_of(b) == 1
    assert space.home_of(c) == 0
    assert a != c


def test_home_of_any_offset_within_frame():
    space = AddressSpace(2)
    frame = space.alloc_frame(1)
    assert space.home_of(frame + PAGE_SIZE - 1) == 1


def test_home_of_out_of_range():
    space = AddressSpace(2)
    with pytest.raises(ValueError):
        space.home_of(10 * FRAMES_PER_GPU * PAGE_SIZE)


def test_alloc_unknown_gpu():
    space = AddressSpace(2)
    with pytest.raises(ValueError):
        space.alloc_frame(5)


def test_frames_allocated_counter():
    space = AddressSpace(2)
    space.alloc_frame(0)
    space.alloc_frame(0)
    assert space.frames_allocated(0) == 2
    assert space.frames_allocated(1) == 0


class TestLaspPlacement:
    def _placement(self, n=4):
        space = AddressSpace(n)
        return LaspPlacement(space, PageTable(space)), space

    def test_map_page_places_on_owner(self):
        placement, space = self._placement()
        paddr = placement.map_page(0x1000, owner_gpu=2)
        assert space.home_of(paddr) == 2
        assert placement.owner_of_vpn(0x1000) == 2

    def test_map_page_idempotent(self):
        placement, _ = self._placement()
        first = placement.map_page(0x1000, 1)
        second = placement.map_page(0x1000, 3)  # later hint ignored
        assert first == second
        assert placement.owner_of_vpn(0x1000) == 1

    def test_translation_installed(self):
        placement, _ = self._placement()
        paddr = placement.map_page(0x77, 0)
        assert placement.page_table.translate_vpn(0x77) == paddr

    def test_pages_on_counts(self):
        placement, _ = self._placement()
        placement.map_page(1, 0)
        placement.map_page(2, 0)
        placement.map_page(3, 1)
        assert placement.pages_on(0) == 2
        assert placement.pages_on(1) == 1
        assert placement.pages_mapped == 3
