"""Tests for the 4-level radix page table."""

import pytest
from hypothesis import given, strategies as st

from repro.vm.page_table import (
    BITS_PER_LEVEL,
    LEVELS,
    PAGE_SIZE,
    PTE_BYTES,
    PageTable,
    split_vpn,
)
from repro.vm.placement import AddressSpace


def _pt(n_gpus=4, root=0):
    return PageTable(AddressSpace(n_gpus), root_gpu=root)


def test_split_vpn_roundtrip():
    vpn = 0x123456789
    parts = split_vpn(vpn)
    assert len(parts) == LEVELS
    rebuilt = 0
    for p in parts:
        rebuilt = (rebuilt << BITS_PER_LEVEL) | p
    assert rebuilt == vpn & ((1 << (BITS_PER_LEVEL * LEVELS)) - 1)


def test_map_and_translate():
    pt = _pt()
    pt.map(0x1000, 0xABC000, leaf_owner_hint=2)
    assert pt.translate_vpn(0x1000) == 0xABC000
    assert pt.translate_vpn(0x1001) is None


def test_walk_path_has_four_levels():
    pt = _pt()
    pt.map(0x42, 0x1000, leaf_owner_hint=1)
    path = pt.walk_path(0x42)
    assert [level for level, _, _ in path] == [1, 2, 3, 4]


def test_walk_path_unmapped_raises():
    pt = _pt()
    with pytest.raises(KeyError):
        pt.walk_path(0x999)


def test_leaf_placed_on_hint_gpu():
    pt = _pt()
    pt.map(0x42, 0x1000, leaf_owner_hint=3)
    leaf = pt.leaf_node(0x42)
    assert leaf.gpu == 3


def test_interior_nodes_on_root_gpu():
    pt = _pt(root=1)
    pt.map(0x42, 0x1000, leaf_owner_hint=3)
    path = pt.walk_path(0x42)
    for level, _addr, gpu in path[:-1]:
        assert gpu == 1
    assert path[-1][2] == 3


def test_leaf_owner_fixed_by_first_page_in_region():
    """PTE co-placement: the 2 MB region's leaf follows its first page."""
    pt = _pt()
    base = 0x200  # region of 512 pages
    pt.map(base, 0x1000, leaf_owner_hint=2)
    pt.map(base + 1, 0x2000, leaf_owner_hint=0)  # same region, later page
    leaf = pt.leaf_node(base)
    assert leaf.gpu == 2  # owner stays with the first mapping
    assert pt.leaf_node(base + 1) is leaf


def test_different_regions_get_different_leaves():
    pt = _pt()
    pt.map(0x0, 0x1000, leaf_owner_hint=0)
    pt.map(0x200, 0x2000, leaf_owner_hint=1)  # next 2 MB region
    assert pt.leaf_node(0x0) is not pt.leaf_node(0x200)


def test_pte_addresses_within_node_frame():
    pt = _pt()
    pt.map(0x1FF, 0x1000, leaf_owner_hint=1)
    for _level, pte_addr, _gpu in pt.walk_path(0x1FF):
        assert pte_addr % PTE_BYTES == 0


def test_adjacent_vpns_share_leaf_pte_line():
    """PTEs of adjacent pages land in the same node (L2 locality)."""
    pt = _pt()
    pt.map(0x100, 0x1000, leaf_owner_hint=0)
    pt.map(0x101, 0x2000, leaf_owner_hint=0)
    a = pt.walk_path(0x100)[-1][1]
    b = pt.walk_path(0x101)[-1][1]
    assert abs(a - b) == PTE_BYTES


def test_nodes_created_counted():
    pt = _pt()
    assert pt.nodes_created == 1  # root
    pt.map(0x0, 0x1000, leaf_owner_hint=0)
    assert pt.nodes_created == 4  # root + L2 + L3 + leaf


@given(vpns=st.lists(st.integers(0, 2**30), unique=True, min_size=1, max_size=40))
def test_many_mappings_translate_back(vpns):
    pt = _pt()
    space = AddressSpace(4)
    expected = {}
    for i, vpn in enumerate(vpns):
        paddr = space.alloc_frame(i % 4)
        pt.map(vpn, paddr, leaf_owner_hint=i % 4)
        expected[vpn] = paddr
    for vpn, paddr in expected.items():
        assert pt.translate_vpn(vpn) == paddr
        path = pt.walk_path(vpn)
        assert len(path) == LEVELS
