"""Tests for the alternative placement policies and locality analysis."""

import pytest

from repro.vm.alternative_placement import (
    access_locality,
    interleave_placement,
    random_placement,
    single_gpu_placement,
)
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

N_GPUS = 4


def _trace(name="bs", seed=0):
    return get_workload(name).build(n_gpus=N_GPUS, scale=Scale.tiny(), seed=seed)


def test_interleave_stripes_pages():
    out = interleave_placement(_trace(), N_GPUS)
    owners = list(out.kernels[0].page_owner.values())
    assert set(owners) == set(range(N_GPUS))
    # round-robin over sorted vpns
    for index, vpn in enumerate(sorted(out.kernels[0].page_owner)):
        assert out.kernels[0].page_owner[vpn] == index % N_GPUS


def test_single_gpu_places_everything_on_one():
    out = single_gpu_placement(_trace(), N_GPUS, gpu=2)
    assert set(out.kernels[0].page_owner.values()) == {2}
    with pytest.raises(ValueError):
        single_gpu_placement(_trace(), N_GPUS, gpu=9)


def test_random_placement_deterministic_per_seed():
    a = random_placement(_trace(), N_GPUS, seed=3)
    b = random_placement(_trace(), N_GPUS, seed=3)
    assert a.kernels[0].page_owner == b.kernels[0].page_owner
    c = random_placement(_trace(), N_GPUS, seed=4)
    assert a.kernels[0].page_owner != c.kernels[0].page_owner


def test_rewrites_leave_access_streams_untouched():
    base = _trace()
    out = interleave_placement(base, N_GPUS)
    assert out.kernels[0].ctas is base.kernels[0].ctas


def test_locality_of_partitioned_workload():
    """BS under LASP is fully local; interleaving destroys that."""
    lasp = access_locality(_trace("bs"))
    naive = access_locality(interleave_placement(_trace("bs"), N_GPUS))
    assert lasp["local"] == pytest.approx(1.0)
    assert naive["local"] < 0.5


def test_locality_of_random_workload_is_low_either_way():
    lasp = access_locality(_trace("gups"))
    assert lasp["local"] < 0.5  # interleaved table: ~1/4 local at best


def test_remote_balance_reported():
    profile = access_locality(_trace("gups"))
    assert profile["remote_imbalance"] >= 1.0
    # LASP's interleaved shared structures balance remote traffic well
    assert profile["remote_imbalance"] < 2.0


def test_empty_trace_profile():
    from repro.gpu.cta import KernelTrace, WorkloadTrace

    trace = WorkloadTrace(name="e", kernels=[KernelTrace(name="k")])
    assert access_locality(trace) == {"local": 0.0, "remote_imbalance": 1.0}


def test_placed_traces_still_run():
    from repro.gpu.system import MultiGpuSystem

    out = single_gpu_placement(_trace("gups"), N_GPUS)
    system = MultiGpuSystem()
    system.load(out)
    result = system.run()
    assert result.stats.mem_ops == out.total_accesses()
    # everything homed on GPU 0: three quarters of traffic is remote
    assert result.stats.local_reads < result.stats.mem_ops
