"""Tests for the GMMU: L2 TLB, PWC and parallel walkers."""

from repro.sim.engine import Engine
from repro.stats.collectors import RunStats
from repro.vm.gmmu import Gmmu
from repro.vm.page_table import PageTable
from repro.vm.placement import AddressSpace, LaspPlacement
from repro.vm.tlb import PageWalkCache, Tlb


class _Harness:
    def __init__(self, n_walkers=4, pte_delay=50, remote_extra=100):
        self.engine = Engine()
        self.space = AddressSpace(4)
        self.page_table = PageTable(self.space, root_gpu=0)
        self.placement = LaspPlacement(self.space, self.page_table)
        self.stats = RunStats()
        self.pte_delay = pte_delay
        self.remote_extra = remote_extra
        self.pte_accesses = []
        self.gmmu = Gmmu(
            self.engine, "gmmu", gpu_id=0,
            page_table=self.page_table,
            l2_tlb=Tlb(8, assoc=8, lookup_latency=10),
            pwc=PageWalkCache(16, lookup_latency=10),
            pte_access=self._pte_access,
            stats=self.stats,
            n_walkers=n_walkers,
            walk_mshr_entries=8,
        )

    def _pte_access(self, addr, gpu, callback):
        self.pte_accesses.append((addr, gpu))
        delay = self.pte_delay + (self.remote_extra if gpu != 0 else 0)
        self.engine.schedule(delay, callback)

    def map(self, vpn, owner=0):
        self.placement.map_page(vpn, owner)


def test_cold_walk_touches_four_levels():
    h = _Harness()
    h.map(0x100)
    got = []
    h.gmmu.translate(0x100, got.append)
    h.engine.run()
    assert len(got) == 1
    assert h.stats.ptw_walks == 1
    assert h.stats.ptw_pte_accesses == 4
    assert h.stats.ptw_latency.count == 1


def test_l2_tlb_hit_skips_walk():
    h = _Harness()
    h.map(0x100)
    h.gmmu.translate(0x100, lambda p: None)
    h.engine.run()
    h.gmmu.translate(0x100, lambda p: None)
    h.engine.run()
    assert h.stats.ptw_walks == 1  # second translate hit the L2 TLB


def test_pwc_shortens_sibling_walk():
    h = _Harness()
    h.map(0x100)
    h.map(0x101)
    h.gmmu.translate(0x100, lambda p: None)
    h.engine.run()
    before = h.stats.ptw_pte_accesses
    h.gmmu.translate(0x101, lambda p: None)
    h.engine.run()
    # level-3 PWC hit: only the leaf PTE is read
    assert h.stats.ptw_pte_accesses == before + 1


def test_concurrent_same_vpn_walks_merge():
    h = _Harness()
    h.map(0x300)
    got = []
    for _ in range(5):
        h.gmmu.translate(0x300, got.append)
    h.engine.run()
    assert len(got) == 5
    assert h.stats.ptw_walks == 1


def test_walker_pool_limits_parallelism():
    h = _Harness(n_walkers=2)
    for i in range(6):
        h.map(0x1000 + i * 0x400)  # distinct regions -> full walks
    for i in range(6):
        h.gmmu.translate(0x1000 + i * 0x400, lambda p: None)
    h.engine.run(until=25)  # past L2 TLB + PWC latency of first dispatches
    assert h.gmmu.walkers_busy <= 2
    h.engine.run()
    assert h.stats.ptw_walks == 6


def test_remote_pte_accesses_counted():
    h = _Harness()
    h.map(0x500, owner=3)  # leaf on GPU 3 -> remote leaf PTE read
    h.gmmu.translate(0x500, lambda p: None)
    h.engine.run()
    assert h.stats.ptw_remote_pte_accesses >= 1
    assert any(gpu == 3 for _addr, gpu in h.pte_accesses)


def test_translation_result_correct():
    h = _Harness()
    h.map(0x200, owner=1)
    expected = h.page_table.translate_vpn(0x200)
    got = []
    h.gmmu.translate(0x200, got.append)
    h.engine.run()
    assert got == [expected]


def test_walk_mshr_full_retries():
    h = _Harness(n_walkers=1)
    for i in range(12):
        h.map(0x2000 + i * 0x400)
    got = []
    for i in range(12):
        h.gmmu.translate(0x2000 + i * 0x400, got.append)
    h.engine.run()
    assert len(got) == 12
