"""Kill-and-resume equivalence against the committed digest gate.

Each case runs the quick smoke grid with a checkpoint hook that
hard-kills the child process (``os._exit``) the instant its boundary
snapshot is published, resumes every snapshot in a fresh interpreter,
and requires the resumed grid digest to equal the committed
``SMOKE_digest.json`` entry — the digest of an uninterrupted,
never-checkpointed single-engine sweep.  Swept across shard counts
{1, 2} x both shard drive modes x two topology-zoo shapes.
"""

import json
from pathlib import Path

import pytest

from repro.bench.smoke import _grid_key, results_digest, smoke_points
from repro.ckpt.smoke import kill_and_resume_point

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED = json.loads((REPO_ROOT / "SMOKE_digest.json").read_text())

#: (n_shards, parallel) — 1 shard is the single-engine front end; 2
#: shards exercise both coordinator drive modes
EXECUTION_MODES = [
    pytest.param(1, False, id="single-engine"),
    pytest.param(2, False, id="2-shard-sequential"),
    pytest.param(2, True, id="2-shard-parallel"),
]


@pytest.mark.parametrize("topology", ["mesh", "star"])
@pytest.mark.parametrize("n_shards,parallel", EXECUTION_MODES)
def test_killed_grid_resumes_to_the_committed_digest(
    tmp_path, topology, n_shards, parallel
):
    results = []
    for workload, variant in smoke_points(quick=True):
        results.append(
            kill_and_resume_point(
                workload,
                variant,
                snapshot_dir=tmp_path,
                topology=topology,
                n_shards=n_shards,
                parallel=parallel,
            )
        )
    assert results_digest(results) == COMMITTED[_grid_key(True, topology)], (
        f"{topology}/{n_shards}-shard{'-parallel' if parallel else ''}: "
        "killed-and-resumed grid diverged from the uninterrupted digest"
    )


def test_midrun_kill_resumes_byte_identical(tmp_path):
    """mm2 has a true mid-run boundary (kernel 1 of 2): kill there and
    require the resumed result to match an uninterrupted in-process
    run through the canonical digest."""
    from repro.bench.smoke import _variant_config, topology_smoke_config
    from repro.gpu.system import MultiGpuSystem
    from repro.workloads.base import Scale
    from repro.workloads.registry import get_workload

    probe = kill_and_resume_point(
        "mm2", "full", snapshot_dir=tmp_path, kill_at=1
    )
    config = topology_smoke_config("mesh")
    node = MultiGpuSystem(
        config=config, netcrafter=_variant_config("full"), seed=0
    )
    node.load(
        get_workload("mm2").build(n_gpus=config.n_gpus, scale=Scale.small(), seed=0)
    )
    assert results_digest([probe]) == results_digest([node.run().to_dict()])
