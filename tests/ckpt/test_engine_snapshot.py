"""Engine snapshot protocol at the calendar ring's awkward edges.

The calendar ring recycles the current cycle's bucket *lazily*:
``_pop_current`` clears it only on the call after exhaustion, so at any
instant the bucket for ``now`` can hold an already-dispatched prefix
below ``_cur_pos``.  Before ``Engine.__getstate__`` learned to drop that
prefix (the same hazard ``rewind()`` has been bitten by twice), a
snapshot taken there failed in two distinct ways:

* pickling died with ``PicklingError`` whenever a dispatched entry's
  callback was a closure (e.g. a compute unit's read-fill lambda on an
  already-completed request) — dead state vetoing a live snapshot;
* had pickling succeeded, restore would have *resurrected* the
  dispatched prefix and re-executed those events, corrupting the run.

These tests pin the fixed behavior at every ring edge a checkpoint can
land on: mid-bucket, exhausted-but-unrecycled bucket, within HORIZON of
a ring wrap, far-heap entries straddling the restore window, and the
overshoot state ``run(until=...)`` leaves behind.
"""

import pickle

from repro.sim.engine import Engine

HORIZON = Engine.HORIZON

#: dispatch log shared between an engine and its pickled twin — the
#: recorder must be a module-level function so pickle stores it by
#: reference and the restored engine appends to the *same* list
_LOG = []


def _record(tag):
    _LOG.append(tag)


def _roundtrip(engine: Engine) -> Engine:
    return pickle.loads(pickle.dumps(engine))


def test_checkpoint_near_ring_wrap_restores_undispatched_suffix():
    """A snapshot within HORIZON cycles of a wrap keeps exactly the
    undispatched suffix — no lost events, no resurrected ones."""

    def build() -> Engine:
        engine = Engine()
        for t in range(0, 3 * HORIZON, 7):
            engine.schedule_at(t, _record, f"t{t}")
        return engine

    _LOG.clear()
    reference = build()
    reference.run()
    expected = list(_LOG)
    assert len(expected) == (3 * HORIZON + 6) // 7

    # stop just shy of the first wrap: ring indices about to fold over,
    # pending events split between in-ring and far-heap
    cut = HORIZON - 3
    _LOG.clear()
    interrupted = build()
    interrupted.run(until=cut)
    prefix = list(_LOG)
    assert 0 < len(prefix) < len(expected)

    _LOG.clear()
    restored = _roundtrip(interrupted)
    assert restored.now == cut
    assert restored.pending_events() == len(expected) - len(prefix)
    restored.run()
    assert prefix + list(_LOG) == expected
    assert restored.now == reference.now
    assert restored.events_processed == reference.events_processed


def test_dead_prefix_closure_does_not_block_pickling():
    """A dispatched closure lingering in the current bucket's consumed
    prefix must not veto the snapshot (pre-fix: PicklingError)."""
    engine = Engine()
    sentinel = []
    engine.schedule(5, lambda: sentinel.append("dead"))
    engine.schedule(5, _record, "live-1")
    engine.schedule(5, _record, "live-2")
    engine.run(max_events=1)  # dispatches the lambda, keeps the bucket
    assert sentinel == ["dead"]

    _LOG.clear()
    restored = _roundtrip(engine)
    assert restored.pending_events() == 2
    restored.run()
    assert _LOG == ["live-1", "live-2"]

    # the original engine is untouched by being snapshotted
    _LOG.clear()
    engine.run()
    assert _LOG == ["live-1", "live-2"]


def test_exhausted_unrecycled_bucket_is_not_resurrected():
    """``step()`` leaves an exhausted bucket in place until the next
    pop; a snapshot there must not re-execute its entries."""
    engine = Engine()
    engine.schedule(0, _record, "a")
    engine.schedule(0, _record, "b")
    engine.schedule(10, _record, "c")
    _LOG.clear()
    assert engine.step() and engine.step()
    assert _LOG == ["a", "b"]

    _LOG.clear()
    restored = _roundtrip(engine)
    assert restored.pending_events() == 1
    restored.run()
    assert _LOG == ["c"]
    assert restored.now == 10
    assert restored.events_processed == 3


def test_far_heap_straddles_the_restore_window():
    """Restore re-bases the calendar at ``now``: far-heap entries that
    now fit the ring migrate in; later ones stay far.  Order holds."""
    engine = Engine()
    times = [3, HORIZON + 5, 2 * HORIZON + 7, 3 * HORIZON]
    for t in times:
        engine.schedule_at(t, _record, f"t{t}")
    _LOG.clear()
    engine.run(until=HORIZON + 1)
    assert _LOG == ["t3"]

    _LOG.clear()
    restored = _roundtrip(engine)
    restored.run()
    assert _LOG == [f"t{t}" for t in times[1:]]
    assert restored.now == 3 * HORIZON


def test_overshoot_clock_is_preserved():
    """``run(until=T)`` drains early and parks the clock at ``T``; the
    snapshot must keep that clock, not the last event's."""
    engine = Engine()
    engine.schedule(1, _record, "x")
    _LOG.clear()
    engine.run(until=500)
    assert engine.now == 500

    restored = _roundtrip(engine)
    assert restored.now == 500
    assert restored.pending_events() == 0
    restored.schedule(3, _record, "y")
    _LOG.clear()
    restored.run()
    assert _LOG == ["y"]
    assert restored.now == 503


def test_rewind_works_on_a_restored_engine():
    """Sharded kernel replay calls ``rewind()`` between windows; it must
    behave identically on a freshly restored engine."""
    engine = Engine()
    engine.schedule_at(50, _record, "r1")
    engine.schedule_at(700, _record, "r2")
    engine.run(until=60)
    restored = _roundtrip(engine)
    restored.rewind(10)
    assert restored.now == 10
    _LOG.clear()
    restored.run()
    assert _LOG == ["r2"]
    assert restored.now == 700


def test_sequence_counter_survives_the_roundtrip():
    """Post-restore scheduling continues the global sequence, so FIFO
    tie-breaks against pre-snapshot events stay deterministic."""
    engine = Engine()
    engine.schedule(5, _record, "first")
    restored = _roundtrip(engine)
    assert restored._seq == engine._seq
    restored.schedule(5, _record, "second")
    _LOG.clear()
    restored.run()
    assert _LOG == ["first", "second"]
