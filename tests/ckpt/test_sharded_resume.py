"""Sharded checkpoint/resume: byte-identity against the single engine.

Snapshots taken at coordinator-proven kernel boundaries must resume to
the single-engine reference payload regardless of shard count, drive
mode (sequential-windowed vs process-parallel), or which boundary the
run was cut at.  Because sequential and process-parallel runs share
identical shard state, a snapshot from one drive mode must also resume
under the other — the fingerprint deliberately ignores the drive mode.
"""

import shutil

import pytest

from repro.bench.smoke import digestable_payload
from repro.ckpt import (
    Checkpointer,
    attach_checkpointing,
    read_header,
    resume,
    run_fingerprint,
)
from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.shard.coordinator import ShardedSystem
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

#: 4 clusters x 2 GPUs with a short lookahead keeps windowed runs fast
CONFIG = SystemConfig.default().with_overrides(n_clusters=4, inter_link_latency=8)
NC = NetCrafterConfig.full()
WORKLOAD = "mm2"  # two kernels: one mid-run boundary, one final


class KeepEvery(Checkpointer):
    def after_save(self, boundary):
        shutil.copy(self.path, f"{self.path}.b{boundary}")


def _trace():
    return get_workload(WORKLOAD).build(
        n_gpus=CONFIG.n_gpus, scale=Scale.tiny(), seed=0
    )


@pytest.fixture(scope="module")
def trace():
    return _trace()


@pytest.fixture(scope="module")
def reference(trace):
    node = MultiGpuSystem(config=CONFIG, netcrafter=NC, seed=0)
    node.load(trace)
    return digestable_payload(node.run().to_dict())


def _snapshot_all_boundaries(trace, tmp_path, n_shards, parallel):
    fingerprint = run_fingerprint(CONFIG, NC, 0, trace, n_shards=n_shards)
    hook = KeepEvery(path=tmp_path / "s.ckpt", fingerprint=fingerprint, every=1)
    node = ShardedSystem(
        config=CONFIG, netcrafter=NC, seed=0, n_shards=n_shards, parallel=parallel
    )
    attach_checkpointing(node, hook)
    node.load(trace)
    payload = digestable_payload(node.run().to_dict())
    return hook, payload


@pytest.mark.parametrize("parallel", [False, True], ids=["sequential", "parallel"])
@pytest.mark.parametrize("n_shards", [1, 2])
def test_every_boundary_matches_the_single_engine(
    trace, reference, tmp_path, n_shards, parallel
):
    hook, hooked = _snapshot_all_boundaries(trace, tmp_path, n_shards, parallel)
    # pure observer: the checkpointed sharded run still matches the
    # uninterrupted single-engine run
    assert hooked == reference
    assert hook.saved_boundaries == [1, 2]
    for boundary in hook.saved_boundaries:
        path = tmp_path / f"s.ckpt.b{boundary}"
        assert read_header(path)["mode"] == "sharded"
        result = resume(
            path,
            config=CONFIG,
            netcrafter=NC,
            seed=0,
            workload=trace,
            n_shards=n_shards,
            parallel=parallel,
        )
        assert digestable_payload(result.to_dict()) == reference, (
            f"{n_shards}-shard {'parallel' if parallel else 'sequential'} "
            f"boundary {boundary} resumed to a different result"
        )


def test_snapshot_crosses_drive_modes(trace, reference, tmp_path):
    """A sequential snapshot resumes under process-parallel workers and
    vice versa: shard state is drive-mode agnostic."""
    seq_hook, _ = _snapshot_all_boundaries(trace, tmp_path / "seq", 2, False)
    result = resume(
        tmp_path / "seq" / "s.ckpt.b1",
        config=CONFIG,
        netcrafter=NC,
        seed=0,
        workload=trace,
        n_shards=2,
        parallel=True,
    )
    assert digestable_payload(result.to_dict()) == reference

    par_hook, _ = _snapshot_all_boundaries(trace, tmp_path / "par", 2, True)
    result = resume(
        tmp_path / "par" / "s.ckpt.b1",
        config=CONFIG,
        netcrafter=NC,
        seed=0,
        workload=trace,
        n_shards=2,
        parallel=False,
    )
    assert digestable_payload(result.to_dict()) == reference


def test_window_override_rides_the_fingerprint(trace, reference, tmp_path):
    """A narrow-window snapshot resumes byte-identically, and the window
    is part of the fingerprint (a different one refuses)."""
    window = 4
    fingerprint = run_fingerprint(CONFIG, NC, 0, trace, n_shards=2, window=window)
    hook = KeepEvery(path=tmp_path / "w.ckpt", fingerprint=fingerprint, every=1)
    node = ShardedSystem(
        config=CONFIG, netcrafter=NC, seed=0, n_shards=2, window=window
    )
    attach_checkpointing(node, hook)
    node.load(trace)
    assert digestable_payload(node.run().to_dict()) == reference
    result = resume(
        tmp_path / "w.ckpt.b1",
        config=CONFIG,
        netcrafter=NC,
        seed=0,
        workload=trace,
        n_shards=2,
        window=window,
    )
    assert digestable_payload(result.to_dict()) == reference

    from repro.ckpt import FingerprintMismatchError

    with pytest.raises(FingerprintMismatchError):
        resume(
            tmp_path / "w.ckpt.b1",
            config=CONFIG,
            netcrafter=NC,
            seed=0,
            workload=trace,
            n_shards=2,
            window=window + 1,
        )
