"""Single-engine checkpoint/resume: byte-identity at every boundary.

The standing gate in miniature: snapshot a ``MultiGpuSystem`` at each
kernel boundary, resume each snapshot in the same process, and require
the resumed ``RunResult`` to be byte-for-byte the uninterrupted run's.
Also pins the loud-failure contract: mismatched fingerprints, foreign
files, and future format versions all refuse before unpickling.
"""

import json
import shutil

import pytest

from repro.bench.smoke import digestable_payload
from repro.ckpt import (
    SNAPSHOT_FORMAT_VERSION,
    Checkpointer,
    FingerprintMismatchError,
    SnapshotFormatError,
    attach_checkpointing,
    read_header,
    resume,
    run_fingerprint,
)
from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

CONFIG = SystemConfig.default()
NC = NetCrafterConfig.full()


class KeepEvery(Checkpointer):
    """Retain each boundary's snapshot instead of overwriting it."""

    def after_save(self, boundary):
        shutil.copy(self.path, f"{self.path}.b{boundary}")


def _trace(workload: str):
    return get_workload(workload).build(
        n_gpus=CONFIG.n_gpus, scale=Scale.small(), seed=0
    )


def _reference_payload(trace):
    node = MultiGpuSystem(config=CONFIG, netcrafter=NC, seed=0)
    node.load(trace)
    return digestable_payload(node.run().to_dict())


def _checkpointed_run(trace, tmp_path):
    fingerprint = run_fingerprint(CONFIG, NC, 0, trace)
    hook = KeepEvery(path=tmp_path / "s.ckpt", fingerprint=fingerprint, every=1)
    node = MultiGpuSystem(config=CONFIG, netcrafter=NC, seed=0)
    attach_checkpointing(node, hook)
    node.load(trace)
    return hook, digestable_payload(node.run().to_dict())


@pytest.mark.parametrize("workload", ["mm2", "lenet"])
def test_every_boundary_resumes_byte_identical(workload, tmp_path):
    trace = _trace(workload)
    reference = _reference_payload(trace)
    hook, hooked = _checkpointed_run(trace, tmp_path)
    # the hook is a pure observer: the checkpointed run itself is
    # indistinguishable from the unhooked one
    assert hooked == reference
    # one snapshot per kernel boundary, final boundary included
    assert hook.saved_boundaries == list(range(1, len(trace.kernels) + 1))
    for boundary in hook.saved_boundaries:
        result = resume(
            tmp_path / f"s.ckpt.b{boundary}",
            config=CONFIG,
            netcrafter=NC,
            seed=0,
            workload=trace,
        )
        assert digestable_payload(result.to_dict()) == reference, (
            f"boundary {boundary} resumed to a different result"
        )


def test_every_option_skips_intermediate_boundaries(tmp_path):
    trace = _trace("lenet")
    fingerprint = run_fingerprint(CONFIG, NC, 0, trace)
    hook = Checkpointer(path=tmp_path / "s.ckpt", fingerprint=fingerprint, every=4)
    node = MultiGpuSystem(config=CONFIG, netcrafter=NC, seed=0)
    attach_checkpointing(node, hook)
    node.load(trace)
    node.run()
    # every 4th boundary plus the final one (lenet has 10 kernels)
    assert hook.saved_boundaries == [4, 8, 10]


class TestLoudFailures:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        trace = _trace("mm2")
        hook, _ = _checkpointed_run(trace, tmp_path)
        return tmp_path / "s.ckpt.b1", trace

    def test_mismatched_seed_refuses(self, snapshot):
        path, trace = snapshot
        with pytest.raises(FingerprintMismatchError):
            resume(path, config=CONFIG, netcrafter=NC, seed=1, workload=trace)

    def test_mismatched_system_config_refuses(self, snapshot):
        path, trace = snapshot
        other = CONFIG.with_overrides(
            inter_link_latency=CONFIG.effective_inter_link_latency + 1
        )
        with pytest.raises(FingerprintMismatchError):
            resume(path, config=other, netcrafter=NC, seed=0, workload=trace)

    def test_mismatched_netcrafter_config_refuses(self, snapshot):
        path, trace = snapshot
        with pytest.raises(FingerprintMismatchError):
            resume(
                path,
                config=CONFIG,
                netcrafter=NetCrafterConfig.baseline(),
                seed=0,
                workload=trace,
            )

    def test_mismatched_workload_refuses(self, snapshot):
        path, _ = snapshot
        with pytest.raises(FingerprintMismatchError):
            resume(
                path, config=CONFIG, netcrafter=NC, seed=0, workload=_trace("gups")
            )

    def test_single_snapshot_refuses_sharded_resume(self, snapshot):
        path, trace = snapshot
        with pytest.raises(FingerprintMismatchError):
            resume(
                path,
                config=CONFIG,
                netcrafter=NC,
                seed=0,
                workload=trace,
                n_shards=2,
            )

    def test_foreign_file_is_not_a_snapshot(self, tmp_path):
        path = tmp_path / "not-a-snapshot"
        path.write_bytes(b"definitely not a checkpoint\n")
        with pytest.raises(SnapshotFormatError):
            read_header(path)

    def test_future_format_version_refuses(self, snapshot, tmp_path):
        path, _ = snapshot
        raw = path.read_bytes()
        magic, header_line, payload = raw.split(b"\n", 2)
        header = json.loads(header_line)
        header["format"] = SNAPSHOT_FORMAT_VERSION + 1
        doctored = tmp_path / "future.ckpt"
        doctored.write_bytes(
            magic + b"\n" + json.dumps(header).encode() + b"\n" + payload
        )
        with pytest.raises(SnapshotFormatError):
            read_header(doctored)

    def test_header_reads_without_unpickling(self, snapshot):
        path, _ = snapshot
        header = read_header(path)
        assert header["mode"] == "single"
        assert header["boundary"] == 1
        assert header["format"] == SNAPSHOT_FORMAT_VERSION
