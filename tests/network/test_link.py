"""Tests for flit- and packet-granularity links."""

import math
from fractions import Fraction

import pytest

from repro.network.flit import segment_packet
from repro.network.link import (
    FlitLink,
    LinkStats,
    PacketLink,
    UtilizationOvercountError,
)
from repro.network.packet import Packet, PacketType
from repro.sim.engine import Engine


def _flit(ptype=PacketType.READ_REQ):
    return segment_packet(Packet(ptype=ptype, src_gpu=0, dst_gpu=2), 16)[0]


def _rsp_flits():
    return segment_packet(Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=2), 16)


class TestFlitLink:
    def test_delivery_after_serialization_and_latency(self):
        eng = Engine()
        arrivals = []
        link = FlitLink(eng, "l", 16.0, latency=8, sink=lambda f: arrivals.append(eng.now))
        link.send(_flit())
        eng.run()
        assert arrivals == [1 + 8]

    def test_one_flit_per_cycle_at_flit_bandwidth(self):
        eng = Engine()
        arrivals = []
        link = FlitLink(eng, "l", 16.0, latency=0, sink=lambda f: arrivals.append(eng.now))

        def pump(n):
            if n == 0:
                return
            if link.is_ready():
                link.send(_flit())
                n -= 1
            eng.schedule_at(link.ready_at(), pump, n)

        eng.schedule(0, pump, 4)
        eng.run()
        assert arrivals == [1, 2, 3, 4]

    def test_fast_link_takes_multiple_flits_per_cycle(self):
        eng = Engine()
        arrivals = []
        link = FlitLink(eng, "l", 128.0, latency=0, sink=lambda f: arrivals.append(eng.now))
        sent = 0
        while link.is_ready() and sent < 8:
            link.send(_flit())
            sent += 1
        assert sent == 8  # eight 16 B flits fit in one 128 B cycle
        assert not link.is_ready()
        assert link.ready_at() == 1

    def test_send_before_ready_raises(self):
        eng = Engine()
        link = FlitLink(eng, "l", 16.0, latency=0, sink=lambda f: None)
        link.send(_flit())
        with pytest.raises(RuntimeError):
            link.send(_flit())

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            FlitLink(Engine(), "l", 0.0, latency=0, sink=lambda f: None)

    def test_stats_accumulate(self):
        eng = Engine()
        link = FlitLink(eng, "l", 16.0, latency=0, sink=lambda f: None)
        link.send(_flit())  # read req: 12 useful of 16
        eng.run()
        assert link.stats.flits == 1
        assert link.stats.wire_bytes == 16
        assert link.stats.useful_bytes == 12
        assert link.stats.busy_cycles == pytest.approx(1.0)

    def test_utilization(self):
        eng = Engine()
        link = FlitLink(eng, "l", 16.0, latency=0, sink=lambda f: None)
        link.send(_flit())
        eng.run()
        assert link.stats.utilization(10) == pytest.approx(0.1)
        assert link.stats.utilization(0) == 0.0

    def test_stitched_flit_useful_bytes_exclude_partial_metadata(self):
        eng = Engine()
        link = FlitLink(eng, "l", 16.0, latency=0, sink=lambda f: None)
        parent = _rsp_flits()[-1]  # tail: 4 used, 12 empty
        candidate = _rsp_flits()[-1]  # partial-payload: 4 used + 3 B metadata
        parent.absorb(candidate)
        link.send(parent)
        eng.run()
        assert link.stats.wire_bytes == 16
        # only real payload counts: 4 (parent) + 4 (absorbed), not the
        # 3-byte ID/Size prefix the partial segment spends on the wire
        assert link.stats.useful_bytes == 8

    def test_whole_packet_segment_counts_fully_useful(self):
        eng = Engine()
        link = FlitLink(eng, "l", 16.0, latency=0, sink=lambda f: None)
        parent = _rsp_flits()[-1]  # 4 used, 12 empty
        candidate = _flit(PacketType.READ_REQ)  # whole packet, 12 used
        parent.absorb(candidate)
        link.send(parent)
        eng.run()
        # a whole-packet segment has no metadata prefix: 4 + 12 all useful
        assert link.stats.useful_bytes == 16


class TestUtilizationOvercount:
    def test_overcount_recorded_not_hidden(self):
        """Regression: busy > elapsed used to clamp to 1.0 silently,
        hiding upstream double-count bugs behind a plausible plot."""
        stats = LinkStats()
        stats.busy_cycles = 150.0
        assert stats.utilization(100) == 1.0
        assert stats.overcounted
        assert stats.overcount_cycles == pytest.approx(50.0)

    def test_strict_mode_raises(self):
        stats = LinkStats()
        stats.strict = True
        stats.busy_cycles = 150.0
        with pytest.raises(UtilizationOvercountError):
            stats.utilization(100)

    def test_float_headroom_tolerated(self):
        stats = LinkStats()
        stats.strict = True
        # sub-tolerance float accumulation drift is not an overcount
        stats.busy_cycles = 100.0 + 100 * LinkStats.OVERCOUNT_TOLERANCE / 2
        assert stats.utilization(100) == 1.0
        assert not stats.overcounted

    def test_worst_excess_retained(self):
        stats = LinkStats()
        stats.busy_cycles = 150.0
        stats.utilization(100)
        stats.utilization(120)  # smaller excess must not shrink the record
        assert stats.overcount_cycles == pytest.approx(50.0)

    def test_healthy_utilization_unchanged(self):
        stats = LinkStats()
        stats.strict = True
        stats.busy_cycles = 73.0
        assert stats.utilization(100) == pytest.approx(0.73)
        assert not stats.overcounted


class TestIntegerAccounting:
    """Regression tests for float-drift in link timekeeping.

    Both link classes used to advance a float ``_next_free`` by repeated
    ``size / bytes_per_cycle`` additions and to accumulate ``busy_cycles``
    the same way, which drifts on non-power-of-two bandwidths.  Busy time
    is now an exact byte count divided once at query time, and readiness
    arithmetic is integer throughout.
    """

    def _saturate(self, eng, link, n_flits):
        def pump(remaining):
            if remaining == 0:
                return
            if link.is_ready():
                link.send(_flit())
                remaining -= 1
            eng.schedule_at(link.ready_at(), pump, remaining)

        eng.schedule(0, pump, n_flits)
        eng.run()

    def test_busy_time_is_one_division_over_exact_bytes(self):
        eng = Engine()
        link = FlitLink(eng, "l", 1.1, latency=0, sink=lambda f: None)
        link.stats.strict = True
        self._saturate(eng, link, 1000)
        assert link.stats.busy_bytes == 1000 * 16
        num, den = (1.1).as_integer_ratio()
        # exactly the single division the stats perform — no accumulation
        assert link.stats.busy_cycles == (1000 * 16 * den) / num

    @pytest.mark.parametrize("bpc", [0.3, 1.1, 12.8, 100 / 3])
    def test_no_overcount_at_fractional_bandwidth(self, bpc):
        eng = Engine()
        link = FlitLink(eng, "l", bpc, latency=0, sink=lambda f: None)
        link.stats.strict = True
        self._saturate(eng, link, 500)
        assert link.stats.utilization(eng.now) <= 1.0  # strict: no raise
        assert not link.stats.overcounted

    def test_timestamps_stay_integers(self):
        eng = Engine()
        arrivals = []
        link = FlitLink(
            eng, "l", 0.3, latency=3, sink=lambda f: arrivals.append(eng.now)
        )
        self._saturate(eng, link, 20)
        assert arrivals == sorted(arrivals)
        assert all(type(t) is int for t in arrivals)
        assert type(link.ready_at()) is int

    def test_packet_link_arrivals_follow_exact_ceilings(self):
        """Back-to-back 80 B packets at 12.8 B/cycle land on the exact
        rational serialization boundaries, not float approximations."""
        eng = Engine()
        arrivals = []
        link = PacketLink(
            eng, "l", 12.8, latency=0, flit_size=16,
            sink=lambda p: arrivals.append(eng.now),
        )
        for _ in range(4):
            link.send(Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1))
        eng.run()
        bpc = Fraction(12.8)  # the exact value of the float, as a rational
        expected = [math.ceil(Fraction(k * 80) / bpc) for k in range(1, 5)]
        assert arrivals == expected

    def test_packet_link_busy_bytes_exact(self):
        eng = Engine()
        link = PacketLink(
            eng, "l", 12.8, latency=0, flit_size=16, sink=lambda p: None
        )
        link.stats.strict = True
        for _ in range(50):
            link.send(Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1))
        eng.run()
        assert link.stats.busy_bytes == 50 * 80
        assert link.stats.utilization(eng.now) <= 1.0
        assert not link.stats.overcounted


class TestPacketLink:
    def test_whole_packet_delivered_once(self):
        eng = Engine()
        arrivals = []
        link = PacketLink(
            eng, "l", 16.0, latency=8, flit_size=16,
            sink=lambda p: arrivals.append((eng.now, p)),
        )
        pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1)
        assert link.send(pkt)
        eng.run()
        # 5 flits at 1 flit/cycle = 5 cycles serialization + 8 latency
        assert arrivals[0][0] == 5 + 8
        assert arrivals[0][1] is pkt

    def test_serialization_respects_bandwidth(self):
        eng = Engine()
        arrivals = []
        link = PacketLink(
            eng, "l", 128.0, latency=0, flit_size=16,
            sink=lambda p: arrivals.append(eng.now),
        )
        for _ in range(3):
            link.send(Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1))
        eng.run()
        # each 80 B packet takes 80/128 cycles; three finish within 2 cycles
        assert arrivals == [1, 2, 2]

    def test_fifo_order(self):
        eng = Engine()
        arrivals = []
        link = PacketLink(
            eng, "l", 16.0, latency=0, flit_size=16,
            sink=lambda p: arrivals.append(p.pid),
        )
        pkts = [Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1) for _ in range(4)]
        for p in pkts:
            link.send(p)
        eng.run()
        assert arrivals == [p.pid for p in pkts]

    def test_backpressure_when_buffer_full(self):
        eng = Engine()
        link = PacketLink(
            eng, "l", 16.0, latency=0, flit_size=16,
            sink=lambda p: None, buffer_entries=2,
        )
        ok = [link.send(Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1)) for _ in range(3)]
        assert ok == [True, True, False]

    def test_notify_on_space_after_drain(self):
        eng = Engine()
        link = PacketLink(
            eng, "l", 16.0, latency=0, flit_size=16,
            sink=lambda p: None, buffer_entries=1,
        )
        link.send(Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1))
        fired = []
        link.notify_on_space(lambda: fired.append(eng.now))
        eng.run()
        assert fired  # woke up once the queue drained

    def test_stats(self):
        eng = Engine()
        link = PacketLink(eng, "l", 16.0, latency=0, flit_size=16, sink=lambda p: None)
        link.send(Packet(ptype=PacketType.WRITE_REQ, src_gpu=0, dst_gpu=1))
        eng.run()
        assert link.stats.packets == 1
        assert link.stats.flits == 5
        assert link.stats.wire_bytes == 80
        assert link.stats.useful_bytes == 76
