"""Tests for packet layouts — including the Table 1 reproduction."""

import pytest
from hypothesis import given, strategies as st

from repro.network.packet import (
    CACHE_LINE_BYTES,
    HEADER_BYTES,
    PAYLOAD_BYTES,
    TABLE1_TYPES,
    Packet,
    PacketType,
    packet_census_row,
)

#: Table 1 of the paper, verbatim (16 B flits)
TABLE1 = {
    PacketType.READ_REQ: dict(bytes_occupied=16, bytes_required=12, bytes_padded=4, flits_occupied=1),
    PacketType.WRITE_REQ: dict(bytes_occupied=80, bytes_required=76, bytes_padded=4, flits_occupied=5),
    PacketType.PT_REQ: dict(bytes_occupied=16, bytes_required=12, bytes_padded=4, flits_occupied=1),
    PacketType.READ_RSP: dict(bytes_occupied=80, bytes_required=68, bytes_padded=12, flits_occupied=5),
    PacketType.WRITE_RSP: dict(bytes_occupied=16, bytes_required=4, bytes_padded=12, flits_occupied=1),
    PacketType.PT_RSP: dict(bytes_occupied=16, bytes_required=12, bytes_padded=4, flits_occupied=1),
}


@pytest.mark.parametrize("ptype", TABLE1_TYPES)
def test_table1_census_matches_paper(ptype):
    assert packet_census_row(ptype, 16) == TABLE1[ptype]


def test_table1_types_are_the_paper_six():
    assert len(TABLE1_TYPES) == 6
    assert PacketType.INV_REQ not in TABLE1_TYPES
    assert PacketType.INV_RSP not in TABLE1_TYPES


def test_coherence_extension_types():
    """INV packets are tiny, single-flit, highly stitchable extension
    traffic (Section 4.5 future work)."""
    inv_req = Packet(ptype=PacketType.INV_REQ, src_gpu=0, dst_gpu=2)
    inv_rsp = Packet(ptype=PacketType.INV_RSP, src_gpu=2, dst_gpu=0)
    assert inv_req.bytes_required == 12
    assert inv_req.flit_count(16) == 1
    assert inv_rsp.bytes_required == 4
    assert inv_rsp.bytes_padded(16) == 12
    assert PacketType.INV_REQ.is_coherence
    assert PacketType.INV_RSP.is_response
    assert not PacketType.INV_REQ.is_ptw
    assert not PacketType.READ_REQ.is_coherence


@pytest.mark.parametrize("ptype", list(PacketType))
def test_bytes_required_is_header_plus_payload(ptype):
    pkt = Packet(ptype=ptype, src_gpu=0, dst_gpu=1)
    assert pkt.bytes_required == HEADER_BYTES[ptype] + PAYLOAD_BYTES[ptype]


def test_ptw_classification():
    assert PacketType.PT_REQ.is_ptw
    assert PacketType.PT_RSP.is_ptw
    assert not PacketType.READ_REQ.is_ptw
    assert not PacketType.READ_RSP.is_ptw


def test_response_classification():
    assert PacketType.READ_RSP.is_response
    assert PacketType.WRITE_RSP.is_response
    assert PacketType.PT_RSP.is_response
    assert not PacketType.READ_REQ.is_response


def test_default_payload_from_type():
    pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1)
    assert pkt.payload_bytes == CACHE_LINE_BYTES


def test_explicit_payload_respected():
    pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1, payload_bytes=16)
    assert pkt.bytes_required == 4 + 16
    assert pkt.flit_count(16) == 2


def test_trimmed_flag():
    pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1)
    assert not pkt.trimmed
    pkt.original_payload_bytes = pkt.payload_bytes
    pkt.payload_bytes = 16
    assert pkt.trimmed


def test_packet_ids_unique():
    a = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1)
    b = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1)
    assert a.pid != b.pid


def test_flit_count_with_8_byte_flits():
    pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=1)
    # 68 required bytes -> 9 flits of 8 B (72 B occupied, 4 padded)
    assert pkt.flit_count(8) == 9
    assert pkt.bytes_padded(8) == 4


@given(
    ptype=st.sampled_from(list(PacketType)),
    flit_size=st.sampled_from([4, 8, 16, 32, 64]),
)
def test_padding_is_always_less_than_one_flit(ptype, flit_size):
    """Property: padding never reaches a full flit (else it would shrink)."""
    pkt = Packet(ptype=ptype, src_gpu=0, dst_gpu=1)
    assert 0 <= pkt.bytes_padded(flit_size) < flit_size
    assert pkt.bytes_occupied(flit_size) == pkt.flit_count(flit_size) * flit_size


@given(
    ptype=st.sampled_from(list(PacketType)),
    payload=st.integers(0, 64),
    flit_size=st.sampled_from([8, 16]),
)
def test_occupied_covers_required(ptype, payload, flit_size):
    pkt = Packet(ptype=ptype, src_gpu=0, dst_gpu=1, payload_bytes=payload)
    assert pkt.bytes_occupied(flit_size) >= pkt.bytes_required
    assert pkt.flit_count(flit_size) >= 1
