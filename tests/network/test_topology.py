"""Tests for the topology builder."""

from repro.config import SystemConfig
from repro.network.topology import build_topology
from repro.sim.engine import Engine


class _FakeGpu:
    def __init__(self):
        self.uplink = None
        self.received = []

    def attach_uplink(self, link):
        self.uplink = link

    def receive_packet(self, packet):
        self.received.append(packet)


class _FakeController:
    def __init__(self, name, link, src, dst):
        self.name = name
        self.link = link
        self.src = src
        self.dst = dst

    def accept_packet(self, packet):  # pragma: no cover - wiring only
        pass


def _build(config):
    eng = Engine()
    gpus = {g: _FakeGpu() for g in range(config.n_gpus)}
    topo = build_topology(eng, config, gpus, _FakeController)
    return eng, gpus, topo


def test_default_two_by_two():
    config = SystemConfig.default()
    _eng, gpus, topo = _build(config)
    assert len(topo.switches) == 2
    assert len(topo.gpu_uplinks) == 4
    assert len(topo.gpu_downlinks) == 4
    assert len(topo.inter_links) == 2  # one per direction
    assert len(topo.controllers) == 2
    assert all(gpu.uplink is not None for gpu in gpus.values())


def test_controllers_cover_all_cluster_pairs():
    config = SystemConfig.default().with_overrides(n_clusters=3)
    _eng, _gpus, topo = _build(config)
    pairs = {(c.src, c.dst) for c in topo.controllers}
    expected = {(a, b) for a in range(3) for b in range(3) if a != b}
    assert pairs == expected
    assert len(topo.inter_links) == 6


def test_link_bandwidths_match_config():
    config = SystemConfig.default().with_overrides(
        intra_cluster_bw=256.0, inter_cluster_bw=32.0
    )
    _eng, _gpus, topo = _build(config)
    for link in topo.inter_links:
        assert link.bytes_per_cycle == 32.0
    for link in topo.intra_links():
        assert link.bytes_per_cycle == 256.0


def test_intra_links_counts_up_and_down():
    config = SystemConfig.default()
    _eng, _gpus, topo = _build(config)
    assert len(topo.intra_links()) == 8  # 4 uplinks + 4 downlinks


def test_switch_flit_size_propagated():
    config = SystemConfig.default().with_overrides(flit_size=8)
    _eng, _gpus, topo = _build(config)
    for switch in topo.switches.values():
        assert switch.flit_size == 8
        assert switch.reassembly.flit_size == 8
