"""Cross-mode bit-identity for every new fabric shape.

The sharding guarantee the mesh and ring always had — sequential-
windowed and process-parallel runs reproduce the single engine
byte-for-byte — must hold for each zoo topology, including the ones
with virtual switch nodes (star hub, fat-tree spines) that the last
shard owns.
"""

import pytest

from repro.bench.smoke import results_digest, topology_smoke_config
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.shard.coordinator import ShardedSystem
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

NEW_SHAPES = ("star", "fat_tree", "torus3d")


def _digest(config, node):
    trace = get_workload("gups").build(
        n_gpus=config.n_gpus, scale=Scale.tiny(), seed=0
    )
    node.load(trace)
    return results_digest([node.run().to_dict()])


def _single(config):
    return _digest(
        config,
        MultiGpuSystem(config=config, netcrafter=NetCrafterConfig.full(), seed=0),
    )


def _sharded(config, **kwargs):
    return _digest(
        config,
        ShardedSystem(
            config=config, netcrafter=NetCrafterConfig.full(), seed=0, **kwargs
        ),
    )


@pytest.mark.parametrize("topology", NEW_SHAPES)
def test_sequential_windowed_reproduces_the_single_engine(topology):
    config = topology_smoke_config(topology)
    assert _sharded(config, n_shards=2) == _single(config)


@pytest.mark.parametrize("topology", NEW_SHAPES)
def test_process_parallel_reproduces_the_single_engine(topology):
    config = topology_smoke_config(topology)
    assert _sharded(config, n_shards=2, parallel=True) == _single(config)


def test_narrow_window_reproduces_the_single_engine():
    # window=1 maximizes coordinator round-trips, the harshest ordering
    # test for virtual-node mailbox traffic
    config = topology_smoke_config("star")
    assert _sharded(config, n_shards=2, window=1) == _single(config)


def test_bandwidth_overrides_change_results_but_stay_shardable():
    base = topology_smoke_config("star")
    skewed = base.with_overrides(link_bw_overrides={"up": 4.0, "down": 64.0})
    assert _single(skewed) != _single(base)
    assert _sharded(skewed, n_shards=2) == _single(skewed)
