"""Unit tests for the pluggable topology registry (the zoo).

Every spec is checked against the same structural contracts the builder
and the shard merge rely on: canonical source-ascending edge order,
complete shortest-path route tables (verified against BFS distances on
the spec's own edge list), and declared bandwidth classes covering
every emitted edge.
"""

from collections import deque

import pytest

from repro.config import SystemConfig
from repro.network.topologies import (
    FatTreeTopology,
    MeshTopology,
    RingTopology,
    StarTopology,
    TopoEdge,
    TopologySpec,
    Torus3dTopology,
    default_torus_dims,
    get_topology,
    register_topology,
    topology_names,
)

SHIPPED = ("mesh", "ring", "star", "fat_tree", "torus3d")


def _config(topology, n_clusters, **overrides):
    return SystemConfig.default().with_overrides(
        inter_topology=topology,
        n_clusters=n_clusters,
        gpus_per_cluster=1,
        **overrides,
    )


def _bfs_distances(edges, n_nodes):
    """Hop distance between every node pair on the directed edge list."""
    adj = {node: [] for node in range(n_nodes)}
    for edge in edges:
        adj[edge.src].append(edge.dst)
    dist = {}
    for start in range(n_nodes):
        dist[(start, start)] = 0
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neigh in adj[node]:
                if (start, neigh) not in dist:
                    dist[(start, neigh)] = dist[(start, node)] + 1
                    frontier.append(neigh)
    return dist


def _follow_route(spec, config, src, dst):
    """Walk the route table from ``src`` to ``dst``; returns the hop path."""
    routes = spec.routes(config)
    edges = {(e.src, e.dst) for e in spec.edges(config)}
    path = [src]
    node = src
    for _ in range(spec.n_nodes(config)):
        via = routes.get((node, dst), dst)
        assert (node, via) in edges, (
            f"{spec.name}: route at node {node} toward {dst} uses "
            f"non-existent edge {(node, via)}"
        )
        path.append(via)
        if via == dst:
            return path
        node = via
    raise AssertionError(f"{spec.name}: route {src}->{dst} never terminates")


# -- registry ----------------------------------------------------------------


def test_all_shipped_topologies_registered():
    names = topology_names()
    for name in SHIPPED:
        assert name in names
    assert names == sorted(names)


def test_unknown_topology_error_lists_registered_names():
    with pytest.raises(ValueError, match="hypercube"):
        get_topology("hypercube")
    with pytest.raises(ValueError, match="mesh"):
        get_topology("hypercube")


def test_register_requires_a_name():
    with pytest.raises(ValueError, match="name"):
        register_topology(TopologySpec())


def test_registration_last_wins_and_is_restorable():
    original = get_topology("mesh")

    class _Override(MeshTopology):
        pass

    override = _Override()
    try:
        assert register_topology(override) is override
        assert get_topology("mesh") is override
    finally:
        register_topology(original)
    assert get_topology("mesh") is original


# -- structural contracts, every spec ----------------------------------------


@pytest.mark.parametrize("name", SHIPPED)
@pytest.mark.parametrize("n_clusters", [2, 3, 4, 6, 8])
def test_edges_are_canonically_ordered(name, n_clusters):
    config = _config(name, n_clusters)
    spec = get_topology(name)
    edges = spec.edges(config)
    srcs = [edge.src for edge in edges]
    assert srcs == sorted(srcs), f"{name}: sources not ascending"
    assert len(set(edges)) == len(edges), f"{name}: duplicate edges"
    n_nodes = spec.n_nodes(config)
    for edge in edges:
        assert 0 <= edge.src < n_nodes and 0 <= edge.dst < n_nodes
        assert edge.src != edge.dst
        assert edge.bw_class in spec.bw_classes


@pytest.mark.parametrize("name", SHIPPED)
@pytest.mark.parametrize("n_clusters", [2, 3, 4, 6, 8])
def test_routes_reach_every_cluster_shortest_path(name, n_clusters):
    config = _config(name, n_clusters)
    spec = get_topology(name)
    dist = _bfs_distances(spec.edges(config), spec.n_nodes(config))
    for src in range(spec.n_nodes(config)):
        for dst in range(config.n_clusters):
            if src == dst:
                continue
            path = _follow_route(spec, config, src, dst)
            assert len(path) - 1 == dist[(src, dst)], (
                f"{name}: route {src}->{dst} takes {len(path) - 1} hops, "
                f"shortest is {dist[(src, dst)]}"
            )


@pytest.mark.parametrize("name", SHIPPED)
def test_multi_hop_flag_matches_route_table(name):
    config = _config(name, 4)
    spec = get_topology(name)
    dist = _bfs_distances(spec.edges(config), spec.n_nodes(config))
    longest = max(
        dist[(src, dst)]
        for src in range(config.n_clusters)
        for dst in range(config.n_clusters)
    )
    assert spec.multi_hop(config) == (longest > 1)


@pytest.mark.parametrize("name", SHIPPED)
def test_describe_mentions_the_name(name):
    config = _config(name, 4)
    assert name in get_topology(name).describe(config)


# -- per-shape behaviour ------------------------------------------------------


def test_mesh_is_all_pairs_single_hop():
    config = _config("mesh", 4)
    spec = get_topology("mesh")
    assert spec.edges(config) == [
        TopoEdge(src, dst)
        for src in range(4)
        for dst in range(4)
        if src != dst
    ]
    assert spec.routes(config) == {}
    assert not spec.multi_hop(config)


def test_ring_edge_order_matches_historical_builder():
    # the exact order the pre-zoo hard-wired builder emitted; the
    # committed smoke digests depend on it
    config = _config("ring", 5)
    spec = get_topology("ring")
    expected = [
        TopoEdge(src, dst)
        for src in range(5)
        for dst in ((src + 1) % 5, (src - 1) % 5)
    ]
    assert spec.edges(config) == expected


def test_ring_two_clusters_degenerates_to_mesh():
    config = _config("ring", 2)
    spec = get_topology("ring")
    assert spec.edges(config) == get_topology("mesh").edges(config)
    assert spec.routes(config) == {}
    assert not spec.multi_hop(config)


def test_star_hub_is_a_virtual_node():
    config = _config("star", 4)
    spec = get_topology("star")
    assert isinstance(spec, StarTopology)
    assert spec.n_nodes(config) == 5
    assert spec.hub(config) == 4
    assert spec.edges(config) == (
        [TopoEdge(src, 4, "up") for src in range(4)]
        + [TopoEdge(4, dst, "down") for dst in range(4)]
    )
    routes = spec.routes(config)
    for src in range(4):
        for dst in range(4):
            if src != dst:
                assert routes[(src, dst)] == 4
    for dst in range(4):
        assert routes[(4, dst)] == dst


def test_star_needs_two_clusters():
    with pytest.raises(ValueError, match="star"):
        _config("star", 1)


def test_fat_tree_oversubscription_thins_the_spine_tier():
    spec = get_topology("fat_tree")
    assert isinstance(spec, FatTreeTopology)
    full = _config("fat_tree", 8)
    thin = _config("fat_tree", 8, fat_tree_oversubscription=2)
    assert spec.spines(full) == 4
    assert spec.spines(thin) == 2
    assert spec.spines(_config("fat_tree", 2, fat_tree_oversubscription=4)) == 1
    # every leaf uplinks to every spine, every spine downlinks to every leaf
    assert len(spec.edges(full)) == 2 * 8 * 4
    assert len(spec.edges(thin)) == 2 * 8 * 2


def test_fat_tree_spreads_destinations_across_spines():
    config = _config("fat_tree", 8)
    spec = get_topology("fat_tree")
    routes = spec.routes(config)
    used_spines = {routes[(0, dst)] for dst in range(1, 8)}
    assert len(used_spines) > 1  # static ECMP analogue, not one hot spine


def test_default_torus_dims_most_cube_like():
    assert default_torus_dims(8) == (2, 2, 2)
    assert default_torus_dims(4) == (1, 2, 2)
    assert default_torus_dims(6) == (1, 2, 3)
    assert default_torus_dims(12) == (2, 2, 3)
    assert default_torus_dims(7) == (1, 1, 7)
    assert default_torus_dims(64) == (4, 4, 4)
    for n in range(1, 65):
        x, y, z = default_torus_dims(n)
        assert x * y * z == n and x <= y <= z


def test_torus_1x1xn_is_exactly_the_ring():
    config = _config("torus3d", 5, torus_dims=(1, 1, 5))
    torus = get_topology("torus3d")
    ring = get_topology("ring")
    assert [
        (e.src, e.dst) for e in torus.edges(config)
    ] == [(e.src, e.dst) for e in ring.edges(config)]
    assert torus.routes(config) == ring.routes(config)


def test_torus_size_two_dimension_has_one_link_not_two():
    config = _config("torus3d", 8)  # 2x2x2
    spec = get_topology("torus3d")
    assert isinstance(spec, Torus3dTopology)
    edges = spec.edges(config)
    # 8 nodes x 3 dimensions x 1 neighbour (size-2 wrap == direct)
    assert len(edges) == 24
    assert len(set((e.src, e.dst) for e in edges)) == 24


def test_torus_dims_must_multiply_to_n_clusters():
    with pytest.raises(ValueError, match="torus_dims"):
        _config("torus3d", 6, torus_dims=(2, 2, 2))


def test_torus_bandwidth_classes_follow_dimensions():
    config = _config("torus3d", 12, torus_dims=(2, 2, 3))
    spec = get_topology("torus3d")
    classes = {e.bw_class for e in spec.edges(config)}
    assert classes == {"x", "y", "z"}


def test_ring_spec_class_sanity():
    assert isinstance(get_topology("ring"), RingTopology)
    assert isinstance(get_topology("mesh"), MeshTopology)
