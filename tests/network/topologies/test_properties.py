"""Property tests over the topology zoo (hypothesis).

Three contracts the rest of the simulator leans on:

* ring routing is shortest-path with the clockwise tie-break, for any
  cluster count (odd and even — even rings are where ties occur);
* ``inter_pairs`` is deterministic and source-ascending for every
  registered topology, so contiguous shard node ranges always map to
  contiguous slices of the global link list;
* a partial (``owned_clusters``) build installs exactly the routes the
  full build installs on those switches — shards cannot diverge from
  the single engine by construction.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.config import SystemConfig
from repro.network.link import FlitLink
from repro.network.topology import build_topology, inter_pairs, topology_spec
from repro.shard.partition import ShardPlan
from repro.sim.engine import Engine

SHIPPED = ("mesh", "ring", "star", "fat_tree", "torus3d")


def _config(topology, n_clusters, **overrides):
    return SystemConfig.default().with_overrides(
        inter_topology=topology,
        n_clusters=n_clusters,
        gpus_per_cluster=1,
        **overrides,
    )


class _FakeGpu:
    def attach_uplink(self, link):
        self.uplink = link

    def receive_packet(self, packet):  # pragma: no cover - wiring only
        pass


class _FakeController:
    def __init__(self, name, link, src, dst):
        self.name = name
        self.link = link
        self.src = src
        self.dst = dst

    def accept_packet(self, packet):  # pragma: no cover - wiring only
        pass


# -- ring routes --------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=3, max_value=65))
def test_ring_routes_are_shortest_path_with_clockwise_ties(n):
    config = _config("ring", n)
    routes = topology_spec(config).routes(config)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                assert (src, dst) not in routes
                continue
            clockwise = (dst - src) % n
            counter = (src - dst) % n
            via = routes[(src, dst)]
            assert via in ((src + 1) % n, (src - 1) % n)  # adjacent hop
            if clockwise < counter:
                assert via == (src + 1) % n
            elif counter < clockwise:
                assert via == (src - 1) % n
            else:  # even ring, antipodal pair: tie broken clockwise
                assert via == (src + 1) % n


# -- canonical order ----------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(SHIPPED),
    n=st.integers(min_value=2, max_value=40),
)
def test_inter_pairs_is_stable_and_source_ascending(name, n):
    config = _config(name, n)
    pairs = inter_pairs(config)
    assert pairs == inter_pairs(config)  # deterministic
    srcs = [src for src, _dst in pairs]
    assert srcs == sorted(srcs)
    assert len(set(pairs)) == len(pairs)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(SHIPPED),
    n_shards=st.sampled_from([1, 2, 4]),
    multiplier=st.integers(min_value=1, max_value=6),
)
def test_shard_slices_concatenate_to_the_global_order(name, n_shards, multiplier):
    assume(n_shards * multiplier >= 2)  # star/fat_tree need 2+ clusters
    config = _config(name, n_shards * multiplier)
    plan = ShardPlan.from_config(config, n_shards)
    pairs = inter_pairs(config)
    merged = []
    for shard in range(n_shards):
        owned = set(plan.nodes_of(shard))
        merged.extend(p for p in pairs if p[0] in owned)
    assert merged == pairs


# -- partial builds -----------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(SHIPPED),
    multiplier=st.integers(min_value=1, max_value=4),
)
def test_partial_build_installs_the_full_builds_routes(name, multiplier):
    config = _config(name, 2 * multiplier)
    engine = Engine()
    gpus = {g: _FakeGpu() for g in range(config.n_gpus)}
    full = build_topology(engine, config, gpus, _FakeController)

    plan = ShardPlan.from_config(config, 2)
    for shard in range(2):
        owned = set(plan.nodes_of(shard))
        shard_engine = Engine()
        shard_gpus = {
            g: _FakeGpu()
            for g in range(config.n_gpus)
            if config.cluster_of(g) in owned
        }

        def boundary(bname, bpc, latency, _src, _dst):
            return FlitLink(
                shard_engine, bname, bpc, latency, sink=lambda flit: None
            )

        partial = build_topology(
            shard_engine,
            config,
            shard_gpus,
            _FakeController,
            owned_clusters=owned,
            boundary_link_factory=boundary,
        )
        assert set(partial.switches) == owned
        for node in owned:
            assert (
                partial.switches[node]._next_hop
                == full.switches[node]._next_hop
            )
        # the shard's links are the contiguous slice of the global list
        shard_pairs = [(c.src, c.dst) for c in partial.controllers]
        assert shard_pairs == [
            p for p in inter_pairs(config) if p[0] in owned
        ]
        # and boundary links carry the same rank/span as the full build
        full_by_name = {link.name: link for link in full.inter_links}
        for link in partial.inter_links:
            twin = full_by_name[link.name]
            assert link.delivery_rank == twin.delivery_rank
            assert link.delivery_span == twin.delivery_span
