"""Builder-level tests for the topology zoo, plus two bug regressions.

1. Delivery-rank aliasing: ranks are ``src * n_nodes + dst`` and used to
   share the fixed 4096-wide per-sequence span — so past 64 switch
   nodes two links' same-cycle delivery keys could collide across a
   sequence step, silently corrupting deterministic delivery order.
   The span now widens with the fabric (``delivery_span_for``).
2. ``ClusterSwitch._route`` used to fall back to "assume a direct link"
   and die in an opaque ``KeyError`` when the route table missed; it
   now raises :class:`~repro.network.switch.RoutingError` naming the
   switch, destination, and installed state.
"""

import pytest

from repro.config import SystemConfig
from repro.network.link import DELIVERY_RANK_SPAN
from repro.network.packet import Packet, PacketType
from repro.network.switch import ClusterSwitch, RoutingError
from repro.network.topology import (
    build_topology,
    delivery_span_for,
    inter_pairs,
    topology_spec,
)
from repro.sim.engine import Engine

SHIPPED = ("mesh", "ring", "star", "fat_tree", "torus3d")


class _FakeGpu:
    def __init__(self):
        self.uplink = None
        self.received = []

    def attach_uplink(self, link):
        self.uplink = link

    def receive_packet(self, packet):
        self.received.append(packet)


class _FakeController:
    def __init__(self, name, link, src, dst):
        self.name = name
        self.link = link
        self.src = src
        self.dst = dst

    def accept_packet(self, packet):  # pragma: no cover - wiring only
        pass


def _config(topology, n_clusters, **overrides):
    return SystemConfig.default().with_overrides(
        inter_topology=topology,
        n_clusters=n_clusters,
        gpus_per_cluster=1,
        **overrides,
    )


def _build(config, **kwargs):
    engine = Engine()
    gpus = {g: _FakeGpu() for g in range(config.n_gpus)}
    return engine, build_topology(engine, config, gpus, _FakeController, **kwargs)


# -- generic builder invariants ----------------------------------------------


@pytest.mark.parametrize("name", SHIPPED)
def test_builder_wires_every_edge_and_route(name):
    config = _config(name, 4)
    spec = topology_spec(config)
    _engine, topo = _build(config)
    assert len(topo.switches) == spec.n_nodes(config)
    pairs = [(c.src, c.dst) for c in topo.controllers]
    assert pairs == inter_pairs(config)
    assert len(topo.inter_links) == len(pairs)
    for (node, dst), via in spec.routes(config).items():
        assert topo.switches[node]._next_hop[dst] == via


def test_virtual_switches_own_no_gpus():
    config = _config("star", 4)
    _engine, topo = _build(config)
    hub = topo.switches[4]
    assert hub._gpu_links == {}
    assert topo.gpu_uplinks.keys() == set(range(4))
    # the hub still has an egress port per leaf
    assert sorted(hub._egress) == [0, 1, 2, 3]


def test_bandwidth_classes_resolve_per_link():
    config = _config(
        "star", 4, link_bw_overrides={"up": 8.0, "down": 64.0}
    )
    _engine, topo = _build(config)
    for link, (src, dst) in zip(topo.inter_links, inter_pairs(config)):
        expected = 8.0 if dst == 4 else 64.0  # uplinks point at the hub
        assert link.bytes_per_cycle == expected


def test_unlisted_classes_fall_back_to_inter_cluster_bw():
    config = _config(
        "torus3d", 8, inter_cluster_bw=32.0, link_bw_overrides={"z": 4.0}
    )
    spec = topology_spec(config)
    _engine, topo = _build(config)
    for link, edge in zip(topo.inter_links, spec.edges(config)):
        assert link.bytes_per_cycle == (4.0 if edge.bw_class == "z" else 32.0)


# -- regression: delivery-rank aliasing beyond 64 nodes ----------------------


def test_delivery_span_for_keeps_historical_span_up_to_64_nodes():
    for n_nodes in (1, 2, 8, 64):
        assert delivery_span_for(n_nodes) == DELIVERY_RANK_SPAN
    assert delivery_span_for(65) == 8192
    assert delivery_span_for(90) == 8192  # 90^2 = 8100 still fits
    assert delivery_span_for(91) == 16384
    assert delivery_span_for(128) == 16384


def test_ranks_never_alias_across_sequence_steps_at_65_clusters():
    """Regression: at 65 clusters the ring's wraparound links hold ranks
    64 (0->64) and 4160 (64->0), exactly 4096 apart — under the old
    fixed span, link 64->0's first delivery keyed identically to link
    0->64's *second*, corrupting same-cycle delivery order."""
    config = _config("ring", 65)
    _engine, topo = _build(config)
    span = delivery_span_for(65)
    by_name = {link.name: link for link in topo.inter_links}
    wrap_fwd = by_name["switch64->switch0"]
    wrap_back = by_name["switch0->switch64"]
    assert wrap_fwd.delivery_rank - wrap_back.delivery_rank == DELIVERY_RANK_SPAN
    for link in topo.inter_links:
        assert link.delivery_span == span
        assert link.delivery_rank < span

    # seq must dominate rank: every link's first delivery orders before
    # any link's second (the old span violated this for the pair above)
    first = [link._next_delivery_skey() for link in topo.inter_links]
    second = [link._next_delivery_skey() for link in topo.inter_links]
    assert len(set(first + second)) == 2 * len(topo.inter_links)
    assert max(first) < min(second)


def test_builder_refuses_rank_at_or_beyond_span(monkeypatch):
    """The rank < span invariant is asserted at build time, not hoped."""
    import repro.network.topology as topology_mod

    monkeypatch.setattr(
        topology_mod, "delivery_span_for", lambda n_nodes: 64
    )
    with pytest.raises(ValueError, match="delivery rank"):
        _build(_config("mesh", 9))  # rank up to 80 >= forced span 64


# -- regression: silent routing fallback -------------------------------------


def _lone_switch():
    engine = Engine()
    return ClusterSwitch(
        engine, "switch0", cluster_id=0, cluster_of_gpu={0: 0, 1: 1, 2: 2}
    )


def test_missing_egress_raises_routing_error_naming_the_gap():
    switch = _lone_switch()
    packet = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1, addr=0x40)
    with pytest.raises(RoutingError, match=r"switch0.*toward cluster 1"):
        switch._route(packet)


def test_routing_error_reports_installed_routes_and_ports():
    switch = _lone_switch()
    switch.set_route(2, 5)  # route installed, but no egress port for 5
    packet = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=2, addr=0x40)
    with pytest.raises(RoutingError, match=r"next hop 5") as excinfo:
        switch._route(packet)
    message = str(excinfo.value)
    assert "{2: 5}" in message  # the installed route table
    assert "egress ports: []" in message


def test_routing_error_is_a_runtime_error():
    # callers that caught RuntimeError for the old opaque failure keep
    # working
    assert issubclass(RoutingError, RuntimeError)
