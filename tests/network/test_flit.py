"""Tests for flit segmentation and stitching mechanics."""

import pytest
from hypothesis import given, strategies as st

from repro.network.flit import (
    STITCH_METADATA_BYTES,
    Flit,
    StitchKind,
    segment_packet,
)
from repro.network.packet import Packet, PacketType


def _packet(ptype=PacketType.READ_RSP, payload=None, dst=1):
    kwargs = {} if payload is None else {"payload_bytes": payload}
    return Packet(ptype=ptype, src_gpu=0, dst_gpu=dst, **kwargs)


def test_read_rsp_segments_into_five_flits():
    flits = segment_packet(_packet(), 16)
    assert [f.used_bytes for f in flits] == [16, 16, 16, 16, 4]
    assert flits[-1].is_tail
    assert flits[0].is_head


def test_single_flit_packet():
    flits = segment_packet(_packet(PacketType.READ_REQ), 16)
    assert len(flits) == 1
    assert flits[0].used_bytes == 12
    assert flits[0].empty_bytes == 4
    assert flits[0].is_single_flit_packet


def test_invalid_flit_size_rejected():
    with pytest.raises(ValueError):
        segment_packet(_packet(), 0)


def test_stitch_cost_whole_packet_has_no_metadata():
    flit = segment_packet(_packet(PacketType.WRITE_RSP), 16)[0]
    assert flit.stitch_cost() == 4
    assert flit.stitch_kind() is StitchKind.WHOLE_PACKET


def test_stitch_cost_partial_payload_adds_metadata():
    tail = segment_packet(_packet(), 16)[-1]
    assert tail.stitch_cost() == 4 + STITCH_METADATA_BYTES
    assert tail.stitch_kind() is StitchKind.PARTIAL_PAYLOAD


def test_absorb_whole_packet():
    parent = segment_packet(_packet(), 16)[-1]  # 12 empty
    candidate = segment_packet(_packet(PacketType.READ_REQ), 16)[0]  # cost 12
    assert parent.can_absorb(candidate)
    segment = parent.absorb(candidate)
    assert segment.kind is StitchKind.WHOLE_PACKET
    assert segment.wire_bytes == 12
    assert parent.empty_bytes == 0


def test_absorb_partial_payload_counts_metadata():
    parent = segment_packet(_packet(), 16)[-1]  # 12 empty
    candidate = segment_packet(_packet(), 16)[-1]  # tail: 4 used -> cost 7
    segment = parent.absorb(candidate)
    assert segment.kind is StitchKind.PARTIAL_PAYLOAD
    assert segment.wire_bytes == 7
    assert parent.empty_bytes == 12 - 7


def test_absorb_too_large_rejected():
    parent = segment_packet(_packet(PacketType.READ_REQ), 16)[0]  # 4 empty
    candidate = segment_packet(_packet(PacketType.PT_RSP), 16)[0]  # cost 12
    assert not parent.can_absorb(candidate)
    with pytest.raises(ValueError):
        parent.absorb(candidate)


def test_cannot_absorb_self():
    flit = segment_packet(_packet(PacketType.WRITE_RSP), 16)[0]
    assert not flit.can_absorb(flit)


def test_cannot_absorb_already_stitched_parent():
    parent = segment_packet(_packet(), 16)[-1]
    inner = segment_packet(_packet(PacketType.WRITE_RSP), 16)[0]
    parent.absorb(inner)
    other = segment_packet(_packet(), 16)[-1]
    assert not other.can_absorb(parent)


def test_multiple_candidates_until_full():
    parent = segment_packet(_packet(), 16)[-1]  # 12 empty
    first = segment_packet(_packet(PacketType.WRITE_RSP), 16)[0]  # 4
    second = segment_packet(_packet(PacketType.WRITE_RSP), 16)[0]  # 4
    third = segment_packet(_packet(PacketType.WRITE_RSP), 16)[0]  # 4
    for candidate in (first, second, third):
        parent.absorb(candidate)
    assert parent.empty_bytes == 0
    fourth = segment_packet(_packet(PacketType.WRITE_RSP), 16)[0]
    assert not parent.can_absorb(fourth)


def test_all_carried_flits_includes_stitched():
    parent = segment_packet(_packet(), 16)[-1]
    inner = segment_packet(_packet(PacketType.WRITE_RSP), 16)[0]
    parent.absorb(inner)
    carried = parent.all_carried_flits()
    assert parent in carried and inner in carried
    assert len(carried) == 2


def test_flit_properties_forward_packet_fields():
    pkt = _packet(PacketType.PT_REQ, dst=3)
    flit = segment_packet(pkt, 16)[0]
    assert flit.dst_gpu == 3
    assert flit.is_ptw


@given(
    ptype=st.sampled_from(list(PacketType)),
    payload=st.integers(0, 64),
    flit_size=st.sampled_from([8, 16, 32]),
)
def test_segmentation_conserves_bytes(ptype, payload, flit_size):
    """Property: per-flit used bytes sum exactly to the packet's bytes."""
    pkt = Packet(ptype=ptype, src_gpu=0, dst_gpu=1, payload_bytes=payload)
    flits = segment_packet(pkt, flit_size)
    assert sum(f.used_bytes for f in flits) == pkt.bytes_required
    assert len(flits) == pkt.flit_count(flit_size)
    assert all(1 <= f.used_bytes <= flit_size for f in flits)
    # only the tail may be partially filled
    for f in flits[:-1]:
        assert f.used_bytes == flit_size


@given(payloads=st.lists(st.integers(0, 64), min_size=2, max_size=6))
def test_stitching_never_overflows_flit(payloads):
    """Property: absorbing any mix of candidates keeps wire bytes <= size."""
    parent = segment_packet(_packet(payload=payloads[0]), 16)[-1]
    for payload in payloads[1:]:
        candidate = segment_packet(_packet(payload=payload), 16)[-1]
        if parent.can_absorb(candidate):
            parent.absorb(candidate)
        used = parent.used_bytes + sum(s.wire_bytes for s in parent.segments)
        assert used <= parent.flit_size
