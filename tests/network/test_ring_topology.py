"""Tests for the ring inter-cluster topology extension."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.cta import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.gpu.system import MultiGpuSystem
from repro.vm.page_table import PAGE_SIZE
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload


def _ring(n_clusters=4, **overrides):
    return SystemConfig.default().with_overrides(
        n_clusters=n_clusters, gpus_per_cluster=1, inter_topology="ring", **overrides
    )


def _point_read(src_gpu, dst_gpu):
    kernel = KernelTrace(
        name="k",
        ctas=[
            CtaTrace(
                gpu=src_gpu,
                wavefronts=[
                    WavefrontTrace(accesses=[MemAccess(vaddr=PAGE_SIZE * 10, nbytes=8)])
                ],
            )
        ],
        page_owner={10: dst_gpu},
    )
    return WorkloadTrace(name="p2p", kernels=[kernel])


def test_invalid_topology_rejected():
    with pytest.raises(ValueError, match="inter_topology"):
        SystemConfig.default().with_overrides(inter_topology="torus")


def test_ring_has_adjacent_links_only():
    system = MultiGpuSystem(config=_ring(4))
    # 4 clusters x 2 neighbours = 8 unidirectional links
    assert len(system.topology.inter_links) == 8
    names = {link.name for link in system.topology.inter_links}
    assert "switch0->switch1" in names
    assert "switch0->switch2" not in names


def test_two_clusters_ring_degenerates_to_mesh():
    cfg = SystemConfig.default().with_overrides(inter_topology="ring")
    system = MultiGpuSystem(config=cfg)
    assert len(system.topology.inter_links) == 2


def test_multi_hop_read_completes():
    system = MultiGpuSystem(config=_ring(4))
    system.load(_point_read(0, 2))  # opposite side: 2 hops either way
    result = system.run()
    assert result.stats.remote_reads_inter == 1
    assert result.stats.remote_read_latency_inter.count == 1


def test_two_hops_slower_than_one():
    one_hop = MultiGpuSystem(config=_ring(4))
    one_hop.load(_point_read(0, 1))
    two_hop = MultiGpuSystem(config=_ring(4))
    two_hop.load(_point_read(0, 2))
    lat_one = one_hop.run().stats.remote_read_latency_inter.mean()
    lat_two = two_hop.run().stats.remote_read_latency_inter.mean()
    assert lat_two > lat_one


def test_intermediate_switch_carries_forwarded_traffic():
    system = MultiGpuSystem(config=_ring(4))
    system.load(_point_read(0, 2))
    system.run()
    # the 0->2 route passes a neighbour's switch: that switch routed the
    # packet onward, so more than the endpoint controllers saw traffic
    touched = [c for c in system.topology.controllers if c.stats.packets_accepted]
    assert len(touched) >= 4  # req out+forward, rsp out+forward


def test_ring_runs_full_netcrafter_workload():
    cfg = _ring(4)
    trace = get_workload("gups").build(n_gpus=4, scale=Scale.tiny(), seed=0)
    system = MultiGpuSystem(config=cfg, netcrafter=NetCrafterConfig.full())
    system.load(trace)
    result = system.run()
    assert result.stats.mem_ops == trace.total_accesses()
    assert result.flits_entered == result.inter_flits_sent + result.flits_absorbed


def test_ring_route_table_shortest_path():
    system = MultiGpuSystem(config=_ring(5))
    sw0 = system.topology.switches[0]
    assert sw0._next_hop[1] == 1
    assert sw0._next_hop[2] == 1  # clockwise 2 hops
    assert sw0._next_hop[4] == 4  # counter-clockwise 1 hop
    assert sw0._next_hop[3] == 4  # counter-clockwise 2 hops
