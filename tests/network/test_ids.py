"""Tests for run-scoped packet/flit ID allocation."""

from repro.network.flit import segment_packet
from repro.network.ids import FLIT_IDS, PACKET_IDS, IdAllocator, reset_run_ids
from repro.network.packet import Packet, PacketType


class TestIdAllocator:
    def test_monotonic_from_zero(self):
        alloc = IdAllocator()
        assert [alloc() for _ in range(4)] == [0, 1, 2, 3]

    def test_peek_does_not_consume(self):
        alloc = IdAllocator()
        alloc()
        assert alloc.peek() == 1
        assert alloc.peek() == 1
        assert alloc() == 1

    def test_reset_restarts_the_stream(self):
        alloc = IdAllocator()
        for _ in range(7):
            alloc()
        alloc.reset()
        assert alloc() == 0


class TestRunScopedStreams:
    def test_packets_draw_from_the_module_allocator(self):
        reset_run_ids()
        first = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1)
        second = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1)
        assert (first.pid, second.pid) == (0, 1)

    def test_flits_draw_from_the_module_allocator(self):
        reset_run_ids()
        packet = Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=2)
        flits = segment_packet(packet, 16)
        assert [f.fid for f in flits] == list(range(len(flits)))

    def test_reset_run_ids_rewinds_both_streams(self):
        Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1)
        segment_packet(
            Packet(ptype=PacketType.READ_RSP, src_gpu=0, dst_gpu=2), 16
        )
        assert PACKET_IDS.peek() > 0
        assert FLIT_IDS.peek() > 0
        reset_run_ids()
        assert PACKET_IDS.peek() == 0
        assert FLIT_IDS.peek() == 0
        assert Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1).pid == 0
