"""Tests for the cluster switch: routing, pipeline, reassembly."""

import pytest

from repro.network.flit import Flit, segment_packet
from repro.network.link import PacketLink
from repro.network.packet import Packet, PacketType
from repro.network.switch import ClusterSwitch, DuplicateFlitError, ReassemblyBuffer
from repro.sim.engine import Engine

CLUSTER_MAP = {0: 0, 1: 0, 2: 1, 3: 1}


def _switch(eng, cluster=0, pipeline=30):
    return ClusterSwitch(
        eng, f"sw{cluster}", cluster_id=cluster,
        cluster_of_gpu=CLUSTER_MAP, pipeline_latency=pipeline, flit_size=16,
    )


class _FakeEgress:
    def __init__(self):
        self.packets = []

    def accept_packet(self, packet):
        self.packets.append(packet)


class TestReassembly:
    def test_single_flit_packet_delivers_immediately(self):
        done = []
        buf = ReassemblyBuffer(16, done.append)
        pkt = Packet(ptype=PacketType.READ_REQ, src_gpu=2, dst_gpu=0)
        buf.receive(segment_packet(pkt, 16)[0])
        assert done == [pkt]
        assert buf.pending_packets() == 0

    def test_multi_flit_packet_waits_for_all(self):
        done = []
        buf = ReassemblyBuffer(16, done.append)
        pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        flits = segment_packet(pkt, 16)
        for flit in flits[:-1]:
            buf.receive(flit)
            assert done == []
        buf.receive(flits[-1])
        assert done == [pkt]

    def test_out_of_order_flits_still_complete(self):
        done = []
        buf = ReassemblyBuffer(16, done.append)
        pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        flits = segment_packet(pkt, 16)
        for flit in reversed(flits):
            buf.receive(flit)
        assert done == [pkt]

    def test_unstitching_counts_embedded_flits(self):
        done = []
        buf = ReassemblyBuffer(16, done.append)
        rsp = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        req = Packet(ptype=PacketType.READ_REQ, src_gpu=2, dst_gpu=0)
        rsp_flits = segment_packet(rsp, 16)
        req_flit = segment_packet(req, 16)[0]
        rsp_flits[-1].absorb(req_flit)
        for flit in rsp_flits:
            buf.receive(flit)
        assert rsp in done and req in done
        assert buf.flits_unstitched == 1

    def test_interleaved_packets(self):
        done = []
        buf = ReassemblyBuffer(16, done.append)
        a = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        b = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=1)
        fa, fb = segment_packet(a, 16), segment_packet(b, 16)
        for x, y in zip(fa, fb):
            buf.receive(x)
            buf.receive(y)
        assert set(done) == {a, b}


class TestDuplicateFlitGuard:
    """The reassembly bitmask rejects repeated or impossible indices.

    Regression: the old bookkeeping only *counted* flits per packet id,
    so a duplicated delivery (a routing or stitching bug upstream)
    silently completed the packet early while a later flit of the same
    packet leaked into the pending map forever.
    """

    def test_duplicate_flit_raises(self):
        buf = ReassemblyBuffer(16, lambda p: None)
        pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        flits = segment_packet(pkt, 16)
        buf.receive(flits[0])
        with pytest.raises(DuplicateFlitError):
            buf.receive(flits[0])

    def test_duplicate_does_not_complete_the_packet(self):
        done = []
        buf = ReassemblyBuffer(16, done.append)
        pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        flits = segment_packet(pkt, 16)
        buf.receive(flits[0])
        buf.receive(flits[1])
        with pytest.raises(DuplicateFlitError):
            buf.receive(flits[1])
        assert done == []
        assert buf.pending_packets() == 1

    def test_out_of_range_index_raises(self):
        buf = ReassemblyBuffer(16, lambda p: None)
        pkt = Packet(ptype=PacketType.READ_REQ, src_gpu=2, dst_gpu=0)
        rogue = Flit(packet=pkt, index=5, used_bytes=16, flit_size=16)
        with pytest.raises(DuplicateFlitError):
            buf.receive(rogue)

    def test_duplicate_stitched_segment_raises(self):
        """A duplicate hidden inside a stitched parent is still caught."""
        buf = ReassemblyBuffer(16, lambda p: None)
        a = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        b = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        parent = segment_packet(a, 16)[-1]  # tail: 4 used, 12 empty
        b_tail = segment_packet(b, 16)[-1]  # partial candidate, cost 7
        parent.absorb(b_tail)
        buf.receive(b_tail)  # upstream bug: the flit also went out unstitched
        with pytest.raises(DuplicateFlitError):
            buf.receive(parent)


class TestSwitchRouting:
    def test_local_packet_forwarded_to_gpu_link(self):
        eng = Engine()
        sw = _switch(eng, cluster=0, pipeline=5)
        delivered = []
        link = PacketLink(eng, "down", 128.0, 0, 16, sink=delivered.append)
        sw.attach_gpu_link(1, link)
        pkt = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=1)
        sw.receive_packet_from_gpu(pkt)
        eng.run()
        assert delivered == [pkt]
        assert sw.packets_routed == 1

    def test_remote_packet_handed_to_egress(self):
        eng = Engine()
        sw = _switch(eng, cluster=0)
        egress = _FakeEgress()
        sw.attach_egress(1, egress)
        pkt = Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=3)
        sw.receive_packet_from_gpu(pkt)
        eng.run()
        assert egress.packets == [pkt]

    def test_pipeline_latency_applied(self):
        eng = Engine()
        sw = _switch(eng, cluster=0, pipeline=30)
        egress = _FakeEgress()
        times = []
        original = egress.accept_packet
        egress.accept_packet = lambda p: (times.append(eng.now), original(p))
        sw.attach_egress(1, egress)
        sw.receive_packet_from_gpu(Packet(ptype=PacketType.READ_REQ, src_gpu=0, dst_gpu=2))
        eng.run()
        assert times == [30]

    def test_flits_from_network_reassemble_then_route(self):
        eng = Engine()
        sw = _switch(eng, cluster=0, pipeline=5)
        delivered = []
        link = PacketLink(eng, "down", 128.0, 0, 16, sink=delivered.append)
        sw.attach_gpu_link(0, link)
        pkt = Packet(ptype=PacketType.READ_RSP, src_gpu=2, dst_gpu=0)
        for flit in segment_packet(pkt, 16):
            sw.receive_flit_from_network(flit)
        eng.run()
        assert delivered == [pkt]

    def test_full_downlink_retries(self):
        eng = Engine()
        sw = _switch(eng, cluster=0, pipeline=1)
        delivered = []
        link = PacketLink(eng, "down", 16.0, 0, 16, sink=delivered.append, buffer_entries=1)
        sw.attach_gpu_link(0, link)
        for _ in range(3):
            sw.receive_packet_from_gpu(
                Packet(ptype=PacketType.READ_RSP, src_gpu=1, dst_gpu=0)
            )
        eng.run()
        assert len(delivered) == 3
