"""Tests for the system-level configuration."""

import pytest

from repro.config import SystemConfig


def test_defaults_are_frontier_shaped():
    cfg = SystemConfig.default()
    assert cfg.n_gpus == 4
    assert cfg.bandwidth_ratio == pytest.approx(8.0)  # 128:16
    assert cfg.flit_size == 16
    assert cfg.switch_latency == 30


def test_cluster_mapping():
    cfg = SystemConfig.default()
    assert [cfg.cluster_of(g) for g in range(4)] == [0, 0, 1, 1]
    assert list(cfg.gpus_in_cluster(1)) == [2, 3]
    with pytest.raises(ValueError):
        cfg.cluster_of(4)


def test_table2_preset_matches_paper():
    cfg = SystemConfig.table2()
    assert cfg.cus_per_gpu == 64
    assert cfg.l1_tlb_entries == 32
    assert cfg.l2_tlb_entries == 512
    assert cfg.pwc_entries == 32
    assert cfg.n_walkers == 16
    assert cfg.l2_size == 4 * 1024 * 1024
    assert cfg.l2_banks == 16
    assert cfg.l2_latency == 100
    assert cfg.dram_latency == 100
    assert cfg.inter_cluster_bw == 16.0
    assert cfg.intra_cluster_bw == 128.0
    assert cfg.switch_buffer_entries == 1024


def test_ideal_preset_equalizes_bandwidth():
    cfg = SystemConfig.ideal()
    assert cfg.inter_cluster_bw == cfg.intra_cluster_bw
    custom = SystemConfig.default().with_overrides(intra_cluster_bw=256.0)
    assert SystemConfig.ideal(custom).inter_cluster_bw == 256.0


def test_sector_cache_preset():
    cfg = SystemConfig.sector_cache_baseline(sector_bytes=8)
    assert cfg.l1_fetch_mode == "sector"
    assert cfg.l1_sector_bytes == 8


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(l1_fetch_mode="half")
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(n_clusters=0)
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(coherence="none")
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(inter_topology="hypercube")
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(
            inter_topology="star", link_bw_overrides={"sideways": 8.0}
        )
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(
            inter_topology="star", link_bw_overrides={"up": 0.0}
        )
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(
            inter_topology="torus3d", torus_dims=(2, 2, 2)
        )
    with pytest.raises(ValueError):
        SystemConfig.default().with_overrides(fat_tree_oversubscription=0)


def test_frozen_and_hashable():
    a = SystemConfig.default()
    b = SystemConfig.default()
    assert a == b and hash(a) == hash(b)
    with pytest.raises(Exception):
        a.flit_size = 8
