"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_initial_state():
    eng = Engine()
    assert eng.now == 0
    assert eng.pending_events() == 0
    assert eng.events_processed == 0


def test_schedule_and_run_advances_time():
    eng = Engine()
    fired = []
    eng.schedule(10, fired.append, "a")
    eng.run()
    assert fired == ["a"]
    assert eng.now == 10


def test_events_fire_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(30, order.append, 30)
    eng.schedule(10, order.append, 10)
    eng.schedule(20, order.append, 20)
    eng.run()
    assert order == [10, 20, 30]


def test_same_cycle_events_fire_fifo():
    eng = Engine()
    order = []
    for i in range(5):
        eng.schedule(7, order.append, i)
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_zero_delay_runs_after_current_same_cycle_events():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.schedule(0, order.append, "nested")

    eng.schedule(5, first)
    eng.schedule(5, order.append, "second")
    eng.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    eng = Engine()
    eng.schedule(10, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_at(5, lambda: None)


def test_run_until_stops_at_boundary():
    eng = Engine()
    fired = []
    eng.schedule(5, fired.append, "early")
    eng.schedule(50, fired.append, "late")
    eng.run(until=10)
    assert fired == ["early"]
    assert eng.now == 10
    assert eng.pending_events() == 1
    eng.run()
    assert fired == ["early", "late"]


def test_run_until_includes_events_at_boundary():
    eng = Engine()
    fired = []
    eng.schedule(10, fired.append, "at")
    eng.run(until=10)
    assert fired == ["at"]


def test_max_events_limit():
    eng = Engine()
    for i in range(10):
        eng.schedule(i, lambda: None)
    executed = eng.run(max_events=4)
    assert executed == 4
    assert eng.pending_events() == 6


def test_events_can_schedule_more_events():
    eng = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            eng.schedule(1, chain, n + 1)

    eng.schedule(0, chain, 0)
    eng.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert eng.now == 5


def test_step_executes_single_event():
    eng = Engine()
    fired = []
    eng.schedule(1, fired.append, 1)
    eng.schedule(2, fired.append, 2)
    assert eng.step()
    assert fired == [1]
    assert eng.step()
    assert not eng.step()


def test_peek_time():
    eng = Engine()
    assert eng.peek_time() is None
    eng.schedule(42, lambda: None)
    assert eng.peek_time() == 42


def test_events_processed_counter():
    eng = Engine()
    for i in range(7):
        eng.schedule(i, lambda: None)
    eng.run()
    assert eng.events_processed == 7


def test_reentrant_run_rejected():
    eng = Engine()

    def nested():
        with pytest.raises(SimulationError):
            eng.run()

    eng.schedule(0, nested)
    eng.run()


def test_callback_args_passed_through():
    eng = Engine()
    got = []
    eng.schedule(1, lambda a, b, c: got.append((a, b, c)), 1, "x", None)
    eng.run()
    assert got == [(1, "x", None)]


def test_run_until_advances_clock_when_queue_drains_early():
    eng = Engine()
    eng.schedule(5, lambda: None)
    eng.run(until=20)
    assert eng.now == 20


def test_run_until_advances_clock_on_empty_queue():
    eng = Engine()
    eng.run(until=15)
    assert eng.now == 15


def test_run_until_never_moves_clock_backwards():
    eng = Engine()
    eng.schedule(30, lambda: None)
    eng.run()
    assert eng.now == 30
    eng.run(until=10)
    assert eng.now == 30


def test_max_events_break_does_not_jump_to_until():
    eng = Engine()
    for i in range(10):
        eng.schedule(i, lambda: None)
    eng.run(until=100, max_events=4)
    # events at cycles 4..9 are still due before 100, so the clock must
    # stay at the last executed event, not leap to the bound
    assert eng.now == 3
    assert eng.pending_events() == 6


def test_max_events_break_after_queue_drained_still_advances():
    eng = Engine()
    eng.schedule(2, lambda: None)
    eng.run(until=50, max_events=1)
    assert eng.now == 50
