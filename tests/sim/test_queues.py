"""Tests for bounded queues with backpressure callbacks."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.queues import BoundedQueue


def test_push_pop_fifo():
    q = BoundedQueue(4)
    for i in range(3):
        assert q.push(i)
    assert [q.pop() for _ in range(3)] == [0, 1, 2]


def test_capacity_enforced():
    q = BoundedQueue(2)
    assert q.push("a")
    assert q.push("b")
    assert not q.push("c")
    assert q.push_failures == 1
    assert len(q) == 2


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        BoundedQueue(0)


def test_push_front_returns_to_head():
    q = BoundedQueue(4)
    q.push(1)
    q.push(2)
    q.push_front(0)
    assert q.pop() == 0


def test_peek_does_not_remove():
    q = BoundedQueue(2)
    q.push("x")
    assert q.peek() == "x"
    assert len(q) == 1


def test_peek_empty_raises():
    with pytest.raises(IndexError):
        BoundedQueue(1).peek()


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        BoundedQueue(1).pop()


def test_notify_fires_immediately_when_space():
    q = BoundedQueue(2)
    fired = []
    q.notify_on_space(lambda: fired.append(True))
    assert fired == [True]


def test_notify_deferred_until_pop():
    q = BoundedQueue(1)
    q.push("a")
    fired = []
    q.notify_on_space(lambda: fired.append(True))
    assert fired == []
    q.pop()
    assert fired == [True]


def test_notify_fires_once_per_registration():
    q = BoundedQueue(1)
    q.push("a")
    fired = []
    q.notify_on_space(lambda: fired.append(True))
    q.pop()
    q.push("b")
    q.pop()
    assert fired == [True]


def test_waiters_woken_fifo_one_per_slot():
    q = BoundedQueue(1)
    q.push("a")
    fired = []
    q.notify_on_space(lambda: fired.append(1))
    q.notify_on_space(lambda: fired.append(2))
    q.pop()
    assert fired == [1]
    q.push("b")
    q.pop()
    assert fired == [1, 2]


def test_remove_by_identity():
    q = BoundedQueue(4)
    a, b = object(), object()
    q.push(a)
    q.push(b)
    assert q.remove(b)
    assert not q.remove(b)
    assert list(q) == [a]


def test_remove_wakes_waiter():
    q = BoundedQueue(1)
    item = object()
    q.push(item)
    fired = []
    q.notify_on_space(lambda: fired.append(True))
    q.remove(item)
    assert fired == [True]


def test_drain_returns_all():
    q = BoundedQueue(4)
    for i in range(3):
        q.push(i)
    assert q.drain() == [0, 1, 2]
    assert q.is_empty()


def test_counters():
    q = BoundedQueue(2)
    q.push(1)
    q.push(2)
    q.pop()
    assert q.total_pushed == 2
    assert q.total_popped == 1
    assert q.free_slots == 1


@given(st.lists(st.sampled_from(["push", "pop"]), max_size=200), st.integers(1, 8))
def test_queue_never_exceeds_capacity(ops, capacity):
    """Property: size stays within [0, capacity] under any push/pop mix."""
    q = BoundedQueue(capacity)
    expected = []
    counter = 0
    for op in ops:
        if op == "push":
            pushed = q.push(counter)
            assert pushed == (len(expected) < capacity)
            if pushed:
                expected.append(counter)
            counter += 1
        elif expected:
            assert q.pop() == expected.pop(0)
        assert 0 <= len(q) <= capacity
    assert list(q) == expected
