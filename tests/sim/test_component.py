"""Tests for the component base class."""

from repro.sim.component import Component
from repro.sim.engine import Engine


def test_component_binds_engine_and_name():
    eng = Engine()
    comp = Component(eng, "widget")
    assert comp.engine is eng
    assert comp.name == "widget"


def test_now_forwards_engine_time():
    eng = Engine()
    comp = Component(eng, "c")
    assert comp.now == 0
    eng.schedule(42, lambda: None)
    eng.run()
    assert comp.now == 42


def test_schedule_helper():
    eng = Engine()
    comp = Component(eng, "c")
    fired = []
    comp.schedule(7, fired.append, "x")
    eng.run()
    assert fired == ["x"]
    assert eng.now == 7
