"""Tests for the analytic traffic-conservation verifier."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.network.packet import PacketType
from repro.stats.verification import (
    expected_inter_packets,
    observed_inter_packets,
    verify_traffic,
)
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

CONFIGS = [
    ("baseline", None, None),
    ("full_nc", None, NetCrafterConfig.full()),
    ("hw_coherence", SystemConfig.default().with_overrides(coherence="hardware"),
     NetCrafterConfig.full()),
    ("sector", SystemConfig.sector_cache_baseline(), None),
    ("flit8", SystemConfig.default().with_overrides(flit_size=8),
     NetCrafterConfig.stitching_only()),
]


def _run(workload="gups", system=None, netcrafter=None, seed=0):
    system_cfg = system or SystemConfig.default()
    trace = get_workload(workload).build(
        n_gpus=system_cfg.n_gpus, scale=Scale.tiny(), seed=seed
    )
    node = MultiGpuSystem(config=system_cfg, netcrafter=netcrafter, seed=seed)
    node.load(trace)
    return node, node.run()


@pytest.mark.parametrize("label,system,netcrafter", CONFIGS)
def test_traffic_conserved(label, system, netcrafter):
    node, result = _run(system=system, netcrafter=netcrafter)
    assert verify_traffic(node, result) == []


@pytest.mark.parametrize("workload", ["spmv", "mvt", "vgg16"])
def test_traffic_conserved_across_workloads(workload):
    node, result = _run(workload=workload, netcrafter=NetCrafterConfig.full())
    assert verify_traffic(node, result) == []


def test_expected_counts_are_symmetric():
    node, result = _run()
    expected = expected_inter_packets(result.stats)
    assert expected[PacketType.READ_REQ] == expected[PacketType.READ_RSP]
    assert expected[PacketType.WRITE_REQ] == expected[PacketType.WRITE_RSP]


def test_observed_counts_include_all_types():
    node, result = _run()
    observed = observed_inter_packets(node)
    assert set(observed) == set(PacketType)
    assert observed[PacketType.READ_REQ] > 0


def test_verifier_detects_tampering():
    node, result = _run()
    result.stats.remote_reads_inter += 1  # simulate a lost read
    problems = verify_traffic(node, result)
    assert problems and "read_req" in problems[0]


def test_ring_topology_rejected():
    ring = SystemConfig.default().with_overrides(
        n_clusters=4, gpus_per_cluster=1, inter_topology="ring"
    )
    node, result = _run(system=ring)
    with pytest.raises(ValueError, match="mesh"):
        verify_traffic(node, result)
