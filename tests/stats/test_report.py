"""Tests for run results and report helpers."""

import pytest

from repro.stats.collectors import RunStats
from repro.stats.report import RunResult, geometric_mean


def _result(cycles=1000, **kwargs):
    return RunResult(
        workload="w", config_label="c", cycles=cycles, stats=RunStats(), **kwargs
    )


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestRunResult:
    def test_speedup(self):
        base = _result(cycles=2000)
        fast = _result(cycles=1000)
        assert fast.speedup_over(base) == pytest.approx(2.0)

    def test_speedup_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            _result(cycles=0).speedup_over(_result())

    def test_inter_utilization(self):
        r = _result(cycles=100, inter_busy_cycles=120.0, inter_links=2)
        assert r.inter_utilization() == pytest.approx(0.6)

    def test_utilization_clamped(self):
        r = _result(cycles=10, inter_busy_cycles=1000.0, inter_links=1)
        assert r.inter_utilization() == 1.0

    def test_utilization_no_links(self):
        assert _result().inter_utilization() == 0.0

    def test_stitch_rate(self):
        r = _result(flits_entered=100, flits_absorbed=15)
        assert r.stitch_rate() == pytest.approx(0.15)
        assert _result().stitch_rate() == 0.0

    def test_ptw_fraction(self):
        r = _result(ptw_bytes=13, data_bytes=87)
        assert r.ptw_traffic_fraction() == pytest.approx(0.13)
        assert _result().ptw_traffic_fraction() == 0.0

    def test_padded_distribution_normalized(self):
        r = _result()
        r.occupancy[16] = 4  # full flits
        r.occupancy[12] = 1  # 25% padded
        r.occupancy[4] = 1  # 75% padded
        dist = r.padded_fraction_distribution(16)
        assert dist[0.0] == pytest.approx(4 / 6)
        assert dist[0.25] == pytest.approx(1 / 6)
        assert dist[0.75] == pytest.approx(1 / 6)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_padded_distribution_empty(self):
        assert _result().padded_fraction_distribution(16) == {}
