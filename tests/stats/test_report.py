"""Tests for run results and report helpers."""

import json
from collections import Counter

import pytest

from repro.stats.collectors import LatencyStat, RunStats
from repro.stats.energy import EnergyBreakdown
from repro.stats.report import RunResult, geometric_mean


def _result(cycles=1000, **kwargs):
    return RunResult(
        workload="w", config_label="c", cycles=cycles, stats=RunStats(), **kwargs
    )


def _populated_result():
    stats = RunStats()
    stats.mem_ops = 4200
    stats.l1_hits = 900
    stats.l1_misses = 100
    stats.remote_reads_inter = 77
    stats.read_req_bytes_hist[16] = 5
    stats.read_req_bytes_hist[64] = 2
    stats.remote_read_latency_inter.record(120)
    stats.remote_read_latency_inter.record(340)
    stats.ptw_latency.record(55)
    stats.finish_cycle = 987
    return RunResult(
        workload="gups",
        config_label="full",
        cycles=987,
        stats=stats,
        inter_flits_sent=500,
        inter_wire_bytes=8000,
        inter_useful_bytes=6100,
        inter_busy_cycles=410.5,
        flits_entered=520,
        flits_absorbed=60,
        parents_stitched=55,
        packets_trimmed=12,
        trim_bytes_saved=576,
        ptw_flits=30,
        data_flits=490,
        ptw_bytes=360,
        data_bytes=6800,
        occupancy=Counter({16: 400, 12: 80, 4: 40}),
        intra_busy_cycles=99.25,
        intra_links=8,
        inter_links=2,
        energy=EnergyBreakdown(
            components={"inter_links": 80000.0, "dram": 420000.0}
        ),
    )


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestRunResult:
    def test_speedup(self):
        base = _result(cycles=2000)
        fast = _result(cycles=1000)
        assert fast.speedup_over(base) == pytest.approx(2.0)

    def test_speedup_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            _result(cycles=0).speedup_over(_result())

    def test_inter_utilization(self):
        r = _result(cycles=100, inter_busy_cycles=120.0, inter_links=2)
        assert r.inter_utilization() == pytest.approx(0.6)

    def test_utilization_clamped(self):
        r = _result(cycles=10, inter_busy_cycles=1000.0, inter_links=1)
        assert r.inter_utilization() == 1.0

    def test_utilization_no_links(self):
        assert _result().inter_utilization() == 0.0

    def test_stitch_rate(self):
        r = _result(flits_entered=100, flits_absorbed=15)
        assert r.stitch_rate() == pytest.approx(0.15)
        assert _result().stitch_rate() == 0.0

    def test_ptw_fraction(self):
        r = _result(ptw_bytes=13, data_bytes=87)
        assert r.ptw_traffic_fraction() == pytest.approx(0.13)
        assert _result().ptw_traffic_fraction() == 0.0

    def test_padded_distribution_normalized(self):
        r = _result()
        r.occupancy[16] = 4  # full flits
        r.occupancy[12] = 1  # 25% padded
        r.occupancy[4] = 1  # 75% padded
        dist = r.padded_fraction_distribution(16)
        assert dist[0.0] == pytest.approx(4 / 6)
        assert dist[0.25] == pytest.approx(1 / 6)
        assert dist[0.75] == pytest.approx(1 / 6)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_padded_distribution_empty(self):
        assert _result().padded_fraction_distribution(16) == {}


class TestSerialization:
    def test_round_trip_through_json(self):
        original = _populated_result()
        wire = json.dumps(original.to_dict())
        restored = RunResult.from_dict(json.loads(wire))
        assert restored.to_dict() == original.to_dict()

    def test_round_trip_preserves_derived_metrics(self):
        original = _populated_result()
        restored = RunResult.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored.stitch_rate() == pytest.approx(original.stitch_rate())
        assert restored.inter_utilization() == pytest.approx(
            original.inter_utilization()
        )
        assert restored.mean_inter_read_latency() == pytest.approx(
            original.mean_inter_read_latency()
        )
        # raw samples are not serialized; percentiles come back at
        # histogram resolution (bucket lower edge, <=12.5% below)
        p99 = original.stats.remote_read_latency_inter.percentile(99)
        restored_p99 = restored.stats.remote_read_latency_inter.percentile(99)
        assert p99 * (1 - 2**-LatencyStat.HIST_SUB_BITS) <= restored_p99 <= p99
        assert restored.stats.l1_mpki() == pytest.approx(original.stats.l1_mpki())
        assert restored.occupancy == original.occupancy
        assert isinstance(next(iter(restored.occupancy)), int)
        assert restored.energy.total_pj == pytest.approx(original.energy.total_pj)

    def test_round_trip_without_energy(self):
        original = _result()
        restored = RunResult.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored.energy is None
        assert restored.to_dict() == original.to_dict()

    def test_unknown_schema_rejected(self):
        data = _result().to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError):
            RunResult.from_dict(data)

    def test_missing_schema_rejected(self):
        data = _result().to_dict()
        del data["schema"]
        with pytest.raises(ValueError):
            RunResult.from_dict(data)
