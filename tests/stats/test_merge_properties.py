"""Property tests: ``LatencyStat.merge`` is commutative and associative.

Shard reports merge in whatever grouping the coordinator (or a resumed
checkpoint) produces, so merged statistics must not depend on the merge
tree.  The capped bottom-k sample selection keys each copy of a value by
``(duplicate-index, hash)`` — a pure function of the combined multiset —
which makes the retained set identical for every merge order *and* every
parenthesisation, including when truncation kicks in mid-tree.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.collectors import LatencyStat

#: small cap so three modest shards overflow it and bottom-k truncation
#: actually runs (the interesting regime)
CAP = 8

values = st.lists(st.integers(min_value=0, max_value=50), max_size=20)


def make_stat(samples):
    stat = LatencyStat()
    stat.MAX_SAMPLES = CAP  # instance attribute shadows the class bound
    for v in samples:
        stat.record(v)
    return stat


def merged(*stats):
    out = copy.deepcopy(stats[0])
    for stat in stats[1:]:
        out.merge(copy.deepcopy(stat))
    return out


def assert_equivalent(a: LatencyStat, b: LatencyStat) -> None:
    assert a.count == b.count
    assert a.total == b.total
    assert a.max == b.max
    assert a._hist == b._hist
    assert sorted(a._samples) == sorted(b._samples)
    for p in (0, 25, 50, 75, 99, 100):
        assert a.percentile(p) == b.percentile(p)


@settings(max_examples=200, deadline=None)
@given(values, values)
def test_merge_commutative(xs, ys):
    a, b = make_stat(xs), make_stat(ys)
    assert_equivalent(merged(a, b), merged(b, a))


@settings(max_examples=200, deadline=None)
@given(values, values, values)
def test_merge_associative(xs, ys, zs):
    """Regression: the former pure-hash keying re-keyed duplicate copies
    after a truncation, so ``(a+b)+c`` and ``a+(b+c)`` could retain
    different samples whenever the cap was exceeded mid-tree."""
    a, b, c = make_stat(xs), make_stat(ys), make_stat(zs)
    left = merged(merged(a, b), c)
    right = merged(a, merged(b, c))
    assert_equivalent(left, right)


@settings(max_examples=100, deadline=None)
@given(values, values, values)
def test_three_way_merge_order_free(xs, ys, zs):
    """All six orderings of a 3-way merge agree (the coordinator merges
    shard reports in shard order, a resumed run in resume order)."""
    stats = [make_stat(v) for v in (xs, ys, zs)]
    reference = merged(*stats)
    import itertools

    for perm in itertools.permutations(stats):
        assert_equivalent(merged(*perm), reference)
