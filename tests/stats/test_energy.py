"""Tests for the energy model."""

import pytest

from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.stats.energy import EnergyBreakdown, EnergyModel, estimate_energy
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload


def _run(netcrafter=None, workload="gups", seed=0):
    trace = get_workload(workload).build(n_gpus=4, scale=Scale.tiny(), seed=seed)
    system = MultiGpuSystem(netcrafter=netcrafter, seed=seed)
    system.load(trace)
    return system, system.run()


def test_breakdown_components_present():
    _system, result = _run()
    energy = result.energy
    assert isinstance(energy, EnergyBreakdown)
    expected = {
        "inter_links", "intra_links", "switches", "cluster_queues",
        "l1_caches", "l2_caches", "dram",
    }
    assert set(energy.components) == expected
    assert energy.total_pj > 0
    assert energy.network_pj <= energy.total_pj


def test_network_energy_scales_with_traffic():
    _sys_a, local = _run(workload="bs")  # almost no inter-cluster traffic
    _sys_b, remote = _run(workload="gups")
    assert remote.energy.components["inter_links"] > local.energy.components["inter_links"]


def test_netcrafter_cuts_network_energy():
    _a, base = _run()
    _b, crafted = _run(netcrafter=NetCrafterConfig.full())
    assert crafted.energy.components["inter_links"] < base.energy.components["inter_links"]


def test_custom_model_constants():
    system, result = _run()
    doubled = EnergyModel(inter_link_pj_per_byte=20.0)
    default = estimate_energy(system, result)
    custom = estimate_energy(system, result, doubled)
    assert custom.components["inter_links"] == pytest.approx(
        2 * default.components["inter_links"]
    )


def test_rows_rendering():
    _system, result = _run()
    rows = result.energy.as_rows()
    assert "total" in rows and "dram" in rows and "uJ" in rows
