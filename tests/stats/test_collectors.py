"""Tests for statistic collectors."""

import pytest

from repro.stats.collectors import LatencyStat, RunStats


class TestLatencyStat:
    def test_empty(self):
        stat = LatencyStat()
        assert stat.mean() == 0.0
        assert stat.count == 0

    def test_record(self):
        stat = LatencyStat()
        for latency in (10, 20, 30):
            stat.record(latency)
        assert stat.count == 3
        assert stat.mean() == pytest.approx(20.0)
        assert stat.max == 30

    def test_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(10)
        b.record(30)
        a.merge(b)
        assert a.count == 2
        assert a.mean() == pytest.approx(20.0)
        assert a.max == 30
        assert a.percentile(100) == 30.0

    def test_percentiles(self):
        stat = LatencyStat()
        for latency in range(1, 101):
            stat.record(latency)
        assert stat.percentile(0) == 1.0
        assert stat.percentile(50) == pytest.approx(50.0, abs=1)
        assert stat.percentile(95) == pytest.approx(95.0, abs=1)
        assert stat.percentile(100) == 100.0

    def test_percentile_empty_and_bounds(self):
        stat = LatencyStat()
        assert stat.percentile(95) == 0.0
        with pytest.raises(ValueError):
            stat.percentile(101)

    def test_sample_cap(self):
        stat = LatencyStat()
        stat.MAX_SAMPLES = 10  # instance attribute shadows the class bound
        for latency in range(100):
            stat.record(latency)
        assert stat.count == 100
        assert len(stat._samples) == 10

    def test_merge_is_order_independent(self):
        """Regression: merge used to keep the first ``room`` samples of
        ``other``, so a.merge(b) and b.merge(a) disagreed on percentiles
        whenever the cap truncated — merged stats were biased toward
        whichever shard merged first."""

        def shard(values):
            stat = LatencyStat()
            stat.MAX_SAMPLES = 50
            for v in values:
                stat.record(v)
            return stat

        low = list(range(100))          # 0..99
        high = list(range(1000, 1100))  # 1000..1099
        ab = shard(low)
        ab.merge(shard(high))
        ba = shard(high)
        ba.merge(shard(low))
        assert ab._samples == ba._samples
        for p in (0, 25, 50, 75, 90, 99, 100):
            assert ab.percentile(p) == ba.percentile(p)
        # both shards survive in the retained set (no one-sided bias)
        assert any(v < 100 for v in ab._samples)
        assert any(v >= 1000 for v in ab._samples)

    def test_merge_within_cap_keeps_everything(self):
        a, b = LatencyStat(), LatencyStat()
        for v in (1, 2, 3):
            a.record(v)
        for v in (4, 5):
            b.record(v)
        a.merge(b)
        assert sorted(a._samples) == [1, 2, 3, 4, 5]
        assert a.count == 5

    def test_bucket_floor(self):
        # exact below 2**(HIST_SUB_BITS + 1)
        for v in range(0, 17):
            assert LatencyStat.bucket_floor(v) == v
        assert LatencyStat.bucket_floor(340) == 320  # width 32 at msb 8
        assert LatencyStat.bucket_floor(1023) == 960  # width 64 at msb 9
        assert LatencyStat.bucket_floor(1024) == 1024
        assert LatencyStat.bucket_floor(-5) == 0

    def test_histogram_percentile_error_bounded(self):
        stat = LatencyStat()
        for v in range(1, 2001):
            stat.record(v)
        restored = LatencyStat.from_dict(stat.to_dict())
        for p in (10, 50, 90, 99):
            exact = stat.percentile(p)
            approx = restored.percentile(p)
            assert exact * (1 - 2**-LatencyStat.HIST_SUB_BITS) <= approx <= exact

    def test_serialized_payload_has_no_raw_samples(self):
        """Regression: to_dict used to embed up to 200k raw samples,
        bloating every disk-cache entry by megabytes."""
        stat = LatencyStat()
        for v in range(10_000):
            stat.record(v)
        payload = stat.to_dict()
        assert "samples" not in payload
        # log-bucketed: far fewer buckets than samples
        assert len(payload["hist"]) < 200
        restored = LatencyStat.from_dict(payload)
        assert restored.count == stat.count
        assert restored.mean() == pytest.approx(stat.mean())
        assert restored.max == stat.max

    def test_legacy_samples_payload_rejected(self):
        with pytest.raises(ValueError):
            LatencyStat.from_dict(
                {"count": 2, "total": 30, "max": 20, "samples": [10, 20]}
            )


class TestRunStats:
    def test_l1_mpki(self):
        stats = RunStats()
        stats.mem_ops = 2000
        stats.l1_misses = 30
        stats.l1_sector_misses = 10
        assert stats.l1_mpki() == pytest.approx(20.0)

    def test_l1_mpki_no_ops(self):
        assert RunStats().l1_mpki() == 0.0

    def test_l1_accesses_sum(self):
        stats = RunStats()
        stats.l1_hits, stats.l1_misses, stats.l1_sector_misses = 5, 3, 2
        assert stats.l1_accesses == 10

    def test_read_request_bucketing(self):
        stats = RunStats()
        for nbytes, bucket in [(1, 16), (8, 16), (16, 16), (17, 32), (33, 48), (64, 64), (0, 16)]:
            stats.record_read_request_bytes(nbytes)
            assert stats.read_req_bytes_hist[bucket] >= 1

    def test_fraction_requests_at_most(self):
        stats = RunStats()
        stats.record_read_request_bytes(8)
        stats.record_read_request_bytes(30)
        stats.record_read_request_bytes(64)
        assert stats.fraction_requests_at_most(16) == pytest.approx(1 / 3)
        assert stats.fraction_requests_at_most(32) == pytest.approx(2 / 3)
        assert stats.fraction_requests_at_most(64) == pytest.approx(1.0)

    def test_fraction_empty(self):
        assert RunStats().fraction_requests_at_most(16) == 0.0


class TestPercentileRanking:
    """Regression for the banker's-rounding percentile bug: ``round()``
    made p50 depend on sample-count parity and let the raw and histogram
    paths land on different ranks at bucket edges.  Both paths now share
    one floor-based nearest-rank rule."""

    @staticmethod
    def _stat(values):
        stat = LatencyStat()
        for v in values:
            stat.record(v)
        return stat

    def test_even_sample_count(self):
        stat = self._stat(range(1, 11))  # 1..10
        assert stat.percentile(0) == 1.0
        assert stat.percentile(50) == 5.0  # floor(0.5 * 9) = rank 4
        assert stat.percentile(99) == 9.0  # floor(0.99 * 9) = rank 8
        assert stat.percentile(100) == 10.0

    def test_odd_sample_count(self):
        stat = self._stat(range(1, 10))  # 1..9
        assert stat.percentile(50) == 5.0  # floor(0.5 * 8) = rank 4, exact median
        assert stat.percentile(25) == 3.0  # floor(0.25 * 8) = rank 2
        assert stat.percentile(100) == 9.0

    def test_integer_percentile_rank_is_float_exact(self):
        # p * (n - 1) multiplies before dividing, so e.g. 70% of 11
        # samples is exactly rank 7 (0.7 * 10 would be 6.999...)
        assert LatencyStat._rank(70, 11) == 7
        assert LatencyStat._rank(29, 101) == 29

    def test_two_samples_median_is_lower(self):
        # parity case round() got wrong: round(0.5) == 0 but round(1.5)
        # == 2, so medians jumped between lower and upper neighbours
        assert self._stat([10, 20]).percentile(50) == 10.0
        assert self._stat([10, 20, 30, 40]).percentile(50) == 20.0

    def test_raw_and_histogram_paths_agree_on_same_rank(self):
        # values below 2**(HIST_SUB_BITS+1) have exact histogram buckets,
        # so the two paths must return identical percentiles
        values = [1, 2, 3, 5, 7, 11, 13, 15] * 3
        raw = self._stat(values)
        hist_only = LatencyStat.from_dict(raw.to_dict())
        assert not hist_only._samples
        for p in (0, 10, 25, 50, 75, 90, 99, 100):
            assert raw.percentile(p) == hist_only.percentile(p), p
