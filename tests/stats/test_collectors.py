"""Tests for statistic collectors."""

import pytest

from repro.stats.collectors import LatencyStat, RunStats


class TestLatencyStat:
    def test_empty(self):
        stat = LatencyStat()
        assert stat.mean() == 0.0
        assert stat.count == 0

    def test_record(self):
        stat = LatencyStat()
        for latency in (10, 20, 30):
            stat.record(latency)
        assert stat.count == 3
        assert stat.mean() == pytest.approx(20.0)
        assert stat.max == 30

    def test_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(10)
        b.record(30)
        a.merge(b)
        assert a.count == 2
        assert a.mean() == pytest.approx(20.0)
        assert a.max == 30
        assert a.percentile(100) == 30.0

    def test_percentiles(self):
        stat = LatencyStat()
        for latency in range(1, 101):
            stat.record(latency)
        assert stat.percentile(0) == 1.0
        assert stat.percentile(50) == pytest.approx(50.0, abs=1)
        assert stat.percentile(95) == pytest.approx(95.0, abs=1)
        assert stat.percentile(100) == 100.0

    def test_percentile_empty_and_bounds(self):
        stat = LatencyStat()
        assert stat.percentile(95) == 0.0
        with pytest.raises(ValueError):
            stat.percentile(101)

    def test_sample_cap(self):
        stat = LatencyStat()
        stat.MAX_SAMPLES = 10  # instance attribute shadows the class bound
        for latency in range(100):
            stat.record(latency)
        assert stat.count == 100
        assert len(stat._samples) == 10


class TestRunStats:
    def test_l1_mpki(self):
        stats = RunStats()
        stats.mem_ops = 2000
        stats.l1_misses = 30
        stats.l1_sector_misses = 10
        assert stats.l1_mpki() == pytest.approx(20.0)

    def test_l1_mpki_no_ops(self):
        assert RunStats().l1_mpki() == 0.0

    def test_l1_accesses_sum(self):
        stats = RunStats()
        stats.l1_hits, stats.l1_misses, stats.l1_sector_misses = 5, 3, 2
        assert stats.l1_accesses == 10

    def test_read_request_bucketing(self):
        stats = RunStats()
        for nbytes, bucket in [(1, 16), (8, 16), (16, 16), (17, 32), (33, 48), (64, 64), (0, 16)]:
            stats.record_read_request_bytes(nbytes)
            assert stats.read_req_bytes_hist[bucket] >= 1

    def test_fraction_requests_at_most(self):
        stats = RunStats()
        stats.record_read_request_bytes(8)
        stats.record_read_request_bytes(30)
        stats.record_read_request_bytes(64)
        assert stats.fraction_requests_at_most(16) == pytest.approx(1 / 3)
        assert stats.fraction_requests_at_most(32) == pytest.approx(2 / 3)
        assert stats.fraction_requests_at_most(64) == pytest.approx(1.0)

    def test_fraction_empty(self):
        assert RunStats().fraction_requests_at_most(16) == 0.0
