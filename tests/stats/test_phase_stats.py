"""Tests for the per-phase stats blocks (collective workload breakdown)."""

import pytest

from repro.stats.collectors import PhaseStats, RunStats


def _block(kernels=1, cycles=100, flits=10, entered=8, absorbed=2, lat=(50,)):
    block = PhaseStats()
    block.kernels = kernels
    block.cycles = cycles
    block.inter_flits = flits
    block.inter_wire_bytes = flits * 16
    block.inter_useful_bytes = flits * 12
    block.flits_entered = entered
    block.flits_absorbed = absorbed
    for v in lat:
        block.read_latency_inter.record(v)
    return block


class TestPhaseStats:
    def test_stitch_rate(self):
        assert _block(entered=8, absorbed=2).stitch_rate() == pytest.approx(0.25)
        assert PhaseStats().stitch_rate() == 0.0

    def test_merge_policy(self):
        """Traffic sums across shards (disjoint link ownership); kernels
        and cycles are run-global milestones every shard reports
        identically, so they max-merge instead of doubling."""
        a = _block(kernels=3, cycles=500, flits=10, entered=8, absorbed=2, lat=(50,))
        b = _block(kernels=3, cycles=500, flits=7, entered=5, absorbed=1, lat=(70,))
        a.merge(b)
        assert a.kernels == 3
        assert a.cycles == 500
        assert a.inter_flits == 17
        assert a.flits_entered == 13
        assert a.flits_absorbed == 3
        assert a.read_latency_inter.count == 2
        assert a.read_latency_inter.max == 70

    def test_round_trip(self):
        block = _block(lat=(10, 20, 30))
        restored = PhaseStats.from_dict(block.to_dict())
        assert vars(restored).keys() == vars(block).keys()
        assert restored.inter_flits == block.inter_flits
        assert restored.read_latency_inter.count == 3
        assert restored.read_latency_inter.mean() == pytest.approx(20.0)


class TestRunStatsPhases:
    def test_phases_omitted_when_unused(self):
        """Unlabelled (Table-3) runs serialize byte-identically to
        before phases existed — the digest gates depend on it."""
        stats = RunStats()
        payload = stats.to_dict()
        assert "__phases__" not in str(payload)
        assert stats.phases is None

    def test_transient_live_pointer_excluded(self):
        stats = RunStats()
        stats.set_live_phase("reduce")
        payload = stats.to_dict()
        assert "_phase" not in payload
        restored = RunStats.from_dict(payload)
        assert restored._phase is None

    def test_phase_routing(self):
        stats = RunStats()
        stats.record_phase_read_latency(99)  # no live phase: dropped
        assert stats.phases is None
        stats.set_live_phase("reduce")
        stats.record_phase_read_latency(40)
        stats.set_live_phase(None)
        stats.record_phase_read_latency(99)  # between phases: dropped
        assert stats.phase("reduce").read_latency_inter.count == 1

    def test_set_live_phase_materializes_block(self):
        # every shard must carry the same phase key set even when a
        # shard records no latency in a phase — merge key sets must match
        stats = RunStats()
        stats.set_live_phase("bubble")
        assert "bubble" in stats.phases
        assert stats.phases["bubble"].kernels == 0

    def test_phases_round_trip_and_merge(self):
        a = RunStats()
        a.phase("reduce").inter_flits = 5
        a.phase("reduce").kernels = 2
        a.phase("reduce").cycles = 300
        b = RunStats()
        b.phase("reduce").inter_flits = 7
        b.phase("reduce").kernels = 2
        b.phase("reduce").cycles = 300
        b.phase("gather").inter_flits = 1
        restored = RunStats.from_dict(b.to_dict())
        assert sorted(restored.phases) == ["gather", "reduce"]
        a.merge(restored)
        assert a.phase("reduce").inter_flits == 12
        assert a.phase("reduce").kernels == 2
        assert a.phase("reduce").cycles == 300
        assert a.phase("gather").inter_flits == 1
