"""Tests for the synthetic workload generators' pattern properties."""

import pytest

from repro.vm.page_table import PAGE_SIZE
from repro.workloads.base import Scale
from repro.workloads.registry import all_workload_names, get_workload

N_GPUS = 4
SCALE = Scale.tiny()


def _accesses(trace):
    for kernel in trace.kernels:
        for cta in kernel.ctas:
            for wf in cta.wavefronts:
                yield kernel, cta, wf


def _flat_accesses(trace):
    for kernel, cta, wf in _accesses(trace):
        for acc in wf.accesses:
            yield kernel, cta, acc


@pytest.mark.parametrize("name", all_workload_names() + ["gemm_large"])
def test_every_workload_builds_and_validates(name):
    trace = get_workload(name).build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    assert trace.total_accesses() > 0
    trace.validate()  # placement covers every touched page


@pytest.mark.parametrize("name", all_workload_names())
def test_ctas_distributed_across_all_gpus(name):
    trace = get_workload(name).build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    gpus = {cta.gpu for kernel in trace.kernels for cta in kernel.ctas}
    assert gpus == set(range(N_GPUS))


@pytest.mark.parametrize("name", all_workload_names())
def test_deterministic_per_seed(name):
    def snapshot(seed):
        trace = get_workload(name).build(n_gpus=N_GPUS, scale=SCALE, seed=seed)
        return [
            (cta.gpu, acc.vaddr, acc.nbytes, acc.is_write)
            for _k, cta, acc in _flat_accesses(trace)
        ]

    assert snapshot(7) == snapshot(7)


def test_deterministic_across_processes():
    """Trace generation must not depend on per-process str-hash
    randomization (PYTHONHASHSEED) — pool workers and repeat CLI
    invocations must all see the same trace for the same seed."""
    import os
    import subprocess
    import sys

    script = (
        "import hashlib\n"
        "from repro.workloads.base import Scale\n"
        "from repro.workloads.registry import get_workload\n"
        "trace = get_workload('gups').build(n_gpus=4, scale=Scale.tiny(), seed=0)\n"
        "digest = hashlib.sha256()\n"
        "for kernel in trace.kernels:\n"
        "    for cta in kernel.ctas:\n"
        "        for wf in cta.wavefronts:\n"
        "            for a in wf.accesses:\n"
        "                digest.update(f'{cta.gpu},{a.vaddr},{a.nbytes},{a.is_write};'.encode())\n"
        "print(digest.hexdigest())\n"
    )

    def digest_with_hashseed(value):
        env = dict(os.environ, PYTHONHASHSEED=value)
        env.setdefault("PYTHONPATH", "src")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        )
        return out.stdout.strip()

    assert digest_with_hashseed("1") == digest_with_hashseed("2")


def test_gups_needs_at_most_8_bytes():
    trace = get_workload("gups").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    for _k, _c, acc in _flat_accesses(trace):
        assert acc.nbytes <= 8


def test_gups_mixes_reads_and_writes():
    trace = get_workload("gups").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    ops = [acc.is_write for _k, _c, acc in _flat_accesses(trace)]
    assert any(ops) and not all(ops)


def test_blackscholes_fully_partitioned():
    """BS: every access from a GPU's CTA lands on a page that GPU owns."""
    trace = get_workload("bs").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    for kernel in trace.kernels:
        for cta in kernel.ctas:
            for wf in cta.wavefronts:
                for acc in wf.accesses:
                    assert kernel.page_owner[acc.vpn] == cta.gpu


def test_gups_touches_remote_pages():
    trace = get_workload("gups").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    remote = sum(
        1
        for kernel, cta, acc in _flat_accesses(trace)
        if kernel.page_owner[acc.vpn] != cta.gpu
    )
    total = trace.total_accesses()
    assert remote / total > 0.5  # interleaved table: ~3/4 remote


def test_mt_gathers_small_and_writes_full_lines():
    trace = get_workload("mt").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    reads = [acc for _k, _c, acc in _flat_accesses(trace) if not acc.is_write]
    writes = [acc for _k, _c, acc in _flat_accesses(trace) if acc.is_write]
    assert all(acc.nbytes <= 16 for acc in reads)
    assert all(acc.nbytes == 64 for acc in writes)


def test_mm2_has_two_kernels():
    trace = get_workload("mm2").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    assert len(trace.kernels) == 2


def test_mvt_has_gather_then_scatter_kernels():
    trace = get_workload("mvt").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    assert [k.name for k in trace.kernels] == ["mvt_gather", "mvt_scatter"]
    gather, scatter = trace.kernels
    gather_writes = sum(
        acc.is_write for cta in gather.ctas for wf in cta.wavefronts for acc in wf.accesses
    )
    scatter_writes = sum(
        acc.is_write for cta in scatter.ctas for wf in cta.wavefronts for acc in wf.accesses
    )
    assert gather_writes == 0
    assert scatter_writes > 0


def test_pr_runs_two_iterations():
    trace = get_workload("pr").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    assert [k.name for k in trace.kernels] == ["pr_iter0", "pr_iter1"]


def test_im2col_mostly_local():
    trace = get_workload("im2col").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    local = sum(
        1
        for kernel, cta, acc in _flat_accesses(trace)
        if kernel.page_owner[acc.vpn] == cta.gpu
    )
    assert local / trace.total_accesses() > 0.7


def test_spmv_gathers_dominate():
    trace = get_workload("spmv").build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    small_reads = sum(
        1
        for _k, _c, acc in _flat_accesses(trace)
        if not acc.is_write and acc.nbytes <= 8
    )
    assert small_reads / trace.total_accesses() >= 0.4


def test_gemm_large_gather_granularity_configurable():
    from repro.workloads.synthetic import LargeGemm

    trace = LargeGemm(gather_bytes=8).build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    gathers = [
        acc
        for _k, _c, acc in _flat_accesses(trace)
        if not acc.is_write and acc.nbytes <= 8
    ]
    assert gathers
