"""Tests for the collective-communication workload family."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.workloads.base import Scale
from repro.workloads.collective import (
    CollectiveWorkload,
    PolicyEntry,
    all_to_all_schedule,
    collective_generators,
    ring_allreduce_schedule,
    train_mix_schedule,
    tree_allreduce_schedule,
)
from repro.workloads.registry import (
    WORKLOADS,
    all_workload_names,
    collective_workload_names,
    get_workload,
)
from repro.workloads.serialization import trace_from_dict, trace_to_dict

N = 4  # GPUs used by most schedule tests
CHUNK = 4


class TestPolicyEntry:
    def test_self_peer_rejected(self):
        with pytest.raises(ValueError, match="pulls from itself"):
            PolicyEntry(0, "reduce", 2, (1, 1))

    def test_out_of_range_peer_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            PolicyEntry(0, "reduce", 2, (3, -1))
        with pytest.raises(ValueError, match="outside"):
            PolicyEntry(0, "reduce", 2, (-2, 0))

    def test_negative_chunk_rejected(self):
        with pytest.raises(ValueError, match="chunk_lines"):
            PolicyEntry(0, "reduce", -1, (1, -1))

    def test_empty_phase_rejected(self):
        with pytest.raises(ValueError, match="phase"):
            PolicyEntry(0, "", 2, (1, -1))

    def test_idle_marker_allowed(self):
        entry = PolicyEntry(3, "bubble", 0, (-1, -1))
        assert entry.peers == (-1, -1)


class TestSchedules:
    def test_ring_shape(self):
        sched = ring_allreduce_schedule(N, CHUNK)
        assert len(sched) == 2 * (N - 1)
        assert [e.phase for e in sched[: N - 1]] == ["reduce_scatter"] * (N - 1)
        assert [e.phase for e in sched[N - 1 :]] == ["all_gather"] * (N - 1)
        for entry in sched:  # neighbour-only traffic
            assert entry.peers == tuple((g - 1) % N for g in range(N))

    def test_tree_up_down_mirror(self):
        sched = tree_allreduce_schedule(N, CHUNK)
        up = [e for e in sched if e.phase == "reduce"]
        down = [e for e in sched if e.phase == "broadcast"]
        assert len(up) == len(down) == 2  # log2(4) levels each way
        # the down-sweep at each level inverts the matching up-sweep
        for up_entry, down_entry in zip(up, reversed(down)):
            inverted = {}
            for parent, child in enumerate(up_entry.peers):
                if child >= 0:
                    inverted[child] = parent
            for child, parent in enumerate(down_entry.peers):
                if parent >= 0:
                    assert inverted[child] == parent

    def test_all_to_all_covers_every_pair(self):
        sched = all_to_all_schedule(N, CHUNK)
        assert len(sched) == N - 1
        for g in range(N):
            partners = {e.peers[g] for e in sched}
            assert partners == set(range(N)) - {g}

    def test_train_mix_has_bubble(self):
        sched = train_mix_schedule(N, CHUNK)
        phases = [e.phase for e in sched]
        assert phases.count("pp_bubble") == 1
        bubble = next(e for e in sched if e.phase == "pp_bubble")
        assert bubble.peers == (-1,) * N
        assert bubble.chunk_lines == 0
        # DP gradients move half-size chunks
        dp = next(e for e in sched if e.phase == "dp_allreduce")
        assert dp.chunk_lines == max(1, CHUNK // 2)

    def test_single_gpu_degenerates_safely(self):
        for builder in (
            ring_allreduce_schedule,
            tree_allreduce_schedule,
            all_to_all_schedule,
            train_mix_schedule,
        ):
            sched = builder(1, CHUNK)
            assert sched, builder.__name__
            for entry in sched:
                assert all(p == -1 for p in entry.peers)


class TestCollectiveWorkload:
    def test_registry_entries(self):
        names = collective_workload_names()
        assert names == ["ar_ring", "ar_tree", "a2a", "trainmix"]
        for name in names:
            assert name in WORKLOADS
            assert get_workload(name).pattern == "collective"
            assert name not in all_workload_names()  # not Table 3

    def test_build_is_deterministic(self):
        a = get_workload("ar_ring").build(N, Scale.tiny(), seed=3)
        b = get_workload("ar_ring").build(N, Scale.tiny(), seed=3)
        assert trace_to_dict(a) == trace_to_dict(b)

    def test_kernels_carry_phase_labels(self):
        trace = get_workload("trainmix").build(N, Scale.tiny(), seed=0)
        phases = {k.phase for k in trace.kernels}
        assert phases == {"tp_allreduce", "pp_bubble", "dp_allreduce"}
        assert all(k.phase is not None for k in trace.kernels)

    def test_traffic_follows_peer_map(self):
        """A ring step's remote reads land only in the left neighbour's
        block — the peer map is the traffic endpoint."""
        gen = get_workload("ar_ring")
        scale = Scale.tiny()
        trace = gen.build(N, scale, seed=0)
        kernel = trace.kernels[0]
        for cta in kernel.ctas:
            peer = (cta.gpu - 1) % N
            for wf in cta.wavefronts:
                for acc in wf.accesses:
                    owner = kernel.page_owner[acc.vpn]
                    assert owner == (cta.gpu if acc.is_write else peer)

    def test_bubble_kernel_has_zero_accesses(self):
        trace = get_workload("trainmix").build(N, Scale.tiny(), seed=0)
        bubble = next(k for k in trace.kernels if k.phase == "pp_bubble")
        assert bubble.access_count() == 0
        assert bubble.wavefront_count() > 0  # still launches and quiesces

    def test_with_schedule_override(self):
        override = [PolicyEntry(0, "custom", 2, (1, -1, -1, -1))]
        pinned = get_workload("ar_ring").with_schedule(override)
        trace = pinned.build(N, Scale.tiny(), seed=0)
        assert len(trace.kernels) == 1
        assert trace.kernels[0].phase == "custom"
        # only GPU 0 moves data
        for cta in trace.kernels[0].ctas:
            n = sum(len(wf.accesses) for wf in cta.wavefronts)
            assert (n > 0) == (cta.gpu == 0)

    def test_empty_schedule_rejected(self):
        broken = CollectiveWorkload("broken", lambda n, c: [])
        with pytest.raises(ValueError, match="empty schedule"):
            broken.build(N, Scale.tiny(), seed=0)

    def test_serialization_round_trips_phase(self):
        trace = get_workload("ar_tree").build(N, Scale.tiny(), seed=0)
        restored = trace_from_dict(trace_to_dict(trace))
        assert [k.phase for k in restored.kernels] == [
            k.phase for k in trace.kernels
        ]

    def test_unlabelled_dump_has_no_phase_key(self):
        # pre-phase dumps and Table-3 traces stay byte-identical
        trace = get_workload("gups").build(N, Scale.tiny(), seed=0)
        doc = trace_to_dict(trace)
        assert all("phase" not in k for k in doc["kernels"])
        assert trace_from_dict(doc).kernels[0].phase is None


class TestZeroAccessRuns:
    def test_bubble_only_run_end_to_end(self):
        """A communication-only workload whose every kernel is a bubble:
        zero memory accesses end to end.  The zero-denominator stats
        edges (l1_mpki, fraction_requests_at_most, stitch/utilization
        rates) must all return 0 instead of dividing by zero."""
        config = SystemConfig.default()
        schedule = [
            PolicyEntry(i, "bubble", 0, (-1,) * config.n_gpus) for i in range(3)
        ]
        gen = CollectiveWorkload("bubbles", lambda n, c: schedule)
        trace = gen.build(config.n_gpus, Scale.tiny(), seed=0)
        assert trace.total_accesses() == 0
        system = MultiGpuSystem(config, NetCrafterConfig.full(), seed=0)
        system.load(trace)
        result = system.run()
        assert result.stats.l1_mpki() == 0.0
        assert result.stats.fraction_requests_at_most(32) == 0.0
        assert result.stitch_rate() == 0.0
        assert result.inter_utilization() == 0.0
        assert result.ptw_traffic_fraction() == 0.0
        assert result.padded_fraction_distribution(16) == {}
        assert result.mean_inter_read_latency() == 0.0
        assert result.inter_flits_sent == 0
        assert result.stats.kernel_count == 3
        bubble = result.phase_breakdown()["bubble"]
        assert bubble.kernels == 3
        assert bubble.inter_flits == 0
        assert bubble.stitch_rate() == 0.0
