"""Property tests: workload generators stay valid at arbitrary scales."""

from hypothesis import given, settings, strategies as st

from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

scales = st.builds(
    Scale,
    ctas_per_gpu=st.integers(1, 6),
    wavefronts_per_cta=st.integers(1, 3),
    accesses_per_wavefront=st.integers(1, 12),
    pages_per_gpu=st.integers(1, 16),
)


@settings(max_examples=25, deadline=None)
@given(scale=scales, name=st.sampled_from(["gups", "mm2", "pr", "bs", "lenet"]))
def test_any_scale_builds_valid_traces(scale, name):
    trace = get_workload(name).build(n_gpus=4, scale=scale, seed=1)
    trace.validate()
    assert trace.total_accesses() > 0
    for kernel in trace.kernels:
        for cta in kernel.ctas:
            assert 0 <= cta.gpu < 4
            for wf in cta.wavefronts:
                for acc in wf.accesses:
                    assert 1 <= acc.nbytes <= 64
                    assert (acc.vaddr % 64) + acc.nbytes <= 64


@settings(max_examples=10, deadline=None)
@given(scale=scales)
def test_tiny_scales_still_simulate(scale):
    """Even degenerate scales run end-to-end without deadlock."""
    from repro.gpu.system import MultiGpuSystem

    trace = get_workload("gups").build(n_gpus=4, scale=scale, seed=0)
    system = MultiGpuSystem()
    system.load(trace)
    result = system.run()
    assert result.stats.mem_ops == trace.total_accesses()
