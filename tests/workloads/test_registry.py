"""Tests for the workload registry and Table 3 reproduction."""

import pytest

from repro.workloads.registry import (
    WORKLOADS,
    all_workload_names,
    get_workload,
    workload_table,
)

TABLE3_NAMES = [
    "gups", "mt", "mis", "im2col", "atax", "bs", "mm2", "mvt",
    "spmv", "pr", "sr", "syr2k", "vgg16", "lenet", "rnet18",
]


def test_fifteen_workloads_in_table3_order():
    assert all_workload_names() == TABLE3_NAMES


def test_lookup_by_name_case_insensitive():
    assert get_workload("GUPS").name == "gups"
    assert get_workload("Spmv").name == "spmv"


def test_unknown_workload_raises_with_known_list():
    with pytest.raises(KeyError, match="known:"):
        get_workload("nope")


def test_gemm_large_registered_but_not_in_table3():
    assert "gemm_large" in WORKLOADS
    assert "gemm_large" not in all_workload_names()


def test_table3_rows_have_patterns_and_suites():
    rows = workload_table()
    assert len(rows) == 15
    by_abbr = {r["abbr"]: r for r in rows}
    assert by_abbr["GUPS"]["pattern"] == "random"
    assert by_abbr["GUPS"]["suite"] == "MGPUSim"
    assert by_abbr["MT"]["pattern"] == "gather"
    assert by_abbr["ATAX"]["pattern"] == "scatter"
    assert by_abbr["BS"]["pattern"] == "partitioned"
    assert by_abbr["SYR2K"]["pattern"] == "adjacent"
    assert by_abbr["VGG16"]["suite"] == "DNNMark"
