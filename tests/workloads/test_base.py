"""Tests for the workload-generation framework."""

import pytest
from hypothesis import given, strategies as st

from repro.vm.page_table import PAGE_SIZE
from repro.workloads.base import ARRAY_STRIDE, Array, Scale, aligned_access


class TestScale:
    def test_presets_ordered_by_size(self):
        tiny, small, default = Scale.tiny(), Scale.small(), Scale.default()
        def volume(s):
            return s.ctas_per_gpu * s.wavefronts_per_cta * s.accesses_per_wavefront
        assert volume(tiny) < volume(small) <= volume(default)

    def test_frozen_and_hashable(self):
        assert hash(Scale.tiny()) == hash(Scale.tiny())


class TestArray:
    def test_arrays_do_not_overlap(self):
        a = Array(0, 64, 4)
        b = Array(1, 64, 4)
        assert a.base + a.size_bytes <= b.base
        assert b.base - a.base == ARRAY_STRIDE

    def test_minimum_one_page_per_gpu(self):
        arr = Array(0, 2, 4)
        assert arr.pages == 4

    def test_addr_wraps(self):
        arr = Array(0, 4, 4)
        assert arr.addr(arr.size_bytes + 5) == arr.base + 5

    def test_interleave_policy(self):
        arr = Array(0, 8, 4, "interleave")
        owners = [arr.owner_of_page(p) for p in range(8)]
        assert owners == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_block_policy(self):
        arr = Array(0, 8, 4, "block")
        owners = [arr.owner_of_page(p) for p in range(8)]
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_policy_clamps_remainder(self):
        arr = Array(0, 9, 4, "block")
        assert arr.owner_of_page(8) == 3

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Array(0, 8, 4, "hash")

    def test_page_owner_map_covers_all_pages(self):
        arr = Array(2, 16, 4, "interleave")
        owners = arr.page_owner_map()
        assert len(owners) == 16
        first_vpn = arr.base // PAGE_SIZE
        assert set(owners) == {first_vpn + p for p in range(16)}

    def test_gpu_block_range(self):
        arr = Array(0, 8, 4, "block")
        rng = arr.gpu_block_range(1)
        assert rng.start == 2 * PAGE_SIZE
        assert len(rng) == 2 * PAGE_SIZE
        # every page in the block is owned by that GPU
        for offset in range(rng.start, rng.start + len(rng), PAGE_SIZE):
            assert arr.owner_of_page(offset // PAGE_SIZE) == 1


class TestAlignedAccess:
    def test_simple(self):
        arr = Array(0, 4, 4)
        acc = aligned_access(arr, 8, 8)
        assert acc.vaddr == arr.base + 8
        assert acc.nbytes == 8

    def test_clamps_at_line_end(self):
        arr = Array(0, 4, 4)
        acc = aligned_access(arr, 60, 16)
        assert acc.nbytes == 4  # clipped to stay in the line

    @given(offset=st.integers(0, 1 << 20), nbytes=st.integers(1, 64))
    def test_never_straddles(self, offset, nbytes):
        arr = Array(0, 16, 4)
        acc = aligned_access(arr, offset, nbytes)
        assert (acc.vaddr % 64) + acc.nbytes <= 64
