"""Tests for the data-parallel DNN workload models."""

import pytest

from repro.workloads.base import Scale
from repro.workloads.dnn import Lenet, Resnet18, Vgg16

N_GPUS = 4
SCALE = Scale.tiny()


@pytest.mark.parametrize("cls,layers", [(Vgg16, 16), (Lenet, 5), (Resnet18, 18)])
def test_two_kernels_per_layer(cls, layers):
    trace = cls().build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    assert len(trace.kernels) == 2 * layers
    names = [k.name for k in trace.kernels]
    assert names[0].endswith("l0_fwdbwd")
    assert names[1].endswith("l0_allreduce")


def test_layer_weights_scale_access_counts():
    trace = Vgg16().build(n_gpus=N_GPUS, scale=Scale.small(), seed=0)
    light = trace.kernels[0]  # layer 0: weight 0.3
    heavy = trace.kernels[26]  # layer 13: weight 1.5
    assert heavy.access_count() > light.access_count()


def test_compute_kernels_are_local():
    trace = Lenet().build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    compute = trace.kernels[0]
    for cta in compute.ctas:
        for wf in cta.wavefronts:
            for acc in wf.accesses:
                assert compute.page_owner[acc.vpn] == cta.gpu


def test_allreduce_kernels_read_remote_gradients():
    trace = Lenet().build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    exchange = trace.kernels[1]
    remote_reads = 0
    for cta in exchange.ctas:
        for wf in cta.wavefronts:
            for acc in wf.accesses:
                if not acc.is_write and exchange.page_owner[acc.vpn] != cta.gpu:
                    remote_reads += 1
    assert remote_reads > 0


def test_allreduce_uses_full_lines():
    trace = Vgg16().build(n_gpus=N_GPUS, scale=SCALE, seed=0)
    exchange = trace.kernels[1]
    for cta in exchange.ctas:
        for wf in cta.wavefronts:
            for acc in wf.accesses:
                assert acc.nbytes == 64


def test_per_layer_scale_reduction_keeps_volume_bounded():
    full = Scale.small()
    trace = Vgg16().build(n_gpus=N_GPUS, scale=full, seed=0)
    # 32 kernels must not explode past a comparable single-kernel workload
    per_kernel = trace.total_accesses() / len(trace.kernels)
    single = full.ctas_per_gpu * full.wavefronts_per_cta * full.accesses_per_wavefront
    assert per_kernel < single
