"""Tests for workload trace serialization."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.cta import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.vm.page_table import PAGE_SIZE
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload
from repro.workloads.serialization import (
    TraceFormatError,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


def _snapshot(trace):
    return [
        (kernel.name, cta.gpu, acc.vaddr, acc.nbytes, acc.is_write)
        for kernel in trace.kernels
        for cta in kernel.ctas
        for wf in cta.wavefronts
        for acc in wf.accesses
    ]


def test_roundtrip_generated_workload(tmp_path):
    trace = get_workload("spmv").build(n_gpus=4, scale=Scale.tiny(), seed=1)
    path = tmp_path / "spmv.json"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == trace.name
    assert _snapshot(loaded) == _snapshot(trace)
    assert [k.page_owner for k in loaded.kernels] == [
        k.page_owner for k in trace.kernels
    ]


def test_loaded_trace_runs(tmp_path):
    from repro.gpu.system import MultiGpuSystem

    trace = get_workload("gups").build(n_gpus=4, scale=Scale.tiny(), seed=0)
    path = tmp_path / "gups.json"
    save_trace(trace, path)
    system = MultiGpuSystem()
    system.load(load_trace(path))
    result = system.run()
    assert result.stats.mem_ops == trace.total_accesses()


def test_addresses_stored_as_hex(tmp_path):
    trace = get_workload("bs").build(n_gpus=4, scale=Scale.tiny(), seed=0)
    doc = trace_to_dict(trace)
    first_access = doc["kernels"][0]["ctas"][0]["wavefronts"][0][0]
    assert first_access[0].startswith("0x")


def test_rejects_wrong_format():
    with pytest.raises(TraceFormatError, match="not a repro trace"):
        trace_from_dict({"format": "something-else", "version": 1})


def test_rejects_wrong_version():
    with pytest.raises(TraceFormatError, match="unsupported trace version"):
        trace_from_dict({"format": "repro-netcrafter-trace", "version": 99})


def test_rejects_non_object():
    with pytest.raises(TraceFormatError):
        trace_from_dict([1, 2, 3])


def test_rejects_malformed_body():
    with pytest.raises(TraceFormatError, match="malformed"):
        trace_from_dict(
            {"format": "repro-netcrafter-trace", "version": 1, "name": "x"}
        )


def test_rejects_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{ not json")
    with pytest.raises(TraceFormatError, match="invalid JSON"):
        load_trace(path)


def test_validation_applied_on_load():
    """A trace whose pages lack owners fails validation at load time."""
    doc = {
        "format": "repro-netcrafter-trace",
        "version": 1,
        "name": "broken",
        "kernels": [
            {
                "name": "k",
                "page_owner": {},
                "ctas": [
                    {"gpu": 0, "wavefronts": [[["0x10000", 8, 0]]]}
                ],
            }
        ],
    }
    with pytest.raises(ValueError, match="lack an owner"):
        trace_from_dict(doc)


@settings(max_examples=25, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(
            st.integers(0, 1 << 30),  # page-ish base
            st.integers(0, 63),       # offset in line? keep legal
            st.integers(1, 8),
            st.booleans(),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_roundtrip_property(accesses):
    mem = []
    owners = {}
    for base, offset, nbytes, is_write in accesses:
        vaddr = base * 64 + min(offset, 64 - nbytes)
        mem.append(MemAccess(vaddr=vaddr, nbytes=nbytes, is_write=is_write))
        owners[vaddr // PAGE_SIZE] = 0
    trace = WorkloadTrace(
        name="prop",
        kernels=[
            KernelTrace(
                name="k",
                ctas=[CtaTrace(gpu=0, wavefronts=[WavefrontTrace(accesses=mem)])],
                page_owner=owners,
            )
        ],
    )
    doc = json.loads(json.dumps(trace_to_dict(trace)))  # force JSON types
    loaded = trace_from_dict(doc)
    assert _snapshot(loaded) == _snapshot(trace)
