"""Tests for the engine callback profiler."""

import json

import pytest

from repro.obs.profiler import EngineProfiler, callback_key
from repro.sim.engine import Engine


class _Widget:
    def __init__(self):
        self.calls = []

    def tick(self, value=None):
        self.calls.append(value)

    def boom(self):
        raise RuntimeError("boom")


def _free_function():
    pass


class TestCallbackKey:
    def test_bound_method(self):
        assert callback_key(_Widget().tick) == "_Widget.tick"

    def test_free_function(self):
        assert callback_key(_free_function).endswith("_free_function")

    def test_lambda(self):
        assert "<lambda>" in callback_key(lambda: None)


class TestDispatch:
    def test_counts_and_time_accumulate(self):
        profiler = EngineProfiler()
        widget = _Widget()
        profiler.dispatch(widget.tick, (1,))
        profiler.dispatch(widget.tick, (2,))
        assert widget.calls == [1, 2]
        assert profiler.events == 2
        count, seconds = profiler.by_key["_Widget.tick"]
        assert count == 2
        assert seconds >= 0.0
        assert profiler.wall_seconds >= seconds

    def test_exception_still_attributed(self):
        profiler = EngineProfiler()
        widget = _Widget()
        with pytest.raises(RuntimeError):
            profiler.dispatch(widget.boom, ())
        assert profiler.by_key["_Widget.boom"][0] == 1
        assert profiler.events == 1

    def test_hotspots_sorted_by_time(self):
        profiler = EngineProfiler()
        profiler.by_key = {"fast": [10, 0.1], "slow": [1, 5.0]}
        assert [row[0] for row in profiler.hotspots()] == ["slow", "fast"]


class TestEngineIntegration:
    def test_engine_attributes_events(self):
        engine = Engine()
        engine.profiler = EngineProfiler()
        widget = _Widget()
        engine.schedule(0, widget.tick, "a")
        engine.schedule(5, widget.tick, "b")
        engine.run()
        assert widget.calls == ["a", "b"]
        assert engine.profiler.by_key["_Widget.tick"][0] == 2

    def test_detached_engine_unaffected(self):
        engine = Engine()
        assert engine.profiler is None
        widget = _Widget()
        engine.schedule(0, widget.tick, "a")
        engine.run()
        assert widget.calls == ["a"]


class TestReporting:
    def test_report_lines(self):
        profiler = EngineProfiler()
        profiler.dispatch(_Widget().tick, ())
        lines = profiler.report_lines()
        assert "events dispatched:  1" in lines[0]
        assert any("_Widget.tick" in line for line in lines[1:])

    def test_json_round_trip(self, tmp_path):
        profiler = EngineProfiler()
        profiler.dispatch(_Widget().tick, ())
        path = tmp_path / "profile.json"
        profiler.to_json(path)
        data = json.loads(path.read_text())
        assert data["events"] == 1
        assert data["by_callback"][0]["callback"] == "_Widget.tick"
