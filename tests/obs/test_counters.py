"""Tests for the wall-clock-domain CounterSet."""

import pytest

from repro.obs import CounterSet


class TestCounterSet:
    def test_unknown_names_start_at_zero(self):
        counters = CounterSet()
        assert counters.get("nope") == 0
        assert len(counters) == 0

    def test_inc_accumulates_and_returns(self):
        counters = CounterSet()
        assert counters.inc("hits") == 1
        assert counters.inc("hits", 2) == 3
        assert counters.get("hits") == 3

    def test_float_counters(self):
        counters = CounterSet()
        counters.inc("seconds", 0.25)
        counters.inc("seconds", 0.5)
        assert counters.get("seconds") == pytest.approx(0.75)

    def test_monotonic(self):
        counters = CounterSet()
        with pytest.raises(ValueError, match="monotonic"):
            counters.inc("hits", -1)

    def test_to_dict_sorted_snapshot(self):
        counters = CounterSet()
        counters.inc("zeta")
        counters.inc("alpha", 2)
        snapshot = counters.to_dict()
        assert list(snapshot) == ["alpha", "zeta"]
        snapshot["alpha"] = 99  # a copy, not the live registry
        assert counters.get("alpha") == 2
