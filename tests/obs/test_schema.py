"""Tests for trace-record validation (shape + lifecycle sequencing)."""

import json

from repro.obs.schema import (
    EVENTS,
    FLIT_EVENTS,
    PACKET_EVENTS,
    validate_jsonl,
    validate_record,
    validate_records,
)
from repro.obs.validate import main as validate_main


def _rec(event, cycle=0, flit=1, packet=1, **extra):
    record = {"cycle": cycle, "event": event, "packet": packet}
    if event in FLIT_EVENTS:
        record["flit"] = flit
    record.update(extra)
    return record


class TestValidateRecord:
    def test_vocabulary_is_closed(self):
        assert set(PACKET_EVENTS) | set(FLIT_EVENTS) == set(EVENTS)
        assert validate_record(_rec("warp_jump")) != []

    def test_minimal_valid_records(self):
        assert validate_record(_rec("inject")) == []
        assert validate_record(_rec("stage")) == []
        assert validate_record(_rec("eject")) == []

    def test_cycle_must_be_nonnegative_int(self):
        assert validate_record(_rec("stage", cycle=-1))
        assert validate_record(_rec("stage", cycle=1.5))

    def test_flit_events_need_flit_id(self):
        bad = _rec("stage")
        del bad["flit"]
        assert validate_record(bad)

    def test_stitch_needs_distinct_parent(self):
        assert validate_record(_rec("stitch", flit=1, parent=2)) == []
        assert validate_record(_rec("stitch", flit=1))
        assert validate_record(_rec("stitch", flit=1, parent=1))

    def test_pool_needs_future_until(self):
        assert validate_record(_rec("pool", cycle=5, until=9)) == []
        assert validate_record(_rec("pool", cycle=5))
        assert validate_record(_rec("pool", cycle=5, until=4))

    def test_wire_start_needs_link_and_dur(self):
        assert validate_record(_rec("wire_start", link="l0", dur=1.0)) == []
        assert validate_record(_rec("wire_start", dur=1.0))
        assert validate_record(_rec("wire_start", link="l0"))

    def test_trace_meta_header(self):
        assert validate_record({"event": "trace_meta", "schema": 1}) == []
        assert validate_record({"event": "trace_meta"})


class TestValidateRecords:
    def test_legal_lifecycle(self):
        records = [
            _rec("stage", cycle=0),
            _rec("pool", cycle=1, until=5),
            _rec("eject", cycle=5),
            _rec("wire_start", cycle=5, link="l0", dur=1.0),
            _rec("deliver", cycle=10),
        ]
        assert validate_records(records) == []

    def test_stitched_child_lifecycle(self):
        records = [
            _rec("stage", cycle=0, flit=2),
            _rec("stitch", cycle=3, flit=2, parent=9),
        ]
        assert validate_records(records) == []

    def test_cycle_regression_flagged(self):
        records = [_rec("stage", cycle=5), _rec("eject", cycle=3)]
        assert validate_records(records)

    def test_rank_regression_flagged(self):
        records = [
            _rec("stage", cycle=0),
            _rec("deliver", cycle=5),
            _rec("eject", cycle=6),  # eject after deliver is illegal
        ]
        assert validate_records(records)

    def test_wire_without_stage_flagged(self):
        assert validate_records([_rec("deliver", cycle=5)])
        assert validate_records([_rec("wire_start", cycle=5, link="l", dur=1)])

    def test_independent_flits_do_not_interfere(self):
        records = [
            _rec("stage", cycle=0, flit=1),
            _rec("stage", cycle=4, flit=2),
            _rec("eject", cycle=5, flit=1),
            _rec("eject", cycle=6, flit=2),
        ]
        assert validate_records(records) == []


def _write_jsonl(path, records, meta=None):
    meta = meta if meta is not None else {"event": "trace_meta", "cycle": 0, "schema": 1, "dropped": 0}
    lines = [json.dumps(meta)] + [json.dumps(r) for r in records]
    path.write_text("\n".join(lines) + "\n")


class TestValidateJsonl:
    def test_valid_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_jsonl(path, [_rec("stage", cycle=0), _rec("eject", cycle=2)])
        assert validate_jsonl(path) == []

    def test_missing_meta(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_rec("stage")) + "\n")
        assert validate_jsonl(path) == ["missing trace_meta header line"]

    def test_dropped_trace_skips_sequence_checks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        meta = {"event": "trace_meta", "cycle": 0, "schema": 1, "dropped": 3}
        # bare deliver: a sequence violation, but the stage was dropped
        _write_jsonl(path, [_rec("deliver", cycle=5)], meta=meta)
        assert validate_jsonl(path) == []

    def test_allow_partial_flag(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_jsonl(path, [_rec("deliver", cycle=5)])
        assert validate_jsonl(path)
        assert validate_jsonl(path, allow_partial=True) == []


class TestValidateCli:
    def test_ok_exit(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_jsonl(path, [_rec("stage", cycle=0)])
        assert validate_main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_violation_exit(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_jsonl(path, [_rec("deliver", cycle=5)])
        assert validate_main([str(path)]) == 1
        assert validate_main([str(path), "--allow-partial"]) == 0
