"""Tests for the metrics time-series registry."""

import json

import pytest

from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry


class TestRegistration:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsRegistry(0)

    def test_names_unique(self):
        reg = MetricsRegistry(100)
        reg.register("a", lambda: 0)
        with pytest.raises(ValueError):
            reg.register("a", lambda: 1)

    def test_cycle_reserved(self):
        with pytest.raises(ValueError):
            MetricsRegistry(100).register("cycle", lambda: 0)

    def test_names_in_registration_order(self):
        reg = MetricsRegistry(100)
        reg.register("b", lambda: 0)
        reg.register("a", lambda: 0)
        assert reg.names() == ["b", "a"]


class TestSampling:
    def test_series_tracks_source(self):
        counter = {"v": 0}
        reg = MetricsRegistry(10)
        reg.register("m", lambda: counter["v"])
        for cycle in (0, 10, 20):
            counter["v"] += 5
            reg.sample(cycle)
        assert reg.series("m") == [(0, 5), (10, 10), (20, 15)]
        assert reg.latest("m") == 15

    def test_resample_same_cycle_replaces_row(self):
        counter = {"v": 1}
        reg = MetricsRegistry(10)
        reg.register("m", lambda: counter["v"])
        reg.sample(50)
        counter["v"] = 9
        reg.sample(50)  # final snapshot landing on a periodic one
        assert reg.series("m") == [(50, 9)]

    def test_unknown_series_rejected(self):
        with pytest.raises(KeyError):
            MetricsRegistry(10).series("nope")

    def test_latest_empty(self):
        reg = MetricsRegistry(10)
        reg.register("m", lambda: 1)
        assert reg.latest("m") is None

    def test_deltas(self):
        values = iter([3, 10, 10])
        reg = MetricsRegistry(10)
        reg.register("m", lambda: next(values))
        for cycle in (0, 10, 20):
            reg.sample(cycle)
        assert reg.deltas("m") == [(0, 3), (10, 7), (20, 0)]


class TestExport:
    def test_jsonl_with_meta_header(self, tmp_path):
        reg = MetricsRegistry(100)
        reg.register("m", lambda: 7)
        reg.sample(0)
        reg.sample(100)
        path = tmp_path / "metrics.jsonl"
        assert reg.to_jsonl(path) == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        meta, rows = lines[0], lines[1:]
        assert meta["meta"] is True
        assert meta["schema"] == METRICS_SCHEMA_VERSION
        assert meta["interval"] == 100
        assert meta["metrics"] == ["m"]
        assert rows == [{"cycle": 0, "m": 7}, {"cycle": 100, "m": 7}]
