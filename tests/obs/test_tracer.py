"""Tests for the flit-lifecycle event tracer and its exports."""

import json

import pytest

from repro.network.flit import segment_packet
from repro.network.packet import Packet, PacketType
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    EventTracer,
    NullTracer,
    iter_jsonl,
)


def _packet(ptype=PacketType.READ_REQ):
    return Packet(ptype=ptype, src_gpu=0, dst_gpu=2)


def _flit(ptype=PacketType.READ_REQ):
    return segment_packet(_packet(ptype), 16)[0]


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        # no-ops must not raise even with garbage arguments
        NULL_TRACER.packet_event(0, "inject", None)
        NULL_TRACER.flit_event(0, "stage", None, anything=1)

    def test_singleton_has_no_dict(self):
        with pytest.raises(AttributeError):
            NullTracer().stash = 1


class TestEventTracer:
    def test_packet_event_fields(self):
        tracer = EventTracer()
        pkt = _packet()
        tracer.packet_event(5, "inject", pkt, lane="rdma0")
        (record,) = tracer.events()
        assert record["cycle"] == 5
        assert record["event"] == "inject"
        assert record["packet"] == pkt.pid
        assert record["ptype"] == pkt.ptype.value
        assert record["src"] == 0 and record["dst"] == 2
        assert record["lane"] == "rdma0"

    def test_flit_event_fields(self):
        tracer = EventTracer()
        flit = _flit()
        tracer.flit_event(7, "stage", flit, part="read_req")
        (record,) = tracer.events()
        assert record["flit"] == flit.fid
        assert record["packet"] == flit.packet.pid
        assert record["part"] == "read_req"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EventTracer(sample=0)
        with pytest.raises(ValueError):
            EventTracer(ring_capacity=0)

    def test_sampling_is_packet_granular(self):
        tracer = EventTracer(sample=2)
        kept, skipped = [], []
        for _ in range(8):
            flit = _flit()
            tracer.flit_event(0, "stage", flit)
            tracer.flit_event(1, "eject", flit)
            (kept if tracer.wants_packet(flit.packet.pid) else skipped).append(flit)
        assert kept and skipped
        traced_pids = {r["packet"] for r in tracer.events()}
        assert traced_pids == {f.packet.pid for f in kept}
        # sampled packets keep their whole lifecycle (both events)
        for flit in kept:
            assert len([r for r in tracer.events() if r["flit"] == flit.fid]) == 2

    def test_ring_drops_oldest(self):
        tracer = EventTracer(ring_capacity=3)
        flits = [_flit() for _ in range(5)]
        for i, flit in enumerate(flits):
            tracer.flit_event(i, "stage", flit)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [r["flit"] for r in tracer.events()] == [f.fid for f in flits[2:]]

    def test_events_sorted_by_cycle(self):
        tracer = EventTracer()
        a, b = _flit(), _flit()
        tracer.flit_event(10, "deliver", a)  # future arrival, emitted early
        tracer.flit_event(3, "stage", b)
        assert [r["cycle"] for r in tracer.events()] == [3, 10]

    def test_lifecycle_of_and_counts(self):
        tracer = EventTracer()
        flit = _flit()
        tracer.flit_event(0, "stage", flit)
        tracer.flit_event(2, "eject", flit)
        tracer.flit_event(0, "stage", _flit())
        assert [r["event"] for r in tracer.lifecycle_of(flit.fid)] == [
            "stage",
            "eject",
        ]
        assert tracer.count_by_event() == {"stage": 2, "eject": 1}


class TestJsonlExport:
    def test_round_trip_with_meta_header(self, tmp_path):
        tracer = EventTracer(sample=1)
        flit = _flit()
        tracer.flit_event(0, "stage", flit)
        tracer.flit_event(1, "eject", flit)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(path) == 2
        records = list(iter_jsonl(path))
        meta, body = records[0], records[1:]
        assert meta["event"] == "trace_meta"
        assert meta["schema"] == TRACE_SCHEMA_VERSION
        assert meta["records"] == 2
        assert meta["dropped"] == 0
        assert [r["event"] for r in body] == ["stage", "eject"]

    def test_meta_reports_drops(self, tmp_path):
        tracer = EventTracer(ring_capacity=1)
        tracer.flit_event(0, "stage", _flit())
        tracer.flit_event(1, "stage", _flit())
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(path)
        meta = next(iter_jsonl(path))
        assert meta["dropped"] == 1


class TestChromeExport:
    def test_document_shape(self, tmp_path):
        tracer = EventTracer()
        flit = _flit()
        tracer.flit_event(0, "stage", flit, lane="ctl0")
        tracer.flit_event(2, "wire_start", flit, link="link0", dur=1.0)
        path = tmp_path / "trace.json"
        doc = tracer.to_chrome(path)
        # the written file parses to the same document Chrome would load
        assert json.loads(path.read_text()) == json.loads(json.dumps(doc))
        assert doc["otherData"]["schema"] == TRACE_SCHEMA_VERSION
        events = doc["traceEvents"]
        named = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in named} == {"ctl0", "link0"}
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1 and slices[0]["dur"] == 1.0
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1 and instants[0]["s"] == "t"

    def test_lanes_get_distinct_threads(self):
        tracer = EventTracer()
        tracer.flit_event(0, "stage", _flit(), lane="a")
        tracer.flit_event(0, "stage", _flit(), lane="b")
        doc = tracer.to_chrome()
        tids = {
            e["tid"] for e in doc["traceEvents"] if e["ph"] == "i"
        }
        assert len(tids) == 2
