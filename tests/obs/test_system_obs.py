"""End-to-end observability acceptance: trace a real NetCrafter run.

Runs whole workloads through :class:`MultiGpuSystem` with the full
observability bundle attached and checks the PR's acceptance invariants:
the emitted trace is schema-valid JSONL, the Chrome export loads, the
metrics time series ends exactly at the end-of-run aggregate counters,
and the profiler attributes every dispatched event.
"""

import json

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.system import MultiGpuSystem
from repro.obs import (
    EngineProfiler,
    EventTracer,
    MetricsRegistry,
    Observability,
    validate_jsonl,
)
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload


def _run_traced(
    workload="gups",
    nc=None,
    sample=1,
    metrics_interval=500,
    profile=True,
    seed=0,
):
    system_cfg = SystemConfig.default()
    obs = Observability(
        tracer=EventTracer(sample=sample),
        metrics=MetricsRegistry(metrics_interval),
        profiler=EngineProfiler() if profile else None,
    )
    trace = get_workload(workload).build(
        n_gpus=system_cfg.n_gpus, scale=Scale.tiny(), seed=seed
    )
    system = MultiGpuSystem(
        config=system_cfg,
        netcrafter=nc or NetCrafterConfig.full(),
        seed=seed,
        obs=obs,
    )
    system.load(trace)
    result = system.run()
    return result, obs


@pytest.fixture(scope="module")
def traced_run():
    """One fully-featured traced run shared by the checks below."""
    return _run_traced()


class TestTraceContent:
    def test_every_mechanism_leaves_events(self, traced_run):
        _, obs = traced_run
        counts = obs.tracer.count_by_event()
        # the full config at tiny scale exercises inject/stage/eject/
        # wire_start/deliver on every run and stitching on gups traffic
        for event in ("inject", "stage", "eject", "wire_start", "deliver"):
            assert counts.get(event, 0) > 0, f"no {event!r} events"
        assert counts.get("stitch", 0) > 0

    def test_pool_and_trim_events(self):
        # pooling needs padded flits waiting for company; read-heavy gups
        # under selective pooling with a long window produces them, and
        # trimming fires on the full config's read responses
        _, obs = _run_traced(
            nc=NetCrafterConfig.full(pooling_window=64)
        )
        counts = obs.tracer.count_by_event()
        assert counts.get("trim", 0) > 0
        assert counts.get("pool", 0) > 0

    def test_jsonl_is_schema_valid(self, traced_run, tmp_path):
        _, obs = traced_run
        path = tmp_path / "run.trace.jsonl"
        written = obs.tracer.to_jsonl(path)
        assert written == len(obs.tracer)
        assert validate_jsonl(path) == []

    def test_chrome_export_loads(self, traced_run, tmp_path):
        _, obs = traced_run
        path = tmp_path / "run.trace.json"
        obs.tracer.to_chrome(path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"], "empty Chrome trace"
        assert {"ph", "pid", "tid", "ts"} <= set(
            next(e for e in doc["traceEvents"] if e["ph"] != "M")
        )

    def test_sampled_trace_still_valid(self, tmp_path):
        _, obs = _run_traced(sample=4, profile=False)
        path = tmp_path / "sampled.trace.jsonl"
        obs.tracer.to_jsonl(path)
        assert validate_jsonl(path) == []
        pids = {r["packet"] for r in obs.tracer.events()}
        assert pids and all(pid % 4 == 0 for pid in pids)


class TestMetricsSeries:
    def test_final_sample_matches_aggregates(self, traced_run):
        """The cumulative series must end at the RunResult totals."""
        result, obs = traced_run
        metrics = obs.metrics
        assert metrics.latest("inter.wire_bytes") == result.inter_wire_bytes
        assert metrics.latest("inter.useful_bytes") == result.inter_useful_bytes
        assert metrics.latest("inter.flits") == result.inter_flits_sent

    def test_series_cycles_monotonic_and_end_at_finish(self, traced_run):
        result, obs = traced_run
        cycles = [cycle for cycle, _ in obs.metrics.series("inter.wire_bytes")]
        assert cycles == sorted(set(cycles))
        assert cycles[0] == 0  # launch-time baseline
        assert cycles[-1] == result.cycles

    def test_cumulative_series_nondecreasing(self, traced_run):
        _, obs = traced_run
        values = [v for _, v in obs.metrics.series("inter.wire_bytes")]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] > 0

    def test_gauges_present(self, traced_run):
        _, obs = traced_run
        names = obs.metrics.names()
        assert "mshr.l2.occupancy" in names
        assert "engine.pending_events" in names
        assert any(name.startswith("cq.") for name in names)


class TestProfiler:
    def test_all_events_attributed(self, traced_run):
        _, obs = traced_run
        profiler = obs.profiler
        assert profiler.events > 0
        assert sum(count for count, _ in profiler.by_key.values()) == profiler.events
        keys = set(profiler.by_key)
        # the hot components of a tiny run all show up
        assert any("NetCrafterController" in key for key in keys)
        assert any("ComputeUnit" in key or "Cu" in key for key in keys)


class TestDisabledPath:
    def test_default_obs_records_nothing(self):
        system_cfg = SystemConfig.default()
        trace = get_workload("gups").build(
            n_gpus=system_cfg.n_gpus, scale=Scale.tiny(), seed=0
        )
        system = MultiGpuSystem(
            config=system_cfg, netcrafter=NetCrafterConfig.full(), seed=0
        )
        system.load(trace)
        system.run()
        assert not system.obs.enabled
        assert system.engine.profiler is None

    def test_traced_run_is_timing_identical(self, traced_run):
        """Observability must be an observer: cycles cannot change."""
        traced_result, _ = traced_run
        system_cfg = SystemConfig.default()
        trace = get_workload("gups").build(
            n_gpus=system_cfg.n_gpus, scale=Scale.tiny(), seed=0
        )
        system = MultiGpuSystem(
            config=system_cfg, netcrafter=NetCrafterConfig.full(), seed=0
        )
        system.load(trace)
        plain_result = system.run()
        assert plain_result.cycles == traced_result.cycles
        assert plain_result.inter_wire_bytes == traced_result.inter_wire_bytes
