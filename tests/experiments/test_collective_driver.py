"""Smoke tests for the ext_collective experiment driver."""

import pytest

from repro.experiments import collective
from repro.experiments.runner import ExperimentScale
from repro.workloads.base import Scale
from repro.workloads.registry import collective_workload_names

EXP = ExperimentScale(scale=Scale.tiny())


@pytest.fixture(autouse=True)
def _mesh_only(monkeypatch):
    # one fabric keeps the smoke fast; the full sweep runs via the CLI
    monkeypatch.setattr(collective, "COLLECTIVE_TOPOLOGIES", ("mesh",))


def test_ext_collective_shape():
    result = collective.ext_collective(EXP)
    names = collective_workload_names()
    assert result.labels == [f"{n}@mesh" for n in names]
    assert set(result.series) == {
        "base_cycles",
        "nc_cycles",
        "nc_speedup",
        "stitch_rate",
    }
    assert all(len(v) == len(result.labels) for v in result.series.values())
    assert all(v > 0 for v in result.series["nc_speedup"])
    assert all(0 <= v <= 1 for v in result.series["stitch_rate"])
    assert "geomean" in result.notes
    # the per-phase narrative covers the mesh points
    assert "pp_bubble" in result.notes


def test_collective_system_nodes():
    mesh = collective.collective_system("mesh")
    assert (mesh.n_clusters, mesh.gpus_per_cluster) == (2, 2)
    star = collective.collective_system("star")
    assert (star.n_clusters, star.gpus_per_cluster) == (4, 1)
    assert star.inter_topology == "star"
