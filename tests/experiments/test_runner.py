"""Tests for the experiment runner and its cache."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.experiments.runner import (
    ExperimentPoint,
    ExperimentScale,
    ObservabilityOptions,
    clear_cache,
    disk_cache,
    reset_run_stats,
    run_many,
    run_one,
    run_pair,
    run_stats,
    set_cache_dir,
    set_observability,
)
from repro.workloads.base import Scale


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    reset_run_stats()
    set_cache_dir(None)
    set_observability(None)
    yield
    clear_cache()
    reset_run_stats()
    set_cache_dir(None)
    set_observability(None)


def test_run_one_returns_result():
    result = run_one("gups", scale=Scale.tiny())
    assert result.cycles > 0
    assert result.workload == "gups"


def test_cache_returns_same_object():
    a = run_one("gups", scale=Scale.tiny())
    b = run_one("gups", scale=Scale.tiny())
    assert a is b


def test_cache_distinguishes_configs():
    a = run_one("gups", scale=Scale.tiny())
    b = run_one("gups", netcrafter=NetCrafterConfig.full(), scale=Scale.tiny())
    assert a is not b


def test_cache_bypass():
    a = run_one("gups", scale=Scale.tiny(), use_cache=False)
    b = run_one("gups", scale=Scale.tiny(), use_cache=False)
    assert a is not b
    assert a.cycles == b.cycles  # still deterministic


def test_run_pair():
    base, out = run_pair("gups", NetCrafterConfig.full(), scale=Scale.tiny())
    assert base.config_label == "baseline"
    assert out.config_label != "baseline"


def _tiny_points():
    return [
        ExperimentPoint(workload="gups", scale=Scale.tiny()),
        ExperimentPoint(
            workload="gups", netcrafter=NetCrafterConfig.full(), scale=Scale.tiny()
        ),
        ExperimentPoint(workload="mt", scale=Scale.tiny()),
        ExperimentPoint(
            workload="mt", netcrafter=NetCrafterConfig.full(), scale=Scale.tiny()
        ),
    ]


class TestExperimentPoint:
    def test_normalized_fills_defaults(self):
        point = ExperimentPoint(workload="gups").normalized()
        assert point.system == SystemConfig.default()
        assert point.netcrafter == NetCrafterConfig.baseline()
        assert point.scale == Scale.small()

    def test_key_matches_run_one_memoization(self):
        result = run_one("gups", scale=Scale.tiny())
        points = [
            ExperimentPoint(workload="gups", scale=Scale.tiny()),
            ExperimentPoint(workload="gups", scale=Scale.tiny()),
        ]
        many = run_many(points)
        assert many[0] is result  # memo hit, same object
        assert many[1] is result  # duplicate within the batch


class TestRunMany:
    def test_order_preserved_and_complete(self):
        points = _tiny_points()
        results = run_many(points)
        assert len(results) == len(points)
        for point, result in zip(points, results):
            assert result.workload == point.workload

    def test_parallel_matches_serial(self):
        serial = [
            run_one(
                p.workload,
                system=p.system,
                netcrafter=p.netcrafter,
                scale=p.scale,
                seed=p.seed,
                use_cache=False,
            )
            for p in _tiny_points()
        ]
        clear_cache()
        parallel = run_many(_tiny_points(), jobs=2)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_stats_track_hits_and_executions(self):
        run_many(_tiny_points())
        assert run_stats.executed == 4
        run_many(_tiny_points())
        assert run_stats.executed == 4
        assert run_stats.memory_hits == 4
        assert run_stats.batches == 2
        assert len(run_stats.timings) == 4


class TestDiskCache:
    def test_results_persist_across_memo_clears(self, tmp_path):
        set_cache_dir(str(tmp_path))
        first = run_many(_tiny_points())
        assert len(disk_cache()) == 4
        clear_cache()  # drop the in-process memo, keep the disk
        reset_run_stats()
        second = run_many(_tiny_points())
        assert run_stats.executed == 0
        assert run_stats.disk_hits == 4
        assert run_stats.disk_hit_rate() == 1.0
        assert [r.to_dict() for r in second] == [r.to_dict() for r in first]

    def test_run_one_uses_disk_cache(self, tmp_path):
        set_cache_dir(str(tmp_path))
        first = run_one("gups", scale=Scale.tiny())
        clear_cache()
        second = run_one("gups", scale=Scale.tiny())
        assert second is not first  # deserialized copy, not the memo object
        assert second.to_dict() == first.to_dict()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        set_cache_dir(str(tmp_path))
        run_one("gups", scale=Scale.tiny())
        for path in tmp_path.rglob("*.json"):
            path.write_text("{ not json")
        clear_cache()
        reset_run_stats()
        result = run_one("gups", scale=Scale.tiny())
        assert result.cycles > 0
        assert run_stats.disk_hits == 0
        assert run_stats.executed == 1


class TestObservability:
    def _options(self, tmp_path, **overrides):
        defaults = dict(
            trace=True,
            metrics_interval=500,
            profile=True,
            out_dir=str(tmp_path / "obs"),
        )
        defaults.update(overrides)
        return ObservabilityOptions(**defaults)

    def test_inactive_options_are_a_no_op(self):
        assert not ObservabilityOptions().active
        set_observability(ObservabilityOptions())
        a = run_one("gups", scale=Scale.tiny())
        b = run_one("gups", scale=Scale.tiny())
        assert a is b  # caching still on
        assert a.trace_path is None

    def test_artifacts_written_and_paths_on_result(self, tmp_path):
        set_observability(self._options(tmp_path))
        result = run_one("gups", scale=Scale.tiny())
        import json

        from repro.obs import validate_jsonl

        for attr in ("trace_path", "trace_chrome_path", "metrics_path", "profile_path"):
            path = getattr(result, attr)
            assert path is not None and (tmp_path / "obs").exists()
        assert validate_jsonl(result.trace_path) == []
        assert json.loads(
            open(result.trace_chrome_path).read()
        )["traceEvents"]
        assert json.loads(open(result.profile_path).read())["events"] > 0
        metrics_lines = open(result.metrics_path).read().splitlines()
        assert len(metrics_lines) >= 2  # meta header + samples

    def test_observed_runs_bypass_caches(self, tmp_path):
        set_cache_dir(str(tmp_path / "cache"))
        set_observability(self._options(tmp_path, profile=False))
        a = run_one("gups", scale=Scale.tiny())
        b = run_one("gups", scale=Scale.tiny())
        assert a is not b  # memo bypassed: each run has its own trace
        assert run_stats.executed == 2
        assert len(disk_cache()) == 0  # instrumented results not persisted

    def test_disabling_restores_caching(self, tmp_path):
        set_observability(self._options(tmp_path, profile=False))
        run_one("gups", scale=Scale.tiny())
        set_observability(None)
        a = run_one("gups", scale=Scale.tiny())
        b = run_one("gups", scale=Scale.tiny())
        assert a is b
        assert a.trace_path is None

    def test_run_many_observed(self, tmp_path):
        set_observability(
            self._options(tmp_path, trace=False, metrics_interval=500, profile=False)
        )
        results = run_many(
            [
                ExperimentPoint(workload="gups", scale=Scale.tiny()),
                ExperimentPoint(workload="mt", scale=Scale.tiny()),
            ]
        )
        assert all(r.metrics_path is not None for r in results)
        assert all(r.trace_path is None for r in results)
        stems = {r.metrics_path for r in results}
        assert len(stems) == 2  # per-point artifact files


class TestExperimentScale:
    def test_quick_subset(self):
        exp = ExperimentScale.quick()
        assert "gups" in exp.workload_names()
        assert len(exp.workload_names()) < 15

    def test_standard_covers_all(self):
        assert len(ExperimentScale.standard().workload_names()) == 15

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        quick = ExperimentScale.from_env()
        assert quick.scale == Scale.small()
        assert len(quick.workload_names()) < 15
        monkeypatch.setenv("REPRO_SCALE", "standard")
        assert ExperimentScale.from_env().scale == Scale.small()
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert ExperimentScale.from_env().scale == Scale.default()
        monkeypatch.delenv("REPRO_SCALE")
        assert ExperimentScale.from_env().scale == Scale.small()
