"""Tests for the experiment runner and its cache."""

import pytest

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.experiments.runner import (
    ExperimentScale,
    clear_cache,
    run_one,
    run_pair,
)
from repro.workloads.base import Scale


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_run_one_returns_result():
    result = run_one("gups", scale=Scale.tiny())
    assert result.cycles > 0
    assert result.workload == "gups"


def test_cache_returns_same_object():
    a = run_one("gups", scale=Scale.tiny())
    b = run_one("gups", scale=Scale.tiny())
    assert a is b


def test_cache_distinguishes_configs():
    a = run_one("gups", scale=Scale.tiny())
    b = run_one("gups", netcrafter=NetCrafterConfig.full(), scale=Scale.tiny())
    assert a is not b


def test_cache_bypass():
    a = run_one("gups", scale=Scale.tiny(), use_cache=False)
    b = run_one("gups", scale=Scale.tiny(), use_cache=False)
    assert a is not b
    assert a.cycles == b.cycles  # still deterministic


def test_run_pair():
    base, out = run_pair("gups", NetCrafterConfig.full(), scale=Scale.tiny())
    assert base.config_label == "baseline"
    assert out.config_label != "baseline"


class TestExperimentScale:
    def test_quick_subset(self):
        exp = ExperimentScale.quick()
        assert "gups" in exp.workload_names()
        assert len(exp.workload_names()) < 15

    def test_standard_covers_all(self):
        assert len(ExperimentScale.standard().workload_names()) == 15

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        quick = ExperimentScale.from_env()
        assert quick.scale == Scale.small()
        assert len(quick.workload_names()) < 15
        monkeypatch.setenv("REPRO_SCALE", "standard")
        assert ExperimentScale.from_env().scale == Scale.small()
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert ExperimentScale.from_env().scale == Scale.default()
        monkeypatch.delenv("REPRO_SCALE")
        assert ExperimentScale.from_env().scale == Scale.small()
