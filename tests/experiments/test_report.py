"""Tests for the markdown report generator."""

from repro.experiments.report import figure_to_markdown, generate_report
from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentScale
from repro.workloads.base import Scale

EXP = ExperimentScale(scale=Scale.tiny(), workloads=("gups",))


def test_figure_to_markdown_structure():
    result = FigureResult(
        "figX", "Demo", ["a", "b"], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]},
        notes="a note",
    )
    md = figure_to_markdown(result)
    assert "### figX: Demo" in md
    assert "| a | 1.000 | 3.000 |" in md
    assert "*a note*" in md


def test_generate_report_contains_all_parts(tmp_path):
    path = tmp_path / "report.md"
    text = generate_report(EXP, path=path, include_extensions=False)
    assert path.read_text() == text
    assert "# NetCrafter reproduction report" in text
    assert "### Table 1" in text
    assert "### fig14" in text
    assert "### fig22" in text
    assert "Hardware overhead" in text
    assert "16.02 KiB" in text


def test_generate_report_with_extensions():
    text = generate_report(EXP, include_extensions=True)
    assert "ext_coherence" in text
    assert "abl_scheduler" in text
