"""Smoke tests for every figure driver at quick scale.

These check shape and well-formedness, not absolute values — those are
exercised by the benchmark harness at the standard experiment scale and
recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import figures
from repro.experiments.runner import ExperimentScale
from repro.workloads.base import Scale

EXP = ExperimentScale(scale=Scale.tiny(), workloads=("gups", "mis", "bs"))


def _check(result, expected_series=None):
    assert result.labels
    for name, values in result.series.items():
        assert len(values) == len(result.labels), name
    if expected_series:
        assert set(result.series) == set(expected_series)
    # rendering never crashes
    assert result.figure_id in result.to_table()
    return result


def test_fig3():
    r = _check(figures.fig3_ideal_speedup(EXP), {"ideal_speedup"})
    assert all(v > 0.5 for v in r.series["ideal_speedup"])


def test_fig4():
    r = _check(figures.fig4_network_utilization(EXP), {"non_uniform", "ideal"})
    assert all(0.0 <= v <= 1.0 for vals in r.series.values() for v in vals)


def test_fig5():
    r = _check(figures.fig5_remote_latency(EXP))
    assert "bs" not in r.labels  # no inter-cluster reads -> excluded
    assert all(v == 1.0 for v in r.series["non_uniform"])


def test_fig6():
    r = _check(figures.fig6_flit_occupancy(EXP), {"25%_padded", "75%_padded", "either"})
    for i in range(len(r.labels)):
        assert r.series["either"][i] == pytest.approx(
            r.series["25%_padded"][i] + r.series["75%_padded"][i]
        )


def test_fig7():
    r = _check(figures.fig7_cacheline_utilization(EXP))
    for i in range(len(r.labels)):
        total = sum(r.series[k][i] for k in r.series)
        assert total == pytest.approx(1.0)


def test_fig8():
    _check(figures.fig8_ptw_priority(EXP), {"prioritize_ptw", "prioritize_data"})


def test_fig9():
    r = _check(figures.fig9_ptw_fraction(EXP), {"ptw", "data"})
    for i in range(len(r.labels)):
        assert r.series["ptw"][i] + r.series["data"][i] == pytest.approx(1.0)


def test_fig12():
    r = _check(figures.fig12_stitch_rate(EXP), {"stitching", "stitching+pooling"})
    assert all(0.0 <= v <= 1.0 for vals in r.series.values() for v in vals)


def test_fig14():
    r = _check(
        figures.fig14_overall_speedup(EXP),
        {"stitching", "+trimming", "+sequencing", "sector_cache_16B"},
    )
    assert "geomean" in r.notes


def test_fig15():
    _check(figures.fig15_netcrafter_latency(EXP), {"baseline", "netcrafter"})


def test_fig16():
    r = _check(figures.fig16_l1_mpki(EXP), {"baseline", "trimming", "sector_16B"})
    assert all(v >= 0 for vals in r.series.values() for v in vals)


def test_fig17():
    r = _check(figures.fig17_trim_granularity(EXP), {"trimming", "all_trimming"})
    assert r.labels == ["4B", "8B", "16B"]


def test_fig18():
    r = figures.fig18_pooling_sweep(EXP, windows=(32, 64))
    _check(r, {"stitching", "pool_32", "pool_64"})


def test_fig19():
    r = figures.fig19_selective_pooling_sweep(EXP, windows=(32,))
    _check(r, {"stitching", "pool_32"})


def test_fig20():
    r = figures.fig20_byte_reduction(EXP, windows=(32,))
    _check(r, {"stitching", "sfp_32"})
    assert all(v <= 1.0 for vals in r.series.values() for v in vals)


def test_fig21():
    _check(figures.fig21_flit_size(EXP), {"flit_16B", "flit_8B"})


def test_fig22():
    r = figures.fig22_bandwidth_sweep(EXP)
    _check(r, {"netcrafter"})
    assert "32:32" in r.labels  # homogeneous configuration present


def test_to_bars_rendering():
    from repro.experiments.figures import FigureResult

    result = FigureResult(
        "figY", "Bars", ["aa", "b"], {"speed": [2.0, 1.0], "other": [1.0, 1.0]}
    )
    bars = result.to_bars("speed", width=10)
    assert "[speed]" in bars
    assert "aa | ########## 2.000" in bars
    assert "b  | ##### 1.000" in bars
    # defaults to the first series
    assert "[speed]" in result.to_bars()


def test_to_bars_empty_series():
    from repro.experiments.figures import FigureResult

    result = FigureResult("figZ", "Empty", [], {"s": []})
    assert "(empty)" in result.to_bars("s")


def test_table1_matches_paper():
    rows = figures.table1_flit_census()
    by_type = {r["request_type"]: r for r in rows}
    assert by_type["read_rsp"]["bytes_required"] == 68
    assert by_type["read_rsp"]["flits_occupied"] == 5
    assert by_type["write_rsp"]["bytes_padded"] == 12
    assert len(rows) == 6


def test_table2_rows():
    rows = figures.table2_configuration()
    assert "Interconnect" in rows
    assert "16 GB/s" in rows["Interconnect"]


def test_table3_rows():
    assert len(figures.table3_workloads()) == 15
