"""Tests for the persistent result cache's fingerprinting and storage."""

import json

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.experiments.cache import ResultCache, default_cache_dir, fingerprint
from repro.experiments.runner import ExperimentPoint
from repro.stats.collectors import RunStats
from repro.stats.report import RunResult
from repro.workloads.base import Scale


def _point(**overrides):
    return ExperimentPoint(workload="gups", scale=Scale.tiny(), **overrides).normalized()


def _result(cycles=123):
    return RunResult(workload="gups", config_label="c", cycles=cycles, stats=RunStats())


class TestFingerprint:
    def test_stable_across_equal_points(self):
        assert fingerprint(_point()) == fingerprint(_point())

    def test_content_not_identity(self):
        a = _point(system=SystemConfig.default())
        b = _point(system=SystemConfig.default().with_overrides())
        assert a.system is not b.system
        assert fingerprint(a) == fingerprint(b)

    def test_sensitive_to_every_config_layer(self):
        base = fingerprint(_point())
        assert fingerprint(_point(netcrafter=NetCrafterConfig.full())) != base
        assert fingerprint(_point(seed=1)) != base
        assert (
            fingerprint(
                _point(system=SystemConfig.default().with_overrides(flit_size=32))
            )
            != base
        )
        assert (
            fingerprint(ExperimentPoint(workload="mt", scale=Scale.tiny()).normalized())
            != base
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_point()) is None
        cache.put(_point(), _result())
        loaded = cache.get(_point())
        assert loaded is not None
        assert loaded.cycles == 123
        assert cache.misses == 1 and cache.hits == 1 and cache.writes == 1
        assert len(cache) == 1

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result(cycles=1))
        cache.put(_point(), _result(cycles=2))
        assert cache.get(_point()).cycles == 2
        assert len(cache) == 1

    def test_corrupt_entry_removed_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        path.write_text("not json at all")
        assert cache.get(_point()) is None
        assert not path.exists()

    def test_stale_result_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        payload = json.loads(path.read_text())
        payload["result"]["schema"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(_point()) is None

    def test_legacy_latency_samples_payload_is_a_miss(self, tmp_path):
        """Regression: pre-histogram entries (raw ``samples`` lists in
        every LatencyStat) must read as misses and be removed — never as
        errors, and never as results with silently empty percentiles."""
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        payload = json.loads(path.read_text())
        for value in payload["result"]["stats"].values():
            if isinstance(value, dict) and "__latency__" in value:
                stat = value["__latency__"]
                del stat["hist"]
                stat["samples"] = [10, 20, 30]
        path.write_text(json.dumps(payload))
        assert cache.get(_point()) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        cache.put(_point(seed=1), _result())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCrashRecovery:
    """Regression: ``put()`` used to write entries in place, so a crash
    mid-write left a torn JSON file served as a corrupt entry, and a
    crash between temp-write and rename (now that publishing is atomic)
    would leave ``*.tmp`` orphans forever.  Publishing is now
    write-temp + flush + fsync + ``os.replace``, and opening the cache
    sweeps orphaned temp files."""

    def test_orphan_tmp_files_swept_on_open(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        shard_dir = cache.path_for(fingerprint(_point())).parent
        (shard_dir / "deadbeef.json.abc123.tmp").write_text("{torn")
        (tmp_path / "stray.def456.tmp").write_text("")
        reopened = ResultCache(tmp_path)
        assert reopened.swept_orphans == 2
        assert not list(tmp_path.rglob("*.tmp"))
        # the real entry survived the sweep
        assert reopened.get(_point()).cycles == 123

    def test_crash_between_write_and_rename_leaves_no_entry(
        self, tmp_path, monkeypatch
    ):
        import repro.atomicio as atomicio

        cache = ResultCache(tmp_path)

        def crash(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(atomicio.os, "replace", crash)
        try:
            cache.put(_point(), _result())
        except OSError:
            pass
        monkeypatch.undo()
        # nothing was published...
        assert not cache.path_for(fingerprint(_point())).exists()
        assert ResultCache(tmp_path).get(_point()) is None
        # ...and a fresh open sweeps whatever temp debris the crash left
        assert not list(tmp_path.rglob("*.tmp"))

    def test_failed_publish_preserves_the_previous_entry(
        self, tmp_path, monkeypatch
    ):
        import repro.atomicio as atomicio

        cache = ResultCache(tmp_path)
        cache.put(_point(), _result(cycles=1))

        def crash(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(atomicio.os, "replace", crash)
        try:
            cache.put(_point(), _result(cycles=2))
        except OSError:
            pass
        monkeypatch.undo()
        assert ResultCache(tmp_path).get(_point()).cycles == 1

    def test_torn_entry_reads_as_miss_and_is_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])  # torn mid-write
        assert cache.get(_point()) is None
        assert not path.exists()


def test_default_cache_dir_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert default_cache_dir() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir() == ".repro_cache"
