"""Tests for the persistent result cache's fingerprinting and storage."""

import json

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.experiments.cache import ResultCache, default_cache_dir, fingerprint
from repro.experiments.runner import ExperimentPoint
from repro.stats.collectors import RunStats
from repro.stats.report import RunResult
from repro.workloads.base import Scale


def _point(**overrides):
    return ExperimentPoint(workload="gups", scale=Scale.tiny(), **overrides).normalized()


def _result(cycles=123):
    return RunResult(workload="gups", config_label="c", cycles=cycles, stats=RunStats())


class TestFingerprint:
    def test_stable_across_equal_points(self):
        assert fingerprint(_point()) == fingerprint(_point())

    def test_content_not_identity(self):
        a = _point(system=SystemConfig.default())
        b = _point(system=SystemConfig.default().with_overrides())
        assert a.system is not b.system
        assert fingerprint(a) == fingerprint(b)

    def test_sensitive_to_every_config_layer(self):
        base = fingerprint(_point())
        assert fingerprint(_point(netcrafter=NetCrafterConfig.full())) != base
        assert fingerprint(_point(seed=1)) != base
        assert (
            fingerprint(
                _point(system=SystemConfig.default().with_overrides(flit_size=32))
            )
            != base
        )
        assert (
            fingerprint(ExperimentPoint(workload="mt", scale=Scale.tiny()).normalized())
            != base
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_point()) is None
        cache.put(_point(), _result())
        loaded = cache.get(_point())
        assert loaded is not None
        assert loaded.cycles == 123
        assert cache.misses == 1 and cache.hits == 1 and cache.writes == 1
        assert len(cache) == 1

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result(cycles=1))
        cache.put(_point(), _result(cycles=2))
        assert cache.get(_point()).cycles == 2
        assert len(cache) == 1

    def test_corrupt_entry_removed_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        path.write_text("not json at all")
        assert cache.get(_point()) is None
        assert not path.exists()
        assert cache.corrupt == 1

    def test_stale_result_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        payload = json.loads(path.read_text())
        payload["result"]["schema"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(_point()) is None

    def test_legacy_latency_samples_payload_is_a_miss(self, tmp_path):
        """Regression: pre-histogram entries (raw ``samples`` lists in
        every LatencyStat) must read as misses and be removed — never as
        errors, and never as results with silently empty percentiles."""
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        payload = json.loads(path.read_text())
        for value in payload["result"]["stats"].values():
            if isinstance(value, dict) and "__latency__" in value:
                stat = value["__latency__"]
                del stat["hist"]
                stat["samples"] = [10, 20, 30]
        path.write_text(json.dumps(payload))
        assert cache.get(_point()) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        cache.put(_point(seed=1), _result())
        assert cache.clear() == 2
        assert len(cache) == 0


class TestCrashRecovery:
    """Regression: ``put()`` used to write entries in place, so a crash
    mid-write left a torn JSON file served as a corrupt entry, and a
    crash between temp-write and rename (now that publishing is atomic)
    would leave ``*.tmp`` orphans forever.  Publishing is now
    write-temp + flush + fsync + ``os.replace``, and opening the cache
    sweeps orphaned temp files."""

    def test_orphan_tmp_files_swept_on_open(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        shard_dir = cache.path_for(fingerprint(_point())).parent
        (shard_dir / "deadbeef.json.abc123.tmp").write_text("{torn")
        (tmp_path / "stray.def456.tmp").write_text("")
        reopened = ResultCache(tmp_path)
        assert reopened.swept_orphans == 2
        assert not list(tmp_path.rglob("*.tmp"))
        # the real entry survived the sweep
        assert reopened.get(_point()).cycles == 123

    def test_crash_between_write_and_rename_leaves_no_entry(
        self, tmp_path, monkeypatch
    ):
        import repro.atomicio as atomicio

        cache = ResultCache(tmp_path)

        def crash(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(atomicio.os, "replace", crash)
        try:
            cache.put(_point(), _result())
        except OSError:
            pass
        monkeypatch.undo()
        # nothing was published...
        assert not cache.path_for(fingerprint(_point())).exists()
        assert ResultCache(tmp_path).get(_point()) is None
        # ...and a fresh open sweeps whatever temp debris the crash left
        assert not list(tmp_path.rglob("*.tmp"))

    def test_failed_publish_preserves_the_previous_entry(
        self, tmp_path, monkeypatch
    ):
        import repro.atomicio as atomicio

        cache = ResultCache(tmp_path)
        cache.put(_point(), _result(cycles=1))

        def crash(src, dst):
            raise OSError("simulated crash at publish")

        monkeypatch.setattr(atomicio.os, "replace", crash)
        try:
            cache.put(_point(), _result(cycles=2))
        except OSError:
            pass
        monkeypatch.undo()
        assert ResultCache(tmp_path).get(_point()).cycles == 1

    def test_torn_entry_reads_as_miss_and_is_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])  # torn mid-write
        assert cache.get(_point()) is None
        assert not path.exists()


class TestQuarantine:
    """Corrupt entries read as misses and are moved aside — never served,
    never silently destroyed — so the slot rewrites cleanly while the
    evidence survives for post-mortem."""

    def _corrupt(self, cache):
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])  # deliberately truncated
        return path

    def test_truncated_entry_quarantined_not_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = self._corrupt(cache)
        assert cache.get(_point()) is None
        assert not path.exists()
        moved = cache.quarantine_dir / path.name
        assert moved.exists()
        assert cache.corrupt == 1
        assert cache.misses == 1

    def test_slot_rewrites_cleanly_after_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._corrupt(cache)
        assert cache.get(_point()) is None
        cache.put(_point(), _result(cycles=7))
        assert cache.get(_point()).cycles == 7

    def test_quarantined_entries_do_not_count_as_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._corrupt(cache)
        cache.get(_point())
        assert len(cache) == 0
        assert cache.info()["quarantined"] == 1

    def test_runner_stats_count_quarantined_entries(self, tmp_path):
        """Regression (satellite): a truncated disk entry behind run_one
        must read as a miss, re-simulate, and be tallied in
        ExecutionStats.corrupt_entries — never crash the sweep."""
        from repro.experiments.runner import (
            clear_cache,
            reset_run_stats,
            run_one,
            run_stats,
            set_cache_dir,
        )

        set_cache_dir(str(tmp_path))
        clear_cache()
        reset_run_stats()
        try:
            first = run_one("gups", scale=Scale.tiny())
            cache = ResultCache(tmp_path)
            path = cache.path_for(fingerprint(_point()))
            blob = path.read_text()
            path.write_text(blob[: len(blob) // 2])
            clear_cache()  # force the disk read
            again = run_one("gups", scale=Scale.tiny())
            assert again.cycles == first.cycles
            assert run_stats.corrupt_entries == 1
            assert run_stats.executed == 2
        finally:
            set_cache_dir(None)
            clear_cache()
            reset_run_stats()


class TestClaims:
    """In-flight execution claims: the cross-process exactly-once lease."""

    KEY = "deadbeef" * 8

    def test_claim_is_exclusive_until_released(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim_state(self.KEY) == "free"
        assert cache.claim(self.KEY)
        assert cache.claim_state(self.KEY) == "held"
        assert not cache.claim(self.KEY)
        cache.release(self.KEY)
        assert cache.claim_state(self.KEY) == "free"
        assert cache.claim(self.KEY)
        cache.release(self.KEY)

    def test_release_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.release(self.KEY)
        cache.claim(self.KEY)
        cache.release(self.KEY)
        cache.release(self.KEY)

    def test_stale_claim_from_dead_holder_is_stolen(self, tmp_path):
        import subprocess
        import sys

        cache = ResultCache(tmp_path)
        # a claim whose recorded pid no longer exists: fabricate one from
        # a process that has already exited and been reaped
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        cache.inflight_dir.mkdir(parents=True, exist_ok=True)
        cache._claim_path(self.KEY).write_text(
            json.dumps({"pid": proc.pid, "time": 0.0})
        )
        assert cache.claim_state(self.KEY) == "stale"
        # the next claimant steals it and becomes the live holder
        assert cache.claim(self.KEY)
        assert cache.claim_state(self.KEY) == "held"
        cache.release(self.KEY)

    def test_torn_claim_file_reads_as_stale(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.inflight_dir.mkdir(parents=True, exist_ok=True)
        cache._claim_path(self.KEY).write_text("{torn")
        assert cache.claim_state(self.KEY) == "stale"
        assert cache.claim(self.KEY)
        cache.release(self.KEY)

    def test_claims_do_not_count_as_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.claim(self.KEY)
        assert len(cache) == 0
        assert cache.info()["inflight_claims"] == 1
        cache.release(self.KEY)
        assert cache.info()["inflight_claims"] == 0


class TestMaintenance:
    def test_info_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        cache.put(_point(seed=1), _result())
        info = cache.info()
        assert info["entries"] == 2
        assert info["total_bytes"] > 0
        assert info["oldest_age_seconds"] >= 0.0

    def test_prune_by_age(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        cache.put(_point(seed=1), _result())
        old = cache.path_for(fingerprint(_point()))
        stale = time.time() - 10_000
        os.utime(old, (stale, stale))
        pruned = cache.prune_older_than(5_000)
        assert pruned["removed"] == 1 and pruned["freed_bytes"] > 0
        assert len(cache) == 1
        assert cache.get(_point()) is None
        assert cache.get(_point(seed=1)) is not None


class TestCacheCli:
    def _populate(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        cache.put(_point(seed=1), _result())
        return cache

    def test_info(self, tmp_path, capsys):
        from repro.experiments.cache import main

        self._populate(tmp_path)
        assert main(["--dir", str(tmp_path), "--info"]) == 0
        out = capsys.readouterr().out
        assert "entries:          2" in out
        assert str(tmp_path) in out

    def test_prune_age(self, tmp_path, capsys):
        import os
        import time

        from repro.experiments.cache import main

        cache = self._populate(tmp_path)
        old = cache.path_for(fingerprint(_point()))
        stale = time.time() - 3 * 86400
        os.utime(old, (stale, stale))
        assert main(["--dir", str(tmp_path), "--prune-age", "1"]) == 0
        assert "pruned 1 entry" in capsys.readouterr().out
        assert len(ResultCache(tmp_path)) == 1

    def test_clear_quarantine(self, tmp_path, capsys):
        from repro.experiments.cache import main

        cache = self._populate(tmp_path)
        path = cache.path_for(fingerprint(_point()))
        path.write_text("{torn")
        cache.get(_point())
        assert cache.info()["quarantined"] == 1
        assert main(["--dir", str(tmp_path), "--clear-quarantine"]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert ResultCache(tmp_path).info()["quarantined"] == 0

    def test_no_action_errors(self, tmp_path):
        import pytest

        from repro.experiments.cache import main

        with pytest.raises(SystemExit):
            main(["--dir", str(tmp_path)])


def test_default_cache_dir_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert default_cache_dir() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir() == ".repro_cache"
