"""Tests for the persistent result cache's fingerprinting and storage."""

import json

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.experiments.cache import ResultCache, default_cache_dir, fingerprint
from repro.experiments.runner import ExperimentPoint
from repro.stats.collectors import RunStats
from repro.stats.report import RunResult
from repro.workloads.base import Scale


def _point(**overrides):
    return ExperimentPoint(workload="gups", scale=Scale.tiny(), **overrides).normalized()


def _result(cycles=123):
    return RunResult(workload="gups", config_label="c", cycles=cycles, stats=RunStats())


class TestFingerprint:
    def test_stable_across_equal_points(self):
        assert fingerprint(_point()) == fingerprint(_point())

    def test_content_not_identity(self):
        a = _point(system=SystemConfig.default())
        b = _point(system=SystemConfig.default().with_overrides())
        assert a.system is not b.system
        assert fingerprint(a) == fingerprint(b)

    def test_sensitive_to_every_config_layer(self):
        base = fingerprint(_point())
        assert fingerprint(_point(netcrafter=NetCrafterConfig.full())) != base
        assert fingerprint(_point(seed=1)) != base
        assert (
            fingerprint(
                _point(system=SystemConfig.default().with_overrides(flit_size=32))
            )
            != base
        )
        assert (
            fingerprint(ExperimentPoint(workload="mt", scale=Scale.tiny()).normalized())
            != base
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_point()) is None
        cache.put(_point(), _result())
        loaded = cache.get(_point())
        assert loaded is not None
        assert loaded.cycles == 123
        assert cache.misses == 1 and cache.hits == 1 and cache.writes == 1
        assert len(cache) == 1

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result(cycles=1))
        cache.put(_point(), _result(cycles=2))
        assert cache.get(_point()).cycles == 2
        assert len(cache) == 1

    def test_corrupt_entry_removed_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        path.write_text("not json at all")
        assert cache.get(_point()) is None
        assert not path.exists()

    def test_stale_result_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        payload = json.loads(path.read_text())
        payload["result"]["schema"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get(_point()) is None

    def test_legacy_latency_samples_payload_is_a_miss(self, tmp_path):
        """Regression: pre-histogram entries (raw ``samples`` lists in
        every LatencyStat) must read as misses and be removed — never as
        errors, and never as results with silently empty percentiles."""
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        path = cache.path_for(fingerprint(_point()))
        payload = json.loads(path.read_text())
        for value in payload["result"]["stats"].values():
            if isinstance(value, dict) and "__latency__" in value:
                stat = value["__latency__"]
                del stat["hist"]
                stat["samples"] = [10, 20, 30]
        path.write_text(json.dumps(payload))
        assert cache.get(_point()) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), _result())
        cache.put(_point(seed=1), _result())
        assert cache.clear() == 2
        assert len(cache) == 0


def test_default_cache_dir_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert default_cache_dir() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir() == ".repro_cache"
