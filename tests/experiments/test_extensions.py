"""Smoke tests for the extension experiment drivers."""

from repro.experiments import extensions
from repro.experiments.runner import ExperimentScale
from repro.workloads.base import Scale

EXP = ExperimentScale(scale=Scale.tiny(), workloads=("gups", "lenet"))


def test_ext_hw_coherence_shape():
    result = extensions.ext_hw_coherence(EXP)
    assert set(result.series) == {
        "nc_over_sw",
        "nc_over_hw",
        "stitch_rate_sw",
        "stitch_rate_hw",
    }
    assert result.labels == ["gups", "lenet"]
    assert "geomean" in result.notes


def test_ext_coherence_traffic_shape():
    result = extensions.ext_coherence_traffic(EXP)
    assert set(result.series) == {"inv_per_kop", "hw_over_sw_baseline"}
    assert all(v >= 0 for v in result.series["inv_per_kop"])


def test_ext_scaling_covers_all_topologies():
    result = extensions.ext_scaling(EXP)
    assert result.labels == ["2x2_mesh", "3x2_mesh", "4x2_mesh", "4x2_ring"]
    assert set(result.series) == {"ideal", "netcrafter"}
    assert all(v > 0 for vals in result.series.values() for v in vals)
