"""Smoke tests for the design-choice ablation drivers."""

from repro.experiments import ablations
from repro.experiments.runner import ExperimentScale
from repro.workloads.base import Scale

EXP = ExperimentScale(scale=Scale.tiny(), workloads=("gups", "spmv"))


def _check(result, expected_series):
    assert set(result.series) == set(expected_series)
    for values in result.series.values():
        assert len(values) == len(result.labels)
    assert result.figure_id in result.to_table()


def test_ablate_scheduler():
    _check(ablations.ablate_scheduler(EXP), {"age", "rr"})


def test_ablate_early_release():
    _check(
        ablations.ablate_early_release(EXP), {"early_release", "expiry_only"}
    )


def test_ablate_pooling_grace():
    result = ablations.ablate_pooling_grace(EXP, graces=(0, 8))
    _check(result, {"grace_0", "grace_8"})


def test_ablate_search_depth():
    result = ablations.ablate_search_depth(EXP, depths=(1, 8))
    _check(result, {"depth_1", "depth_8"})
    assert all(0.0 <= v <= 1.0 for vals in result.series.values() for v in vals)


def test_ablate_cq_capacity():
    result = ablations.ablate_cq_capacity(EXP, capacities=(64, 1024))
    _check(result, {"cq_64", "cq_1024"})


def test_ablation_summary_lines():
    summary = ablations.ablation_summary(EXP)
    assert "abl_scheduler" in summary
    assert "abl_cq_capacity" in summary
