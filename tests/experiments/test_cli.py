"""Tests for the experiment CLI."""

import pytest

from repro.experiments.__main__ import DRIVERS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig14" in out and "tables" in out


def test_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "Interconnect" in out


def test_unknown_target(capsys):
    assert main(["fig99"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_every_figure_registered():
    expected = {f"fig{i}" for i in (3, 4, 5, 6, 7, 8, 9, 12, 14, 15, 16, 17, 18, 19, 20, 21, 22)}
    assert expected <= set(DRIVERS)
    assert {"abl_scheduler", "abl_cq_capacity"} <= set(DRIVERS)


@pytest.mark.parametrize("target", ["fig6", "fig9"])
def test_run_single_figure_quick(capsys, target, monkeypatch):
    # shrink the quick scale further for test speed
    from repro.experiments import __main__ as cli
    from repro.experiments.runner import ExperimentScale
    from repro.workloads.base import Scale

    monkeypatch.setitem(
        cli.SCALES,
        "quick",
        lambda: ExperimentScale(scale=Scale.tiny(), workloads=("gups",)),
    )
    assert main([target, "--scale", "quick"]) == 0
    assert target in capsys.readouterr().out
