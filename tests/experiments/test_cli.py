"""Tests for the experiment CLI."""

import pytest

from repro.experiments import runner
from repro.experiments.__main__ import DRIVERS, main
from repro.experiments.runner import ExperimentScale
from repro.workloads.base import Scale


@pytest.fixture(autouse=True)
def _isolated_runner_state(tmp_path, monkeypatch):
    # the CLI enables the disk cache by default; keep it out of the repo
    # and undo the global runner knobs it sets
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    yield
    runner.set_cache_dir(None)
    runner.set_default_jobs(1)
    runner.reset_run_stats()
    runner.clear_cache()
    runner.set_observability(None)
    runner.set_system_overrides()


@pytest.fixture
def tiny_quick(monkeypatch):
    # shrink the quick scale further for test speed
    from repro.experiments import __main__ as cli

    monkeypatch.setitem(
        cli.SCALES,
        "quick",
        lambda: ExperimentScale(scale=Scale.tiny(), workloads=("gups",)),
    )


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig14" in out and "tables" in out


def test_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "Interconnect" in out


def test_unknown_target(capsys):
    assert main(["fig99"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_every_figure_registered():
    expected = {f"fig{i}" for i in (3, 4, 5, 6, 7, 8, 9, 12, 14, 15, 16, 17, 18, 19, 20, 21, 22)}
    assert expected <= set(DRIVERS)
    assert {"abl_scheduler", "abl_cq_capacity"} <= set(DRIVERS)


@pytest.mark.parametrize("target", ["fig6", "fig9"])
def test_run_single_figure_quick(capsys, target, tiny_quick):
    assert main([target, "--scale", "quick"]) == 0
    assert target in capsys.readouterr().out


def test_jobs_flag_parallel_run_and_summary(capsys, tiny_quick, tmp_path):
    assert main(
        ["fig3", "--scale", "quick", "--jobs", "2", "--cache-dir", str(tmp_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "fig3" in out
    assert "run summary" in out
    assert "disk cache hits" in out
    assert len(runner.disk_cache()) > 0


def test_no_cache_flag_disables_disk_cache(capsys, tiny_quick, tmp_path):
    assert main(["fig6", "--scale", "quick", "--no-cache"]) == 0
    assert runner.disk_cache() is None
    assert not (tmp_path / "cache").exists()


def test_second_invocation_hits_disk_cache(capsys, tiny_quick, tmp_path):
    args = ["fig3", "--scale", "quick", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "disk-cache hit rate: 0.0%" in first
    # a fresh process would start with an empty memo; simulate that
    runner.clear_cache()
    runner.reset_run_stats()
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "disk-cache hit rate: 100.0%" in second
    assert "simulated:          0" in second


def test_observability_flags_write_artifacts(capsys, tiny_quick, tmp_path):
    obs_dir = tmp_path / "obs"
    assert main(
        [
            "fig6",
            "--scale",
            "quick",
            "--no-cache",
            "--trace",
            "--trace-sample",
            "2",
            "--metrics-interval",
            "500",
            "--profile",
            "--obs-dir",
            str(obs_dir),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "observability artifacts" in out
    assert list(obs_dir.glob("*.trace.jsonl"))
    assert list(obs_dir.glob("*.trace.json"))
    assert list(obs_dir.glob("*.metrics.jsonl"))
    assert list(obs_dir.glob("*.profile.json"))


def test_emitted_trace_passes_validator(capsys, tiny_quick, tmp_path):
    from repro.obs.validate import main as validate_main

    obs_dir = tmp_path / "obs"
    assert main(
        ["fig6", "--scale", "quick", "--no-cache", "--trace",
         "--obs-dir", str(obs_dir)]
    ) == 0
    traces = [str(p) for p in obs_dir.glob("*.trace.jsonl")]
    assert traces
    assert validate_main(traces) == 0


def test_invalid_observability_values_rejected(tiny_quick):
    with pytest.raises(SystemExit):
        main(["fig6", "--trace-sample", "0"])
    with pytest.raises(SystemExit):
        main(["fig6", "--metrics-interval", "0"])


def test_bw_class_duplicate_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["list", "--bw-class", "inter=32", "--bw-class", "inter=64"])
    err = capsys.readouterr().err
    assert "duplicate --bw-class" in err
    assert "'inter'" in err


def test_bw_class_unknown_class_rejected_eagerly(capsys):
    # fails at argument handling, before any simulation
    with pytest.raises(SystemExit):
        main(["list", "--bw-class", "up=32"])
    err = capsys.readouterr().err
    assert "bandwidth class 'up'" in err
    assert "classes: inter" in err  # names the topology's valid classes


def test_bw_class_malformed_spec_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["list", "--bw-class", "inter"])
    assert "CLASS=BW" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["list", "--bw-class", "inter=fast"])
    assert "bad bandwidth" in capsys.readouterr().err


def test_bw_class_valid_for_topology(capsys):
    # star defines up/down tiers; both accepted, listed in the echo
    assert main(["list", "--topology", "star", "--bw-class", "up=32",
                 "--bw-class", "down=64"]) == 0
    out = capsys.readouterr().out
    assert "topology overrides" in out
