#!/usr/bin/env python3
"""Quickstart: baseline vs NetCrafter on one workload.

Builds the Frontier-style 2x2 multi-GPU node (Figure 2 of the paper),
runs the GUPS workload on the non-uniform baseline and again with full
NetCrafter (Stitching + Selective Flit Pooling, Trimming, Sequencing),
and prints the speedup plus the traffic statistics behind it.

Usage::

    python examples/quickstart.py [workload] [seed]
"""

import sys

from repro import (
    MultiGpuSystem,
    NetCrafterConfig,
    Scale,
    SystemConfig,
    get_workload,
)


def run(workload_name: str, netcrafter: NetCrafterConfig, seed: int):
    system_cfg = SystemConfig.default()
    trace = get_workload(workload_name).build(
        n_gpus=system_cfg.n_gpus, scale=Scale.small(), seed=seed
    )
    system = MultiGpuSystem(config=system_cfg, netcrafter=netcrafter, seed=seed)
    system.load(trace)
    return system.run()


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "gups"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    print(f"workload: {workload}")
    base = run(workload, NetCrafterConfig.baseline(), seed)
    crafted = run(workload, NetCrafterConfig.full(), seed)

    print(f"\nbaseline ({base.config_label})")
    print(f"  cycles:                {base.cycles:,}")
    print(f"  inter-cluster flits:   {base.inter_flits_sent:,}")
    print(f"  inter-cluster util:    {base.inter_utilization():.1%}")
    print(f"  mean remote latency:   {base.mean_inter_read_latency():.0f} cycles")
    print(f"  PTW traffic share:     {base.ptw_traffic_fraction():.1%}")

    print(f"\nnetcrafter ({crafted.config_label})")
    print(f"  cycles:                {crafted.cycles:,}")
    print(f"  inter-cluster flits:   {crafted.inter_flits_sent:,}")
    print(f"  flits stitched away:   {crafted.flits_absorbed:,}")
    print(f"  responses trimmed:     {crafted.packets_trimmed:,}")
    print(f"  trim bytes saved:      {crafted.trim_bytes_saved:,}")
    print(f"  mean remote latency:   {crafted.mean_inter_read_latency():.0f} cycles")

    speedup = crafted.speedup_over(base)
    saved = 1 - (crafted.inter_wire_bytes / base.inter_wire_bytes) if base.inter_wire_bytes else 0
    print(f"\nspeedup:          {speedup:.2f}x")
    print(f"wire bytes saved: {saved:.1%}")


if __name__ == "__main__":
    main()
