#!/usr/bin/env python3
"""Chaos run: NetCrafter on an unreliable inter-cluster fabric.

Enables the deterministic fault-injection layer (``repro.faults``) on
the standard 2x2 node: a bit-error rate corrupting flits in flight, a
per-flit drop probability, and one bandwidth-flap window degrading the
inter-cluster links mid-run.  Runs the baseline and full NetCrafter
against the same fault process and prints the reliability picture —
corrupted / dropped / retransmitted flits, goodput vs raw wire
throughput, and the recovery-latency distribution.

The fault processes are seeded and order-independent (each
transmission's fate is a hash of packet content, not of RNG call
order), so every run of this script produces byte-identical results —
rerun it with a different ``--fault-seed`` style argument to see a
different fault pattern.

Usage::

    python examples/fault_injection.py [workload] [ber] [drop_rate] [seed]
"""

import sys

from repro import (
    FaultConfig,
    FlapWindow,
    MultiGpuSystem,
    NetCrafterConfig,
    Scale,
    SystemConfig,
    get_workload,
)


def run(workload_name: str, netcrafter: NetCrafterConfig, faults: FaultConfig):
    system_cfg = SystemConfig.default().with_overrides(faults=faults)
    trace = get_workload(workload_name).build(
        n_gpus=system_cfg.n_gpus, scale=Scale.small(), seed=0
    )
    system = MultiGpuSystem(config=system_cfg, netcrafter=netcrafter, seed=0)
    system.load(trace)
    return system.run()


def describe(label: str, result) -> None:
    faults = result.stats.faults
    print(f"\n{label} ({result.config_label})")
    print(f"  cycles:              {result.cycles:,}")
    print(f"  raw throughput:      {result.raw_throughput():.2f} B/cycle")
    print(f"  goodput:             {result.goodput():.2f} B/cycle")
    print(f"  goodput ratio:       {result.goodput_ratio():.1%}")
    if faults is None:
        print("  (faults disabled)")
        return
    print(f"  flits corrupted:     {faults.flits_corrupted:,}")
    print(f"  flits dropped:       {faults.flits_dropped:,}")
    print(f"  flits retransmitted: {faults.flits_retransmitted:,}")
    print(f"  flits abandoned:     {faults.flits_abandoned:,}")
    print(f"  degraded-BW flits:   {faults.degraded_flits:,}")
    print(f"  rdma retries:        {faults.rdma_retries:,}")
    if faults.recovery_latency.count:
        print(
            f"  recovery latency:    p50 "
            f"{faults.recovery_latency.percentile(50):.0f}, p95 "
            f"{faults.recovery_latency.percentile(95):.0f} cycles"
        )


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "gups"
    ber = float(sys.argv[2]) if len(sys.argv) > 2 else 2e-4
    drop_rate = float(sys.argv[3]) if len(sys.argv) > 3 else 0.005
    seed = int(sys.argv[4]) if len(sys.argv) > 4 else 7

    faults = FaultConfig(
        ber=ber,
        drop_rate=drop_rate,
        # the inter-cluster fabric drops to quarter bandwidth for a while
        flaps=(FlapWindow(start=2_000, end=10_000, factor=0.25),),
        seed=seed,
    )
    print(
        f"workload: {workload}  ber={ber:g}  drop={drop_rate:g}  "
        f"flap=[2000,10000)x0.25  seed={seed}"
    )

    base = run(workload, NetCrafterConfig.baseline(), faults)
    crafted = run(workload, NetCrafterConfig.full(), faults)
    describe("baseline", base)
    describe("netcrafter", crafted)

    bf, cf = base.stats.faults, crafted.stats.faults
    print(f"\nspeedup under faults: {crafted.speedup_over(base):.2f}x")
    if bf is not None and cf is not None:
        print(
            f"wire flits exposed to faults: {base.inter_flits_sent:,} "
            f"baseline vs {crafted.inter_flits_sent:,} netcrafter "
            "(fewer flits = fewer corruption draws)"
        )


if __name__ == "__main__":
    main()
