#!/usr/bin/env python3
"""Build a custom workload with the trace API and run it under NetCrafter.

Demonstrates the public trace model: a stencil-style kernel where each
GPU streams over its own block of a grid but reads an 8-byte halo from
its right-hand neighbour — a pattern not in the paper's Table 3, showing
how a downstream user would evaluate their own application.
"""

from repro import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    MultiGpuSystem,
    NetCrafterConfig,
    SystemConfig,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.vm.page_table import PAGE_SIZE

GRID_PAGES_PER_GPU = 8
CTAS_PER_GPU = 12
ACCESSES_PER_WAVEFRONT = 12
GRID_BASE_VPN = 1 << 18  # keep the grid away from address zero


def grid_vpn(gpu: int, page: int) -> int:
    return GRID_BASE_VPN + gpu * GRID_PAGES_PER_GPU + page


def build_stencil(n_gpus: int) -> WorkloadTrace:
    """One sweep of a 1-D stencil with halo exchange to the right."""
    page_owner = {
        grid_vpn(gpu, page): gpu
        for gpu in range(n_gpus)
        for page in range(GRID_PAGES_PER_GPU)
    }
    ctas = []
    for gpu in range(n_gpus):
        right = (gpu + 1) % n_gpus
        for cta in range(CTAS_PER_GPU):
            accesses = []
            for i in range(ACCESSES_PER_WAVEFRONT):
                page = (cta + i) % GRID_PAGES_PER_GPU
                line = (cta * 7 + i) % (PAGE_SIZE // 64)
                local = grid_vpn(gpu, page) * PAGE_SIZE + line * 64
                if i % 4 == 3:
                    # halo: 8 bytes from the neighbour's first page
                    halo = grid_vpn(right, 0) * PAGE_SIZE + line * 64
                    accesses.append(MemAccess(vaddr=halo, nbytes=8))
                elif i % 4 == 2:
                    accesses.append(MemAccess(vaddr=local, nbytes=64, is_write=True))
                else:
                    accesses.append(MemAccess(vaddr=local, nbytes=64))
            ctas.append(
                CtaTrace(gpu=gpu, wavefronts=[WavefrontTrace(accesses=accesses)])
            )
    kernel = KernelTrace(name="stencil_sweep", ctas=ctas, page_owner=page_owner)
    return WorkloadTrace(name="stencil", kernels=[kernel])


def main() -> None:
    config = SystemConfig.default()
    workload = build_stencil(config.n_gpus)
    workload.validate()
    print(f"custom workload: {workload.total_accesses()} coalesced accesses")

    results = {}
    for label, nc in [
        ("baseline", NetCrafterConfig.baseline()),
        ("netcrafter", NetCrafterConfig.full()),
    ]:
        system = MultiGpuSystem(config=config, netcrafter=nc)
        system.load(build_stencil(config.n_gpus))
        results[label] = system.run()
        r = results[label]
        print(
            f"{label:11s} cycles={r.cycles:7,}  inter flits={r.inter_flits_sent:6,}  "
            f"stitched={r.flits_absorbed:5,}  trimmed={r.packets_trimmed:4,}"
        )

    speedup = results["netcrafter"].speedup_over(results["baseline"])
    print(f"\nNetCrafter speedup on the custom stencil: {speedup:.2f}x")
    print("(halo reads need 8 B of each line, so Trimming shrinks the "
          "responses; Stitching packs the halo requests into response padding)")


if __name__ == "__main__":
    main()
