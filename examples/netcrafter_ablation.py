#!/usr/bin/env python3
"""Mechanism ablation: what each NetCrafter technique contributes.

Runs one workload under every mechanism combination and prints the
speedup alongside the controller-internal counters that explain it
(stitch rate, trimmed packets, pooling outcomes, PTW share).
"""

import sys

from repro import (
    MultiGpuSystem,
    NetCrafterConfig,
    Scale,
    SystemConfig,
    get_workload,
)

CONFIGS = [
    ("baseline", NetCrafterConfig.baseline()),
    ("stitching", NetCrafterConfig.stitching_only()),
    ("stitch+pool32", NetCrafterConfig.stitching_with_pooling(32)),
    ("stitch+sfp32", NetCrafterConfig.stitching_with_selective_pooling(32)),
    ("trimming", NetCrafterConfig.trimming_only()),
    ("sequencing", NetCrafterConfig.sequencing_only()),
    ("stitch+trim", NetCrafterConfig.stitch_trim()),
    ("full netcrafter", NetCrafterConfig.full()),
]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "gups"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    config = SystemConfig.default()

    print(f"workload: {workload}\n")
    header = (
        f"{'config':16s} {'cycles':>8s} {'speedup':>8s} {'flits':>7s} "
        f"{'stitch%':>8s} {'trimmed':>8s} {'bytes saved':>12s}"
    )
    print(header)
    print("-" * len(header))

    base_cycles = None
    for label, nc in CONFIGS:
        trace = get_workload(workload).build(
            n_gpus=config.n_gpus, scale=Scale.small(), seed=seed
        )
        system = MultiGpuSystem(config=config, netcrafter=nc, seed=seed)
        system.load(trace)
        result = system.run()
        if base_cycles is None:
            base_cycles = result.cycles
            base_bytes = result.inter_wire_bytes
        saved = base_bytes - result.inter_wire_bytes
        print(
            f"{label:16s} {result.cycles:8,} {base_cycles / result.cycles:8.2f} "
            f"{result.inter_flits_sent:7,} {result.stitch_rate():8.1%} "
            f"{result.packets_trimmed:8,} {saved:12,}"
        )

    print("\nnotes:")
    print(" - stitch%   : fraction of egress flits absorbed into other flits")
    print(" - trimmed   : read responses cut to one sector at the egress")
    print(" - bytes saved: inter-cluster wire bytes vs the baseline run")


if __name__ == "__main__":
    main()
