#!/usr/bin/env python3
"""Explore bandwidth configurations and cluster shapes (paper §5.5).

Sweeps the inter/intra-cluster bandwidth ratio (Figure 22) and the
cluster topology itself (2x2 vs 4x2 vs 2x4), reporting how much headroom
the ideal network has and how much of it NetCrafter recovers.
"""

from repro import (
    MultiGpuSystem,
    NetCrafterConfig,
    Scale,
    SystemConfig,
    geometric_mean,
    get_workload,
)

WORKLOADS = ["gups", "mis", "spmv", "mt"]
SCALE = Scale.small()


def run(workload: str, config: SystemConfig, nc: NetCrafterConfig, seed: int = 0):
    trace = get_workload(workload).build(n_gpus=config.n_gpus, scale=SCALE, seed=seed)
    system = MultiGpuSystem(config=config, netcrafter=nc, seed=seed)
    system.load(trace)
    return system.run()


def evaluate(config: SystemConfig) -> dict:
    ideal_speedups, crafted_speedups, utils = [], [], []
    for workload in WORKLOADS:
        base = run(workload, config, NetCrafterConfig.baseline())
        ideal = run(workload, SystemConfig.ideal(config), NetCrafterConfig.baseline())
        crafted = run(workload, config, NetCrafterConfig.full())
        ideal_speedups.append(ideal.speedup_over(base))
        crafted_speedups.append(crafted.speedup_over(base))
        utils.append(base.inter_utilization())
    return {
        "ideal": geometric_mean(ideal_speedups),
        "netcrafter": geometric_mean(crafted_speedups),
        "utilization": sum(utils) / len(utils),
    }


def main() -> None:
    print("== bandwidth sweep (2 clusters x 2 GPUs) ==")
    print(f"{'intra:inter':>12s} {'util':>6s} {'ideal':>7s} {'netcrafter':>11s}")
    for intra, inter in [(128, 16), (128, 32), (128, 64), (256, 32), (32, 32)]:
        cfg = SystemConfig.default().with_overrides(
            intra_cluster_bw=float(intra), inter_cluster_bw=float(inter)
        )
        row = evaluate(cfg)
        print(
            f"{f'{intra}:{inter}':>12s} {row['utilization']:6.2f} "
            f"{row['ideal']:7.2f} {row['netcrafter']:11.2f}"
        )

    print("\n== topology sweep (128:16 GB/s) ==")
    print(f"{'clusters x gpus':>16s} {'util':>6s} {'ideal':>7s} {'netcrafter':>11s}")
    for clusters, gpus in [(2, 2), (2, 4), (4, 2)]:
        cfg = SystemConfig.default().with_overrides(
            n_clusters=clusters, gpus_per_cluster=gpus
        )
        row = evaluate(cfg)
        print(
            f"{f'{clusters} x {gpus}':>16s} {row['utilization']:6.2f} "
            f"{row['ideal']:7.2f} {row['netcrafter']:11.2f}"
        )

    print("\nNetCrafter recovers a large share of the ideal network's headroom,")
    print("and keeps helping even at milder ratios and bigger topologies.")


if __name__ == "__main__":
    main()
