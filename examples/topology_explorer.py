#!/usr/bin/env python3
"""Explore bandwidth configurations, cluster shapes, and fabric shapes.

Sweeps the inter/intra-cluster bandwidth ratio (Figure 22, paper §5.5),
the cluster topology itself (2x2 vs 4x2 vs 2x4), and finally tours the
topology zoo (``repro.network.topologies``) — mesh, ring, star,
fat_tree, torus3d — reporting how much headroom the ideal network has
and how much of it NetCrafter recovers on each fabric.
"""

from repro import (
    MultiGpuSystem,
    NetCrafterConfig,
    Scale,
    SystemConfig,
    geometric_mean,
    get_workload,
)
from repro.network.topologies import get_topology, topology_names

WORKLOADS = ["gups", "mis", "spmv", "mt"]
SCALE = Scale.small()


def run(workload: str, config: SystemConfig, nc: NetCrafterConfig, seed: int = 0):
    trace = get_workload(workload).build(n_gpus=config.n_gpus, scale=SCALE, seed=seed)
    system = MultiGpuSystem(config=config, netcrafter=nc, seed=seed)
    system.load(trace)
    return system.run()


def evaluate(config: SystemConfig) -> dict:
    ideal_speedups, crafted_speedups, utils = [], [], []
    for workload in WORKLOADS:
        base = run(workload, config, NetCrafterConfig.baseline())
        ideal = run(workload, SystemConfig.ideal(config), NetCrafterConfig.baseline())
        crafted = run(workload, config, NetCrafterConfig.full())
        ideal_speedups.append(ideal.speedup_over(base))
        crafted_speedups.append(crafted.speedup_over(base))
        utils.append(base.inter_utilization())
    return {
        "ideal": geometric_mean(ideal_speedups),
        "netcrafter": geometric_mean(crafted_speedups),
        "utilization": sum(utils) / len(utils),
    }


def main() -> None:
    print("== bandwidth sweep (2 clusters x 2 GPUs) ==")
    print(f"{'intra:inter':>12s} {'util':>6s} {'ideal':>7s} {'netcrafter':>11s}")
    for intra, inter in [(128, 16), (128, 32), (128, 64), (256, 32), (32, 32)]:
        cfg = SystemConfig.default().with_overrides(
            intra_cluster_bw=float(intra), inter_cluster_bw=float(inter)
        )
        row = evaluate(cfg)
        print(
            f"{f'{intra}:{inter}':>12s} {row['utilization']:6.2f} "
            f"{row['ideal']:7.2f} {row['netcrafter']:11.2f}"
        )

    print("\n== topology sweep (128:16 GB/s) ==")
    print(f"{'clusters x gpus':>16s} {'util':>6s} {'ideal':>7s} {'netcrafter':>11s}")
    for clusters, gpus in [(2, 2), (2, 4), (4, 2)]:
        cfg = SystemConfig.default().with_overrides(
            n_clusters=clusters, gpus_per_cluster=gpus
        )
        row = evaluate(cfg)
        print(
            f"{f'{clusters} x {gpus}':>16s} {row['utilization']:6.2f} "
            f"{row['ideal']:7.2f} {row['netcrafter']:11.2f}"
        )

    print("\n== fabric zoo (4 clusters x 1 GPU, 128:16 GB/s) ==")
    print(f"{'fabric':>10s} {'cycles':>8s} {'netcrafter':>11s}  shape")
    for fabric in topology_names():
        cfg = SystemConfig.default().with_overrides(
            n_clusters=4, gpus_per_cluster=1, inter_topology=fabric
        )
        base = run("gups", cfg, NetCrafterConfig.baseline())
        crafted = run("gups", cfg, NetCrafterConfig.full())
        print(
            f"{fabric:>10s} {base.cycles:8d} "
            f"{crafted.speedup_over(base):11.2f}  "
            f"{get_topology(fabric).describe(cfg)}"
        )

    print("\n== non-uniform fabric (star with thin uplinks) ==")
    skewed = SystemConfig.default().with_overrides(
        n_clusters=4,
        gpus_per_cluster=1,
        inter_topology="star",
        link_bw_overrides={"up": 8.0, "down": 32.0},
    )
    base = run("gups", skewed, NetCrafterConfig.baseline())
    crafted = run("gups", skewed, NetCrafterConfig.full())
    print(
        f"8 GB/s up / 32 GB/s down: baseline {base.cycles} cycles, "
        f"NetCrafter {crafted.speedup_over(base):.2f}x"
    )

    print("\nNetCrafter recovers a large share of the ideal network's headroom,")
    print("and keeps helping even at milder ratios, bigger topologies, and")
    print("non-mesh fabrics (see `python -m repro.experiments ext_topology`).")


if __name__ == "__main__":
    main()
