"""Virtual memory substrate: page table, TLBs, walkers, placement.

Section 2.3 of the paper: each CU has a private L1 TLB; a shared L2 TLB
and GMMU (page-walk cache + 16 parallel walkers) serve each GPU.  The
system uses a shared 4-level radix page table under unified virtual
memory; PTEs are cached in the L2 data cache of their home GPU.  Page
placement follows LASP, extended so each leaf PTE page (mapping a 2 MB
region) lives on the GPU holding the region's first data page.
"""

from repro.vm.page_table import PageTable, PageTableNode, PAGE_SIZE, PTE_BYTES
from repro.vm.placement import AddressSpace, LaspPlacement
from repro.vm.tlb import Tlb, PageWalkCache
from repro.vm.gmmu import Gmmu

__all__ = [
    "PageTable",
    "PageTableNode",
    "PAGE_SIZE",
    "PTE_BYTES",
    "AddressSpace",
    "LaspPlacement",
    "Tlb",
    "PageWalkCache",
    "Gmmu",
]
