"""Alternative page-placement policies, for the Section 5.1 analysis.

The paper validates its baseline by showing LASP "effectively maximizes
local accesses and balances remote accesses across GPUs" — i.e. the
network bottleneck is not an artifact of bad placement.  These helpers
rewrite a workload trace's page->owner maps under naive policies so the
comparison can be reproduced:

* ``interleave`` — pages round-robin across GPUs regardless of affinity
  (UVM's default striping);
* ``single_gpu`` — everything on GPU 0 (the no-placement worst case);
* ``random`` — uniform random owner per page (seeded).

CTA scheduling is left untouched: the study isolates *data placement*.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.gpu.cta import KernelTrace, WorkloadTrace

PlacementRewrite = Callable[[int, int, int], int]  # (vpn, index, n_gpus) -> owner


def _rewrite(trace: WorkloadTrace, n_gpus: int, policy: PlacementRewrite) -> WorkloadTrace:
    kernels = []
    for kernel in trace.kernels:
        new_owner: Dict[int, int] = {
            vpn: policy(vpn, index, n_gpus)
            for index, vpn in enumerate(sorted(kernel.page_owner))
        }
        kernels.append(
            KernelTrace(name=kernel.name, ctas=kernel.ctas, page_owner=new_owner)
        )
    out = WorkloadTrace(name=f"{trace.name}", kernels=kernels)
    out.validate()
    return out


def interleave_placement(trace: WorkloadTrace, n_gpus: int) -> WorkloadTrace:
    """Stripe every page round-robin across GPUs."""
    return _rewrite(trace, n_gpus, lambda vpn, index, n: index % n)


def single_gpu_placement(trace: WorkloadTrace, n_gpus: int, gpu: int = 0) -> WorkloadTrace:
    """Place every page on one GPU (the no-placement worst case)."""
    if not 0 <= gpu < n_gpus:
        raise ValueError(f"no such GPU {gpu}")
    return _rewrite(trace, n_gpus, lambda vpn, index, n: gpu)


def random_placement(trace: WorkloadTrace, n_gpus: int, seed: int = 0) -> WorkloadTrace:
    """Place every page on a uniformly random GPU (seeded)."""
    rng = random.Random(seed)
    assignment: Dict[int, int] = {}

    def policy(vpn: int, index: int, n: int) -> int:
        if vpn not in assignment:
            assignment[vpn] = rng.randrange(n)
        return assignment[vpn]

    return _rewrite(trace, n_gpus, policy)


def access_locality(trace: WorkloadTrace) -> Dict[str, float]:
    """Static locality profile of a placed trace (Section 5.1's analysis).

    Returns the fraction of accesses whose page lives on the issuing
    CTA's GPU (``local``), plus the per-GPU balance of remote accesses
    (``remote_imbalance``: max/mean of remote-access counts by home GPU;
    1.0 = perfectly balanced).
    """
    local = 0
    total = 0
    remote_by_home: Dict[int, int] = {}
    for kernel in trace.kernels:
        for cta in kernel.ctas:
            for wf in cta.wavefronts:
                for acc in wf.accesses:
                    total += 1
                    owner = kernel.page_owner[acc.vpn]
                    if owner == cta.gpu:
                        local += 1
                    else:
                        remote_by_home[owner] = remote_by_home.get(owner, 0) + 1
    if total == 0:
        return {"local": 0.0, "remote_imbalance": 1.0}
    if remote_by_home:
        counts = list(remote_by_home.values())
        imbalance = max(counts) / (sum(counts) / len(counts))
    else:
        imbalance = 1.0
    return {"local": local / total, "remote_imbalance": imbalance}
