"""Four-level radix page table shared by all GPUs (UVM).

x86-style layout: 4 KB pages, 9 index bits per level, 8-byte PTEs, so a
leaf (level-4) node maps a 2 MB virtual region.  Every node occupies one
simulated physical frame on some GPU; a page-table walk reads one PTE
per level at ``node.addr + index * 8``, which is what the walkers
simulate (and what the home GPU's L2 caches).

Leaf node placement follows the paper's LASP extension: the leaf node
for a 2 MB region lives on the GPU that owns the region's *first mapped
data page*.  Interior (levels 1-3) nodes live on the root GPU; they are
almost always served by the page-walk cache after first touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

PAGE_SIZE = 4096
PTE_BYTES = 8
LEVELS = 4
BITS_PER_LEVEL = 9


@dataclass
class PageTableNode:
    """One 4 KB page-table node resident on ``gpu`` at physical ``addr``."""

    level: int
    gpu: int
    addr: int
    children: Dict[int, "PageTableNode"] = field(default_factory=dict)
    entries: Dict[int, int] = field(default_factory=dict)  # leaf: index -> paddr


def split_vpn(vpn: int) -> List[int]:
    """Decompose a virtual page number into per-level radix indices."""
    indices = []
    for level in range(LEVELS):
        shift = BITS_PER_LEVEL * (LEVELS - 1 - level)
        indices.append((vpn >> shift) & ((1 << BITS_PER_LEVEL) - 1))
    return indices


class PageTable:
    """The shared radix table, with node frames allocated per placement."""

    def __init__(self, address_space, root_gpu: int = 0) -> None:
        self.address_space = address_space
        self.root_gpu = root_gpu
        self.root = self._new_node(level=1, gpu=root_gpu)
        self.nodes_created = 1

    def _new_node(self, level: int, gpu: int) -> PageTableNode:
        addr = self.address_space.alloc_frame(gpu)
        return PageTableNode(level=level, gpu=gpu, addr=addr)

    # -- mapping ---------------------------------------------------------------

    def map(self, vpn: int, paddr: int, leaf_owner_hint: int) -> None:
        """Install the translation ``vpn -> paddr``.

        ``leaf_owner_hint`` places a newly created leaf node (the paper's
        PTE co-placement: the hint is the owner of the first data page
        mapped in the 2 MB region).
        """
        indices = split_vpn(vpn)
        node = self.root
        for level in range(1, LEVELS):
            index = indices[level - 1]
            child = node.children.get(index)
            if child is None:
                child_level = level + 1
                gpu = leaf_owner_hint if child_level == LEVELS else self.root_gpu
                child = self._new_node(level=child_level, gpu=gpu)
                node.children[index] = child
                self.nodes_created += 1
            node = child
        node.entries[indices[LEVELS - 1]] = paddr

    def translate_vpn(self, vpn: int) -> Optional[int]:
        """Functional lookup (no timing): physical page address or None."""
        indices = split_vpn(vpn)
        node = self.root
        for level in range(1, LEVELS):
            node = node.children.get(indices[level - 1])
            if node is None:
                return None
        return node.entries.get(indices[LEVELS - 1])

    # -- walk support -------------------------------------------------------------

    def walk_path(self, vpn: int) -> List[Tuple[int, int, int]]:
        """PTE accesses a full walk performs: ``[(level, pte_addr, gpu)]``.

        One entry per level 1..4; the PTE for level k lives in the level-k
        node at ``node.addr + index_k * 8`` on that node's GPU.  Raises
        ``KeyError`` for unmapped pages (all pages are premapped by LASP
        before kernel launch, so a walk never faults in this model).
        """
        indices = split_vpn(vpn)
        path: List[Tuple[int, int, int]] = []
        node = self.root
        for level in range(1, LEVELS + 1):
            index = indices[level - 1]
            path.append((level, node.addr + index * PTE_BYTES, node.gpu))
            if level == LEVELS:
                if index not in node.entries:
                    raise KeyError(f"vpn {vpn:#x} is not mapped")
            else:
                child = node.children.get(index)
                if child is None:
                    raise KeyError(f"vpn {vpn:#x} is not mapped at level {level}")
                node = child
        return path

    def leaf_node(self, vpn: int) -> Optional[PageTableNode]:
        indices = split_vpn(vpn)
        node = self.root
        for level in range(1, LEVELS):
            node = node.children.get(indices[level - 1])
            if node is None:
                return None
        return node
