"""GPU Memory Management Unit: L2 TLB, page-walk cache, parallel walkers.

Section 2.3: on an L2 TLB miss, the PWC is probed with a longest-prefix
match; depending on the hit level a walk performs 1-4 PTE reads, served
by one of 16 parallel walkers.  Each PTE read goes through the memory
system of the GPU holding the page-table node (local L2/DRAM, or a
PT_REQ/PT_RSP exchange across the network).  Completed translations are
inserted into the PWC and L2 TLB and returned to the requesting CU.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from repro.memory.mshr import Mshr
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.stats.collectors import RunStats
from repro.vm.page_table import PageTable
from repro.vm.tlb import PageWalkCache, Tlb

#: PteAccessFn(pte_addr, home_gpu, completion_callback)
PteAccessFn = Callable[[int, int, Callable[[], None]], None]


class Gmmu(Component):
    """One GPU's shared translation machinery behind the per-CU L1 TLBs."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        gpu_id: int,
        page_table: PageTable,
        l2_tlb: Tlb,
        pwc: PageWalkCache,
        pte_access: PteAccessFn,
        stats: RunStats,
        n_walkers: int = 16,
        walk_mshr_entries: int = 64,
    ) -> None:
        super().__init__(engine, name)
        self.gpu_id = gpu_id
        self.page_table = page_table
        self.l2_tlb = l2_tlb
        self.pwc = pwc
        self.pte_access = pte_access
        self.stats = stats
        self.n_walkers = n_walkers
        self._walkers_busy = 0
        self._walk_mshr = Mshr(walk_mshr_entries, name=f"{name}.walk_mshr")
        self._walk_queue: Deque[int] = deque()
        self.translations_requested = 0

    # -- public API ------------------------------------------------------------

    def translate(self, vpn: int, callback: Callable[[int], None]) -> None:
        """Resolve ``vpn``; ``callback(page_paddr)`` fires when done."""
        self.translations_requested += 1
        self.schedule(self.l2_tlb.lookup_latency, self._after_l2_tlb, vpn, callback)

    def _after_l2_tlb(self, vpn: int, callback: Callable[[int], None]) -> None:
        paddr = self.l2_tlb.lookup(vpn)
        if paddr is not None:
            callback(paddr)
            return
        status = self._walk_mshr.allocate(vpn, callback)
        if status == "merged":
            return
        if status == "full":
            # walk MSHR exhausted: retry shortly (back-pressure on the CU)
            self.schedule(8, self._after_l2_tlb, vpn, callback)
            return
        self._walk_queue.append(vpn)
        self._dispatch()

    # -- walker pool -------------------------------------------------------------

    def _dispatch(self) -> None:
        while self._walkers_busy < self.n_walkers and self._walk_queue:
            vpn = self._walk_queue.popleft()
            self._walkers_busy += 1
            start_cycle = self.now
            self.schedule(self.pwc.lookup_latency, self._begin_walk, vpn, start_cycle)

    def _begin_walk(self, vpn: int, start_cycle: int) -> None:
        self.stats.ptw_walks += 1
        hit_level = self.pwc.longest_prefix_level(vpn)
        path = self.page_table.walk_path(vpn)
        remaining = path[hit_level:]
        self._walk_step(vpn, start_cycle, remaining, 0)

    def _walk_step(self, vpn: int, start_cycle: int, path, index: int) -> None:
        if index >= len(path):
            self._finish_walk(vpn, start_cycle)
            return
        _level, pte_addr, node_gpu = path[index]
        self.stats.ptw_pte_accesses += 1
        if node_gpu != self.gpu_id:
            self.stats.ptw_remote_pte_accesses += 1
        self.pte_access(
            pte_addr,
            node_gpu,
            lambda: self._walk_step(vpn, start_cycle, path, index + 1),
        )

    def _finish_walk(self, vpn: int, start_cycle: int) -> None:
        paddr = self.page_table.translate_vpn(vpn)
        if paddr is None:  # pragma: no cover - pages are premapped
            raise KeyError(f"walk completed for unmapped vpn {vpn:#x}")
        self.pwc.insert_path(vpn)
        self.l2_tlb.insert(vpn, paddr)
        self.stats.ptw_latency.record(self.now - start_cycle)
        for waiter in self._walk_mshr.release(vpn):
            waiter(paddr)
        self._walkers_busy -= 1
        self._dispatch()

    @property
    def walkers_busy(self) -> int:
        return self._walkers_busy

    @property
    def walks_queued(self) -> int:
        return len(self._walk_queue)
