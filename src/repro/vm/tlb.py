"""TLBs and the page-walk cache.

Table 2: per-CU 32-entry fully-associative L1 TLBs (1-cycle lookup),
a per-GPU 512-entry 8-way L2 TLB (10-cycle lookup), and a 32-entry
fully-associative page-walk cache (10-cycle lookup) holding entries from
the upper levels (1-3) of the radix table, matched by longest prefix.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.vm.page_table import BITS_PER_LEVEL, LEVELS


class Tlb:
    """A set-associative (or fully-associative) VPN -> PPN-address cache."""

    def __init__(
        self,
        entries: int,
        assoc: Optional[int] = None,
        lookup_latency: int = 1,
        name: str = "tlb",
    ) -> None:
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.entries = entries
        self.assoc = assoc if assoc is not None else entries  # default: fully assoc
        if entries % self.assoc != 0:
            raise ValueError("entries must be a multiple of associativity")
        self.n_sets = entries // self.assoc
        self.lookup_latency = lookup_latency
        self.name = name
        # plain dicts preserve insertion order, which is all LRU needs: a
        # touch re-inserts the VPN at the back, the victim is the front
        self._sets: List[dict] = [{} for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, vpn: int) -> dict:
        return self._sets[vpn % self.n_sets]

    def lookup(self, vpn: int) -> Optional[int]:
        """Return the cached physical page address, updating LRU."""
        tlb_set = self._sets[vpn % self.n_sets]
        # pop+reinsert refreshes the LRU position in two hash probes
        # (page addresses are never None, so None is a safe miss marker)
        paddr = tlb_set.pop(vpn, None)
        if paddr is None:
            self.misses += 1
            return None
        tlb_set[vpn] = paddr
        self.hits += 1
        return paddr

    def insert(self, vpn: int, page_paddr: int) -> None:
        tlb_set = self._sets[vpn % self.n_sets]
        if vpn in tlb_set:
            del tlb_set[vpn]  # refresh LRU position
        elif len(tlb_set) >= self.assoc:
            del tlb_set[next(iter(tlb_set))]  # LRU victim
        tlb_set[vpn] = page_paddr

    def invalidate(self, vpn: int) -> bool:
        return self._set_for(vpn).pop(vpn, None) is not None

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class PageWalkCache:
    """Longest-prefix cache over upper page-table levels (1-3).

    A hit at level ``k`` means the walker already holds the pointer chain
    down to (and including) the level-``k`` PTE, so the walk resumes at
    level ``k+1``: a level-3 hit leaves a single leaf access.
    """

    def __init__(self, entries: int = 32, lookup_latency: int = 10) -> None:
        self.entries = entries
        self.lookup_latency = lookup_latency
        self._cache: "OrderedDict[tuple, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _prefix(vpn: int, level: int) -> tuple:
        """A level-k entry is determined by radix indices 1..k, i.e. the
        VPN with the lower ``LEVELS - k`` index fields stripped."""
        shift = BITS_PER_LEVEL * (LEVELS - level)
        return (level, vpn >> shift)

    def longest_prefix_level(self, vpn: int) -> int:
        """Deepest upper level (1-3) cached for this VPN; 0 when none."""
        for level in range(LEVELS - 1, 0, -1):
            key = self._prefix(vpn, level)
            if key in self._cache:
                self._cache.move_to_end(key)
                self.hits += 1
                return level
        self.misses += 1
        return 0

    def insert_path(self, vpn: int) -> None:
        """Cache all upper-level prefixes touched by a completed walk."""
        for level in range(1, LEVELS):
            key = self._prefix(vpn, level)
            if key in self._cache:
                self._cache.move_to_end(key)
                continue
            if len(self._cache) >= self.entries:
                self._cache.popitem(last=False)
            self._cache[key] = True

    @property
    def accesses(self) -> int:
        return self.hits + self.misses
