"""Physical address space and LASP-style page placement.

Each GPU owns a contiguous region of the global physical address space
(both its data frames and any page-table node frames allocated to it),
so the home GPU of any physical address is a simple range check.

LASP (Khairy et al. [42]) schedules CTAs and places data pages to
maximize locality; in this reproduction the *result* of LASP's static
index analysis is supplied by each workload as a per-page owner hint
(see :mod:`repro.workloads.base`), and :class:`LaspPlacement` realizes
it by allocating the page's frame on that GPU.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.vm.page_table import PAGE_SIZE, PageTable

#: physical frame-space per GPU (frames, not bytes): 2^24 frames = 64 GB
FRAMES_PER_GPU = 1 << 24


class AddressSpace:
    """Per-GPU bump allocation of physical frames with O(1) home lookup."""

    def __init__(self, n_gpus: int) -> None:
        if n_gpus <= 0:
            raise ValueError("need at least one GPU")
        self.n_gpus = n_gpus
        self._next_frame = [gpu * FRAMES_PER_GPU for gpu in range(n_gpus)]

    def alloc_frame(self, gpu: int) -> int:
        """Allocate one 4 KB frame on ``gpu``; returns its physical address."""
        if not 0 <= gpu < self.n_gpus:
            raise ValueError(f"no such GPU {gpu}")
        frame = self._next_frame[gpu]
        limit = (gpu + 1) * FRAMES_PER_GPU
        if frame >= limit:
            raise MemoryError(f"GPU {gpu} frame space exhausted")
        self._next_frame[gpu] = frame + 1
        return frame * PAGE_SIZE

    def home_of(self, paddr: int) -> int:
        """Home GPU of a physical address."""
        gpu = (paddr // PAGE_SIZE) // FRAMES_PER_GPU
        if not 0 <= gpu < self.n_gpus:
            raise ValueError(f"physical address {paddr:#x} outside any GPU")
        return gpu

    def frames_allocated(self, gpu: int) -> int:
        return self._next_frame[gpu] - gpu * FRAMES_PER_GPU


class LaspPlacement:
    """Maps virtual pages onto GPUs per the workload's LASP owner hints."""

    def __init__(self, address_space: AddressSpace, page_table: PageTable) -> None:
        self.address_space = address_space
        self.page_table = page_table
        self._page_owner: Dict[int, int] = {}

    def map_page(self, vpn: int, owner_gpu: int) -> int:
        """Place virtual page ``vpn`` on ``owner_gpu`` (idempotent).

        Returns the physical page address.  The page table's leaf node for
        the enclosing 2 MB region is co-located with the first page mapped
        in that region (the paper's LASP extension).
        """
        existing = self.page_table.translate_vpn(vpn)
        if existing is not None:
            return existing
        paddr = self.address_space.alloc_frame(owner_gpu)
        self._page_owner[vpn] = owner_gpu
        self.page_table.map(vpn, paddr, leaf_owner_hint=owner_gpu)
        return paddr

    def owner_of_vpn(self, vpn: int) -> Optional[int]:
        return self._page_owner.get(vpn)

    def pages_on(self, gpu: int) -> int:
        return sum(1 for owner in self._page_owner.values() if owner == gpu)

    @property
    def pages_mapped(self) -> int:
        return len(self._page_owner)
