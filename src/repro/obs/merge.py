"""Merge per-shard observability payloads into single artifacts.

A sharded run produces one trace / metrics / profile payload per shard.
These helpers fold them into objects exposing the same export surface
as the originals (``to_jsonl`` / ``to_chrome`` / ``to_json``), so the
experiment runner's artifact writer works unchanged on sharded runs and
``python -m repro.obs.validate`` accepts the merged output.

Ordering contract: merged trace records are sorted by ``(cycle,
shard_index, position)``.  Within a shard, emission order is preserved
(the position tiebreak), and a flit's cross-shard lifecycle can never
interleave badly across shards — a boundary flit's ``wire_start`` is
emitted by the sender at the send cycle while its ``deliver`` is
emitted by the receiver at least ``1 + link latency`` cycles later, so
the cycle ordering alone already separates them.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import METRICS_SCHEMA_VERSION
from repro.obs.tracer import EventTracer


def merge_traces(reports) -> Optional[EventTracer]:
    """Fold shard trace payloads into one :class:`EventTracer`.

    Returns ``None`` when no shard traced.  The result is a real tracer
    whose ring holds the merged records, so ``to_jsonl``/``to_chrome``
    behave exactly as in the single-engine path; ``dropped`` sums the
    shards' ring overflows (a positive sum flags the merged trace as
    partial, which the validator honours).
    """
    tagged = []
    sample = 1
    dropped = 0
    traced = False
    for report in reports:
        if report.trace_records is None:
            continue
        traced = True
        sample = report.trace_sample
        dropped += report.trace_dropped
        for position, record in enumerate(report.trace_records):
            tagged.append((record["cycle"], report.shard_index, position, record))
    if not traced:
        return None
    tagged.sort(key=lambda entry: entry[:3])
    tracer = EventTracer(sample=sample, ring_capacity=max(1, len(tagged)))
    tracer._events.extend(entry[3] for entry in tagged)
    tracer.emitted = len(tagged) + dropped
    return tracer


class MergedMetrics:
    """Shard metric series joined on the sample cycle.

    Shard registries prefix every metric name with ``s<shard>.``, so the
    union of names is collision-free and each merged row is the union of
    the shards' same-cycle rows.
    """

    def __init__(self, interval: int, names: List[str], samples: List[dict]) -> None:
        self.interval = interval
        self._names = names
        self.samples = samples

    def names(self) -> List[str]:
        return list(self._names)

    def to_jsonl(self, path: str) -> int:
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "meta": True,
                        "schema": METRICS_SCHEMA_VERSION,
                        "interval": self.interval,
                        "metrics": self.names(),
                    }
                )
            )
            handle.write("\n")
            for row in self.samples:
                handle.write(json.dumps(row))
                handle.write("\n")
        return len(self.samples)


def merge_metrics(reports) -> Optional[MergedMetrics]:
    """Join shard metric rows by cycle; ``None`` when metrics were off."""
    interval = None
    names: List[str] = []
    by_cycle: Dict[int, dict] = {}
    for report in reports:
        if report.metrics_rows is None:
            continue
        interval = report.metrics_interval
        names.extend(report.metrics_names)
        for row in report.metrics_rows:
            merged = by_cycle.setdefault(int(row["cycle"]), {"cycle": row["cycle"]})
            merged.update(row)
    if interval is None:
        return None
    samples = [by_cycle[cycle] for cycle in sorted(by_cycle)]
    return MergedMetrics(interval=interval, names=names, samples=samples)


class MergedProfile:
    """Summed per-callback dispatch counts and wall time across shards."""

    def __init__(self, doc: dict) -> None:
        self._doc = doc

    def to_dict(self) -> dict:
        return self._doc

    def to_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self._doc, handle, indent=2)


def merge_profiles(reports) -> Optional[MergedProfile]:
    events = 0
    wall = 0.0
    by_key: Dict[str, List[float]] = {}
    profiled = False
    for report in reports:
        if report.profile is None:
            continue
        profiled = True
        events += int(report.profile["events"])
        wall += float(report.profile["wall_seconds"])
        for row in report.profile["by_callback"]:
            entry = by_key.setdefault(row["callback"], [0, 0.0])
            entry[0] += int(row["count"])
            entry[1] += float(row["seconds"])
    if not profiled:
        return None
    rows = [
        {"callback": key, "count": int(count), "seconds": secs}
        for key, (count, secs) in by_key.items()
    ]
    rows.sort(key=lambda row: -row["seconds"])
    return MergedProfile(
        {"events": events, "wall_seconds": wall, "by_callback": rows}
    )


class MergedObservability:
    """An :class:`~repro.obs.Observability`-shaped bundle of merged
    artifacts, accepted by the runner's artifact writer."""

    def __init__(self, tracer, metrics, profiler) -> None:
        from repro.obs.tracer import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.profiler = profiler

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics is not None
            or self.profiler is not None
        )


def merge_observability(reports) -> MergedObservability:
    return MergedObservability(
        tracer=merge_traces(reports),
        metrics=merge_metrics(reports),
        profiler=merge_profiles(reports),
    )
