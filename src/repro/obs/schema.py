"""Trace schema: event vocabulary and JSONL validation.

A trace line is one JSON object.  Every record carries ``cycle`` (int,
>= 0), ``event`` (one of :data:`EVENTS` or the ``trace_meta`` header)
and ``packet`` (int); flit-scoped events additionally carry ``flit``.
Event-specific obligations:

* ``stitch``  — ``parent`` (the absorbing flit's id, != ``flit``)
* ``pool``    — ``until`` (the partition's unblock cycle, >= ``cycle``)
* ``wire_start`` — ``link`` (lane name) and ``dur`` (serialization cycles)

Fault injection (repro.faults) adds four events: ``drop`` (the wire
transmission vanished), ``corrupt`` (it arrived but failed the ingress
CRC), ``crc_ok`` (it arrived and passed), and ``retransmit`` (the sender
re-sent it).  ``retransmit`` legally *rewinds* a flit's lifecycle — the
flit goes back on the wire after having been dropped or delivered
corrupted — so the sequence checker resets that flit's rank rather than
flagging the decrease; cycle monotonicity still applies.

Beyond per-record shape, :func:`validate_records` checks per-flit
*sequence* sanity: a flit must be staged before it is ejected, ejected
before it starts on the wire, and on the wire before it is delivered —
stitched flits instead end with a ``stitch`` record and are delivered
under their parent's ``deliver``.

Run from the command line via ``python -m repro.obs.validate``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: packet-scoped lifecycle events
PACKET_EVENTS = ("inject", "trim")
#: flit-scoped lifecycle events
FLIT_EVENTS = (
    "stage",
    "pool",
    "stitch",
    "eject",
    "wire_start",
    "deliver",
    "retransmit",
    "drop",
    "corrupt",
    "crc_ok",
)
#: the full event vocabulary
EVENTS = PACKET_EVENTS + FLIT_EVENTS

#: rank in the legal per-flit ordering (events may repeat a rank; a
#: lower-ranked event must never follow a higher-ranked one for a flit,
#: except ``stage``/``pool`` cycles while a pooled flit waits and
#: ``retransmit``, which resets the flit to just-ejected)
_FLIT_ORDER = {
    "stage": 0,
    "pool": 1,
    "stitch": 2,
    "eject": 2,
    "wire_start": 3,
    "deliver": 4,
    "retransmit": 2,
    "drop": 3,
    "corrupt": 4,
    "crc_ok": 4,
}


def validate_record(record: Dict[str, object]) -> List[str]:
    """Shape-check one trace record; returns human-readable errors."""
    errors: List[str] = []
    event = record.get("event")
    if event == "trace_meta":
        if not isinstance(record.get("schema"), int):
            errors.append("trace_meta: missing integer 'schema'")
        return errors
    if event not in EVENTS:
        errors.append(f"unknown event {event!r}")
        return errors
    cycle = record.get("cycle")
    if not isinstance(cycle, int) or cycle < 0:
        errors.append(f"{event}: 'cycle' must be a non-negative int, got {cycle!r}")
    if not isinstance(record.get("packet"), int):
        errors.append(f"{event}: missing integer 'packet'")
    if event in FLIT_EVENTS and not isinstance(record.get("flit"), int):
        errors.append(f"{event}: missing integer 'flit'")
    if event == "stitch":
        parent = record.get("parent")
        if not isinstance(parent, int):
            errors.append("stitch: missing integer 'parent'")
        elif parent == record.get("flit"):
            errors.append("stitch: flit cannot be its own parent")
    if event == "pool":
        until = record.get("until")
        if not isinstance(until, int):
            errors.append("pool: missing integer 'until'")
        elif isinstance(cycle, int) and until < cycle:
            errors.append(f"pool: 'until' ({until}) before 'cycle' ({cycle})")
    if event == "wire_start":
        if not isinstance(record.get("link"), str):
            errors.append("wire_start: missing string 'link'")
        if not isinstance(record.get("dur"), (int, float)):
            errors.append("wire_start: missing numeric 'dur'")
    return errors


def validate_records(records: Iterable[Dict[str, object]]) -> List[str]:
    """Validate record shapes plus per-flit lifecycle ordering."""
    errors: List[str] = []
    last_rank: Dict[int, int] = {}
    last_cycle: Dict[int, int] = {}
    for index, record in enumerate(records):
        for error in validate_record(record):
            errors.append(f"record {index}: {error}")
        event = record.get("event")
        fid = record.get("flit")
        if not isinstance(fid, int) or event not in _FLIT_ORDER:
            continue
        rank = _FLIT_ORDER[event]
        cycle = record.get("cycle")
        if not isinstance(cycle, int):
            continue
        prev_rank = last_rank.get(fid)
        if prev_rank is not None:
            if cycle < last_cycle[fid]:
                errors.append(
                    f"record {index}: flit {fid} {event} at cycle {cycle} "
                    f"before its previous event at {last_cycle[fid]}"
                )
            if event == "retransmit":
                # a legal lifecycle rewind: the flit re-enters the wire
                # after a drop/corrupt; reset its rank to just-ejected
                last_rank[fid] = rank
                last_cycle[fid] = cycle
                continue
            if rank < prev_rank:
                errors.append(
                    f"record {index}: flit {fid} event {event} (rank {rank}) "
                    f"after a rank-{prev_rank} event"
                )
        elif rank >= 3:
            # a flit must be staged before it reaches the wire; deliveries
            # of stitched children are keyed to the parent flit, so a bare
            # wire_start/deliver means the stage record was lost (ring
            # overflow) or never emitted
            errors.append(
                f"record {index}: flit {fid} {event} without a prior stage"
            )
        last_rank[fid] = max(rank, prev_rank if prev_rank is not None else rank)
        last_cycle[fid] = cycle
    return errors


def validate_jsonl(path: str, allow_partial: bool = False) -> List[str]:
    """Validate a trace file; ``allow_partial`` skips sequence checks
    (needed when the ring buffer dropped the oldest events)."""
    from repro.obs.tracer import iter_jsonl

    records = list(iter_jsonl(path))
    meta = records[0] if records and records[0].get("event") == "trace_meta" else None
    if meta is None:
        return ["missing trace_meta header line"]
    body = records[1:]
    if allow_partial or (isinstance(meta.get("dropped"), int) and meta["dropped"] > 0):
        errors: List[str] = []
        for index, record in enumerate(body):
            errors.extend(f"record {index}: {e}" for e in validate_record(record))
        return errors
    return validate_records(body)
