"""Structured observability: tracing, metrics time series, profiling.

The three legs, bundled by :class:`Observability` and threaded through
:class:`~repro.gpu.system.MultiGpuSystem`:

* :class:`~repro.obs.tracer.EventTracer` — per-flit/per-packet lifecycle
  events (inject, stage, pool, stitch, trim, eject, wire_start,
  deliver), ring-buffered with packet-granular sampling, exported as
  JSONL or Chrome ``trace_event`` JSON;
* :class:`~repro.obs.metrics.MetricsRegistry` — named counters/gauges
  snapshotted every N cycles into a time series;
* :class:`~repro.obs.profiler.EngineProfiler` — events dispatched and
  wall time per callback class inside the event engine.

Everything defaults off: components carry :data:`NULL_TRACER` and the
engine's ``profiler`` is ``None``, so the disabled path costs a branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.obs.counters import CounterSet
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.profiler import EngineProfiler, callback_key
from repro.obs.schema import (
    EVENTS,
    FLIT_EVENTS,
    PACKET_EVENTS,
    validate_jsonl,
    validate_record,
    validate_records,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    EventTracer,
    NullTracer,
    iter_jsonl,
)

__all__ = [
    "EVENTS",
    "FLIT_EVENTS",
    "PACKET_EVENTS",
    "METRICS_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "NULL_TRACER",
    "CounterSet",
    "EventTracer",
    "NullTracer",
    "MetricsRegistry",
    "EngineProfiler",
    "Observability",
    "callback_key",
    "iter_jsonl",
    "validate_jsonl",
    "validate_record",
    "validate_records",
]


@dataclass
class Observability:
    """The observability bundle one simulation run is wired with.

    The default-constructed bundle is fully disabled and adds near-zero
    overhead; enable legs individually::

        obs = Observability(
            tracer=EventTracer(sample=4),
            metrics=MetricsRegistry(interval=1000),
            profiler=EngineProfiler(),
        )
        system = MultiGpuSystem(config, netcrafter, obs=obs)
    """

    tracer: Union[NullTracer, EventTracer] = field(default=NULL_TRACER)
    metrics: Optional[MetricsRegistry] = None
    profiler: Optional[EngineProfiler] = None

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics is not None
            or self.profiler is not None
        )
