"""CLI trace validator: ``python -m repro.obs.validate run.trace.jsonl``.

Exit status 0 when every file passes shape and sequence validation,
1 when any record fails, 2 on usage errors.  Used by CI's smoke job to
guard the trace schema.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.obs.schema import validate_jsonl


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate trace JSONL files against the flit-lifecycle schema.",
    )
    parser.add_argument("paths", nargs="+", help="trace .jsonl files to validate")
    parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="skip sequence checks (for traces whose ring buffer overflowed)",
    )
    parser.add_argument(
        "--max-errors",
        type=int,
        default=20,
        help="errors to print per file (default: 20)",
    )
    args = parser.parse_args(argv)

    failed = False
    for path in args.paths:
        try:
            errors = validate_jsonl(path, allow_partial=args.allow_partial)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            failed = True
            continue
        if errors:
            failed = True
            print(f"{path}: {len(errors)} schema violation(s)", file=sys.stderr)
            for error in errors[: args.max_errors]:
                print(f"  {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
