"""Per-flit / per-packet lifecycle event tracer.

NetCrafter's mechanisms are *byte-routing* decisions — where a flit's
padding went (stitching), how long a flit waited for company (pooling),
which bytes were dropped in flight (trimming) — and aggregate counters
cannot explain a single wrong figure.  The tracer records the lifecycle
of every (sampled) packet and its flits as structured events:

==========  =====================================================
event       meaning
==========  =====================================================
inject      RDMA engine handed the packet to the network
trim        Trim Engine shrank a read response at the egress
stage       flit entered a Cluster Queue partition
pool        flit was pooled (its partition timer was set)
stitch      flit was absorbed into a parent flit (carries both ids)
eject       flit left the Cluster Queue toward the wire
wire_start  flit began serializing onto an inter-cluster link
deliver     flit (or a stitched child) reached the remote switch
==========  =====================================================

Events live in a bounded ring buffer (oldest dropped first) and export
as JSONL — one self-describing object per line, see
:mod:`repro.obs.schema` — or as Chrome ``trace_event`` JSON that loads
directly in ``chrome://tracing`` / Perfetto.

The disabled path is :data:`NULL_TRACER`: a singleton whose ``enabled``
flag is ``False``.  Hot-path components mix in :class:`Traced`, which
caches the enabled flag as ``self._trace_on`` when the tracer is
assigned — emission guards are then a single attribute load and branch,
with no repeated ``tracer.enabled`` chasing per event.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Optional

#: bump when the meaning of emitted records changes
TRACE_SCHEMA_VERSION = 1


class NullTracer:
    """Do-nothing tracer used when tracing is disabled (the default)."""

    __slots__ = ()
    enabled = False

    def packet_event(self, cycle, event, packet, **extra) -> None:
        pass

    def flit_event(self, cycle, event, flit, **extra) -> None:
        pass


#: shared disabled tracer; components default their ``tracer`` attr to this
NULL_TRACER = NullTracer()


class Traced:
    """Mixin giving a component a tracer with a pre-hoisted enable flag.

    Assigning ``component.tracer = tracer`` (done once by the
    observability wiring) captures ``tracer.enabled`` into
    ``self._trace_on``, so per-event emission sites check one cached
    boolean instead of dereferencing ``self.tracer.enabled`` millions of
    times in the disabled case.  Tracers never flip ``enabled`` mid-run,
    so caching at assignment is safe.
    """

    _tracer = NULL_TRACER
    _trace_on = False

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._trace_on = bool(tracer.enabled)


class EventTracer:
    """Ring-buffered lifecycle tracer with packet-granular sampling.

    ``sample=N`` keeps every Nth packet (and all of its flits), chosen by
    packet id so one packet's lifecycle is always recorded whole —
    sampling individual events would break sequence validation.
    """

    enabled = True

    def __init__(self, sample: int = 1, ring_capacity: int = 1_000_000) -> None:
        if sample < 1:
            raise ValueError("sample rate must be >= 1")
        if ring_capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.sample = int(sample)
        self.ring_capacity = int(ring_capacity)
        self._events: deque = deque(maxlen=self.ring_capacity)
        self.emitted = 0

    # -- emission ----------------------------------------------------------

    def wants_packet(self, pid: int) -> bool:
        """Sampling decision, stable per packet id."""
        return pid % self.sample == 0

    def packet_event(self, cycle: int, event: str, packet, **extra) -> None:
        """Record a packet-level event (inject, trim)."""
        if not self.wants_packet(packet.pid):
            return
        record = {
            "cycle": int(cycle),
            "event": event,
            "packet": packet.pid,
            "ptype": packet.ptype.value,
            "src": packet.src_gpu,
            "dst": packet.dst_gpu,
        }
        if extra:
            record.update(extra)
        self._events.append(record)
        self.emitted += 1

    def flit_event(self, cycle: int, event: str, flit, **extra) -> None:
        """Record a flit-level event (stage ... deliver)."""
        packet = flit.packet
        if not self.wants_packet(packet.pid):
            return
        record = {
            "cycle": int(cycle),
            "event": event,
            "flit": flit.fid,
            "packet": packet.pid,
            "ptype": packet.ptype.value,
            "src": packet.src_gpu,
            "dst": packet.dst_gpu,
        }
        if extra:
            record.update(extra)
        self._events.append(record)
        self.emitted += 1

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self._events)

    def events(self) -> List[Dict[str, object]]:
        """All retained events, sorted by cycle (stable within a cycle).

        Events are emitted in dispatch order but a link emits ``deliver``
        with its (future) arrival cycle at send time, so the raw ring is
        not cycle-sorted.
        """
        return sorted(self._events, key=lambda r: r["cycle"])

    # -- export ------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """Write one JSON object per line; returns the record count."""
        events = self.events()
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "event": "trace_meta",
                        "cycle": 0,
                        "schema": TRACE_SCHEMA_VERSION,
                        "sample": self.sample,
                        "records": len(events),
                        "dropped": self.dropped,
                    }
                )
            )
            handle.write("\n")
            for record in events:
                handle.write(json.dumps(record))
                handle.write("\n")
        return len(events)

    def to_chrome(self, path: Optional[str] = None) -> Dict[str, object]:
        """Build (and optionally write) Chrome ``trace_event`` JSON.

        The result loads in ``chrome://tracing`` and Perfetto: one
        timeline thread per lane (a link or controller name), instant
        events for lifecycle points, and complete ("X") slices for wire
        occupancy (``wire_start`` records carrying a duration).  Cycle
        timestamps are presented as microseconds, so at the 1 GHz clock
        1 displayed us = 1 simulated cycle.
        """
        tids: Dict[str, int] = {}
        trace_events: List[Dict[str, object]] = []

        def tid_for(lane: str) -> int:
            tid = tids.get(lane)
            if tid is None:
                tid = len(tids) + 1
                tids[lane] = tid
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": lane},
                    }
                )
            return tid

        for record in self.events():
            lane = str(record.get("lane", record.get("link", "lifecycle")))
            entry: Dict[str, object] = {
                "name": record["event"],
                "cat": "flit" if "flit" in record else "packet",
                "pid": 1,
                "tid": tid_for(lane),
                "ts": record["cycle"],
                "args": {
                    k: v for k, v in record.items() if k not in ("cycle", "event")
                },
            }
            if "dur" in record:
                entry["ph"] = "X"
                entry["dur"] = record["dur"]
            else:
                entry["ph"] = "i"
                entry["s"] = "t"
            trace_events.append(entry)

        doc = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA_VERSION,
                "sample": self.sample,
                "dropped": self.dropped,
            },
        }
        if path is not None:
            with open(path, "w") as handle:
                json.dump(doc, handle)
        return doc

    # -- analysis helpers --------------------------------------------------

    def lifecycle_of(self, fid: int) -> List[Dict[str, object]]:
        """The ordered event sequence of one flit id."""
        return [r for r in self.events() if r.get("flit") == fid]

    def count_by_event(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._events:
            counts[record["event"]] = counts.get(record["event"], 0) + 1
        return counts


def iter_jsonl(path: str) -> Iterable[Dict[str, object]]:
    """Yield records from a trace JSONL file (meta line included)."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
