"""Named monotonic counters for long-lived serving processes.

:class:`~repro.obs.metrics.MetricsRegistry` samples *simulation* state on
a cycle clock; a serving front end (the campaign server) lives in wall
time and has no cycle clock to sample on.  :class:`CounterSet` is the
wall-clock-domain complement: a flat bag of named monotonic counters
(requests, dedupe hits, executed points, accumulated execution seconds)
cheap enough to bump on every request and dumped wholesale into status
responses and event streams.
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]


class CounterSet:
    """A flat registry of named monotonic counters.

    Unknown names spring into existence at zero on first use, so call
    sites never pre-declare; :meth:`to_dict` returns a name-sorted
    snapshot safe to serialize into status payloads.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, Number] = {}

    def inc(self, name: str, by: Number = 1) -> Number:
        """Add ``by`` (default 1) to ``name``; returns the new value."""
        if by < 0:
            raise ValueError(f"counter {name!r} is monotonic; got {by!r}")
        value = self._counts.get(name, 0) + by
        self._counts[name] = value
        return value

    def get(self, name: str) -> Number:
        return self._counts.get(name, 0)

    def to_dict(self) -> Dict[str, Number]:
        return dict(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._counts)
