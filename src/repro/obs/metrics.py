"""Metrics time series: periodic snapshots of named counters and gauges.

End-of-run scalars hide *when* a link saturated or a Cluster Queue
filled; this registry samples a set of named sources every N cycles so
utilization-over-time, occupancy-over-time and queue-depth-over-time can
be plotted or diffed between configurations.

Sources are zero-argument callables registered under a dotted name
(``inter.wire_bytes``, ``cq.ctl0->1.occupancy``, ...).  Cumulative
sources (byte/flit counters) must agree with the end-of-run aggregate:
the final snapshot is taken at the finish cycle, so the last sample of
``inter.wire_bytes`` equals the summed ``LinkStats`` totals — a
cross-check the test suite enforces.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

#: bump when the sample format changes
METRICS_SCHEMA_VERSION = 1


class MetricsRegistry:
    """Named metric sources plus the samples collected from them."""

    def __init__(self, interval: int) -> None:
        if interval <= 0:
            raise ValueError("metrics interval must be positive")
        self.interval = int(interval)
        self._sources: List[Tuple[str, Callable[[], float]]] = []
        self._names: set = set()
        self.samples: List[Dict[str, float]] = []

    def register(self, name: str, source: Callable[[], float]) -> None:
        """Register ``source`` under ``name``; names must be unique."""
        if name == "cycle":
            raise ValueError("'cycle' is reserved for the sample timestamp")
        if name in self._names:
            raise ValueError(f"metric {name!r} already registered")
        self._names.add(name)
        self._sources.append((name, source))

    def names(self) -> List[str]:
        return [name for name, _ in self._sources]

    # -- snapshot protocol -------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle the series, not the sources.

        Gauge sources are closures over live simulator objects and cannot
        (and should not) be serialized; whoever restores a registry must
        re-register its sources against the restored system — the system
        classes do this via their ``_register_metrics`` wiring.
        """
        return {"interval": self.interval, "samples": self.samples}

    def __setstate__(self, state: dict) -> None:
        self.interval = state["interval"]
        self.samples = state["samples"]
        self._sources = []
        self._names = set()

    # -- sampling ----------------------------------------------------------

    def sample(self, cycle: int) -> Dict[str, float]:
        """Snapshot every source at ``cycle``.

        Re-sampling the same cycle (the final end-of-run snapshot can
        coincide with a periodic one) replaces the previous row instead
        of duplicating the timestamp.
        """
        row: Dict[str, float] = {"cycle": int(cycle)}
        for name, source in self._sources:
            row[name] = source()
        if self.samples and self.samples[-1]["cycle"] == row["cycle"]:
            self.samples[-1] = row
        else:
            self.samples.append(row)
        return row

    # -- access ------------------------------------------------------------

    def series(self, name: str) -> List[Tuple[int, float]]:
        """The (cycle, value) time series of one metric."""
        if name not in self._names:
            raise KeyError(f"unknown metric {name!r}")
        return [(int(row["cycle"]), row[name]) for row in self.samples]

    def latest(self, name: str) -> Optional[float]:
        if not self.samples:
            return None
        return self.samples[-1].get(name)

    def deltas(self, name: str) -> List[Tuple[int, float]]:
        """Per-interval increments of a cumulative counter (for rates)."""
        points = self.series(name)
        out: List[Tuple[int, float]] = []
        prev = 0.0
        for cycle, value in points:
            out.append((cycle, value - prev))
            prev = value
        return out

    # -- export ------------------------------------------------------------

    def to_jsonl(self, path: str) -> int:
        """One JSON object per sample, preceded by a meta header line."""
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "meta": True,
                        "schema": METRICS_SCHEMA_VERSION,
                        "interval": self.interval,
                        "metrics": self.names(),
                    }
                )
            )
            handle.write("\n")
            for row in self.samples:
                handle.write(json.dumps(row))
                handle.write("\n")
        return len(self.samples)
