"""Engine profiling: events dispatched and wall time per callback class.

The event engine dispatches millions of bound-method callbacks per run;
knowing *which* component classes burn the wall clock is the first step
of any simulator optimization.  The profiler keys every dispatched event
by ``ClassName.method`` (falling back to ``__qualname__`` for free
functions) and accumulates a count and total wall seconds per key.

Attach via ``engine.profiler = EngineProfiler()``; detached (``None``,
the default) the engine pays a single ``is None`` branch per event.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Tuple


def callback_key(callback: Callable) -> str:
    """Stable per-class key for a dispatched callback."""
    owner = getattr(callback, "__self__", None)
    name = getattr(callback, "__name__", None)
    if owner is not None and name is not None:
        return f"{type(owner).__name__}.{name}"
    return getattr(callback, "__qualname__", repr(callback))


class EngineProfiler:
    """Accumulates per-callback-class dispatch counts and wall time."""

    def __init__(self) -> None:
        #: key -> [dispatch count, wall seconds]
        self.by_key: Dict[str, List[float]] = {}
        self.events = 0
        self.wall_seconds = 0.0

    def dispatch(self, callback: Callable, args: tuple) -> None:
        """Run ``callback(*args)``, attributing its wall time."""
        key = callback_key(callback)
        start = time.perf_counter()
        try:
            callback(*args)
        finally:
            elapsed = time.perf_counter() - start
            entry = self.by_key.get(key)
            if entry is None:
                self.by_key[key] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed
            self.events += 1
            self.wall_seconds += elapsed

    # -- reporting ---------------------------------------------------------

    def hotspots(self) -> List[Tuple[str, int, float]]:
        """(key, count, seconds) rows, most wall time first."""
        rows = [(key, int(count), secs) for key, (count, secs) in self.by_key.items()]
        rows.sort(key=lambda row: -row[2])
        return rows

    def report_lines(self, top: int = 15) -> List[str]:
        lines = [
            f"events dispatched:  {self.events}"
            f"  ({self.wall_seconds:.3f}s inside callbacks)"
        ]
        for key, count, secs in self.hotspots()[:top]:
            share = 100.0 * secs / self.wall_seconds if self.wall_seconds else 0.0
            per_event = 1e6 * secs / count if count else 0.0
            lines.append(
                f"{key:40s} {count:>9d} events  {secs:7.3f}s"
                f"  ({share:4.1f}%, {per_event:6.2f}us/event)"
            )
        return lines

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "by_callback": [
                {"callback": key, "count": count, "seconds": secs}
                for key, count, secs in self.hotspots()
            ],
        }

    def to_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
