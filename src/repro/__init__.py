"""repro: a reproduction of NetCrafter (ISCA 2025).

NetCrafter tailors network traffic for non-uniform bandwidth multi-GPU
systems with three mechanisms applied at inter-cluster egress ports:
Stitching (merge partially-filled flits), Trimming (send only the needed
cache-line sector), and Sequencing (prioritize latency-critical
page-table-walk flits).

Quickstart::

    from repro import MultiGpuSystem, NetCrafterConfig, get_workload

    workload = get_workload("gups").build(n_gpus=4)
    baseline = MultiGpuSystem()
    baseline.load(workload)
    base = baseline.run()

    crafted = MultiGpuSystem(netcrafter=NetCrafterConfig.full())
    crafted.load(get_workload("gups").build(n_gpus=4))
    fast = crafted.run()
    print(f"speedup: {fast.speedup_over(base):.2f}x")
"""

from repro.config import SystemConfig
from repro.core import NetCrafterConfig, PriorityMode
from repro.faults import FaultConfig, FlapWindow
from repro.gpu import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    MultiGpuSystem,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.stats import RunResult, geometric_mean
from repro.stats.energy import EnergyModel, estimate_energy
from repro.workloads import Scale, get_workload, all_workload_names
from repro.workloads.serialization import load_trace, save_trace

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "NetCrafterConfig",
    "PriorityMode",
    "FaultConfig",
    "FlapWindow",
    "MultiGpuSystem",
    "MemAccess",
    "WavefrontTrace",
    "CtaTrace",
    "KernelTrace",
    "WorkloadTrace",
    "RunResult",
    "geometric_mean",
    "EnergyModel",
    "estimate_energy",
    "Scale",
    "get_workload",
    "all_workload_names",
    "save_trace",
    "load_trace",
]
