"""Checkpoint/resume: kernel-boundary snapshots indistinguishable from
an uninterrupted run.

Long sweeps are single-shot simulations; a preemption used to throw the
whole run away.  This package serializes a quiesced
:class:`~repro.gpu.system.MultiGpuSystem` or
:class:`~repro.shard.coordinator.ShardedSystem` at kernel boundaries —
the engine's pending-event calendar (normalized by
``Engine.__getstate__``, which drops the lazily-recycled dispatched
prefix of the current ring bucket), cluster queues, pooling timers,
TLB/sector-cache/MSHR contents, in-flight reassembly and mailbox
sequence state, ID-allocator cursors, and every stats/obs counter — into
a versioned, fingerprint-stamped snapshot file, and resumes it to a
**byte-identical** final result.

Why kernel boundaries: the coordinator and the single engine both prove
the system quiesced there (no wavefronts, no posted writes, no in-flight
cross-cluster traffic), so the live object graph contains no transient
requester closures and the remaining schedule is a pure function of the
serialized state.  The snapshot hook is a pure observer — it schedules
no events — so a checkpointed run's event stream, sequence numbers and
digest are identical to an unhooked run's.

Snapshot file layout (version :data:`SNAPSHOT_FORMAT_VERSION`)::

    REPROCKPT\\n            magic
    {header JSON}\\n        format, fingerprint, mode, boundary, cycle
    <pickle payload>       the serialized system state

The header is validated *before* the payload is unpickled: a wrong
magic/version raises :class:`SnapshotFormatError`, and a fingerprint
that does not match the run configuration being resumed raises
:class:`FingerprintMismatchError` — resuming a snapshot against a
different config/seed/workload/shard-plan fails loudly, never silently
producing a chimera run.

Fault injection needs no extra state: fault fates are drawn from a pure
counter-based hash keyed on (link, packet content, attempt), so the
restored run redraws exactly the fates the uninterrupted run would have.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.atomicio import atomic_write_bytes, sweep_orphans
from repro.network.ids import FLIT_IDS, PACKET_IDS

#: bump whenever the snapshot payload layout or the serialized state of
#: any simulator class changes incompatibly
SNAPSHOT_FORMAT_VERSION = 1

_MAGIC = b"REPROCKPT\n"


class CheckpointError(RuntimeError):
    """Base error for snapshot save/load/resume problems."""


class SnapshotFormatError(CheckpointError):
    """The file is not a snapshot this version can read (bad magic,
    truncated header, or an incompatible format version)."""


class FingerprintMismatchError(CheckpointError):
    """The snapshot was taken under a different run configuration than
    the one being resumed (config, seed, workload shape, or shard plan)."""


# -- fingerprinting ----------------------------------------------------------


def run_fingerprint(
    config,
    netcrafter,
    seed: int,
    workload,
    n_shards: int = 1,
    window: Optional[int] = None,
) -> str:
    """Content hash of everything a resumed run must agree on.

    Covers the full system/netcrafter configuration content, the seed,
    the workload's shape (name, kernel count, total wavefronts — the
    trace itself rides inside the snapshot), and the shard plan.  The
    process-parallel flag is deliberately excluded: sequential-windowed
    and process-parallel runs share identical shard state, so a snapshot
    from one drive mode may resume under the other.
    """
    import enum
    import hashlib

    def _default(obj: object) -> object:
        if isinstance(obj, enum.Enum):
            return obj.value
        raise TypeError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")

    descriptor = {
        "format": SNAPSHOT_FORMAT_VERSION,
        "system": asdict(config),
        "netcrafter": asdict(netcrafter),
        "seed": seed,
        "workload": workload.name,
        "kernels": len(workload.kernels),
        "wavefronts": sum(k.wavefront_count() for k in workload.kernels),
        "n_shards": n_shards,
        "window": window,
    }
    blob = json.dumps(descriptor, sort_keys=True, default=_default)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- snapshot file I/O -------------------------------------------------------


def write_snapshot(
    path: Union[str, Path],
    *,
    fingerprint: str,
    mode: str,
    boundary: int,
    cycle: int,
    payload: object,
) -> None:
    """Serialize and atomically publish one snapshot file.

    ``boundary`` is the number of completed kernels; ``cycle`` the
    quiesce cycle the snapshot was taken at.  The write is atomic and
    durable (temp + fsync + rename), so a crash mid-checkpoint leaves
    the previous snapshot intact, never a torn file.
    """
    header = {
        "format": SNAPSHOT_FORMAT_VERSION,
        "fingerprint": fingerprint,
        "mode": mode,
        "boundary": boundary,
        "cycle": cycle,
    }
    blob = (
        _MAGIC
        + json.dumps(header, sort_keys=True).encode("utf-8")
        + b"\n"
        + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    )
    atomic_write_bytes(path, blob)


def read_header(path: Union[str, Path]) -> Dict[str, object]:
    """Parse and validate a snapshot's header without unpickling state."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC))
            if magic != _MAGIC:
                raise SnapshotFormatError(
                    f"{path} is not a repro checkpoint (bad magic)"
                )
            header_line = handle.readline()
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SnapshotFormatError(
            f"{path} has a corrupt snapshot header"
        ) from exc
    if header.get("format") != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{path} is snapshot format {header.get('format')!r}, "
            f"this version reads {SNAPSHOT_FORMAT_VERSION}"
        )
    return header


def read_snapshot(
    path: Union[str, Path], expected_fingerprint: Optional[str] = None
) -> tuple:
    """Load ``(header, payload)``, enforcing format and fingerprint.

    The fingerprint check happens on the header, *before* any payload
    bytes are unpickled.
    """
    path = Path(path)
    header = read_header(path)
    if (
        expected_fingerprint is not None
        and header["fingerprint"] != expected_fingerprint
    ):
        raise FingerprintMismatchError(
            f"snapshot {path} was taken under a different run "
            f"configuration (snapshot fingerprint "
            f"{header['fingerprint'][:12]}…, resuming run "
            f"{expected_fingerprint[:12]}…); refusing to resume"
        )
    with open(path, "rb") as handle:
        handle.read(len(_MAGIC))
        handle.readline()
        payload = pickle.loads(handle.read())
    return header, payload


# -- the boundary hook -------------------------------------------------------


@dataclass
class Checkpointer:
    """Kernel-boundary snapshot hook for both execution front ends.

    Install on a :class:`~repro.gpu.system.MultiGpuSystem` or
    :class:`~repro.shard.coordinator.ShardedSystem` via
    :func:`attach_checkpointing`.  Every ``every``-th completed kernel
    (and always the final boundary) the current state is published to
    ``path`` — one file, last boundary wins, so ``path`` always holds
    the latest resumable state.  The hook observes only: it schedules no
    events and mutates no simulator state, so hooked and unhooked runs
    are byte-identical.

    Instances are picklable and ride inside single-engine snapshots
    (the restored system keeps checkpointing to the same file unless
    resume() overrides the hook).
    """

    path: Union[str, Path]
    fingerprint: str
    every: int = 1
    #: boundaries at which a snapshot was actually written (observability
    #: for tests/CLI; not part of the snapshot contract)
    saved_boundaries: List[int] = field(default_factory=list)

    def _due(self, boundary: int, final: bool) -> bool:
        return final or boundary % max(1, self.every) == 0

    # single-engine hook: MultiGpuSystem calls hook(system) at a
    # quiesced boundary, before advancing the kernel index
    def __call__(self, system) -> None:
        boundary = system._kernel_index + 1
        final = boundary >= len(system._workload.kernels)
        if not self._due(boundary, final):
            return
        payload = {
            "system": system,
            "pid_state": PACKET_IDS.state(),
            "fid_state": FLIT_IDS.state(),
        }
        write_snapshot(
            self.path,
            fingerprint=self.fingerprint,
            mode="single",
            boundary=boundary,
            cycle=system.engine.now,
            payload=payload,
        )
        self.saved_boundaries.append(boundary)
        self.after_save(boundary)

    # sharded hook: the coordinator calls this at a proven boundary,
    # after computing (kernel_index, q) but before the launch broadcast
    def on_boundary(self, coordinator, handles, kernel_index, q, mailbox) -> None:
        final = kernel_index >= len(coordinator._workload.kernels)
        if not self._due(kernel_index, final):
            return
        shard_states = coordinator._broadcast(
            handles, [("snapshot",)] * coordinator.n_shards
        )
        payload = {
            "shard_states": shard_states,
            "kernel_index": kernel_index,
            "q": q,
            "windows_run": coordinator.windows_run,
            "mail_seq": dict(mailbox._last_seq),
        }
        write_snapshot(
            self.path,
            fingerprint=self.fingerprint,
            mode="sharded",
            boundary=kernel_index,
            cycle=q,
            payload=payload,
        )
        self.saved_boundaries.append(kernel_index)
        self.after_save(kernel_index)

    def after_save(self, boundary: int) -> None:
        """Post-publish extension point (the kill-and-resume smoke uses
        a subclass that hard-kills the process here)."""


def attach_checkpointing(node, checkpointer: Optional[Checkpointer]) -> None:
    """Install (or clear, with ``None``) the boundary hook on a system."""
    node._ckpt_hook = checkpointer


# -- resume ------------------------------------------------------------------


def resume(
    path: Union[str, Path],
    *,
    config,
    netcrafter,
    seed: int,
    workload,
    n_shards: int = 1,
    window: Optional[int] = None,
    parallel: bool = False,
    adaptive: bool = False,
    obs_spec=None,
    checkpointer: Optional[Checkpointer] = None,
):
    """Continue a snapshotted run to completion; returns its RunResult.

    The caller passes the run configuration it *intends* to resume —
    exactly what it would have used to construct the system — and the
    snapshot's stamped fingerprint must match
    (:class:`FingerprintMismatchError` otherwise).  ``checkpointer``
    replaces the snapshot's embedded hook: pass one to keep
    checkpointing from where the run left off, or ``None`` (default) to
    resume without further snapshots.

    The result is byte-identical to the uninterrupted run's: the resumed
    system replays the exact tail of the boundary event the snapshot was
    taken inside, with the same event keys and sequence numbers.
    """
    expected = run_fingerprint(
        config, netcrafter, seed, workload, n_shards=n_shards, window=window
    )
    header, payload = read_snapshot(path, expected_fingerprint=expected)
    # the fingerprint covers n_shards/window, so after it matches the
    # only remaining ambiguity is n_shards=1 with no window — both a
    # MultiGpuSystem and a 1-shard ShardedSystem produce that
    # fingerprint — and there the header's mode says which payload kind
    # this file holds
    if header["mode"] == "sharded":
        return _resume_sharded(
            payload,
            config=config,
            netcrafter=netcrafter,
            seed=seed,
            workload=workload,
            n_shards=n_shards,
            window=window,
            parallel=parallel,
            adaptive=adaptive,
            obs_spec=obs_spec,
            checkpointer=checkpointer,
        )
    if header["mode"] != "single":
        raise SnapshotFormatError(
            f"snapshot {path} has unknown mode {header['mode']!r}"
        )
    return _resume_single(payload, checkpointer=checkpointer)


def _resume_single(payload, checkpointer: Optional[Checkpointer]):
    system = payload["system"]
    PACKET_IDS.restore(payload["pid_state"])
    FLIT_IDS.restore(payload["fid_state"])
    system._ckpt_hook = checkpointer
    if system.obs.metrics is not None:
        # gauge sources are dropped by MetricsRegistry.__getstate__;
        # rebind them against the restored object graph
        system._register_metrics(system.obs.metrics)
    # replay the tail of the boundary event the snapshot was taken in
    system._advance_kernel()
    system.engine.run()
    if system.stats.finish_cycle is None:
        raise CheckpointError(
            "resumed simulation drained without completing all wavefronts "
            f"(kernel {system._kernel_index})"
        )
    return system._collect(system._workload.name)


def _resume_sharded(
    payload,
    *,
    config,
    netcrafter,
    seed,
    workload,
    n_shards,
    window,
    parallel,
    adaptive,
    obs_spec,
    checkpointer: Optional[Checkpointer],
):
    from repro.shard.coordinator import ShardedSystem

    node = ShardedSystem(
        config=config,
        netcrafter=netcrafter,
        seed=seed,
        n_shards=n_shards,
        window=window,
        parallel=parallel,
        adaptive=adaptive,
        obs_spec=obs_spec,
    )
    node.load(workload)
    return node.resume_run(
        shard_states=payload["shard_states"],
        kernel_index=payload["kernel_index"],
        q=payload["q"],
        windows_run=payload["windows_run"],
        mail_seq=payload["mail_seq"],
        checkpointer=checkpointer,
    )


__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "CheckpointError",
    "SnapshotFormatError",
    "FingerprintMismatchError",
    "Checkpointer",
    "attach_checkpointing",
    "run_fingerprint",
    "write_snapshot",
    "read_header",
    "read_snapshot",
    "resume",
    "sweep_orphans",
]
