"""Kill-and-resume smoke: the checkpoint subsystem's standing gate.

For every point of the :mod:`repro.bench.smoke` grid this harness

1. runs the point in a child process with a checkpoint hook that
   hard-kills the child (``os._exit``, no cleanup, no atexit) the
   instant its boundary snapshot is published,
2. asserts the child actually died at the checkpoint,
3. resumes the snapshot in a *fresh* interpreter, and
4. requires the resumed results' grid digest to equal the committed
   ``SMOKE_digest.json`` entry — the same digest an uninterrupted
   single-engine sweep produces, byte for byte.

Because the committed digest is produced by runs that never checkpoint,
passing here proves simultaneously that the hook is a pure observer and
that a killed-and-resumed run is indistinguishable from an undisturbed
one.  The sweep runs in all three execution modes (single-engine,
sequential-windowed, process-parallel) and on any topology-zoo shape
with a committed digest entry.

A multi-kernel probe (``mm2``, killed at its *mid-run* boundary) rides
along: smoke-grid workloads quiesce once at the end, so the probe is
what exercises resume with real follow-on kernels.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.smoke import (
    _grid_key,
    _variant_config,
    results_digest,
    smoke_points,
    topology_smoke_config,
)
from repro.ckpt import Checkpointer, CheckpointError, resume, run_fingerprint
from repro.workloads.base import Scale
from repro.workloads.registry import get_workload

#: exit code the killed child dies with right after publishing a snapshot
KILL_EXIT_CODE = 43
#: exit code when the child finished without ever being killed (a bug:
#: the kill boundary never fired)
RAN_TO_COMPLETION_CODE = 47


class KillAfterSave(Checkpointer):
    """A checkpointer that hard-kills the process after saving.

    ``os._exit`` skips every cleanup path — no atexit, no finally
    blocks, no multiprocessing teardown — the closest a test harness
    gets to a preemption.  Orphaned shard workers notice the dead pipe
    (EOFError) and exit on their own.
    """

    def __init__(self, path, fingerprint, kill_at: int) -> None:
        super().__init__(path=path, fingerprint=fingerprint, every=1)
        self.kill_at = kill_at

    def after_save(self, boundary: int) -> None:
        if boundary >= self.kill_at:
            sys.stdout.flush()
            sys.stderr.flush()
            os._exit(KILL_EXIT_CODE)


def _point_context(spec: Dict[str, object]):
    """(config, netcrafter, trace, fingerprint) for one point spec."""
    config = topology_smoke_config(spec["topology"])
    netcrafter = _variant_config(spec["variant"])
    trace = get_workload(spec["workload"]).build(
        n_gpus=config.n_gpus, scale=Scale.small(), seed=spec["seed"]
    )
    fingerprint = run_fingerprint(
        config,
        netcrafter,
        spec["seed"],
        trace,
        n_shards=spec["n_shards"],
        window=spec["window"],
    )
    return config, netcrafter, trace, fingerprint


def _build_node(config, netcrafter, spec):
    if spec["n_shards"] > 1 or spec["window"] is not None:
        from repro.shard.coordinator import ShardedSystem

        return ShardedSystem(
            config=config,
            netcrafter=netcrafter,
            seed=spec["seed"],
            n_shards=spec["n_shards"],
            window=spec["window"],
            parallel=spec["parallel"],
        )
    from repro.gpu.system import MultiGpuSystem

    return MultiGpuSystem(config=config, netcrafter=netcrafter, seed=spec["seed"])


def child_run_killed(spec: Dict[str, object]) -> int:
    """Child entry: simulate until the kill-boundary snapshot, then die."""
    config, netcrafter, trace, fingerprint = _point_context(spec)
    hook = KillAfterSave(spec["snapshot"], fingerprint, kill_at=spec["kill_at"])
    node = _build_node(config, netcrafter, spec)
    node._ckpt_hook = hook
    node.load(trace)
    node.run()
    return RAN_TO_COMPLETION_CODE


def child_resume(spec: Dict[str, object]) -> int:
    """Child entry: resume the snapshot, print the result dict as JSON."""
    config, netcrafter, trace, _ = _point_context(spec)
    result = resume(
        spec["snapshot"],
        config=config,
        netcrafter=netcrafter,
        seed=spec["seed"],
        workload=trace,
        n_shards=spec["n_shards"],
        window=spec["window"],
        parallel=spec["parallel"],
    )
    print(json.dumps(result.to_dict()))
    return 0


def _spawn(flag: str, spec: Dict[str, object]) -> subprocess.CompletedProcess:
    """Run a child entry point in its own session and reap the session.

    A hard-killed coordinator leaves forked shard workers behind (they
    inherit its pipe ends, so they never see EOF); capturing through OS
    pipes would then block until the orphans die.  Capture to temp files
    instead, wait only for the direct child, and SIGKILL the whole
    session afterwards — the same scope a real preemption kills.
    """
    cmd = [sys.executable, "-m", "repro.ckpt", flag, json.dumps(spec)]
    with tempfile.TemporaryFile() as out, tempfile.TemporaryFile() as err:
        proc = subprocess.Popen(
            cmd,
            stdout=out,
            stderr=err,
            start_new_session=True,
            env=dict(os.environ),
        )
        try:
            returncode = proc.wait(timeout=600)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        out.seek(0)
        err.seek(0)
        return subprocess.CompletedProcess(
            cmd,
            returncode,
            out.read().decode("utf-8", "replace"),
            err.read().decode("utf-8", "replace"),
        )


def kill_and_resume_point(
    workload: str,
    variant: str,
    *,
    snapshot_dir: Path,
    seed: int = 0,
    topology: str = "mesh",
    n_shards: int = 1,
    window: Optional[int] = None,
    parallel: bool = False,
    kill_at: int = 1,
) -> Dict[str, object]:
    """Save → hard-kill → resume one point across real process boundaries.

    Returns the resumed run's ``RunResult.to_dict`` payload; raises
    :class:`~repro.ckpt.CheckpointError` if the child did not die at the
    checkpoint or the resume child failed.
    """
    snapshot_dir = Path(snapshot_dir)
    snapshot_dir.mkdir(parents=True, exist_ok=True)
    mode = "single" if n_shards <= 1 and window is None else (
        "par" if parallel else "seq"
    )
    spec = {
        "workload": workload,
        "variant": variant,
        "seed": seed,
        "topology": topology,
        "n_shards": n_shards,
        "window": window,
        "parallel": parallel,
        "kill_at": kill_at,
        "snapshot": str(
            snapshot_dir / f"{topology}-{workload}-{variant}-{mode}.ckpt"
        ),
    }
    killed = _spawn("--run-killed", spec)
    if killed.returncode != KILL_EXIT_CODE:
        raise CheckpointError(
            f"kill child for {workload}/{variant} exited "
            f"{killed.returncode}, expected {KILL_EXIT_CODE} "
            f"(stderr: {killed.stderr.strip()[-2000:]})"
        )
    if not Path(spec["snapshot"]).exists():
        raise CheckpointError(
            f"kill child for {workload}/{variant} died without "
            f"publishing {spec['snapshot']}"
        )
    resumed = _spawn("--resume", spec)
    if resumed.returncode != 0:
        raise CheckpointError(
            f"resume child for {workload}/{variant} exited "
            f"{resumed.returncode} (stderr: {resumed.stderr.strip()[-2000:]})"
        )
    return json.loads(resumed.stdout.strip().splitlines()[-1])


def run_smoke(
    quick: bool = True,
    *,
    topology: str = "mesh",
    n_shards: int = 1,
    window: Optional[int] = None,
    parallel: bool = False,
    seed: int = 0,
    snapshot_dir: Path = Path("results/ckpt-smoke"),
    expect_file: Optional[str] = "SMOKE_digest.json",
    midrun_probe: bool = True,
) -> int:
    """The ``python -m repro.ckpt --smoke`` gate; returns an exit code."""
    grid_key = _grid_key(quick, topology)
    mode = (
        "single-engine"
        if n_shards <= 1 and window is None
        else f"{n_shards} shard(s), "
        + ("process-parallel" if parallel else "sequential-windowed")
    )
    print(f"ckpt kill-and-resume smoke [{grid_key}] {mode}")
    results: List[Dict[str, object]] = []
    for workload, variant in smoke_points(quick):
        payload = kill_and_resume_point(
            workload,
            variant,
            snapshot_dir=snapshot_dir,
            seed=seed,
            topology=topology,
            n_shards=n_shards,
            window=window,
            parallel=parallel,
        )
        print(f"  {workload}/{variant}: killed at checkpoint, resumed OK")
        results.append(payload)
    digest = results_digest(results)
    print(f"resumed-grid digest {digest}")

    exit_code = 0
    if expect_file:
        committed = json.loads(Path(expect_file).read_text())
        expected = committed.get(grid_key)
        if expected is None:
            print(
                f"{expect_file} has no entry for the {grid_key!r} grid",
                file=sys.stderr,
            )
            return 2
        if digest == expected:
            print("digest matches the committed uninterrupted-run digest")
        else:
            print(f"DIGEST MISMATCH: expected {expected}", file=sys.stderr)
            exit_code = 1

    if midrun_probe:
        # the grid workloads quiesce once; mm2 has a true mid-run
        # boundary, so kill there and compare against an in-process
        # uninterrupted reference
        probe = kill_and_resume_point(
            "mm2",
            "full",
            snapshot_dir=snapshot_dir,
            seed=seed,
            topology=topology,
            n_shards=n_shards,
            window=window,
            parallel=parallel,
            kill_at=1,
        )
        spec = {
            "workload": "mm2",
            "variant": "full",
            "seed": seed,
            "topology": topology,
            "n_shards": n_shards,
            "window": window,
            "parallel": parallel,
        }
        config, netcrafter, trace, _ = _point_context(spec)
        reference = _build_node(config, netcrafter, spec)
        reference.load(trace)
        # compare via the canonical digest: the probe payload round-tripped
        # through JSON (tuples have become lists), so compare the digests,
        # which canonicalize both sides the same way
        if results_digest([probe]) == results_digest([reference.run().to_dict()]):
            print("mm2 mid-run boundary: killed at kernel 1/2, resumed byte-identical")
        else:
            print(
                "mm2 mid-run boundary: resumed result DIVERGED from the "
                "uninterrupted run",
                file=sys.stderr,
            )
            exit_code = 1
    return exit_code
