"""CLI for the checkpoint subsystem's kill-and-resume smoke.

``python -m repro.ckpt --smoke`` runs the standing gate: every point of
the smoke grid is saved at a kernel boundary, hard-killed, resumed in a
fresh interpreter, and the resumed grid digest is compared against the
committed ``SMOKE_digest.json`` entry.

``--run-killed``/``--resume`` are internal child entry points used by
the harness to cross real process boundaries; they take a JSON spec as
the sole positional argument and are not meant for interactive use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.ckpt.smoke import child_resume, child_run_killed, run_smoke


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ckpt",
        description="checkpoint/resume kill-and-resume smoke gate",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the save -> kill -> resume -> digest-compare sweep",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        default=True,
        help="use the quick smoke grid (default)",
    )
    parser.add_argument(
        "--full",
        dest="quick",
        action="store_false",
        help="use the full smoke grid",
    )
    parser.add_argument(
        "--topology",
        default="mesh",
        help="topology-zoo shape to sweep (default: mesh)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of cluster shards (default: 1 = single engine)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="conservative lookahead window override (cycles)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--parallel",
        action="store_true",
        help="drive shards as worker processes",
    )
    mode.add_argument(
        "--sequential",
        dest="parallel",
        action="store_false",
        help="drive shards sequentially in-process (default)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--snapshot-dir",
        default="results/ckpt-smoke",
        help="where kill-point snapshots are published (CI uploads this "
        "directory as an artifact on failure)",
    )
    parser.add_argument(
        "--expect-file",
        default="SMOKE_digest.json",
        help="committed digest file to compare against ('' to skip)",
    )
    parser.add_argument(
        "--no-midrun-probe",
        action="store_true",
        help="skip the mm2 mid-run-boundary equivalence probe",
    )
    # internal child entry points (spec JSON as the positional arg)
    parser.add_argument("--run-killed", metavar="SPEC_JSON", default=None)
    parser.add_argument("--resume", metavar="SPEC_JSON", default=None)
    args = parser.parse_args(argv)

    if args.run_killed is not None:
        return child_run_killed(json.loads(args.run_killed))
    if args.resume is not None:
        return child_resume(json.loads(args.resume))
    if not args.smoke:
        parser.print_help()
        return 2
    return run_smoke(
        args.quick,
        topology=args.topology,
        n_shards=args.shards,
        window=args.window,
        parallel=args.parallel,
        seed=args.seed,
        snapshot_dir=Path(args.snapshot_dir),
        expect_file=args.expect_file or None,
        midrun_probe=not args.no_midrun_probe,
    )


if __name__ == "__main__":
    sys.exit(main())
