"""Shard planning: which switch nodes (and therefore GPUs) each shard owns.

Shards own *contiguous* node ranges.  Contiguity is load-bearing: the
canonical inter-link order (:func:`repro.network.topology.inter_pairs`)
iterates sources ascending, so each shard's links form a contiguous
slice of the global list and concatenating shard slices in shard order
reproduces the single-engine order that result assembly depends on.

Topologies with virtual switch nodes (a star hub, fat-tree spines — ids
``n_clusters .. n_nodes-1``) assign every virtual node to the *last*
shard: virtual ids sort after every real cluster, so the last shard's
owned range simply extends past ``n_clusters`` and the contiguous-slice
merge contract survives unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig


@dataclass(frozen=True)
class ShardPlan:
    """Static partition of a node's switch nodes over ``n_shards`` shards."""

    n_clusters: int
    n_shards: int
    gpus_per_cluster: int
    #: virtual switch nodes (star hub, fat-tree spines) beyond the GPU
    #: clusters; all owned by the last shard
    n_virtual: int = 0

    @classmethod
    def from_config(cls, config: SystemConfig, n_shards: int) -> "ShardPlan":
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if config.n_clusters % n_shards != 0:
            raise ValueError(
                f"n_shards ({n_shards}) must divide n_clusters "
                f"({config.n_clusters}) for contiguous cluster ownership"
            )
        from repro.network.topologies import get_topology

        spec = get_topology(config.inter_topology)
        return cls(
            n_clusters=config.n_clusters,
            n_shards=n_shards,
            gpus_per_cluster=config.gpus_per_cluster,
            n_virtual=spec.n_nodes(config) - config.n_clusters,
        )

    @property
    def n_nodes(self) -> int:
        """All switch nodes: GPU clusters plus virtual switches."""
        return self.n_clusters + self.n_virtual

    @property
    def clusters_per_shard(self) -> int:
        return self.n_clusters // self.n_shards

    def clusters_of(self, shard_index: int) -> range:
        """The contiguous cluster range owned by ``shard_index``."""
        if not 0 <= shard_index < self.n_shards:
            raise ValueError(f"shard_index {shard_index} out of range")
        per = self.clusters_per_shard
        return range(shard_index * per, (shard_index + 1) * per)

    def nodes_of(self, shard_index: int) -> range:
        """Owned switch nodes: the cluster range, plus every virtual
        node when ``shard_index`` is the last shard (still contiguous,
        since virtual ids start exactly at ``n_clusters``)."""
        clusters = self.clusters_of(shard_index)
        if shard_index == self.n_shards - 1 and self.n_virtual:
            return range(clusters.start, self.n_nodes)
        return clusters

    def shard_of_cluster(self, cluster: int) -> int:
        if cluster >= self.n_clusters:
            return self.n_shards - 1
        return cluster // self.clusters_per_shard

    def gpus_of(self, shard_index: int) -> range:
        clusters = self.clusters_of(shard_index)
        return range(
            clusters.start * self.gpus_per_cluster,
            clusters.stop * self.gpus_per_cluster,
        )
