"""Shard status/report payloads and digest-exact result merging.

:class:`ShardStatus` is the small per-window progress snapshot the
coordinator reads between windows; :class:`ShardReport` is the final
per-shard harvest.  Both are plain picklable dataclasses so the
process-parallel mode can ship them over a pipe unchanged.

:func:`merge_reports` folds shard reports into one
:class:`~repro.stats.report.RunResult` through the same
:func:`~repro.stats.assemble.assemble_result` path the single-engine
system uses.  Shards own contiguous cluster ranges, so concatenating
their row lists in shard order reproduces the global topology order and
the float accumulations see an identical addend sequence — the merged
result is byte-identical to the unsharded one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.stats.assemble import ControllerRow, LinkRow, assemble_result
from repro.stats.collectors import RunStats
from repro.stats.report import RunResult


@dataclass
class ShardStatus:
    """One shard's progress snapshot at a window boundary."""

    #: (time, skey) of the next pending event, or None when drained
    next_event: Optional[Tuple[int, int]]
    #: pending events excluding the metrics sampler's self-reschedule
    real_pending: int
    #: wavefronts of the current kernel still running on owned GPUs
    wavefronts_remaining: int
    #: cycle the shard's last owned wavefront completed (or the launch
    #: cycle, for shards with no work in the current kernel)
    last_wf_cycle: int
    #: True when every owned RDMA engine's posted-write/invalidation
    #: counters are zero
    counters_zero: bool
    #: lexicographic max over owned GPUs of (last_drain_cycle,
    #: last_drain_skey) — when the quiesce poll chain would first observe
    #: this shard's counters at zero
    max_drain: Tuple[int, int]


@dataclass
class ShardReport:
    """Everything one finished shard contributes to the merged result."""

    shard_index: int
    stats: RunStats
    events_processed: int
    inter_rows: List[LinkRow]
    up_rows: List[LinkRow]
    down_rows: List[LinkRow]
    controller_rows: List[ControllerRow]
    l2_accesses: int
    dram_accesses: int
    # -- observability payloads (None when the facility is off) --------
    trace_records: Optional[List[dict]] = None
    trace_sample: int = 1
    trace_dropped: int = 0
    metrics_rows: Optional[List[dict]] = None
    metrics_names: List[str] = field(default_factory=list)
    metrics_interval: Optional[int] = None
    profile: Optional[dict] = None


def merge_reports(
    reports: List[ShardReport],
    workload: str,
    config_label: str,
    cycles: int,
    kernel_count: int,
) -> RunResult:
    """Fold shard reports (in shard order) into one :class:`RunResult`."""
    stats = RunStats()
    for report in reports:
        stats.merge(report.stats)
    stats.kernel_count = kernel_count
    stats.finish_cycle = cycles
    inter_rows: List[LinkRow] = []
    up_rows: List[LinkRow] = []
    down_rows: List[LinkRow] = []
    controller_rows: List[ControllerRow] = []
    for report in reports:
        inter_rows.extend(report.inter_rows)
        up_rows.extend(report.up_rows)
        down_rows.extend(report.down_rows)
        controller_rows.extend(report.controller_rows)
    return assemble_result(
        workload=workload,
        config_label=config_label,
        cycles=cycles,
        stats=stats,
        events_processed=sum(r.events_processed for r in reports),
        inter_rows=inter_rows,
        # single-engine intra order is all uplinks then all downlinks
        intra_rows=up_rows + down_rows,
        controller_rows=controller_rows,
        l2_accesses=sum(r.l2_accesses for r in reports),
        dram_accesses=sum(r.dram_accesses for r in reports),
    )
