"""One cluster shard: a self-contained single-engine slice of the node.

A :class:`ShardSystem` owns a contiguous cluster range — the GPUs, the
cluster switches, the intra-cluster links, and the *outgoing* halves of
inter-cluster links (boundary links when the destination cluster lives
in another shard).  It is driven externally by the coordinator through
four verbs:

* :meth:`begin` — load bookkeeping + launch kernel 0 at cycle 0;
* :meth:`window` — inject a batch of cross-shard mail, run the local
  engine to an exact boundary cycle, and hand back the outbox;
* :meth:`launch_kernel` — replay the next kernel launch at the quiesce
  cycle ``q`` the coordinator computed analytically;
* :meth:`finish` — drain, snapshot, and report.

Determinism: local events are keyed ``(time, skey=schedule-cycle,
seq)``, and cross-shard mail is injected with the sub-cycle delivery
key the sending link computed — exactly where the delivery callback
sorts in a single shared engine (see
:class:`~repro.network.link.FlitLink`) — so the shard's event order
reproduces the single-engine run event for event.

Kernel launches need one extra move.  The coordinator proves kernel
``k+1`` launches at cycle ``q``, but a shard's clock may sit past ``q``
(window overshoot) or before it.  The shard first runs to ``q - 1``
(safe: at a quiesced kernel boundary no shard can emit cross-cluster
traffic), then :meth:`~repro.sim.engine.Engine.rewind`\\ s to exactly
``q`` so the launch injects into an empty-or-sorted bucket and its
child events carry ``skey = q``, matching the single-engine keys.

Because several shard systems interleave in one process under the
sequential-windowed mode, each installs its own strided packet/flit ID
stream state around every slice of engine execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.cta import KernelTrace, WorkloadTrace
from repro.gpu.gpu import Gpu
from repro.network.ids import FLIT_IDS, PACKET_IDS
from repro.network.link import FlitLink
from repro.network.topology import Topology, build_topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import EngineProfiler
from repro.obs.tracer import NULL_TRACER, EventTracer
from repro.shard.mailbox import BoundaryFlitLink, MailItem
from repro.shard.merge import ShardReport, ShardStatus
from repro.shard.partition import ShardPlan
from repro.sim.engine import Engine
from repro.stats.assemble import controller_row, link_row
from repro.stats.collectors import RunStats
from repro.vm.page_table import PageTable
from repro.vm.placement import AddressSpace, LaspPlacement


@dataclass(frozen=True)
class ShardObsSpec:
    """Picklable recipe for per-shard observability instruments."""

    trace: bool = False
    trace_sample: int = 1
    metrics_interval: Optional[int] = None
    profile: bool = False

    @property
    def active(self) -> bool:
        return self.trace or self.metrics_interval is not None or self.profile


class ShardSystem:
    """The simulation state of one shard, driven by a coordinator."""

    def __init__(
        self,
        config: SystemConfig,
        netcrafter: NetCrafterConfig,
        seed: int,
        shard_index: int,
        n_shards: int,
        obs_spec: Optional[ShardObsSpec] = None,
    ) -> None:
        self.config = config
        self.netcrafter = netcrafter
        self.seed = seed
        self.shard_index = shard_index
        self.plan = ShardPlan.from_config(config, n_shards)
        self.obs_spec = obs_spec or ShardObsSpec()
        # strided ID streams: shard i draws i, i+n, i+2n, ...  State is
        # installed around every engine-executing call so sequential mode
        # can interleave shards in one process without cross-allocation.
        self._pid_state = (shard_index, n_shards, shard_index)
        self._fid_state = (shard_index, n_shards, shard_index)
        self.engine = Engine()
        self.stats = RunStats()
        self.address_space = AddressSpace(config.n_gpus)
        self.page_table = PageTable(self.address_space, root_gpu=0)
        self.placement = LaspPlacement(self.address_space, self.page_table)
        # owned switch nodes: the shard's cluster range, plus every
        # virtual switch (star hub, fat-tree spines) on the last shard
        self.owned_clusters = set(self.plan.nodes_of(shard_index))
        self.gpus: Dict[int, Gpu] = {
            gpu_id: Gpu(
                self.engine,
                f"gpu{gpu_id}",
                gpu_id,
                config,
                self.stats,
                self.address_space,
                self.page_table,
            )
            for gpu_id in self.plan.gpus_of(shard_index)
        }
        self.boundary_links: List[BoundaryFlitLink] = []
        self.topology: Topology = build_topology(
            self.engine,
            config,
            self.gpus,
            self._make_controller,
            owned_clusters=self.owned_clusters,
            boundary_link_factory=self._make_boundary_link,
        )
        self.tracer = (
            EventTracer(sample=self.obs_spec.trace_sample)
            if self.obs_spec.trace
            else NULL_TRACER
        )
        self.metrics = (
            MetricsRegistry(self.obs_spec.metrics_interval)
            if self.obs_spec.metrics_interval is not None
            else None
        )
        self.profiler = EngineProfiler() if self.obs_spec.profile else None
        self._wire_observability()
        if config.faults.active:
            from repro.faults.layer import attach_fault_layer

            # this shard's slice: outgoing inter-cluster links (boundary
            # links included), owned switches, owned GPUs' RDMA engines —
            # every fault event lands on exactly one shard
            attach_fault_layer(
                config.faults,
                inter_links=self.topology.inter_links,
                switches=self.topology.switches.values(),
                rdma_engines=[gpu.rdma for gpu in self.gpus.values()],
                stats=self.stats,
                flit_size=config.flit_size,
            )
        self._workload: Optional[WorkloadTrace] = None
        self._kernel_index = 0
        self._wavefronts_remaining = 0
        self._last_wf_cycle = 0
        self._finished = False
        # per-phase accounting (collective workloads); all four attrs
        # ride along in snapshot_state pickles, so ckpt resume replays
        # phase closure identically
        self._phase_tracking = False
        self._phase_name: Optional[str] = None
        self._phase_mark = (0, 0, 0, 0, 0)
        self._phase_cycle = 0

    # -- construction helpers ----------------------------------------------

    def _make_controller(self, name: str, link: FlitLink, src: int, dst: int):
        from repro.core.controller import NetCrafterController

        n_remote = max(1, self.config.n_clusters - 1)
        capacity = max(16, self.netcrafter.cluster_queue_entries // n_remote)
        return NetCrafterController(
            self.engine,
            name,
            link,
            flit_size=self.config.flit_size,
            config=self.netcrafter,
            queue_capacity=capacity,
            seed=self.seed + src * 97 + dst,
        )

    def _make_boundary_link(
        self, name: str, bytes_per_cycle: float, latency: int, src: int, dst: int
    ) -> BoundaryFlitLink:
        link = BoundaryFlitLink(
            self.engine, name, bytes_per_cycle, latency, src, dst
        )
        self.boundary_links.append(link)
        return link

    def _wire_observability(self) -> None:
        self.engine.profiler = self.profiler
        if self.tracer.enabled:
            for link in self.topology.inter_links:
                link.tracer = self.tracer
            for switch in self.topology.switches.values():
                switch.tracer = self.tracer
            for controller in self.topology.controllers:
                controller.tracer = self.tracer
            for gpu in self.gpus.values():
                gpu.rdma.tracer = self.tracer
        if self.metrics is not None:
            self._register_metrics(self.metrics)

    def _register_metrics(self, metrics: MetricsRegistry) -> None:
        """The standard gauge set, names prefixed ``s<shard>.`` so merged
        series from different shards never collide."""
        prefix = f"s{self.shard_index}."
        inter = self.topology.inter_links

        def summed(attr):
            return lambda: sum(getattr(link.stats, attr) for link in inter)

        metrics.register(prefix + "inter.wire_bytes", summed("wire_bytes"))
        metrics.register(prefix + "inter.useful_bytes", summed("useful_bytes"))
        metrics.register(prefix + "inter.flits", summed("flits"))
        metrics.register(prefix + "inter.busy_cycles", summed("busy_cycles"))
        for controller in self.topology.controllers:
            queue = controller.queue
            metrics.register(
                f"{prefix}cq.{controller.name}.occupancy", lambda q=queue: len(q)
            )
            metrics.register(
                f"{prefix}cq.{controller.name}.blocked",
                lambda q=queue: len(q.blocked_partitions(self.engine.now)),
            )
            metrics.register(
                f"{prefix}cq.{controller.name}.rejected", lambda q=queue: q.rejected
            )
        metrics.register(
            prefix + "mshr.l2.occupancy",
            lambda: sum(len(gpu.l2.mshr) for gpu in self.gpus.values()),
        )
        metrics.register(
            prefix + "mshr.l1.occupancy",
            lambda: sum(len(cu.mshr) for gpu in self.gpus.values() for cu in gpu.cus),
        )
        metrics.register(prefix + "engine.pending_events", self.engine.pending_events)
        metrics.register(
            prefix + "engine.events_processed",
            lambda: self.engine.events_processed,
        )

    def _sample_metrics(self) -> None:
        if self._finished:
            return
        self.metrics.sample(self.engine.now)
        self.engine.schedule(self.metrics.interval, self._sample_metrics)

    # -- ID stream swapping -------------------------------------------------

    def _install_ids(self) -> None:
        PACKET_IDS.restore(self._pid_state)
        FLIT_IDS.restore(self._fid_state)

    def _save_ids(self) -> None:
        self._pid_state = PACKET_IDS.state()
        self._fid_state = FLIT_IDS.state()

    # -- coordinator verbs --------------------------------------------------

    def load(self, workload: WorkloadTrace) -> None:
        workload.validate()
        for kernel in workload.kernels:
            for vpn, owner in kernel.page_owner.items():
                self.placement.map_page(vpn, owner)
        self._workload = workload
        self._phase_tracking = any(k.phase is not None for k in workload.kernels)

    def begin(self) -> ShardStatus:
        """Launch kernel 0 at cycle 0 and take the cycle-0 sample."""
        if self._workload is None:
            raise RuntimeError("no workload loaded")
        self._install_ids()
        try:
            self._kernel_index = 0
            if self._phase_tracking:
                self._phase_begin(self._workload.kernels[0])
            self._start_kernel(self._workload.kernels[0])
            if self.metrics is not None:
                self._sample_metrics()
        finally:
            self._save_ids()
        return self.status()

    def window(
        self, until: int, mail: List[MailItem]
    ) -> Tuple[List[MailItem], ShardStatus]:
        """Inject ``mail``, run to exactly ``until``, drain the outbox."""
        self._install_ids()
        try:
            if mail:
                inject = self.engine.inject
                switches = self.topology.switches
                for item in mail:
                    inject(
                        item.arrival,
                        item.skey,
                        switches[item.dst_cluster].receive_flit_from_network,
                        item.flit,
                    )
            self.engine.run(until=until)
            outbox: List[MailItem] = []
            for link in self.boundary_links:
                if link.outbox:
                    outbox.extend(link.drain_outbox())
        finally:
            self._save_ids()
        return outbox, self.status()

    def window_batches(
        self, until: int, batches, flits_per_batch
    ) -> Tuple[List[MailItem], ShardStatus]:
        """:meth:`window` fed straight from decoded ``MailBatch`` columns.

        Process-parallel fast path: the worker already unpickled each
        batch's flit payload, so the mail injects directly off the
        column buffers — no intermediate ``MailItem`` per flit.  Every
        delivery's ``(arrival, skey)`` pair is globally unique, so the
        batch-by-batch injection order matches :meth:`window` exactly.
        """
        self._install_ids()
        try:
            inject = self.engine.inject
            switches = self.topology.switches
            for batch, flits in zip(batches, flits_per_batch):
                arrivals = batch.arrivals
                skeys = batch.skeys
                index = 0
                for _src, dst, _first_seq, count in batch.iter_links():
                    receive = switches[dst].receive_flit_from_network
                    for _ in range(count):
                        inject(
                            arrivals[index], skeys[index], receive, flits[index]
                        )
                        index += 1
            self.engine.run(until=until)
            outbox: List[MailItem] = []
            for link in self.boundary_links:
                if link.outbox:
                    outbox.extend(link.drain_outbox())
        finally:
            self._save_ids()
        return outbox, self.status()

    def launch_window(
        self, kernel_index: int, q: int, until: int
    ) -> Tuple[List[MailItem], ShardStatus]:
        """Fused :meth:`launch_kernel` + :meth:`window` (no mail).

        At a proven kernel boundary the coordinator already knows the
        first post-launch window boundary — every shard's next event is
        the launch it just injected at ``(q, q)`` — so the intermediate
        status round-trip of a separate launch verb carries no
        information.  Fusing the two halves the per-boundary round
        trips; the simulated event sequence is identical.
        """
        self.launch_kernel(kernel_index, q)
        return self.window(until, [])

    def launch_kernel(self, kernel_index: int, q: int) -> ShardStatus:
        """Replay the launch of kernel ``kernel_index`` at cycle ``q``.

        The wavefront bookkeeping is updated *eagerly* (before the
        injected event runs) so the coordinator never mistakes the
        pre-launch lull for the next kernel boundary — and so shards with
        no work in this kernel still report ``last_wf_cycle = q``.
        """
        self._install_ids()
        try:
            engine = self.engine
            if engine.now < q:
                engine.run(until=q - 1)
            if engine.now != q:
                engine.rewind(q)
            self._kernel_index = kernel_index
            kernel = self._workload.kernels[kernel_index]
            if self._phase_tracking:
                # the boundary is quiesced, so the counters are final for
                # the previous kernel whether the window overshot or not
                self._phase_close(q)
                self._phase_begin(kernel)
            self._wavefronts_remaining = self._owned_wavefront_count(kernel)
            self._last_wf_cycle = q
            # bind the index: an empty kernel quiesces instantly, and the
            # coordinator may issue the *next* launch before this event
            # runs — reading self._kernel_index here would double-launch
            engine.inject(q, q, self._launch_event, kernel_index)
        finally:
            self._save_ids()
        return self.status()

    def finish(self, q_final: int) -> ShardReport:
        """Drain residual events and harvest this shard's report."""
        self._install_ids()
        try:
            self._finished = True
            if self.config.coherence == "software":
                # the single-engine run flushes L1s at the final kernel
                # boundary; pure state clear, no counters touched
                for gpu in self.gpus.values():
                    gpu.invalidate_l1s()
            self.engine.run_until_idle()
            if self._phase_tracking:
                self._phase_close(q_final)
            self.stats.finish_cycle = q_final
        finally:
            self._save_ids()
        return self._report(q_final)

    def snapshot_state(self) -> bytes:
        """Serialize this shard's complete simulation state.

        Only meaningful at a coordinator-proven kernel boundary: the
        shard is quiesced there, so no pending packet carries a live
        requester closure (the engine's dispatched-prefix entries are
        dropped by ``Engine.__getstate__``) and no cross-shard context
        token is outstanding.  The striped ID cursors ride along in
        ``_pid_state``/``_fid_state``, saved by the last verb.
        """
        import pickle

        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_snapshot_state(data: bytes) -> "ShardSystem":
        """Rebuild a shard from :meth:`snapshot_state` bytes.

        Metric gauge sources are dropped at pickle time
        (``MetricsRegistry.__getstate__``); re-register them against the
        restored object graph so post-resume samples keep every column.
        """
        import pickle

        shard = pickle.loads(data)
        if shard.metrics is not None:
            shard._register_metrics(shard.metrics)
        return shard

    # -- kernel plumbing ----------------------------------------------------

    def _owned_wavefront_count(self, kernel: KernelTrace) -> int:
        return sum(
            len(cta.wavefronts) for cta in kernel.ctas if cta.gpu in self.gpus
        )

    def _launch_event(self, kernel_index: int) -> None:
        if self.config.coherence == "software":
            # L1 flush deferred from the previous kernel's end: no owned
            # CU touches its L1 between its last wavefront and this launch
            for gpu in self.gpus.values():
                gpu.invalidate_l1s()
        self._start_kernel(self._workload.kernels[kernel_index])

    def _start_kernel(self, kernel: KernelTrace) -> None:
        self._wavefronts_remaining = self._owned_wavefront_count(kernel)
        self._last_wf_cycle = self.engine.now
        rr_slot = {gpu_id: 0 for gpu_id in self.gpus}
        for cta in kernel.ctas:
            if cta.gpu not in self.gpus:
                continue
            gpu = self.gpus[cta.gpu]
            for wf in cta.wavefronts:
                cu = gpu.cus[rr_slot[cta.gpu] % len(gpu.cus)]
                rr_slot[cta.gpu] += 1
                cu.enqueue_wavefront(wf)
        for gpu in self.gpus.values():
            for cu in gpu.cus:
                cu.on_wavefront_done = self._on_wavefront_done
                cu.start()

    def _on_wavefront_done(self) -> None:
        self._wavefronts_remaining -= 1
        if self._wavefronts_remaining == 0:
            self._last_wf_cycle = self.engine.now

    # -- per-phase accounting -----------------------------------------------

    def _phase_snapshot(self):
        """This shard's slice of the boundary 5-tuple (see
        ``MultiGpuSystem._phase_snapshot``); every inter-cluster link and
        controller is owned by exactly one shard, so sum-merging the
        per-shard deltas reproduces the single-engine totals."""
        links = self.topology.inter_links
        ctrls = self.topology.controllers
        return (
            sum(link.stats.flits for link in links),
            sum(link.stats.wire_bytes for link in links),
            sum(link.stats.useful_bytes for link in links),
            sum(c.stats.flits_entered for c in ctrls),
            sum(c.stats.flits_absorbed for c in ctrls),
        )

    def _phase_begin(self, kernel: KernelTrace) -> None:
        self._phase_name = kernel.phase
        self.stats.set_live_phase(kernel.phase)
        self._phase_mark = self._phase_snapshot()
        self._phase_cycle = self.engine.now

    def _phase_close(self, boundary: int) -> None:
        """Attribute deltas to the finished kernel's phase at the
        coordinator-proven boundary cycle (run-global, so ``kernels`` and
        ``cycles`` max-merge to the same value on every shard)."""
        if self._phase_name is None:
            return
        mark = self._phase_mark
        snap = self._phase_snapshot()
        block = self.stats.phase(self._phase_name)
        block.kernels += 1
        block.cycles += boundary - self._phase_cycle
        block.inter_flits += snap[0] - mark[0]
        block.inter_wire_bytes += snap[1] - mark[1]
        block.inter_useful_bytes += snap[2] - mark[2]
        block.flits_entered += snap[3] - mark[3]
        block.flits_absorbed += snap[4] - mark[4]

    # -- status / report ----------------------------------------------------

    def status(self) -> ShardStatus:
        sampler_pending = 1 if (self.metrics is not None and not self._finished) else 0
        max_drain = (0, 0)
        counters_zero = True
        for gpu in self.gpus.values():
            rdma = gpu.rdma
            if rdma.outstanding_writes or rdma.outstanding_invalidations:
                counters_zero = False
            drain = (rdma.last_drain_cycle, rdma.last_drain_skey)
            if drain > max_drain:
                max_drain = drain
        return ShardStatus(
            next_event=self.engine.peek_key(),
            real_pending=self.engine.pending_events() - sampler_pending,
            wavefronts_remaining=self._wavefronts_remaining,
            last_wf_cycle=self._last_wf_cycle,
            counters_zero=counters_zero,
            max_drain=max_drain,
        )

    def _report(self, q_final: int) -> ShardReport:
        topo = self.topology
        report = ShardReport(
            shard_index=self.shard_index,
            stats=self.stats,
            events_processed=self.engine.events_processed,
            inter_rows=[link_row(link) for link in topo.inter_links],
            up_rows=[link_row(link) for link in topo.gpu_uplinks.values()],
            down_rows=[link_row(link) for link in topo.gpu_downlinks.values()],
            controller_rows=[controller_row(c) for c in topo.controllers],
            l2_accesses=sum(
                gpu.l2.read_requests + gpu.l2.write_requests
                for gpu in self.gpus.values()
            ),
            dram_accesses=sum(
                gpu.dram.reads + gpu.dram.writes for gpu in self.gpus.values()
            ),
        )
        if self.tracer.enabled:
            report.trace_records = self.tracer.events()
            report.trace_sample = self.tracer.sample
            report.trace_dropped = self.tracer.dropped
        if self.metrics is not None:
            # windows may overshoot the finish cycle; drop those samples
            # (the single-engine sampler stops at finish) and append the
            # authoritative final snapshot
            self.metrics.samples = [
                row for row in self.metrics.samples if row["cycle"] <= q_final
            ]
            self.metrics.sample(q_final)
            report.metrics_rows = self.metrics.samples
            report.metrics_names = self.metrics.names()
            report.metrics_interval = self.metrics.interval
        if self.profiler is not None:
            report.profile = self.profiler.to_dict()
        return report
