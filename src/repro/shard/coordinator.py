"""ShardedSystem: the MultiGpuSystem-compatible sharded front end.

Drives ``n_shards`` :class:`~repro.shard.shard_system.ShardSystem`
instances — in-process (*sequential-windowed*) or as worker processes
(*process-parallel*) — in bounded windows of conservative lookahead.

The window loop
---------------

Each iteration the coordinator:

1. computes each shard's *candidate* time — its earliest pending event
   or undelivered mail arrival; nothing the shard does can precede it;
2. runs every shard to its window boundary, delivering the previous
   window's mail.  In fixed mode every shard runs to ``t* + window``
   (``t*`` the global minimum candidate, ``window <= W``, the
   inter-cluster link latency): a flit sent at ``t >= t*`` cannot
   arrive before ``t + 1 + W > t* + window``, so no shard ever needs an
   input it has not been given.  In *adaptive* mode
   (:meth:`ShardedSystem._untils`) each shard's boundary stretches
   independently as far as the same safety argument allows — quiet
   shards leap ahead when cross-shard traffic is sparse and fall back
   to latency-sized windows under bursts, with per-shard frontiers
   replacing the aligned clock;
3. collects the shards' outboxes through the validating
   :class:`~repro.shard.mailbox.Mailbox` (header-only column batches in
   process-parallel mode) for delivery next iteration.

Window boundaries never influence simulated event order — both modes
reproduce the single-engine digests byte-for-byte; adaptive mode only
changes how much wall-clock coordination that reproduction costs.

Kernel boundaries are resolved analytically.  When no mail is pending,
every wavefront has completed, and every RDMA posted-write/invalidation
counter is zero, the coordinator replays the single-engine quiesce poll
chain (a poll every 16 cycles from the kernel-done cycle) against the
shards' recorded drain keys to find the exact cycle ``q`` the next
kernel would have launched at — then tells every shard to launch there,
rewinding window overshoot.  The event keys this produces match the
single-engine schedule, which is why both modes reproduce its results
byte-for-byte.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.cta import WorkloadTrace
from repro.gpu.system import config_label
from repro.obs.merge import MergedObservability, merge_observability
from repro.shard.mailbox import MailBatch, MailItem, Mailbox
from repro.shard.merge import ShardReport, ShardStatus, merge_reports
from repro.shard.partition import ShardPlan
from repro.shard.shard_system import ShardObsSpec, ShardSystem
from repro.shard.worker import LocalShard, RemoteShard
from repro.stats.coord import CoordStats
from repro.stats.report import RunResult

#: single-engine quiesce polling period (MultiGpuSystem._advance_when_quiesced)
_QUIESCE_POLL_CYCLES = 16

#: sentinel "no candidate" time (a drained shard with no pending mail)
_INF = 1 << 62


def _available_cpus() -> int:
    """CPUs this process may run on (affinity-aware where supported)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _parcel_min_arrival(parcel) -> int:
    """Earliest arrival in one pending-mail parcel (batch or sorted list)."""
    if isinstance(parcel, MailBatch):
        return min(parcel.arrivals)
    return parcel[0].arrival


class ShardedSystem:
    """A multi-GPU node simulated as cluster shards with lookahead windows.

    API-compatible with :class:`~repro.gpu.system.MultiGpuSystem` for
    the ``load`` / ``run`` flow; results are byte-identical.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        netcrafter: Optional[NetCrafterConfig] = None,
        seed: int = 0,
        n_shards: int = 1,
        window: Optional[int] = None,
        parallel: bool = False,
        obs_spec: Optional[ShardObsSpec] = None,
        adaptive: bool = False,
    ) -> None:
        self.config = config or SystemConfig.default()
        self.netcrafter = netcrafter or NetCrafterConfig.baseline()
        if (
            self.netcrafter.enable_trimming
            and self.netcrafter.trim_sector_bytes != self.config.l1_sector_bytes
        ):
            raise ValueError(
                "trim granularity must match the L1 sector size "
                f"({self.netcrafter.trim_sector_bytes} != {self.config.l1_sector_bytes})"
            )
        if self.config.coherence != "software":
            raise ValueError(
                "cluster sharding requires software coherence (the analytic "
                "kernel-boundary replay assumes kernel-scoped L1 flushes)"
            )
        self.seed = seed
        self.plan = ShardPlan.from_config(self.config, n_shards)
        self.n_shards = n_shards
        self.parallel = parallel
        self.obs_spec = obs_spec or ShardObsSpec()
        lookahead = self.config.effective_inter_link_latency
        self.window = lookahead if window is None else window
        if not 1 <= self.window <= lookahead:
            raise ValueError(
                f"window must be in 1..{lookahead} "
                f"(the inter-cluster link latency), got {self.window}"
            )
        self.adaptive = adaptive
        #: overlap remote window execution only when the host can
        #: actually run workers concurrently (see :meth:`_broadcast`)
        self._overlap_windows = parallel and _available_cpus() > 1
        self._workload: Optional[WorkloadTrace] = None
        self._reports: Optional[List[ShardReport]] = None
        self._merged_obs: Optional[MergedObservability] = None
        self.windows_run = 0
        #: coordination-overhead breakdown of the last/current run
        self.coord_stats = CoordStats()
        #: optional :class:`repro.ckpt.Checkpointer`; its ``on_boundary``
        #: observes every proven kernel boundary before the launch
        #: broadcast (pure observer — no simulator state is touched)
        self._ckpt_hook = None

    # -- MultiGpuSystem-parity API ------------------------------------------

    def load(self, workload: WorkloadTrace) -> None:
        workload.validate()
        self._workload = workload

    def run(self) -> RunResult:
        if self._workload is None:
            raise RuntimeError("no workload loaded")
        handles = self._build_handles()
        try:
            return self._run_loop(handles)
        finally:
            for handle in handles:
                handle.close()

    def merged_obs(self) -> MergedObservability:
        """Merged observability artifacts of the last :meth:`run`."""
        if self._merged_obs is None:
            raise RuntimeError("run() has not completed")
        return self._merged_obs

    def resume_run(
        self,
        shard_states: List[bytes],
        kernel_index: int,
        q: int,
        windows_run: int,
        mail_seq,
        checkpointer=None,
    ) -> RunResult:
        """Continue from checkpointed per-shard state; see :mod:`repro.ckpt`.

        ``kernel_index`` and ``q`` are the boundary the snapshot froze:
        the coordinator had proven kernel ``kernel_index`` launches at
        cycle ``q`` but had not yet broadcast the launch (or finish).
        Re-entering the loop there replays exactly the command sequence
        the uninterrupted run would have issued.
        """
        if self._workload is None:
            raise RuntimeError("no workload loaded")
        if len(shard_states) != self.n_shards:
            raise RuntimeError(
                f"snapshot holds {len(shard_states)} shard(s), "
                f"this coordinator drives {self.n_shards}"
            )
        self._ckpt_hook = checkpointer
        self.windows_run = windows_run
        handles = self._restore_handles(shard_states)
        try:
            mailbox = Mailbox()
            mailbox._last_seq.update(mail_seq)
            kernels = self._workload.kernels
            if kernel_index >= len(kernels):
                return self._finish(handles, q)
            statuses = self._broadcast(
                handles, [("launch", kernel_index, q)] * self.n_shards
            )
            self.coord_stats.launches += 1
            return self._window_loop(
                handles, mailbox, statuses, kernel_index, pending_mail=[]
            )
        finally:
            for handle in handles:
                handle.close()

    # -- internals ----------------------------------------------------------

    def _build_handles(self) -> List[object]:
        handles: List[object] = []
        for shard_index in range(self.n_shards):
            if self.parallel:
                handles.append(
                    RemoteShard(
                        self.config,
                        self.netcrafter,
                        self.seed,
                        shard_index,
                        self.n_shards,
                        self.obs_spec,
                        self._workload,
                        coord_stats=self.coord_stats,
                    )
                )
            else:
                system = ShardSystem(
                    self.config,
                    self.netcrafter,
                    self.seed,
                    shard_index,
                    self.n_shards,
                    self.obs_spec,
                )
                system.load(self._workload)
                handles.append(LocalShard(system))
        return handles

    def _restore_handles(self, shard_states: List[bytes]) -> List[object]:
        """Handles over checkpointed shard state instead of fresh builds."""
        handles: List[object] = []
        for shard_index, state in enumerate(shard_states):
            if self.parallel:
                handles.append(
                    RemoteShard(
                        self.config,
                        self.netcrafter,
                        self.seed,
                        shard_index,
                        self.n_shards,
                        self.obs_spec,
                        workload=None,
                        shard_state=state,
                        coord_stats=self.coord_stats,
                    )
                )
            else:
                handles.append(LocalShard(ShardSystem.from_snapshot_state(state)))
        return handles

    def _broadcast(self, handles, commands) -> List[object]:
        """Issue one command per handle, then collect every reply.

        ``commands`` is a list of ``(verb, *args)`` tuples, one per
        shard.  With more than one CPU available, remote handles overlap
        their work here — every worker is busy before the first reply is
        awaited.  On a single-CPU host that overlap only timeslices
        compute-bound workers against each other (each slice restarts
        with the other shard's working set in cache, costing real extra
        CPU), so dispatch is serialized per shard instead; replies are
        collected in shard order either way, so the command/reply
        sequence — and therefore the simulation — is identical.
        """
        if self._overlap_windows:
            for handle, command in zip(handles, commands):
                handle.start(*command)
            return [handle.collect() for handle in handles]
        replies = []
        for handle, command in zip(handles, commands):
            handle.start(*command)
            replies.append(handle.collect())
        return replies

    def _run_loop(self, handles) -> RunResult:
        mailbox = Mailbox()
        statuses: List[ShardStatus] = self._broadcast(
            handles, [("begin",)] * self.n_shards
        )
        self.coord_stats.launches += 1  # begin() launches kernel 0
        return self._window_loop(
            handles, mailbox, statuses, kernel_index=0, pending_mail=[]
        )

    def _finish(self, handles, q: int) -> RunResult:
        reports: List[ShardReport] = self._broadcast(
            handles, [("finish", q)] * self.n_shards
        )
        self._reports = reports
        self._merged_obs = merge_observability(reports)
        return merge_reports(
            reports,
            workload=self._workload.name,
            config_label=config_label(self.config, self.netcrafter),
            cycles=q,
            kernel_count=len(self._workload.kernels),
        )

    def _window_loop(
        self,
        handles,
        mailbox: Mailbox,
        statuses: List[ShardStatus],
        kernel_index: int,
        pending_mail: List[MailItem],
    ) -> RunResult:
        kernels = self._workload.kernels
        stats = self.coord_stats
        n = self.n_shards
        # pending[dst]: parcels awaiting delivery to shard ``dst`` — live
        # MailItem lists (sequential mode) or MailBatch columns (parallel
        # mode, routed on headers alone, payload never unpickled here)
        pending: List[List[object]] = [[] for _ in range(n)]
        for item in pending_mail:
            pending[self.plan.shard_of_cluster(item.dst_cluster)].append([item])
        # per-shard simulated frontier: the boundary each shard last ran
        # to (monotone between kernel launches; a launch re-anchors it)
        frontier = [0] * n
        while True:
            have_mail = any(pending)
            at_boundary = (
                not have_mail
                and all(s.wavefronts_remaining == 0 for s in statuses)
                and all(s.counters_zero for s in statuses)
            )
            if at_boundary:
                t_done = max(s.last_wf_cycle for s in statuses)
                max_drain = max(s.max_drain for s in statuses)
                q = self._quiesce_cycle(t_done, max_drain)
                kernel_index += 1
                if self._ckpt_hook is not None:
                    # snapshot the pre-launch boundary state; resume
                    # re-issues the same (launch|finish, kernel_index, q)
                    self._ckpt_hook.on_boundary(
                        self, handles, kernel_index, q, mailbox
                    )
                if kernel_index >= len(kernels):
                    return self._finish(handles, q)
                # fused launch+window: after the launch every shard's
                # next event is the launch injected at key (q, q), so
                # the first post-launch window boundary is known here —
                # the separate launch status round-trip carries no
                # information and is elided
                until = self._post_launch_until(q)
                stats.launches += 1
                replies = self._broadcast(
                    handles,
                    [("launch_window", kernel_index, q, until)] * n,
                )
                frontier = [until] * n
            else:
                if not have_mail and all(s.real_pending == 0 for s in statuses):
                    left = sum(s.wavefronts_remaining for s in statuses)
                    raise RuntimeError(
                        "simulation drained without completing all wavefronts "
                        f"(kernel {kernel_index}, {left} left)"
                    )
                for i, until in enumerate(self._untils(statuses, pending)):
                    if until > frontier[i]:
                        frontier[i] = until
                commands = []
                for i in range(n):
                    parcels = pending[i]
                    if self.parallel:
                        mail = tuple(parcels)
                    elif not parcels:
                        mail = []
                    elif len(parcels) == 1:
                        mail = parcels[0]  # already in delivery order
                    else:
                        mail = sorted(
                            (item for parcel in parcels for item in parcel),
                            key=MailItem.sort_key,
                        )
                    commands.append(("window", frontier[i], mail))
                replies = self._broadcast(handles, commands)
            self.windows_run += 1
            stats.windows += 1
            statuses, pending = self._ingest(mailbox, replies, frontier)

    def _untils(
        self, statuses: List[ShardStatus], pending: List[List[object]]
    ) -> List[int]:
        """Per-shard window boundaries from the current candidate times.

        ``cand[s]`` is the earliest thing shard ``s`` can possibly do:
        its next pending event or its earliest undelivered mail arrival.
        Fixed mode runs every shard to ``min(cand) + window`` — the
        classic conservative lookahead.  Adaptive mode stretches each
        shard independently to::

            until[s] = min(min(cand[x] for x != s) + L,
                           cand[s] + 1 + 2 * L)

        with ``L`` the inter-cluster link latency.  Any future arrival
        into ``s`` either originates from another shard's activity (at
        ``>= cand[x]``, arriving ``>= cand[x] + 1 + L``) or from a
        chain that left ``s`` itself and bounced back (two hops:
        ``>= cand[s] + 2 + 2 * L``), so every arrival lands strictly
        beyond ``until[s]`` — the same safety contract the fixed window
        provides, without capping quiet shards at ``t* + window``.  The
        inputs are deterministic simulation state, so adaptive windows
        replay identically across drive modes and shard counts.
        """
        cands = []
        for i, status in enumerate(statuses):
            cand = _INF if status.next_event is None else status.next_event[0]
            for parcel in pending[i]:
                first = _parcel_min_arrival(parcel)
                if first < cand:
                    cand = first
            cands.append(cand)
        if not self.adaptive:
            return [min(cands) + self.window] * self.n_shards
        lookahead = self.config.effective_inter_link_latency
        m1 = min(cands)
        i1 = cands.index(m1)
        m2 = min(
            (c for i, c in enumerate(cands) if i != i1), default=_INF
        )
        untils = []
        for i, cand in enumerate(cands):
            other = m2 if i == i1 else m1
            untils.append(min(other + lookahead, cand + 1 + 2 * lookahead))
        return untils

    def _post_launch_until(self, q: int) -> int:
        """First window boundary after a kernel launch at cycle ``q``.

        Every shard's candidate is the launch event at ``(q, q)``, so
        this is exactly what :meth:`_untils` would return given the
        post-launch statuses — checkpoint resume, which re-enters the
        loop through a plain ``launch`` verb, recomputes the same value.
        """
        if not self.adaptive:
            return q + self.window
        lookahead = self.config.effective_inter_link_latency
        if self.n_shards == 1:
            return q + 1 + 2 * lookahead
        return q + lookahead

    def _ingest(self, mailbox: Mailbox, replies, frontier: List[int]):
        """Split window replies into statuses and validated pending mail.

        Every outbox item is validated against its *destination* shard's
        frontier — the cycle that shard has already simulated to — via
        the per-link monotone-sequence mailbox.  Parallel replies route
        as opaque :class:`MailBatch` columns; sequential replies carry
        live items, collated into delivery order here.
        """
        stats = self.coord_stats
        statuses: List[ShardStatus] = []
        pending: List[List[object]] = [[] for _ in range(self.n_shards)]
        for shard_out, status in replies:
            statuses.append(status)
            if not shard_out:
                continue
            if self.parallel:
                for dst in sorted(shard_out):
                    batch = shard_out[dst]
                    mailbox.validate_batch(batch, frontier[dst])
                    pending[dst].append(batch)
                    stats.mail_items += len(batch)
            else:
                groups: dict = {}
                for item in shard_out:
                    dst = self.plan.shard_of_cluster(item.dst_cluster)
                    group = groups.get(dst)
                    if group is None:
                        groups[dst] = [item]
                    else:
                        group.append(item)
                for dst in sorted(groups):
                    items = mailbox.collate(groups[dst], boundary=frontier[dst])
                    pending[dst].append(items)
                    stats.mail_items += len(items)
        return statuses, pending

    def _quiesce_cycle(self, t_done: int, max_drain: Tuple[int, int]) -> int:
        """Replay the single-engine quiesce poll chain analytically.

        The single-engine poll runs at ``(time=p_j, skey=s_j)`` with
        ``p_0 = s_0 = t_done`` and ``p_j = t_done + 16j``,
        ``s_j = p_{j-1}``.  It observes the counters as drained exactly
        when the draining event's key ``(Z, Zskey)`` ordered before the
        poll's — the condition tested here against the shards' recorded
        lexicographic-max drain key.
        """
        drain_cycle, drain_skey = max_drain
        poll, poll_skey = t_done, t_done
        while not (
            drain_cycle < poll
            or (drain_cycle == poll and drain_skey < poll_skey)
        ):
            poll_skey = poll
            poll += _QUIESCE_POLL_CYCLES
        return poll
