"""ShardedSystem: the MultiGpuSystem-compatible sharded front end.

Drives ``n_shards`` :class:`~repro.shard.shard_system.ShardSystem`
instances — in-process (*sequential-windowed*) or as worker processes
(*process-parallel*) — in bounded windows of conservative lookahead.

The window loop
---------------

All shard clocks stay aligned.  Each iteration the coordinator:

1. computes ``t*``, the earliest pending event time across shards and
   undelivered mail — nothing anywhere can happen before ``t*``;
2. runs every shard to ``t* + window`` (``window <= W``, the minimum
   inter-cluster link latency), delivering the previous window's mail.
   Conservative lookahead makes this safe: a flit sent at ``t >= t*``
   cannot arrive before ``t + 1 + W > t* + window``, so no shard ever
   needs an input it has not been given;
3. collects the shards' outboxes through the validating
   :class:`~repro.shard.mailbox.Mailbox` for delivery next iteration.

Kernel boundaries are resolved analytically.  When no mail is pending,
every wavefront has completed, and every RDMA posted-write/invalidation
counter is zero, the coordinator replays the single-engine quiesce poll
chain (a poll every 16 cycles from the kernel-done cycle) against the
shards' recorded drain keys to find the exact cycle ``q`` the next
kernel would have launched at — then tells every shard to launch there,
rewinding window overshoot.  The event keys this produces match the
single-engine schedule, which is why both modes reproduce its results
byte-for-byte.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.gpu.cta import WorkloadTrace
from repro.gpu.system import config_label
from repro.obs.merge import MergedObservability, merge_observability
from repro.shard.mailbox import MailItem, Mailbox
from repro.shard.merge import ShardReport, ShardStatus, merge_reports
from repro.shard.partition import ShardPlan
from repro.shard.shard_system import ShardObsSpec, ShardSystem
from repro.shard.worker import LocalShard, RemoteShard
from repro.stats.report import RunResult

#: single-engine quiesce polling period (MultiGpuSystem._advance_when_quiesced)
_QUIESCE_POLL_CYCLES = 16


class ShardedSystem:
    """A multi-GPU node simulated as cluster shards with lookahead windows.

    API-compatible with :class:`~repro.gpu.system.MultiGpuSystem` for
    the ``load`` / ``run`` flow; results are byte-identical.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        netcrafter: Optional[NetCrafterConfig] = None,
        seed: int = 0,
        n_shards: int = 1,
        window: Optional[int] = None,
        parallel: bool = False,
        obs_spec: Optional[ShardObsSpec] = None,
    ) -> None:
        self.config = config or SystemConfig.default()
        self.netcrafter = netcrafter or NetCrafterConfig.baseline()
        if (
            self.netcrafter.enable_trimming
            and self.netcrafter.trim_sector_bytes != self.config.l1_sector_bytes
        ):
            raise ValueError(
                "trim granularity must match the L1 sector size "
                f"({self.netcrafter.trim_sector_bytes} != {self.config.l1_sector_bytes})"
            )
        if self.config.coherence != "software":
            raise ValueError(
                "cluster sharding requires software coherence (the analytic "
                "kernel-boundary replay assumes kernel-scoped L1 flushes)"
            )
        self.seed = seed
        self.plan = ShardPlan.from_config(self.config, n_shards)
        self.n_shards = n_shards
        self.parallel = parallel
        self.obs_spec = obs_spec or ShardObsSpec()
        lookahead = self.config.effective_inter_link_latency
        self.window = lookahead if window is None else window
        if not 1 <= self.window <= lookahead:
            raise ValueError(
                f"window must be in 1..{lookahead} "
                f"(the inter-cluster link latency), got {self.window}"
            )
        self._workload: Optional[WorkloadTrace] = None
        self._reports: Optional[List[ShardReport]] = None
        self._merged_obs: Optional[MergedObservability] = None
        self.windows_run = 0
        #: optional :class:`repro.ckpt.Checkpointer`; its ``on_boundary``
        #: observes every proven kernel boundary before the launch
        #: broadcast (pure observer — no simulator state is touched)
        self._ckpt_hook = None

    # -- MultiGpuSystem-parity API ------------------------------------------

    def load(self, workload: WorkloadTrace) -> None:
        workload.validate()
        self._workload = workload

    def run(self) -> RunResult:
        if self._workload is None:
            raise RuntimeError("no workload loaded")
        handles = self._build_handles()
        try:
            return self._run_loop(handles)
        finally:
            for handle in handles:
                handle.close()

    def merged_obs(self) -> MergedObservability:
        """Merged observability artifacts of the last :meth:`run`."""
        if self._merged_obs is None:
            raise RuntimeError("run() has not completed")
        return self._merged_obs

    def resume_run(
        self,
        shard_states: List[bytes],
        kernel_index: int,
        q: int,
        windows_run: int,
        mail_seq,
        checkpointer=None,
    ) -> RunResult:
        """Continue from checkpointed per-shard state; see :mod:`repro.ckpt`.

        ``kernel_index`` and ``q`` are the boundary the snapshot froze:
        the coordinator had proven kernel ``kernel_index`` launches at
        cycle ``q`` but had not yet broadcast the launch (or finish).
        Re-entering the loop there replays exactly the command sequence
        the uninterrupted run would have issued.
        """
        if self._workload is None:
            raise RuntimeError("no workload loaded")
        if len(shard_states) != self.n_shards:
            raise RuntimeError(
                f"snapshot holds {len(shard_states)} shard(s), "
                f"this coordinator drives {self.n_shards}"
            )
        self._ckpt_hook = checkpointer
        self.windows_run = windows_run
        handles = self._restore_handles(shard_states)
        try:
            mailbox = Mailbox()
            mailbox._last_seq.update(mail_seq)
            kernels = self._workload.kernels
            if kernel_index >= len(kernels):
                return self._finish(handles, q)
            statuses = self._broadcast(
                handles, [("launch", kernel_index, q)] * self.n_shards
            )
            return self._window_loop(
                handles, mailbox, statuses, kernel_index, pending_mail=[]
            )
        finally:
            for handle in handles:
                handle.close()

    # -- internals ----------------------------------------------------------

    def _build_handles(self) -> List[object]:
        handles: List[object] = []
        for shard_index in range(self.n_shards):
            if self.parallel:
                handles.append(
                    RemoteShard(
                        self.config,
                        self.netcrafter,
                        self.seed,
                        shard_index,
                        self.n_shards,
                        self.obs_spec,
                        self._workload,
                    )
                )
            else:
                system = ShardSystem(
                    self.config,
                    self.netcrafter,
                    self.seed,
                    shard_index,
                    self.n_shards,
                    self.obs_spec,
                )
                system.load(self._workload)
                handles.append(LocalShard(system))
        return handles

    def _restore_handles(self, shard_states: List[bytes]) -> List[object]:
        """Handles over checkpointed shard state instead of fresh builds."""
        handles: List[object] = []
        for shard_index, state in enumerate(shard_states):
            if self.parallel:
                handles.append(
                    RemoteShard(
                        self.config,
                        self.netcrafter,
                        self.seed,
                        shard_index,
                        self.n_shards,
                        self.obs_spec,
                        workload=None,
                        shard_state=state,
                    )
                )
            else:
                handles.append(LocalShard(ShardSystem.from_snapshot_state(state)))
        return handles

    def _broadcast(self, handles, commands) -> List[object]:
        """Issue one command per handle, then collect every reply.

        ``commands`` is a list of ``(verb, *args)`` tuples, one per
        shard.  Remote handles overlap their work here — every worker is
        busy before the first reply is awaited.
        """
        for handle, command in zip(handles, commands):
            handle.start(*command)
        return [handle.collect() for handle in handles]

    def _run_loop(self, handles) -> RunResult:
        mailbox = Mailbox()
        statuses: List[ShardStatus] = self._broadcast(
            handles, [("begin",)] * self.n_shards
        )
        return self._window_loop(
            handles, mailbox, statuses, kernel_index=0, pending_mail=[]
        )

    def _finish(self, handles, q: int) -> RunResult:
        reports: List[ShardReport] = self._broadcast(
            handles, [("finish", q)] * self.n_shards
        )
        self._reports = reports
        self._merged_obs = merge_observability(reports)
        return merge_reports(
            reports,
            workload=self._workload.name,
            config_label=config_label(self.config, self.netcrafter),
            cycles=q,
            kernel_count=len(self._workload.kernels),
        )

    def _window_loop(
        self,
        handles,
        mailbox: Mailbox,
        statuses: List[ShardStatus],
        kernel_index: int,
        pending_mail: List[MailItem],
    ) -> RunResult:
        kernels = self._workload.kernels
        while True:
            at_boundary = (
                not pending_mail
                and all(s.wavefronts_remaining == 0 for s in statuses)
                and all(s.counters_zero for s in statuses)
            )
            if at_boundary:
                t_done = max(s.last_wf_cycle for s in statuses)
                max_drain = max(s.max_drain for s in statuses)
                q = self._quiesce_cycle(t_done, max_drain)
                kernel_index += 1
                if self._ckpt_hook is not None:
                    # snapshot the pre-launch boundary state; resume
                    # re-issues the same (launch|finish, kernel_index, q)
                    self._ckpt_hook.on_boundary(
                        self, handles, kernel_index, q, mailbox
                    )
                if kernel_index < len(kernels):
                    statuses = self._broadcast(
                        handles,
                        [("launch", kernel_index, q)] * self.n_shards,
                    )
                    continue
                return self._finish(handles, q)
            if not pending_mail and all(s.real_pending == 0 for s in statuses):
                left = sum(s.wavefronts_remaining for s in statuses)
                raise RuntimeError(
                    "simulation drained without completing all wavefronts "
                    f"(kernel {kernel_index}, {left} left)"
                )
            candidates = [
                s.next_event[0] for s in statuses if s.next_event is not None
            ]
            candidates.extend(item.arrival for item in pending_mail)
            until = min(candidates) + self.window
            mail_for = [[] for _ in range(self.n_shards)]
            for item in pending_mail:
                mail_for[self.plan.shard_of_cluster(item.dst_cluster)].append(item)
            replies = self._broadcast(
                handles,
                [("window", until, mail_for[i]) for i in range(self.n_shards)],
            )
            self.windows_run += 1
            outbox: List[MailItem] = []
            statuses = []
            for shard_outbox, status in replies:
                outbox.extend(shard_outbox)
                statuses.append(status)
            pending_mail = mailbox.collate(outbox, boundary=until)

    def _quiesce_cycle(self, t_done: int, max_drain: Tuple[int, int]) -> int:
        """Replay the single-engine quiesce poll chain analytically.

        The single-engine poll runs at ``(time=p_j, skey=s_j)`` with
        ``p_0 = s_0 = t_done`` and ``p_j = t_done + 16j``,
        ``s_j = p_{j-1}``.  It observes the counters as drained exactly
        when the draining event's key ``(Z, Zskey)`` ordered before the
        poll's — the condition tested here against the shards' recorded
        lexicographic-max drain key.
        """
        drain_cycle, drain_skey = max_drain
        poll, poll_skey = t_done, t_done
        while not (
            drain_cycle < poll
            or (drain_cycle == poll and drain_skey < poll_skey)
        ):
            poll_skey = poll
            poll += _QUIESCE_POLL_CYCLES
        return poll
