"""Cluster-sharded parallel simulation with conservative lookahead.

The inter-cluster links are the slowest part of the Figure 2 node: a
flit sent at cycle ``t`` cannot arrive at a remote cluster before
``t + 1 + inter_link_latency``.  That latency is a *conservative
lookahead* window: each cluster (plus its GPUs, switch, and egress
controllers) can be simulated independently for up to ``W`` cycles
beyond the global frontier without missing an incoming event, as long
as cross-cluster flits are exchanged at window boundaries.

:class:`~repro.shard.coordinator.ShardedSystem` exploits this to run a
node as ``n_shards`` single-engine shards (contiguous cluster ranges),
either round-robin in one process (*sequential-windowed*) or as
persistent worker processes (*process-parallel*).  Both modes produce
``RunResult`` payloads byte-identical to
:class:`~repro.gpu.system.MultiGpuSystem` — the digest gate in
:mod:`repro.bench.smoke` checks exactly that.
"""

from repro.shard.coordinator import ShardedSystem
from repro.shard.mailbox import (
    BoundaryFlitLink,
    DuplicateDeliveryError,
    LateDeliveryError,
    MailItem,
    Mailbox,
)
from repro.shard.partition import ShardPlan

__all__ = [
    "BoundaryFlitLink",
    "DuplicateDeliveryError",
    "LateDeliveryError",
    "MailItem",
    "Mailbox",
    "ShardPlan",
    "ShardedSystem",
]
