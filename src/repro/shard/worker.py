"""Process-parallel shard execution: persistent workers over pipes.

Each shard runs in its own ``multiprocessing.Process`` hosting one
:class:`~repro.shard.shard_system.ShardSystem`, built locally in the
worker from picklable inputs (configs, seed, workload, obs spec).  The
coordinator drives it with small command tuples over a pipe::

    ("begin",)                        -> ("ok", ShardStatus)
    ("window", until, batches)        -> ("ok", (out_batches, ShardStatus))
    ("launch", k, q)                  -> ("ok", ShardStatus)
    ("launch_window", k, q, until)    -> ("ok", (out_batches, ShardStatus))
    ("finish", q)                     -> ("ok", ShardReport)
    ("snapshot",)                     -> ("ok", bytes)  # pickled ShardSystem
    ("exit",)                         -> worker terminates

Commands and replies cross the pipe as explicit ``pickle.dumps``
payloads over ``send_bytes``/``recv_bytes`` (highest protocol), so the
coordinator can count the exact bytes serialized per verb.  Mailbox
traffic travels as :class:`~repro.shard.mailbox.MailBatch` columns:
``batches`` is the sequence of batches destined to this shard and
``out_batches`` maps destination shard index to one encoded batch of
this window's outbox — pickled once here, routed by the coordinator on
the header columns alone, and decoded only by the destination worker.
``launch_window`` fuses the kernel-boundary launch with the first
window after it (the post-launch window boundary is deterministic, so
the coordinator needs no intermediate status), halving the per-boundary
round trips.

Any worker exception is shipped back as ``("error", traceback)`` and
re-raised in the coordinator.

Checkpoint resume hands the worker a previously pickled shard
(``shard_state``) instead of build inputs; the worker restores it via
:meth:`~repro.shard.shard_system.ShardSystem.from_snapshot_state` and
serves the same verb loop from the restored state.

Requester contexts (the ``on_complete`` closures riding on packets)
are the one unpicklable part of a boundary flit.  The worker swaps each
one for a :class:`CtxToken` before its outbox is pickled and swaps the
original back when the token returns home on a response packet; the
stash entry is never popped, because a multi-flit packet pickled in
separate window batches arrives as several object copies, each of which
must be restorable.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.shard.mailbox import MailBatch, MailItem
from repro.shard.shard_system import ShardObsSpec, ShardSystem
from repro.stats.coord import CoordStats


@dataclass(frozen=True)
class CtxToken:
    """Placeholder for a stashed requester context (home shard + key)."""

    home: int
    key: int


def _packets_of(flit) -> List[object]:
    """The flit's packet plus every stitched segment's packet."""
    packets = [flit.packet]
    for segment in flit.segments:
        packets.append(segment.flit.packet)
    return packets


class ContextStash:
    """Token swap for requester callbacks crossing the pickle boundary."""

    def __init__(self, shard_index: int) -> None:
        self.shard_index = shard_index
        self._store: Dict[int, object] = {}
        self._next_key = 0

    def tokenize(self, items: List[MailItem]) -> None:
        # every non-token context is stashed, not just those carrying an
        # on_complete closure: the fault backstop marks ``ctx.completed``
        # on the requester's original object, which a pickled copy of a
        # WRITE/INV context (on_complete=None) could never reach
        for item in items:
            for packet in _packets_of(item.flit):
                ctx = packet.context
                if ctx is not None and not isinstance(ctx, CtxToken):
                    key = self._next_key
                    self._next_key = key + 1
                    self._store[key] = ctx
                    packet.context = CtxToken(self.shard_index, key)

    def restore(self, items: List[MailItem]) -> None:
        self.restore_flits(item.flit for item in items)

    def restore_flits(self, flits) -> None:
        for flit in flits:
            for packet in _packets_of(flit):
                ctx = packet.context
                if isinstance(ctx, CtxToken) and ctx.home == self.shard_index:
                    packet.context = self._store[ctx.key]


def _encode_outbox(shard, stash: ContextStash, outbox) -> Dict[int, MailBatch]:
    """Tokenize contexts and column-encode the outbox per destination shard.

    Pickling happens here, exactly once per destination: one ``dumps``
    over each destination's flit list lets the pickle memo dedupe the
    shared ``Packet``/``StitchSegment`` tuple-state prefix of multi-flit
    packets instead of re-serializing it per flit per hop.
    """
    if not outbox:
        return {}
    stash.tokenize(outbox)
    shard_of = shard.plan.shard_of_cluster
    groups: Dict[int, List[MailItem]] = {}
    for item in outbox:
        dst = shard_of(item.dst_cluster)
        group = groups.get(dst)
        if group is None:
            groups[dst] = [item]
        else:
            group.append(item)
    return {dst: MailBatch.encode(items) for dst, items in groups.items()}


def worker_main(
    conn,
    config,
    netcrafter,
    seed: int,
    shard_index: int,
    n_shards: int,
    obs_spec: ShardObsSpec,
    workload,
    shard_state=None,
) -> None:
    """Worker process entry: build the shard, serve commands until exit.

    With ``shard_state`` (checkpoint resume) the shard is restored from
    its pickled snapshot instead of being built fresh.
    """
    proto = pickle.HIGHEST_PROTOCOL
    try:
        if shard_state is not None:
            shard = ShardSystem.from_snapshot_state(shard_state)
        else:
            shard = ShardSystem(
                config, netcrafter, seed, shard_index, n_shards, obs_spec
            )
            shard.load(workload)
        stash = ContextStash(shard_index)
        while True:
            message = pickle.loads(conn.recv_bytes())
            verb = message[0]
            if verb == "window":
                _, until, batches = message
                # decode payloads here (one loads per batch), restore the
                # stashed contexts on the live flit lists, and inject
                # straight off the columns — no MailItem per flit
                flits_per_batch = [
                    pickle.loads(batch.payload) for batch in batches
                ]
                for flits in flits_per_batch:
                    stash.restore_flits(flits)
                outbox, status = shard.window_batches(
                    until, batches, flits_per_batch
                )
                reply = ("ok", (_encode_outbox(shard, stash, outbox), status))
            elif verb == "launch_window":
                _, kernel_index, q, until = message
                outbox, status = shard.launch_window(kernel_index, q, until)
                reply = ("ok", (_encode_outbox(shard, stash, outbox), status))
            elif verb == "begin":
                reply = ("ok", shard.begin())
            elif verb == "launch":
                _, kernel_index, q = message
                reply = ("ok", shard.launch_kernel(kernel_index, q))
            elif verb == "finish":
                _, q_final = message
                reply = ("ok", shard.finish(q_final))
            elif verb == "snapshot":
                reply = ("ok", shard.snapshot_state())
            elif verb == "exit":
                conn.close()
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown shard command {verb!r}")
            conn.send_bytes(pickle.dumps(reply, proto))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover
        return
    except Exception:
        try:
            conn.send_bytes(
                pickle.dumps(("error", traceback.format_exc()), proto)
            )
        except Exception:  # pragma: no cover - parent already gone
            pass


class RemoteShard:
    """Coordinator-side handle for one worker process."""

    #: grace period for a worker to exit on its own before escalation
    EXIT_GRACE_SECONDS = 10.0

    def __init__(
        self,
        config,
        netcrafter,
        seed: int,
        shard_index: int,
        n_shards: int,
        obs_spec: ShardObsSpec,
        workload,
        shard_state=None,
        coord_stats: Optional[CoordStats] = None,
    ) -> None:
        self.coord_stats = coord_stats
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=worker_main,
            args=(
                child,
                config,
                netcrafter,
                seed,
                shard_index,
                n_shards,
                obs_spec,
                workload,
                shard_state,
            ),
            daemon=True,
        )
        self._process.start()
        child.close()

    def start(self, verb: str, *args) -> None:
        blob = pickle.dumps((verb,) + args, protocol=pickle.HIGHEST_PROTOCOL)
        stats = self.coord_stats
        if stats is not None:
            stats.verb_round_trips += 1
            stats.pickle_bytes_out += len(blob)
        self._conn.send_bytes(blob)

    def collect(self):
        stats = self.coord_stats
        if stats is None:
            blob = self._conn.recv_bytes()
        else:
            begin = time.perf_counter()
            blob = self._conn.recv_bytes()
            stats.idle_wait_seconds += time.perf_counter() - begin
            stats.pickle_bytes_in += len(blob)
        kind, payload = pickle.loads(blob)
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def close(self) -> None:
        """Graceful teardown: exit verb, drain, join — terminate last.

        Killing the worker outright can catch it mid-``conn.send`` and
        strand a partially written reply (trace batches, shard reports),
        so escalation is the last resort.  Two details make the graceful
        path reliable: any not-yet-collected replies are drained while
        waiting (a worker blocked writing a large payload into a full
        pipe cannot reach the exit verb until someone reads), and
        ``terminate`` itself escalates to ``kill`` if the worker ignores
        SIGTERM.
        """
        process = self._process
        try:
            self._conn.send(("exit",))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        deadline = time.monotonic() + self.EXIT_GRACE_SECONDS
        while process.is_alive() and time.monotonic() < deadline:
            try:
                if self._conn.poll(0.05):
                    # discard stale reply bytes (no unpickle), unblock worker
                    self._conn.recv_bytes()
                    continue
            except (EOFError, OSError):
                break  # worker closed its end: it is on the way out
            process.join(timeout=0.05)
        process.join(timeout=0.1)
        if process.is_alive():  # pragma: no cover - hung worker
            process.terminate()
            process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join()
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass


class LocalShard:
    """In-process handle with the same start/collect surface.

    Sequential-windowed mode: flits cross shards as live objects, so no
    context tokenization is needed (every closure stays valid).
    """

    _METHODS = {
        "begin": "begin",
        "window": "window",
        "launch": "launch_kernel",
        "launch_window": "launch_window",
        "finish": "finish",
        "snapshot": "snapshot_state",
    }

    def __init__(self, system: ShardSystem) -> None:
        self.system = system
        self._pending = None

    def start(self, verb: str, *args) -> None:
        self._pending = getattr(self.system, self._METHODS[verb])(*args)

    def collect(self):
        result = self._pending
        self._pending = None
        return result

    def close(self) -> None:
        pass
