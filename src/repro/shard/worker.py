"""Process-parallel shard execution: persistent workers over pipes.

Each shard runs in its own ``multiprocessing.Process`` hosting one
:class:`~repro.shard.shard_system.ShardSystem`, built locally in the
worker from picklable inputs (configs, seed, workload, obs spec).  The
coordinator drives it with small command tuples over a pipe::

    ("begin",)               -> ("ok", ShardStatus)
    ("window", until, mail)  -> ("ok", (outbox, ShardStatus))
    ("launch", k, q)         -> ("ok", ShardStatus)
    ("finish", q)            -> ("ok", ShardReport)
    ("snapshot",)            -> ("ok", bytes)   # pickled ShardSystem
    ("exit",)                -> worker terminates

Any worker exception is shipped back as ``("error", traceback)`` and
re-raised in the coordinator.

Checkpoint resume hands the worker a previously pickled shard
(``shard_state``) instead of build inputs; the worker restores it via
:meth:`~repro.shard.shard_system.ShardSystem.from_snapshot_state` and
serves the same verb loop from the restored state.

Requester contexts (the ``on_complete`` closures riding on packets)
are the one unpicklable part of a boundary flit.  The worker swaps each
one for a :class:`CtxToken` before its outbox is pickled and swaps the
original back when the token returns home on a response packet; the
stash entry is never popped, because a multi-flit packet pickled in
separate window batches arrives as several object copies, each of which
must be restorable.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List

from repro.shard.mailbox import MailItem
from repro.shard.shard_system import ShardObsSpec, ShardSystem


@dataclass(frozen=True)
class CtxToken:
    """Placeholder for a stashed requester context (home shard + key)."""

    home: int
    key: int


def _packets_of(flit) -> List[object]:
    """The flit's packet plus every stitched segment's packet."""
    packets = [flit.packet]
    for segment in flit.segments:
        packets.append(segment.flit.packet)
    return packets


class ContextStash:
    """Token swap for requester callbacks crossing the pickle boundary."""

    def __init__(self, shard_index: int) -> None:
        self.shard_index = shard_index
        self._store: Dict[int, object] = {}
        self._next_key = 0

    def tokenize(self, items: List[MailItem]) -> None:
        # every non-token context is stashed, not just those carrying an
        # on_complete closure: the fault backstop marks ``ctx.completed``
        # on the requester's original object, which a pickled copy of a
        # WRITE/INV context (on_complete=None) could never reach
        for item in items:
            for packet in _packets_of(item.flit):
                ctx = packet.context
                if ctx is not None and not isinstance(ctx, CtxToken):
                    key = self._next_key
                    self._next_key = key + 1
                    self._store[key] = ctx
                    packet.context = CtxToken(self.shard_index, key)

    def restore(self, items: List[MailItem]) -> None:
        for item in items:
            for packet in _packets_of(item.flit):
                ctx = packet.context
                if isinstance(ctx, CtxToken) and ctx.home == self.shard_index:
                    packet.context = self._store[ctx.key]


def worker_main(
    conn,
    config,
    netcrafter,
    seed: int,
    shard_index: int,
    n_shards: int,
    obs_spec: ShardObsSpec,
    workload,
    shard_state=None,
) -> None:
    """Worker process entry: build the shard, serve commands until exit.

    With ``shard_state`` (checkpoint resume) the shard is restored from
    its pickled snapshot instead of being built fresh.
    """
    try:
        if shard_state is not None:
            shard = ShardSystem.from_snapshot_state(shard_state)
        else:
            shard = ShardSystem(
                config, netcrafter, seed, shard_index, n_shards, obs_spec
            )
            shard.load(workload)
        stash = ContextStash(shard_index)
        while True:
            message = conn.recv()
            verb = message[0]
            if verb == "begin":
                conn.send(("ok", shard.begin()))
            elif verb == "window":
                _, until, mail = message
                stash.restore(mail)
                outbox, status = shard.window(until, mail)
                stash.tokenize(outbox)
                conn.send(("ok", (outbox, status)))
            elif verb == "launch":
                _, kernel_index, q = message
                conn.send(("ok", shard.launch_kernel(kernel_index, q)))
            elif verb == "finish":
                _, q_final = message
                conn.send(("ok", shard.finish(q_final)))
            elif verb == "snapshot":
                conn.send(("ok", shard.snapshot_state()))
            elif verb == "exit":
                conn.close()
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown shard command {verb!r}")
    except (EOFError, KeyboardInterrupt):  # pragma: no cover
        return
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass


class RemoteShard:
    """Coordinator-side handle for one worker process."""

    #: grace period for a worker to exit on its own before escalation
    EXIT_GRACE_SECONDS = 10.0

    def __init__(
        self,
        config,
        netcrafter,
        seed: int,
        shard_index: int,
        n_shards: int,
        obs_spec: ShardObsSpec,
        workload,
        shard_state=None,
    ) -> None:
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        self._conn, child = context.Pipe()
        self._process = context.Process(
            target=worker_main,
            args=(
                child,
                config,
                netcrafter,
                seed,
                shard_index,
                n_shards,
                obs_spec,
                workload,
                shard_state,
            ),
            daemon=True,
        )
        self._process.start()
        child.close()

    def start(self, verb: str, *args) -> None:
        self._conn.send((verb,) + args)

    def collect(self):
        kind, payload = self._conn.recv()
        if kind == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def close(self) -> None:
        """Graceful teardown: exit verb, drain, join — terminate last.

        Killing the worker outright can catch it mid-``conn.send`` and
        strand a partially written reply (trace batches, shard reports),
        so escalation is the last resort.  Two details make the graceful
        path reliable: any not-yet-collected replies are drained while
        waiting (a worker blocked writing a large payload into a full
        pipe cannot reach the exit verb until someone reads), and
        ``terminate`` itself escalates to ``kill`` if the worker ignores
        SIGTERM.
        """
        process = self._process
        try:
            self._conn.send(("exit",))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        deadline = time.monotonic() + self.EXIT_GRACE_SECONDS
        while process.is_alive() and time.monotonic() < deadline:
            try:
                if self._conn.poll(0.05):
                    self._conn.recv()  # discard stale reply, unblock worker
                    continue
            except (EOFError, OSError):
                break  # worker closed its end: it is on the way out
            process.join(timeout=0.05)
        process.join(timeout=0.1)
        if process.is_alive():  # pragma: no cover - hung worker
            process.terminate()
            process.join(timeout=5)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join()
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass


class LocalShard:
    """In-process handle with the same start/collect surface.

    Sequential-windowed mode: flits cross shards as live objects, so no
    context tokenization is needed (every closure stays valid).
    """

    _METHODS = {
        "begin": "begin",
        "window": "window",
        "launch": "launch_kernel",
        "finish": "finish",
        "snapshot": "snapshot_state",
    }

    def __init__(self, system: ShardSystem) -> None:
        self.system = system
        self._pending = None

    def start(self, verb: str, *args) -> None:
        self._pending = getattr(self.system, self._METHODS[verb])(*args)

    def collect(self):
        result = self._pending
        self._pending = None
        return result

    def close(self) -> None:
        pass
