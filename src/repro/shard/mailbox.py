"""Cross-shard flit transport: boundary links and the ordered mailbox.

A :class:`BoundaryFlitLink` stands in for an inter-cluster link whose
destination switch lives in another shard.  It inherits the real
:class:`~repro.network.link.FlitLink` serialization and pacing — wire
timing is identical to the single-engine run — but delivery lands in a
local *outbox* instead of a remote sink.  The coordinator drains every
shard's outbox at each window boundary, validates the batch through
:class:`Mailbox`, and forwards each item to its destination shard, which
injects it into its own engine at the precomputed arrival cycle.

Determinism: every item carries the *delivery schedule key* its flit
would have received from :meth:`FlitLink._deliver` in a single shared
engine — the negative sub-cycle key ordering deliveries before local
events, by per-link sequence then link rank.  The receiving shard
injects with exactly that key, and the mailbox sorts by ``(arrival,
skey)``, so delivery order is a pure function of simulated wire traffic,
never of shard scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.flit import Flit
from repro.network.link import FlitLink
from repro.sim.engine import Engine


class LateDeliveryError(RuntimeError):
    """A boundary flit's arrival is not strictly beyond the window
    boundary — the conservative lookahead contract was violated."""


class DuplicateDeliveryError(RuntimeError):
    """A boundary flit's per-link sequence number regressed (duplicate
    or reordered delivery of the same link's traffic)."""


@dataclass(slots=True)
class MailItem:
    """One cross-shard flit in flight, with its full ordering key."""

    arrival: int
    #: the delivery's sub-cycle schedule key (negative; see FlitLink)
    skey: int
    send_cycle: int
    src_cluster: int
    dst_cluster: int
    link_seq: int
    flit: Flit

    def sort_key(self) -> Tuple[int, int]:
        # (arrival, skey) is globally unique: ranks are unique per
        # directed link and the sequence number is per-link monotone
        return (self.arrival, self.skey)

    # one MailItem per boundary flit per window: tuple state keeps the
    # pickled batch compact (see Flit.__getstate__)
    def __getstate__(self):
        return (
            self.arrival,
            self.skey,
            self.send_cycle,
            self.src_cluster,
            self.dst_cluster,
            self.link_seq,
            self.flit,
        )

    def __setstate__(self, state):
        (
            self.arrival,
            self.skey,
            self.send_cycle,
            self.src_cluster,
            self.dst_cluster,
            self.link_seq,
            self.flit,
        ) = state


class BoundaryFlitLink(FlitLink):
    """A :class:`FlitLink` whose deliveries go to a cross-shard outbox."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        latency: int,
        src_cluster: int,
        dst_cluster: int,
    ) -> None:
        super().__init__(
            engine,
            name,
            bytes_per_cycle=bytes_per_cycle,
            latency=latency,
            sink=self._unreachable_sink,
        )
        self.src_cluster = src_cluster
        self.dst_cluster = dst_cluster
        self.outbox: List[MailItem] = []
        self._link_seq = 0

    @staticmethod
    def _unreachable_sink(flit: Flit) -> None:  # pragma: no cover
        raise RuntimeError("boundary link delivers via its outbox, not a sink")

    def _deliver(self, arrival: int, flit: Flit) -> None:
        seq = self._link_seq
        self._link_seq = seq + 1
        self.outbox.append(
            MailItem(
                arrival=arrival,
                skey=self._next_delivery_skey(),
                send_cycle=self.engine.now,
                src_cluster=self.src_cluster,
                dst_cluster=self.dst_cluster,
                link_seq=seq,
                flit=flit,
            )
        )

    def drain_outbox(self) -> List[MailItem]:
        items = self.outbox
        self.outbox = []
        return items


class Mailbox:
    """Validates and orders boundary-flit batches between windows."""

    def __init__(self) -> None:
        #: (src_cluster, dst_cluster) -> last link_seq seen
        self._last_seq: Dict[Tuple[int, int], int] = {}

    def collate(self, items: List[MailItem], boundary: int) -> List[MailItem]:
        """Validate a window's outbox batch and return it in delivery order.

        ``boundary`` is the window-end cycle the batch was produced by;
        every arrival must lie strictly beyond it (the receiver has
        already simulated up to and including ``boundary``).
        """
        for item in items:
            if item.arrival <= boundary:
                raise LateDeliveryError(
                    f"flit {item.flit.fid} on link {item.src_cluster}->"
                    f"{item.dst_cluster} arrives at {item.arrival}, not "
                    f"beyond the window boundary {boundary}"
                )
            key = (item.src_cluster, item.dst_cluster)
            last = self._last_seq.get(key, -1)
            if item.link_seq <= last:
                raise DuplicateDeliveryError(
                    f"link {item.src_cluster}->{item.dst_cluster} sequence "
                    f"regressed: {item.link_seq} after {last}"
                )
            self._last_seq[key] = item.link_seq
        return sorted(items, key=MailItem.sort_key)
