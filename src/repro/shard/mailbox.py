"""Cross-shard flit transport: boundary links and the ordered mailbox.

A :class:`BoundaryFlitLink` stands in for an inter-cluster link whose
destination switch lives in another shard.  It inherits the real
:class:`~repro.network.link.FlitLink` serialization and pacing — wire
timing is identical to the single-engine run — but delivery lands in a
local *outbox* instead of a remote sink.  The coordinator drains every
shard's outbox at each window boundary, validates the batch through
:class:`Mailbox`, and forwards each item to its destination shard, which
injects it into its own engine at the precomputed arrival cycle.

Determinism: every item carries the *delivery schedule key* its flit
would have received from :meth:`FlitLink._deliver` in a single shared
engine — the negative sub-cycle key ordering deliveries before local
events, by per-link sequence then link rank.  The receiving shard
injects with exactly that key, and the mailbox sorts by ``(arrival,
skey)``, so delivery order is a pure function of simulated wire traffic,
never of shard scheduling.
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.flit import Flit
from repro.network.link import FlitLink
from repro.sim.engine import Engine


class LateDeliveryError(RuntimeError):
    """A boundary flit's arrival is not strictly beyond the window
    boundary — the conservative lookahead contract was violated."""


class DuplicateDeliveryError(RuntimeError):
    """A boundary flit's per-link sequence number regressed (duplicate
    or reordered delivery of the same link's traffic)."""


@dataclass(slots=True)
class MailItem:
    """One cross-shard flit in flight, with its full ordering key."""

    arrival: int
    #: the delivery's sub-cycle schedule key (negative; see FlitLink)
    skey: int
    send_cycle: int
    src_cluster: int
    dst_cluster: int
    link_seq: int
    flit: Flit

    def sort_key(self) -> Tuple[int, int]:
        # (arrival, skey) is globally unique: ranks are unique per
        # directed link and the sequence number is per-link monotone
        return (self.arrival, self.skey)

    # one MailItem per boundary flit per window: tuple state keeps the
    # pickled batch compact (see Flit.__getstate__)
    def __getstate__(self):
        return (
            self.arrival,
            self.skey,
            self.send_cycle,
            self.src_cluster,
            self.dst_cluster,
            self.link_seq,
            self.flit,
        )

    def __setstate__(self, state):
        (
            self.arrival,
            self.skey,
            self.send_cycle,
            self.src_cluster,
            self.dst_cluster,
            self.link_seq,
            self.flit,
        ) = state


class BoundaryFlitLink(FlitLink):
    """A :class:`FlitLink` whose deliveries go to a cross-shard outbox."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        latency: int,
        src_cluster: int,
        dst_cluster: int,
    ) -> None:
        super().__init__(
            engine,
            name,
            bytes_per_cycle=bytes_per_cycle,
            latency=latency,
            sink=self._unreachable_sink,
        )
        self.src_cluster = src_cluster
        self.dst_cluster = dst_cluster
        self.outbox: List[MailItem] = []
        self._link_seq = 0

    @staticmethod
    def _unreachable_sink(flit: Flit) -> None:  # pragma: no cover
        raise RuntimeError("boundary link delivers via its outbox, not a sink")

    def _deliver(self, arrival: int, flit: Flit) -> None:
        seq = self._link_seq
        self._link_seq = seq + 1
        self.outbox.append(
            MailItem(
                arrival=arrival,
                skey=self._next_delivery_skey(),
                send_cycle=self.engine.now,
                src_cluster=self.src_cluster,
                dst_cluster=self.dst_cluster,
                link_seq=seq,
                flit=flit,
            )
        )

    def drain_outbox(self) -> List[MailItem]:
        items = self.outbox
        self.outbox = []
        return items


class MailBatch:
    """A window's mail for one destination shard, in column form.

    Process-parallel transport representation of a ``List[MailItem]``.
    The per-item ordering columns (``arrivals``/``skeys``/
    ``send_cycles``) travel as ``array('q')`` buffers, and the flits
    themselves as **one** opaque pickle blob per destination shard: the
    sending worker pickles its outbox exactly once (letting the pickle
    memo intern the stable ``Packet`` / ``StitchSegment`` tuple-state
    prefix shared by a packet's flits), the coordinator routes and
    validates on the header columns without ever unpickling the
    payload, and only the destination worker pays the single ``loads``.

    The per-item link identity columns are delta-encoded away: a
    shard's outbox drains link by link, and each boundary link's
    deliveries carry contiguous per-link sequence numbers, so the
    ``(src_cluster, dst_cluster, link_seq)`` triples collapse into a
    handful of *runs* ``(src, dst, first_seq, count)`` — ``runs[4k:4k+4]``
    describes ``count`` consecutive items from link ``src->dst``
    starting at sequence ``first_seq``.  That drops 24 header bytes per
    flit from the wire and lets the coordinator validate per link run
    instead of per item (:meth:`Mailbox.validate_batch`).
    """

    __slots__ = ("arrivals", "skeys", "send_cycles", "runs", "payload")

    def __init__(self, arrivals, skeys, send_cycles, runs, payload) -> None:
        self.arrivals = arrivals
        self.skeys = skeys
        self.send_cycles = send_cycles
        self.runs = runs
        self.payload = payload

    def __len__(self) -> int:
        return len(self.arrivals)

    @classmethod
    def encode(cls, items: List[MailItem]) -> "MailBatch":
        """Column-encode ``items`` (contexts must already be tokenized)."""
        arrivals = array("q")
        skeys = array("q")
        send_cycles = array("q")
        runs = array("q")
        flits = []
        run_src = run_dst = run_next_seq = None
        count = 0
        for item in items:
            arrivals.append(item.arrival)
            skeys.append(item.skey)
            send_cycles.append(item.send_cycle)
            flits.append(item.flit)
            if (
                item.src_cluster == run_src
                and item.dst_cluster == run_dst
                and item.link_seq == run_next_seq
            ):
                count += 1
                run_next_seq += 1
                continue
            if count:
                runs.extend((run_src, run_dst, run_next_seq - count, count))
            run_src = item.src_cluster
            run_dst = item.dst_cluster
            run_next_seq = item.link_seq + 1
            count = 1
        if count:
            runs.extend((run_src, run_dst, run_next_seq - count, count))
        return cls(
            arrivals=arrivals,
            skeys=skeys,
            send_cycles=send_cycles,
            runs=runs,
            payload=pickle.dumps(flits, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def iter_links(self):
        """Yield ``(src_cluster, dst_cluster, first_seq, count)`` runs."""
        runs = self.runs
        for k in range(0, len(runs), 4):
            yield runs[k], runs[k + 1], runs[k + 2], runs[k + 3]

    def decode(self) -> List[MailItem]:
        """Rebuild the ``MailItem`` list (destination worker side)."""
        flits = pickle.loads(self.payload)
        items: List[MailItem] = []
        index = 0
        for src, dst, first_seq, count in self.iter_links():
            for offset in range(count):
                items.append(
                    MailItem(
                        arrival=self.arrivals[index],
                        skey=self.skeys[index],
                        send_cycle=self.send_cycles[index],
                        src_cluster=src,
                        dst_cluster=dst,
                        link_seq=first_seq + offset,
                        flit=flits[index],
                    )
                )
                index += 1
        return items

    # batches cross the worker pipe inside command tuples; tuple state
    # keeps the pickled form to the raw column buffers plus the blob
    def __getstate__(self):
        return (
            self.arrivals,
            self.skeys,
            self.send_cycles,
            self.runs,
            self.payload,
        )

    def __setstate__(self, state):
        (
            self.arrivals,
            self.skeys,
            self.send_cycles,
            self.runs,
            self.payload,
        ) = state


class Mailbox:
    """Validates and orders boundary-flit batches between windows."""

    def __init__(self) -> None:
        #: (src_cluster, dst_cluster) -> last link_seq seen
        self._last_seq: Dict[Tuple[int, int], int] = {}

    def collate(self, items: List[MailItem], boundary: int) -> List[MailItem]:
        """Validate a window's outbox batch and return it in delivery order.

        ``boundary`` is the window-end cycle the batch was produced by;
        every arrival must lie strictly beyond it (the receiver has
        already simulated up to and including ``boundary``).
        """
        for item in items:
            if item.arrival <= boundary:
                raise LateDeliveryError(
                    f"flit {item.flit.fid} on link {item.src_cluster}->"
                    f"{item.dst_cluster} arrives at {item.arrival}, not "
                    f"beyond the window boundary {boundary}"
                )
            key = (item.src_cluster, item.dst_cluster)
            last = self._last_seq.get(key, -1)
            if item.link_seq <= last:
                raise DuplicateDeliveryError(
                    f"link {item.src_cluster}->{item.dst_cluster} sequence "
                    f"regressed: {item.link_seq} after {last}"
                )
            self._last_seq[key] = item.link_seq
        return sorted(items, key=MailItem.sort_key)

    def validate_batch(self, batch: MailBatch, boundary: int) -> None:
        """Header-only :meth:`collate` for a columnar batch.

        Checks every arrival lies strictly beyond the destination
        shard's simulated frontier ``boundary`` and that per-link
        sequence numbers stay monotone — without touching the flit
        payload blob, which stays opaque until the destination worker
        decodes it.  Both checks are per *link run*, not per item: the
        arrival floor is the C-speed column minimum, and sequence
        contiguity within a run is guaranteed by ``MailBatch.encode``
        (a non-contiguous sequence starts a new run), so advancing the
        per-link cursor by whole runs enforces exactly the per-item
        monotone contract :meth:`collate` checks.
        """
        if not len(batch):
            return
        if min(batch.arrivals) <= boundary:
            arrival = min(batch.arrivals)
            raise LateDeliveryError(
                f"boundary flit arrives at {arrival}, not beyond the "
                f"destination frontier {boundary}"
            )
        last_seq = self._last_seq
        for src, dst, first_seq, count in batch.iter_links():
            key = (src, dst)
            last = last_seq.get(key, -1)
            if first_seq <= last:
                raise DuplicateDeliveryError(
                    f"link {src}->{dst} sequence regressed: "
                    f"{first_seq} after {last}"
                )
            last_seq[key] = first_seq + count - 1
