"""System-level configuration (the paper's Table 2, plus scaled presets).

All bandwidths are bytes per cycle; with the 1 GHz clock of Table 2 this
equals GB/s, so the baseline's 128 GB/s intra-cluster and 16 GB/s
inter-cluster fabrics are simply 128.0 and 16.0.

Two scales are provided:

* :meth:`SystemConfig.table2` — the paper's full 64-CU-per-GPU node;
* :meth:`SystemConfig.default` — a proportionally scaled-down node
  (fewer CUs/wavefronts, same bandwidth *ratio* and memory parameters)
  that keeps pure-Python simulation times reasonable.  DESIGN.md §5
  documents why the scaling preserves the congestion regime that drives
  every result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.faults.config import FaultConfig


@dataclass(frozen=True)
class SystemConfig:
    """Structural and timing parameters of the multi-GPU node."""

    # topology
    n_clusters: int = 2
    gpus_per_cluster: int = 2
    #: inter-cluster fabric shape, resolved through the pluggable
    #: topology zoo (:mod:`repro.network.topologies`).  Shipped shapes:
    #: ``"mesh"`` (a direct link per cluster pair — the paper's
    #: two-cluster node trivially satisfies this), ``"ring"`` (adjacent
    #: neighbours, multi-hop shortest-path routing), ``"star"`` (a
    #: DGX-style central hub switch), ``"fat_tree"`` (2-level
    #: leaf/spine), ``"torus3d"`` (wraparound 3D grid)
    inter_topology: str = "mesh"
    #: per-bandwidth-class overrides for inter-switch links, as a sorted
    #: tuple of ``(class_name, bytes_per_cycle)`` pairs (a dict is
    #: accepted and normalized).  Classes not listed fall back to
    #: ``inter_cluster_bw``; valid names come from the topology's
    #: ``bw_classes`` (e.g. ``up``/``down`` for star and fat_tree,
    #: ``x``/``y``/``z`` for torus3d, ``inter`` for mesh/ring)
    link_bw_overrides: Tuple[Tuple[str, float], ...] = ()
    #: fat_tree only: spine-tier thinning factor; the spine count is
    #: ``max(1, n_clusters // (2 * oversubscription))``
    fat_tree_oversubscription: int = 1
    #: torus3d only: the ``(x, y, z)`` grid; ``None`` picks the most
    #: cube-like factorization of ``n_clusters``
    torus_dims: Optional[Tuple[int, int, int]] = None
    # compute
    cus_per_gpu: int = 8
    max_wavefronts_per_cu: int = 8
    compute_delay: int = 4  # cycles between a wavefront's memory ops
    #: outstanding memory accesses per wavefront (memory pipelining)
    wavefront_mlp: int = 4
    # network
    flit_size: int = 16
    intra_cluster_bw: float = 128.0  # bytes/cycle == GB/s at 1 GHz
    inter_cluster_bw: float = 16.0
    link_latency: int = 8
    #: latency override for inter-cluster links only; ``None`` uses
    #: ``link_latency``.  The inter-cluster latency is the conservative
    #: lookahead window for cluster-sharded execution, so scaling
    #: studies of slower fabrics also widen the synchronization window.
    inter_link_latency: Optional[int] = None
    switch_latency: int = 30
    switch_buffer_entries: int = 1024
    # L1 (per CU)
    l1_size: int = 64 * 1024
    l1_ways: int = 4
    l1_latency: int = 20
    l1_mshr_entries: int = 32
    l1_sector_bytes: int = 16
    #: ``"line"`` = conventional fills; ``"sector"`` = the all-trimming
    #: sector-cache baseline of Section 5.3
    l1_fetch_mode: str = "line"
    # L1 TLB (per CU); the default preset scales TLB reach down with the
    # working sets so translation pressure matches the paper's regime
    l1_tlb_entries: int = 16
    l1_tlb_latency: int = 1
    # L2 (per GPU)
    l2_size: int = 4 * 1024 * 1024
    l2_ways: int = 16
    l2_banks: int = 16
    l2_latency: int = 100
    l2_mshr_entries: int = 64
    # L2 TLB (per GPU)
    l2_tlb_entries: int = 64
    l2_tlb_assoc: int = 8
    l2_tlb_latency: int = 10
    # GMMU
    pwc_entries: int = 16
    pwc_latency: int = 10
    n_walkers: int = 16
    walk_mshr_entries: int = 64
    # memory
    line_bytes: int = 64
    dram_latency: int = 100
    dram_bytes_per_cycle: float = 1024.0
    dram_max_outstanding: int = 64
    #: ``"software"`` = the paper's baseline (L1s flushed at kernel
    #: boundaries); ``"hardware"`` = the directory/invalidation extension
    #: of Section 4.5's future work (see repro.memory.coherence)
    coherence: str = "software"
    #: deterministic fault injection + link reliability (repro.faults);
    #: the default is fully inert — no machinery is attached and results
    #: are byte-identical to a fault-free build.  A frozen shared default
    #: instance is safe: FaultConfig is itself frozen.
    faults: FaultConfig = FaultConfig()

    def __post_init__(self) -> None:
        if self.l1_fetch_mode not in ("line", "sector"):
            raise ValueError("l1_fetch_mode must be 'line' or 'sector'")
        if self.n_clusters < 1 or self.gpus_per_cluster < 1:
            raise ValueError("topology must have at least one cluster and GPU")
        if self.coherence not in ("software", "hardware"):
            raise ValueError("coherence must be 'software' or 'hardware'")
        if self.inter_link_latency is not None and self.inter_link_latency < 1:
            raise ValueError("inter_link_latency must be at least 1 cycle")
        if not isinstance(self.faults, FaultConfig):
            raise ValueError("faults must be a repro.faults FaultConfig")
        self._validate_topology()

    def _validate_topology(self) -> None:
        """Resolve and validate the fabric shape through the topology zoo.

        Imported lazily: :mod:`repro.network.topologies` is standalone
        (it imports nothing from ``repro``), but importing it at module
        level here would cycle through ``repro.network.__init__`` back
        into this module.
        """
        from repro.network.topologies import get_topology

        if self.fat_tree_oversubscription < 1:
            raise ValueError(
                "fat_tree_oversubscription must be >= 1, got "
                f"{self.fat_tree_oversubscription}"
            )
        if self.torus_dims is not None and not isinstance(self.torus_dims, tuple):
            object.__setattr__(self, "torus_dims", tuple(self.torus_dims))
        overrides = self.link_bw_overrides
        if isinstance(overrides, dict):
            overrides = overrides.items()
        try:
            normalized = tuple(
                sorted((str(cls), float(bw)) for cls, bw in overrides)
            )
        except (TypeError, ValueError):
            raise ValueError(
                "link_bw_overrides must map bandwidth-class names to "
                f"bytes/cycle, got {self.link_bw_overrides!r}"
            ) from None
        object.__setattr__(self, "link_bw_overrides", normalized)
        spec = get_topology(self.inter_topology)  # raises on unknown name
        spec.validate(self)
        for cls, bw in normalized:
            if cls not in spec.bw_classes:
                raise ValueError(
                    f"bandwidth class {cls!r} is not used by topology "
                    f"{self.inter_topology!r} "
                    f"(classes: {', '.join(spec.bw_classes)})"
                )
            if bw <= 0:
                raise ValueError(
                    f"bandwidth override for class {cls!r} must be "
                    f"positive, got {bw}"
                )

    # -- topology helpers ----------------------------------------------------

    @property
    def n_gpus(self) -> int:
        return self.n_clusters * self.gpus_per_cluster

    def cluster_of(self, gpu: int) -> int:
        if not 0 <= gpu < self.n_gpus:
            raise ValueError(f"no such GPU {gpu}")
        return gpu // self.gpus_per_cluster

    def gpus_in_cluster(self, cluster: int) -> range:
        start = cluster * self.gpus_per_cluster
        return range(start, start + self.gpus_per_cluster)

    @property
    def bandwidth_ratio(self) -> float:
        return self.intra_cluster_bw / self.inter_cluster_bw

    def bandwidth_of(self, bw_class: str) -> float:
        """Bytes/cycle for an inter-switch link of ``bw_class``.

        Per-class overrides (``link_bw_overrides``) win; everything else
        runs at the uniform ``inter_cluster_bw``.
        """
        for cls, bw in self.link_bw_overrides:
            if cls == bw_class:
                return bw
        return self.inter_cluster_bw

    @property
    def effective_inter_link_latency(self) -> int:
        """Latency of inter-cluster links (the sharding lookahead window)."""
        if self.inter_link_latency is not None:
            return self.inter_link_latency
        return self.link_latency

    def with_overrides(self, **kwargs) -> "SystemConfig":
        return replace(self, **kwargs)

    # -- presets ------------------------------------------------------------

    @classmethod
    def default(cls) -> "SystemConfig":
        """Scaled-down node used by tests and quick experiments."""
        return cls()

    @classmethod
    def table2(cls) -> "SystemConfig":
        """The paper's full baseline configuration (slow in pure Python)."""
        return cls(
            cus_per_gpu=64,
            max_wavefronts_per_cu=16,
            l1_tlb_entries=32,
            l2_tlb_entries=512,
            pwc_entries=32,
        )

    @classmethod
    def ideal(cls, base: "SystemConfig" = None) -> "SystemConfig":
        """All links at intra-cluster bandwidth (Figure 3's upper bound)."""
        base = base or cls.default()
        return base.with_overrides(inter_cluster_bw=base.intra_cluster_bw)

    @classmethod
    def sector_cache_baseline(
        cls, base: "SystemConfig" = None, sector_bytes: int = 16
    ) -> "SystemConfig":
        """The Section 5.3 comparison: sectored L1 fills everywhere."""
        base = base or cls.default()
        return base.with_overrides(l1_fetch_mode="sector", l1_sector_bytes=sector_bytes)
