"""Topology builder: clusters, switches, links, egress controllers.

Builds the Figure 2 node generalized over the pluggable topology zoo
(:mod:`repro.network.topologies`): each GPU cluster has one switch; GPUs
connect to their cluster switch over intra-cluster bandwidth links; and
the cluster switches are wired by the registered
:class:`~repro.network.topologies.TopologySpec` named by
``config.inter_topology`` — its directed edges become inter-cluster
links (each guarded by an egress controller supplied by a factory so
this module stays independent of :mod:`repro.core`), its per-edge
bandwidth classes resolve through ``config.bandwidth_of``, and its
shortest-path routing table is installed on every built switch.

Topologies with virtual switch nodes (a star hub, fat-tree spines) get
extra :class:`~repro.network.switch.ClusterSwitch` instances with node
ids ``>= n_clusters`` and no attached GPUs; packets store-and-forward
through them paying the switch pipeline latency and re-entering that
hop's egress controller, exactly as ring forwarding always has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.config import SystemConfig
from repro.network.link import DELIVERY_RANK_SPAN, FlitLink, PacketLink
from repro.network.switch import ClusterSwitch
from repro.network.topologies import TopologySpec, get_topology
from repro.sim.engine import Engine

#: ControllerFactory(name, link, src_cluster, dst_cluster) -> controller
ControllerFactory = Callable[[str, FlitLink, int, int], object]

#: BoundaryLinkFactory(name, bytes_per_cycle, latency, src, dst) -> FlitLink
#: whose delivery captures flits for cross-shard mailbox transport
BoundaryLinkFactory = Callable[[str, float, int, int, int], FlitLink]


def topology_spec(config: SystemConfig) -> TopologySpec:
    """The registered spec for ``config.inter_topology``."""
    return get_topology(config.inter_topology)


def inter_pairs(config: SystemConfig) -> List[Tuple[int, int]]:
    """Ordered (src, dst) node pairs, in canonical wiring order.

    This order defines ``Topology.inter_links`` (and the matching
    controller list), and is the contract sharded result merging relies
    on: every registered topology emits its edges with ``src``
    ascending, so a shard owning a contiguous node range contributes a
    contiguous slice, and concatenating shard slices in shard order
    reproduces the global order.  (Virtual switch nodes carry ids above
    every real cluster and belong to the last shard, so they extend the
    last slice without breaking contiguity.)
    """
    return [(e.src, e.dst) for e in topology_spec(config).edges(config)]


def delivery_span_for(n_nodes: int) -> int:
    """Per-sequence delivery-rank span for an ``n_nodes``-switch fabric.

    Ranks are ``src * n_nodes + dst < n_nodes**2``, so the span is the
    smallest power of two >= ``n_nodes**2`` that is at least the
    historical :data:`~repro.network.link.DELIVERY_RANK_SPAN` — for any
    fabric of up to 64 switches the span (and therefore every schedule
    key) is unchanged, and beyond that the span grows instead of
    silently aliasing same-cycle delivery order across links.
    """
    span = DELIVERY_RANK_SPAN
    needed = n_nodes * n_nodes
    while span < needed:
        span *= 2
    return span


@dataclass
class Topology:
    """All network components of one built system."""

    switches: Dict[int, ClusterSwitch] = field(default_factory=dict)
    gpu_uplinks: Dict[int, PacketLink] = field(default_factory=dict)
    gpu_downlinks: Dict[int, PacketLink] = field(default_factory=dict)
    inter_links: List[FlitLink] = field(default_factory=list)
    controllers: List[object] = field(default_factory=list)

    def intra_links(self) -> List[PacketLink]:
        return list(self.gpu_uplinks.values()) + list(self.gpu_downlinks.values())


def build_topology(
    engine: Engine,
    config: SystemConfig,
    gpus: Dict[int, object],
    controller_factory: ControllerFactory,
    owned_clusters: Optional[Set[int]] = None,
    boundary_link_factory: Optional[BoundaryLinkFactory] = None,
) -> Topology:
    """Wire GPUs, switches, links and egress controllers together.

    ``gpus`` maps gpu_id -> an object exposing ``attach_uplink`` and
    ``receive_packet`` (the :class:`repro.gpu.gpu.Gpu` assembly).

    With ``owned_clusters`` set, only that subset of the node is built
    (one cluster shard): switches and intra links for owned nodes, and
    the *outgoing* inter links of owned source nodes.  Links whose
    destination lives in another shard are created through
    ``boundary_link_factory`` so serialization/pacing behave identically
    while delivery goes to a cross-shard outbox instead of a local sink.
    """
    if owned_clusters is not None and boundary_link_factory is None:
        raise ValueError("partial topologies require a boundary_link_factory")
    spec = topology_spec(config)
    n_nodes = spec.n_nodes(config)
    topo = Topology()
    cluster_of_gpu = {g: config.cluster_of(g) for g in range(config.n_gpus)}

    nodes = (
        range(n_nodes) if owned_clusters is None else sorted(owned_clusters)
    )
    for node in nodes:
        topo.switches[node] = ClusterSwitch(
            engine,
            f"switch{node}",
            cluster_id=node,
            cluster_of_gpu=cluster_of_gpu,
            pipeline_latency=config.switch_latency,
            flit_size=config.flit_size,
        )

    for gpu_id, gpu in gpus.items():
        cluster = cluster_of_gpu[gpu_id]
        switch = topo.switches[cluster]
        uplink = PacketLink(
            engine,
            f"gpu{gpu_id}->switch{cluster}",
            bytes_per_cycle=config.intra_cluster_bw,
            latency=config.link_latency,
            flit_size=config.flit_size,
            sink=switch.receive_packet_from_gpu,
            buffer_entries=config.switch_buffer_entries,
        )
        downlink = PacketLink(
            engine,
            f"switch{cluster}->gpu{gpu_id}",
            bytes_per_cycle=config.intra_cluster_bw,
            latency=config.link_latency,
            flit_size=config.flit_size,
            sink=gpu.receive_packet,
            buffer_entries=config.switch_buffer_entries,
        )
        gpu.attach_uplink(uplink)
        switch.attach_gpu_link(gpu_id, downlink)
        topo.gpu_uplinks[gpu_id] = uplink
        topo.gpu_downlinks[gpu_id] = downlink

    span = delivery_span_for(n_nodes)
    for edge in spec.edges(config):
        if owned_clusters is not None and edge.src not in owned_clusters:
            continue
        _add_inter_link(
            engine,
            config,
            topo,
            controller_factory,
            edge,
            n_nodes,
            span,
            owned_clusters,
            boundary_link_factory,
        )

    for (node, dst), via in spec.routes(config).items():
        if node in topo.switches:
            topo.switches[node].set_route(dst, via)

    return topo


def _add_inter_link(
    engine,
    config,
    topo,
    controller_factory,
    edge,
    n_nodes: int,
    span: int,
    owned_clusters: Optional[Set[int]] = None,
    boundary_link_factory: Optional[BoundaryLinkFactory] = None,
) -> None:
    src, dst = edge.src, edge.dst
    name = f"switch{src}->switch{dst}"
    latency = config.effective_inter_link_latency
    bandwidth = config.bandwidth_of(edge.bw_class)
    if owned_clusters is not None and dst not in owned_clusters:
        link = boundary_link_factory(name, bandwidth, latency, src, dst)
    else:
        link = FlitLink(
            engine,
            name,
            bytes_per_cycle=bandwidth,
            latency=latency,
            sink=topo.switches[dst].receive_flit_from_network,
        )
    # deterministic same-cycle delivery order across links: the directed
    # pair's index, identical whether the link is local or a shard
    # boundary.  The span scales with the node count so ranks can never
    # alias across a sequence step (rank < span is asserted, not hoped).
    rank = src * n_nodes + dst
    if rank >= span:
        raise ValueError(
            f"delivery rank {rank} for link {name} exceeds span {span}"
        )
    link.delivery_rank = rank
    link.delivery_span = span
    controller = controller_factory(f"egress{src}->{dst}", link, src, dst)
    topo.switches[src].attach_egress(dst, controller)
    topo.inter_links.append(link)
    topo.controllers.append(controller)
