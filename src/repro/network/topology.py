"""Topology builder: clusters, switches, links, egress controllers.

Builds the Figure 2 node: each cluster has one switch; GPUs connect to
their cluster switch over intra-cluster bandwidth links; cluster
switches connect pairwise over inter-cluster bandwidth links, each
guarded by an egress controller (NetCrafter or pass-through) supplied by
a factory so this module stays independent of :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.config import SystemConfig
from repro.network.link import FlitLink, PacketLink
from repro.network.switch import ClusterSwitch
from repro.sim.engine import Engine

#: ControllerFactory(name, link, src_cluster, dst_cluster) -> controller
ControllerFactory = Callable[[str, FlitLink, int, int], object]

#: BoundaryLinkFactory(name, bytes_per_cycle, latency, src, dst) -> FlitLink
#: whose delivery captures flits for cross-shard mailbox transport
BoundaryLinkFactory = Callable[[str, float, int, int, int], FlitLink]


def inter_pairs(config: SystemConfig) -> List[Tuple[int, int]]:
    """Ordered (src, dst) cluster pairs, in canonical wiring order.

    This order defines ``Topology.inter_links`` (and the matching
    controller list), and is the contract sharded result merging relies
    on: it iterates ``src`` ascending, so a shard owning a contiguous
    cluster range contributes a contiguous slice, and concatenating
    shard slices in shard order reproduces the global order.
    """
    n = config.n_clusters
    if config.inter_topology == "ring" and n > 2:
        return [(src, dst) for src in range(n) for dst in ((src + 1) % n, (src - 1) % n)]
    return [(src, dst) for src in range(n) for dst in range(n) if src != dst]


@dataclass
class Topology:
    """All network components of one built system."""

    switches: Dict[int, ClusterSwitch] = field(default_factory=dict)
    gpu_uplinks: Dict[int, PacketLink] = field(default_factory=dict)
    gpu_downlinks: Dict[int, PacketLink] = field(default_factory=dict)
    inter_links: List[FlitLink] = field(default_factory=list)
    controllers: List[object] = field(default_factory=list)

    def intra_links(self) -> List[PacketLink]:
        return list(self.gpu_uplinks.values()) + list(self.gpu_downlinks.values())


def build_topology(
    engine: Engine,
    config: SystemConfig,
    gpus: Dict[int, object],
    controller_factory: ControllerFactory,
    owned_clusters: Optional[Set[int]] = None,
    boundary_link_factory: Optional[BoundaryLinkFactory] = None,
) -> Topology:
    """Wire GPUs, switches, links and egress controllers together.

    ``gpus`` maps gpu_id -> an object exposing ``attach_uplink`` and
    ``receive_packet`` (the :class:`repro.gpu.gpu.Gpu` assembly).

    With ``owned_clusters`` set, only that subset of the node is built
    (one cluster shard): switches and intra links for owned clusters,
    and the *outgoing* inter links of owned source clusters.  Links
    whose destination lives in another shard are created through
    ``boundary_link_factory`` so serialization/pacing behave identically
    while delivery goes to a cross-shard outbox instead of a local sink.
    """
    if owned_clusters is not None and boundary_link_factory is None:
        raise ValueError("partial topologies require a boundary_link_factory")
    topo = Topology()
    cluster_of_gpu = {g: config.cluster_of(g) for g in range(config.n_gpus)}

    clusters = (
        range(config.n_clusters)
        if owned_clusters is None
        else sorted(owned_clusters)
    )
    for cluster in clusters:
        topo.switches[cluster] = ClusterSwitch(
            engine,
            f"switch{cluster}",
            cluster_id=cluster,
            cluster_of_gpu=cluster_of_gpu,
            pipeline_latency=config.switch_latency,
            flit_size=config.flit_size,
        )

    for gpu_id, gpu in gpus.items():
        cluster = cluster_of_gpu[gpu_id]
        switch = topo.switches[cluster]
        uplink = PacketLink(
            engine,
            f"gpu{gpu_id}->switch{cluster}",
            bytes_per_cycle=config.intra_cluster_bw,
            latency=config.link_latency,
            flit_size=config.flit_size,
            sink=switch.receive_packet_from_gpu,
            buffer_entries=config.switch_buffer_entries,
        )
        downlink = PacketLink(
            engine,
            f"switch{cluster}->gpu{gpu_id}",
            bytes_per_cycle=config.intra_cluster_bw,
            latency=config.link_latency,
            flit_size=config.flit_size,
            sink=gpu.receive_packet,
            buffer_entries=config.switch_buffer_entries,
        )
        gpu.attach_uplink(uplink)
        switch.attach_gpu_link(gpu_id, downlink)
        topo.gpu_uplinks[gpu_id] = uplink
        topo.gpu_downlinks[gpu_id] = downlink

    for src, dst in inter_pairs(config):
        if owned_clusters is not None and src not in owned_clusters:
            continue
        _add_inter_link(
            engine,
            config,
            topo,
            controller_factory,
            src,
            dst,
            owned_clusters,
            boundary_link_factory,
        )

    if config.inter_topology == "ring" and config.n_clusters > 2:
        # shortest-path next-hop routes, distance ties clockwise; packets
        # reassemble at every intermediate switch (store-and-forward per
        # hop), pay its pipeline latency, and re-enter that hop's egress
        # controller — so NetCrafter stitches per link, consistent with
        # the paper's same-route constraint
        n = config.n_clusters
        for src in clusters:
            for dst in range(n):
                if src == dst:
                    continue
                clockwise = (dst - src) % n
                counter = (src - dst) % n
                via = (src + 1) % n if clockwise <= counter else (src - 1) % n
                topo.switches[src].set_route(dst, via)

    return topo


def _add_inter_link(
    engine,
    config,
    topo,
    controller_factory,
    src: int,
    dst: int,
    owned_clusters: Optional[Set[int]] = None,
    boundary_link_factory: Optional[BoundaryLinkFactory] = None,
) -> None:
    name = f"switch{src}->switch{dst}"
    latency = config.effective_inter_link_latency
    if owned_clusters is not None and dst not in owned_clusters:
        link = boundary_link_factory(
            name, config.inter_cluster_bw, latency, src, dst
        )
    else:
        link = FlitLink(
            engine,
            name,
            bytes_per_cycle=config.inter_cluster_bw,
            latency=latency,
            sink=topo.switches[dst].receive_flit_from_network,
        )
    # deterministic same-cycle delivery order across links: the directed
    # pair's index, identical whether the link is local or a shard boundary
    link.delivery_rank = src * config.n_clusters + dst
    controller = controller_factory(f"egress{src}->{dst}", link, src, dst)
    topo.switches[src].attach_egress(dst, controller)
    topo.inter_links.append(link)
    topo.controllers.append(controller)
