"""Topology builder: clusters, switches, links, egress controllers.

Builds the Figure 2 node: each cluster has one switch; GPUs connect to
their cluster switch over intra-cluster bandwidth links; cluster
switches connect pairwise over inter-cluster bandwidth links, each
guarded by an egress controller (NetCrafter or pass-through) supplied by
a factory so this module stays independent of :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.config import SystemConfig
from repro.network.link import FlitLink, PacketLink
from repro.network.switch import ClusterSwitch
from repro.sim.engine import Engine

#: ControllerFactory(name, link, src_cluster, dst_cluster) -> controller
ControllerFactory = Callable[[str, FlitLink, int, int], object]


@dataclass
class Topology:
    """All network components of one built system."""

    switches: Dict[int, ClusterSwitch] = field(default_factory=dict)
    gpu_uplinks: Dict[int, PacketLink] = field(default_factory=dict)
    gpu_downlinks: Dict[int, PacketLink] = field(default_factory=dict)
    inter_links: List[FlitLink] = field(default_factory=list)
    controllers: List[object] = field(default_factory=list)

    def intra_links(self) -> List[PacketLink]:
        return list(self.gpu_uplinks.values()) + list(self.gpu_downlinks.values())


def build_topology(
    engine: Engine,
    config: SystemConfig,
    gpus: Dict[int, object],
    controller_factory: ControllerFactory,
) -> Topology:
    """Wire GPUs, switches, links and egress controllers together.

    ``gpus`` maps gpu_id -> an object exposing ``attach_uplink`` and
    ``receive_packet`` (the :class:`repro.gpu.gpu.Gpu` assembly).
    """
    topo = Topology()
    cluster_of_gpu = {g: config.cluster_of(g) for g in range(config.n_gpus)}

    for cluster in range(config.n_clusters):
        topo.switches[cluster] = ClusterSwitch(
            engine,
            f"switch{cluster}",
            cluster_id=cluster,
            cluster_of_gpu=cluster_of_gpu,
            pipeline_latency=config.switch_latency,
            flit_size=config.flit_size,
        )

    for gpu_id, gpu in gpus.items():
        cluster = cluster_of_gpu[gpu_id]
        switch = topo.switches[cluster]
        uplink = PacketLink(
            engine,
            f"gpu{gpu_id}->switch{cluster}",
            bytes_per_cycle=config.intra_cluster_bw,
            latency=config.link_latency,
            flit_size=config.flit_size,
            sink=switch.receive_packet_from_gpu,
            buffer_entries=config.switch_buffer_entries,
        )
        downlink = PacketLink(
            engine,
            f"switch{cluster}->gpu{gpu_id}",
            bytes_per_cycle=config.intra_cluster_bw,
            latency=config.link_latency,
            flit_size=config.flit_size,
            sink=gpu.receive_packet,
            buffer_entries=config.switch_buffer_entries,
        )
        gpu.attach_uplink(uplink)
        switch.attach_gpu_link(gpu_id, downlink)
        topo.gpu_uplinks[gpu_id] = uplink
        topo.gpu_downlinks[gpu_id] = downlink

    if config.inter_topology == "ring" and config.n_clusters > 2:
        _wire_ring(engine, config, topo, controller_factory)
    else:
        _wire_mesh(engine, config, topo, controller_factory)

    return topo


def _add_inter_link(engine, config, topo, controller_factory, src: int, dst: int) -> None:
    link = FlitLink(
        engine,
        f"switch{src}->switch{dst}",
        bytes_per_cycle=config.inter_cluster_bw,
        latency=config.link_latency,
        sink=topo.switches[dst].receive_flit_from_network,
    )
    controller = controller_factory(f"egress{src}->{dst}", link, src, dst)
    topo.switches[src].attach_egress(dst, controller)
    topo.inter_links.append(link)
    topo.controllers.append(controller)


def _wire_mesh(engine, config, topo, controller_factory) -> None:
    """A direct inter-cluster link (and controller) per ordered pair."""
    for src in range(config.n_clusters):
        for dst in range(config.n_clusters):
            if src != dst:
                _add_inter_link(engine, config, topo, controller_factory, src, dst)


def _wire_ring(engine, config, topo, controller_factory) -> None:
    """Adjacent-cluster links only, with shortest-path next-hop routes.

    Distance ties break clockwise.  Packets reassemble at every
    intermediate switch (store-and-forward per hop), pay its pipeline
    latency, and re-enter that hop's egress controller — so NetCrafter
    stitches per link, consistent with the paper's same-route constraint.
    """
    n = config.n_clusters
    for src in range(n):
        for dst in ((src + 1) % n, (src - 1) % n):
            _add_inter_link(engine, config, topo, controller_factory, src, dst)
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            clockwise = (dst - src) % n
            counter = (src - dst) % n
            via = (src + 1) % n if clockwise <= counter else (src - 1) % n
            topo.switches[src].set_route(dst, via)
