"""Interconnect substrate: packets, flits, links, switches, topology.

Models the paper's Akita-style network: a simplified PCIe-like protocol
with six packet types (Table 1), fixed-size flits, bandwidth-serialized
links, and cluster switches with a 30-cycle processing pipeline and
bounded I/O buffers.
"""

from repro.network.packet import (
    Packet,
    PacketType,
    HEADER_BYTES,
    PAYLOAD_BYTES,
    packet_census_row,
)
from repro.network.flit import Flit, StitchKind, StitchSegment, segment_packet
from repro.network.link import FlitLink, PacketLink
from repro.network.switch import ClusterSwitch, ReassemblyBuffer, RoutingError
from repro.network.topologies import (
    TopologySpec,
    get_topology,
    register_topology,
    topology_names,
)
from repro.network.topology import Topology, build_topology

__all__ = [
    "RoutingError",
    "TopologySpec",
    "get_topology",
    "register_topology",
    "topology_names",
    "Packet",
    "PacketType",
    "HEADER_BYTES",
    "PAYLOAD_BYTES",
    "packet_census_row",
    "Flit",
    "StitchKind",
    "StitchSegment",
    "segment_packet",
    "FlitLink",
    "PacketLink",
    "ClusterSwitch",
    "ReassemblyBuffer",
    "Topology",
    "build_topology",
]
