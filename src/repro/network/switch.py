"""Cluster switch: routing, pipeline latency, and flit reassembly.

Each GPU cluster has one switch (Figure 2).  The switch routes packets
between its local GPUs and, via egress controllers (NetCrafter or a
pass-through baseline), toward remote clusters.  Every packet or
reassembled flit stream pays the 30-cycle data-processing pipeline of
Table 2 before being routed; throughput is one flit per cycle per port,
which the attached links enforce.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.faults.process import CorruptedTransmission
from repro.obs.tracer import Traced
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.network.flit import Flit
from repro.network.link import PacketLink
from repro.network.packet import Packet


class RoutingError(RuntimeError):
    """A switch had no egress toward a packet's destination cluster.

    Raised instead of the old silent fallback (assume a direct link and
    die in an opaque ``KeyError``), so a topology with a missing or
    wrong route table entry fails loudly, naming the switch, the
    destination, and what routes/ports it actually has.
    """


class DuplicateFlitError(RuntimeError):
    """A flit index arrived twice (or out of range) for the same packet.

    The old reassembly bookkeeping only *counted* flits per packet id, so
    a duplicated delivery (a routing or stitching bug upstream) silently
    completed the packet early — with one real flit still in flight that
    would then corrupt the next packet reusing the id slot.  Reassembly
    now tracks exactly which indices arrived and refuses impossible ones.
    """


class ReassemblyBuffer:
    """Reassembles packets from flits arriving on an inter-cluster link.

    Stitched flits are un-stitched first: every absorbed flit counts
    toward its own packet, matched by packet ID exactly as the paper's
    receiving Stitch Engine does with the ID/Size metadata.

    Per packet, a bitmask records which flit indices have arrived; the
    packet completes when every index is present, and a repeated or
    out-of-range index raises :class:`DuplicateFlitError` immediately.
    """

    def __init__(self, flit_size: int, on_packet: Callable[[Packet], None]) -> None:
        self.flit_size = flit_size
        self.on_packet = on_packet
        #: pid -> bitmask of flit indices received so far
        self._received: Dict[int, int] = {}
        self.flits_unstitched = 0
        self.packets_reassembled = 0

    def receive(self, flit: Flit) -> None:
        """Account one arriving wire flit (plus anything stitched in it)."""
        self._account(flit)
        segments = flit.segments
        if segments:
            self.flits_unstitched += len(segments)
            for segment in segments:
                self._account(segment.flit)

    def _account(self, flit: Flit) -> None:
        packet = flit.packet
        expected = packet.flit_count(self.flit_size)
        index = flit.index
        if index >= expected:
            raise DuplicateFlitError(
                f"flit {flit.fid} has index {index} but packet "
                f"{packet.pid} only occupies {expected} flit(s)"
            )
        bit = 1 << index
        mask = self._received.get(packet.pid, 0)
        if mask & bit:
            raise DuplicateFlitError(
                f"flit index {index} of packet {packet.pid} delivered "
                f"twice (flit {flit.fid})"
            )
        mask |= bit
        if mask != (1 << expected) - 1:
            self._received[packet.pid] = mask
            return
        self._received.pop(packet.pid, None)
        self.packets_reassembled += 1
        self.on_packet(packet)

    def pending_packets(self) -> int:
        """Packets with some but not all flits received."""
        return len(self._received)


class ClusterSwitch(Traced, Component):
    """One cluster's crossbar switch.

    Wiring (done by the topology builder):

    * ``attach_gpu_link`` — the switch->GPU downlink for each local GPU;
    * ``attach_egress`` — an egress controller per remote cluster, which
      owns the inter-cluster :class:`~repro.network.link.FlitLink`;
    * incoming traffic enters via :meth:`receive_packet_from_gpu` (from a
      GPU's uplink) and :meth:`receive_flit_from_network` (from a remote
      switch's egress link).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        cluster_id: int,
        cluster_of_gpu: Dict[int, int],
        pipeline_latency: int = 30,
        flit_size: int = 16,
    ) -> None:
        super().__init__(engine, name)
        self.cluster_id = cluster_id
        self.cluster_of_gpu = cluster_of_gpu
        self.pipeline_latency = pipeline_latency
        self.flit_size = flit_size
        self._gpu_links: Dict[int, PacketLink] = {}
        self._egress: Dict[int, "EgressControllerProtocol"] = {}
        #: dst cluster -> neighbouring node whose egress link to use;
        #: identity by default (direct mesh), installed from the
        #: topology spec's route table for multi-hop fabrics
        self._next_hop: Dict[int, int] = {}
        self.reassembly = ReassemblyBuffer(flit_size, self._on_packet_reassembled)
        self.packets_routed = 0

    #: fault layer: set by :meth:`attach_crc`, enabling the modeled CRC
    #: check at network ingress (class-attribute default keeps the
    #: fault-free path to one falsy test)
    _crc_stats = None

    # -- wiring -----------------------------------------------------------

    def attach_crc(self, fault_stats) -> None:
        """Enable per-flit CRC checking at this switch's network ingress."""
        self._crc_stats = fault_stats

    def attach_gpu_link(self, gpu_id: int, link: PacketLink) -> None:
        self._gpu_links[gpu_id] = link

    def attach_egress(self, dst_cluster: int, controller: "EgressControllerProtocol") -> None:
        self._egress[dst_cluster] = controller

    def set_route(self, dst_cluster: int, via_cluster: int) -> None:
        """Route traffic for ``dst_cluster`` over the ``via_cluster`` link."""
        self._next_hop[dst_cluster] = via_cluster

    @property
    def egress_controllers(self) -> Dict[int, "EgressControllerProtocol"]:
        return dict(self._egress)

    # -- ingress ----------------------------------------------------------

    def receive_packet_from_gpu(self, packet: Packet) -> None:
        """A local GPU injected a packet; route it after the pipeline."""
        self.schedule(self.pipeline_latency, self._route, packet)

    def receive_flit_from_network(self, flit: Flit) -> None:
        """A flit arrived from a remote cluster; un-stitch and reassemble."""
        if self._crc_stats is not None:
            if type(flit) is CorruptedTransmission:
                # CRC failure: discard the whole wire flit (stitched
                # children included) — the sender's NACK path already
                # scheduled the retransmission, so nothing here may
                # reach reassembly (its duplicate guard would trip on
                # the retransmitted copy otherwise)
                self._crc_stats.crc_fail += 1
                if self._trace_on:
                    self._tracer.flit_event(
                        self.now, "corrupt", flit.flit, lane=self.name
                    )
                return
            self._crc_stats.crc_ok += 1
            if self._trace_on:
                self._tracer.flit_event(self.now, "crc_ok", flit, lane=self.name)
        if self._trace_on:
            # one deliver per carried flit: the wire flit itself plus any
            # stitched children recovered by un-stitching here
            for carried in flit.all_carried_flits():
                self._tracer.flit_event(
                    self.now,
                    "deliver",
                    carried,
                    lane=self.name,
                    via=flit.fid,
                )
        self.reassembly.receive(flit)

    def _on_packet_reassembled(self, packet: Packet) -> None:
        self.schedule(self.pipeline_latency, self._route, packet)

    # -- routing ----------------------------------------------------------

    def _route(self, packet: Packet) -> None:
        dst_cluster = self.cluster_of_gpu[packet.dst_gpu]
        self.packets_routed += 1
        if dst_cluster == self.cluster_id:
            self._forward_local(packet)
        else:
            via = self._next_hop.get(dst_cluster, dst_cluster)
            egress = self._egress.get(via)
            if egress is None:
                raise RoutingError(
                    f"{self.name} (node {self.cluster_id}) cannot route "
                    f"packet {packet.pid} toward cluster {dst_cluster}: "
                    f"next hop {via} has no egress port "
                    f"(egress ports: {sorted(self._egress)}; "
                    f"installed routes: {dict(sorted(self._next_hop.items()))})"
                )
            egress.accept_packet(packet)

    def _forward_local(self, packet: Packet) -> None:
        link = self._gpu_links[packet.dst_gpu]
        if not link.send(packet):
            self.packets_routed -= 1  # retry will re-count
            link.notify_on_space(lambda: self._route(packet))


class EgressControllerProtocol:
    """Duck-typed interface implemented by controllers in ``repro.core``."""

    def accept_packet(self, packet: Packet) -> None:  # pragma: no cover
        raise NotImplementedError
