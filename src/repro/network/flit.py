"""Flit model: fixed-size flow-control units, with stitching support.

Packets are segmented into fixed-size flits before crossing a link.  A
flit knows how many of its bytes are useful (``used_bytes``); the rest is
padding.  NetCrafter's Stitch Engine absorbs compatible flits into the
padding of a *parent* flit; the absorbed flits ride along as
:class:`StitchSegment` entries and are recovered by un-stitching at the
receiving switch (Section 4.2).

Stitching cost model (Figure 10):

* a **whole-packet** candidate (single-flit packet, header included)
  costs exactly its used bytes;
* a **partial-payload** candidate (the header-less tail flit of a larger
  packet) additionally needs ``STITCH_METADATA_BYTES`` of ID + Size so
  the receiver can reunite it with the rest of its packet.

Flits are hot-path objects (the stitch scan touches every staged flit's
cost and padding once per ejection), so the dataclasses are slotted and
the per-flit quantities that a scan recomputed on every visit —
packet flit count, stitch cost, absorbed-byte totals — are cached at
segmentation time or maintained incrementally by :meth:`Flit.absorb`.
All of them are immutable after the flit exists: segmentation happens
*after* trimming, so the owning packet's layout can no longer change.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.network.ids import FLIT_IDS
from repro.network.packet import Packet

#: ID + Size prefix added when stitching a header-less payload fragment
#: (a 2-byte packet ID tag and a 1-byte size field, Section 4.2).
STITCH_METADATA_BYTES = 3


class StitchKind(enum.Enum):
    """How a candidate flit was embedded into its parent."""

    WHOLE_PACKET = "whole"
    PARTIAL_PAYLOAD = "partial"


@dataclass(slots=True)
class StitchSegment:
    """One absorbed candidate flit riding inside a parent flit."""

    kind: StitchKind
    flit: "Flit"

    @property
    def wire_bytes(self) -> int:
        """Bytes of the parent flit consumed by this segment."""
        extra = STITCH_METADATA_BYTES if self.kind is StitchKind.PARTIAL_PAYLOAD else 0
        return self.flit.used_bytes + extra

    # tuple state: cheaper than the default slot-dict when pickled inside
    # cross-shard mail batches (see Flit.__getstate__)
    def __getstate__(self):
        return (self.kind, self.flit)

    def __setstate__(self, state):
        self.kind, self.flit = state


@dataclass(eq=False, slots=True)
class Flit:
    """A fixed-size flow-control unit belonging to one packet.

    Identity semantics (``eq=False``): flits are unique wire objects.
    """

    packet: Packet
    index: int
    used_bytes: int
    flit_size: int
    fid: int = field(default_factory=FLIT_IDS)
    segments: List[StitchSegment] = field(default_factory=list)
    #: set once the flit has been through one pooling delay, so it is not
    #: pooled a second time
    pooled: bool = False
    #: arrival order in the Cluster Queue (age-based egress scheduling)
    cq_seq: int = 0
    #: owning packet's flit count, cached at segmentation (0 = not yet)
    pkt_flits: int = field(default=0, repr=False)
    #: cached :meth:`stitch_cost` (-1 = not yet computed)
    _cost: int = field(default=-1, repr=False)
    #: wire bytes consumed by absorbed segments (kept by :meth:`absorb`)
    _seg_wire_bytes: int = field(default=0, repr=False)
    #: payload bytes carried by absorbed segments
    _seg_payload_bytes: int = field(default=0, repr=False)

    @property
    def packet_flit_count(self) -> int:
        """Flit count of the owning packet, computed once."""
        count = self.pkt_flits
        if count == 0:
            count = self.packet.flit_count(self.flit_size)
            self.pkt_flits = count
        return count

    @property
    def empty_bytes(self) -> int:
        """Padding bytes still available for stitching."""
        return self.flit_size - self.used_bytes - self._seg_wire_bytes

    @property
    def useful_payload_bytes(self) -> int:
        """Payload bytes carried: this flit's plus every absorbed flit's.

        Excludes the ID/Size metadata of PARTIAL_PAYLOAD segments — that
        prefix is wire overhead spent to enable stitching, not payload.
        """
        return self.used_bytes + self._seg_payload_bytes

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet_flit_count - 1

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def dst_gpu(self) -> int:
        return self.packet.dst_gpu

    @property
    def is_ptw(self) -> bool:
        return self.packet._ptw

    @property
    def is_single_flit_packet(self) -> bool:
        """True when this flit carries an entire packet (header included)."""
        return self.packet_flit_count == 1

    def stitch_cost(self) -> int:
        """Bytes of parent-flit space this flit needs when stitched."""
        cost = self._cost
        if cost < 0:
            cost = self.used_bytes
            if self.packet_flit_count > 1:
                cost += STITCH_METADATA_BYTES
            self._cost = cost
        return cost

    def stitch_kind(self) -> StitchKind:
        if self.packet_flit_count == 1:
            return StitchKind.WHOLE_PACKET
        return StitchKind.PARTIAL_PAYLOAD

    def can_absorb(self, candidate: "Flit") -> bool:
        """Whether ``candidate`` fits into this flit's remaining padding.

        Per Section 4.2 only flits sharing the same route are combined; the
        destination check is performed by the Cluster Queue (flits are
        partitioned per destination cluster), so only size is checked here.
        """
        if candidate is self:
            return False
        if candidate.segments:
            # a flit that already absorbed others is itself a parent; the
            # controller never offers it as a candidate, but guard anyway
            return False
        return candidate.stitch_cost() <= self.empty_bytes

    def absorb(self, candidate: "Flit") -> StitchSegment:
        """Stitch ``candidate`` into this flit, returning the segment."""
        if not self.can_absorb(candidate):
            raise ValueError(
                f"flit {self.fid} cannot absorb candidate {candidate.fid}: "
                f"{candidate.stitch_cost()} B > {self.empty_bytes} B empty"
            )
        segment = StitchSegment(kind=candidate.stitch_kind(), flit=candidate)
        self.segments.append(segment)
        self._seg_wire_bytes += segment.wire_bytes
        self._seg_payload_bytes += candidate.used_bytes
        return segment

    def all_carried_flits(self) -> List["Flit"]:
        """This flit plus every flit stitched into it (for un-stitching)."""
        return [self] + [seg.flit for seg in self.segments]

    # Flits are the payload of cross-shard mailbox batches, pickled once
    # per lookahead window in process-parallel mode.  The default slotted
    # protocol emits a per-object {slot: value} dict; a flat tuple halves
    # the serialization cost on the coordinator's critical path.
    def __getstate__(self):
        return (
            self.packet,
            self.index,
            self.used_bytes,
            self.flit_size,
            self.fid,
            self.segments,
            self.pooled,
            self.cq_seq,
            self.pkt_flits,
            self._cost,
            self._seg_wire_bytes,
            self._seg_payload_bytes,
        )

    def __setstate__(self, state):
        (
            self.packet,
            self.index,
            self.used_bytes,
            self.flit_size,
            self.fid,
            self.segments,
            self.pooled,
            self.cq_seq,
            self.pkt_flits,
            self._cost,
            self._seg_wire_bytes,
            self._seg_payload_bytes,
        ) = state


def segment_packet(packet: Packet, flit_size: int) -> List[Flit]:
    """Split a packet into flits, assigning useful bytes per flit.

    The first flit carries the header (plus as much payload as fits);
    subsequent flits carry the remaining payload; the final flit's
    remainder is padding.
    """
    if flit_size <= 0:
        raise ValueError("flit size must be positive")
    total = packet.bytes_required
    count = packet.flit_count(flit_size)
    if count == 1:  # the common case: requests and acks fit in one flit
        return [
            Flit(
                packet=packet,
                index=0,
                used_bytes=total,
                flit_size=flit_size,
                pkt_flits=1,
            )
        ]
    flits: List[Flit] = []
    for index in range(count):
        used = min(flit_size, total - index * flit_size)
        flits.append(
            Flit(
                packet=packet,
                index=index,
                used_bytes=used,
                flit_size=flit_size,
                pkt_flits=count,
            )
        )
    return flits
