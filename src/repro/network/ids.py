"""Run-scoped packet/flit ID allocation.

``fid``/``pid`` used to be drawn from module-global ``itertools.count()``
streams, so the *second* simulation in a process saw IDs continuing where
the first left off.  Nothing in the simulator branches on absolute ID
values, but anything keyed on them — trace sampling keeps every Nth
packet by ``pid % sample``, and trace/validation artifacts embed raw IDs
— silently differed between an in-process repeat run and the same
configuration simulated in a fresh worker process.

IDs therefore come from explicit allocators that
:class:`~repro.gpu.system.MultiGpuSystem` resets at construction time,
making every run's ID stream start at zero regardless of what ran before
it in the process.  Allocation stays module-global (not per-engine)
because packets are routinely built without a system in unit tests;
uniqueness is only ever required *within* one run.
"""

from __future__ import annotations


class IdAllocator:
    """A resettable monotonic counter, callable like ``itertools.count``."""

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def __call__(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def peek(self) -> int:
        """The next ID that will be handed out (for tests)."""
        return self._next

    def reset(self) -> None:
        self._next = 0


#: allocator for :class:`repro.network.packet.Packet` ``pid`` values
PACKET_IDS = IdAllocator()
#: allocator for :class:`repro.network.flit.Flit` ``fid`` values
FLIT_IDS = IdAllocator()


def reset_run_ids() -> None:
    """Start both ID streams over; called at the top of every run."""
    PACKET_IDS.reset()
    FLIT_IDS.reset()
