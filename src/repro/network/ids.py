"""Run-scoped packet/flit ID allocation.

``fid``/``pid`` used to be drawn from module-global ``itertools.count()``
streams, so the *second* simulation in a process saw IDs continuing where
the first left off.  Nothing in the simulator branches on absolute ID
values, but anything keyed on them — trace sampling keeps every Nth
packet by ``pid % sample``, and trace/validation artifacts embed raw IDs
— silently differed between an in-process repeat run and the same
configuration simulated in a fresh worker process.

IDs therefore come from explicit allocators that
:class:`~repro.gpu.system.MultiGpuSystem` resets at construction time,
making every run's ID stream start at zero regardless of what ran before
it in the process.  Allocation stays module-global (not per-engine)
because packets are routinely built without a system in unit tests;
uniqueness is only ever required *within* one run.

Cluster-sharded runs (:mod:`repro.shard`) stride the streams instead:
shard ``i`` of ``n`` draws ``i, i+n, i+2n, ...`` so IDs stay unique
across shards without coordination.  Strided IDs differ from the
single-engine numbering, which is safe because raw IDs are excluded from
the result digest — only *uniqueness* within a run is load-bearing (the
reassembly buffers key partial flits by ``pid``).
"""

from __future__ import annotations


class IdAllocator:
    """A resettable monotonic counter, callable like ``itertools.count``.

    ``configure(start, step)`` turns the stream into the arithmetic
    progression ``start, start+step, ...`` for sharded allocation;
    ``reset()`` rewinds to the configured start.
    """

    __slots__ = ("_next", "_start", "_step")

    def __init__(self) -> None:
        self._start = 0
        self._step = 1
        self._next = 0

    def __call__(self) -> int:
        value = self._next
        self._next = value + self._step
        return value

    def peek(self) -> int:
        """The next ID that will be handed out (for tests)."""
        return self._next

    def configure(self, start: int, step: int) -> None:
        """Make the stream the progression ``start, start+step, ...``."""
        if step < 1 or start < 0 or start >= step:
            raise ValueError(f"invalid ID stride start={start} step={step}")
        self._start = start
        self._step = step
        self._next = start

    def reset(self) -> None:
        self._next = self._start

    def state(self) -> tuple:
        """Snapshot (start, step, next) for save/restore swapping.

        Sequential-windowed sharding runs several shard systems in one
        process; each installs its own stream state around every slice of
        engine execution so interleaved shards never cross-allocate.
        """
        return (self._start, self._step, self._next)

    def restore(self, state: tuple) -> None:
        self._start, self._step, self._next = state


#: allocator for :class:`repro.network.packet.Packet` ``pid`` values
PACKET_IDS = IdAllocator()
#: allocator for :class:`repro.network.flit.Flit` ``fid`` values
FLIT_IDS = IdAllocator()


def reset_run_ids(shard_index: int = 0, n_shards: int = 1) -> None:
    """Start both ID streams over; called at the top of every run.

    With the default arguments this restores the classic 0, 1, 2, ...
    numbering.  Sharded systems pass their (shard_index, n_shards) so
    concurrently allocated IDs never collide.
    """
    PACKET_IDS.configure(shard_index, n_shards)
    FLIT_IDS.configure(shard_index, n_shards)
