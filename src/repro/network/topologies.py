"""Pluggable inter-cluster topology registry (the "topology zoo").

Each :class:`TopologySpec` describes one fabric shape purely as data —
no simulator objects — so both :mod:`repro.config` (validation) and
:mod:`repro.network.topology` (construction) can consume it without an
import cycle.  A spec contributes three things:

* :meth:`~TopologySpec.edges` — the directed inter-switch edge list in a
  **canonical order**: sources ascending, and within one source a fixed
  per-topology neighbour order.  This order is a load-bearing contract:
  it defines ``Topology.inter_links`` (and the matching controller
  list), and :mod:`repro.shard` relies on source-ascending order so a
  shard owning a contiguous node range contributes a contiguous slice of
  the global link list (see :func:`repro.network.topology.inter_pairs`).
* a per-edge **bandwidth class** (``TopoEdge.bw_class``), so non-uniform
  bandwidth is a per-link property: ``SystemConfig.link_bw_overrides``
  maps class names to bytes/cycle, defaulting to ``inter_cluster_bw``.
* :meth:`~TopologySpec.routes` — a shortest-path next-hop table
  ``(node, dst_cluster) -> via_node`` installed on every built
  :class:`~repro.network.switch.ClusterSwitch`.  Missing entries mean
  "direct" (an edge to ``dst`` must exist, or routing fails loudly with
  :class:`~repro.network.switch.RoutingError`).

Topologies may introduce **virtual switch nodes** — switches that own no
GPUs, like a DGX star hub or fat-tree spines.  Virtual nodes get ids
``n_clusters .. n_nodes-1`` so they sort after every GPU cluster; the
shard planner assigns them to the last shard, which keeps the
contiguous-slice merge contract intact.

This module is deliberately free of ``repro`` imports.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple


class TopoEdge(NamedTuple):
    """One directed switch-to-switch edge with its bandwidth class."""

    src: int
    dst: int
    bw_class: str = "inter"


class TopologySpec:
    """Base class: one fabric shape's edges, classes, and routes.

    ``config`` parameters are duck-typed: any object exposing
    ``n_clusters`` (plus the topology's own knobs, e.g. ``torus_dims``
    or ``fat_tree_oversubscription``) works, which is how the registry
    stays import-cycle-free with :mod:`repro.config`.
    """

    name: str = ""
    #: bandwidth class names this topology's edges may carry
    bw_classes: Tuple[str, ...] = ("inter",)

    def validate(self, config) -> None:
        """Raise ``ValueError`` when ``config`` cannot build this shape."""

    def n_nodes(self, config) -> int:
        """Total switch nodes: GPU clusters plus any virtual switches."""
        return config.n_clusters

    def edges(self, config) -> List[TopoEdge]:
        """Directed edges in canonical (source-ascending) order."""
        raise NotImplementedError

    def routes(self, config) -> Dict[Tuple[int, int], int]:
        """Next-hop table ``(node, dst_cluster) -> via``; {} = all direct."""
        return {}

    def multi_hop(self, config) -> bool:
        """True when some route crosses an intermediate switch (so
        per-controller packet counts legally exceed endpoint traffic)."""
        return True

    def describe(self, config) -> str:
        """One-line human description of the built shape."""
        return f"{self.name}: {len(self.edges(config))} directed links"


class MeshTopology(TopologySpec):
    """The paper's fabric: a direct link per ordered cluster pair."""

    name = "mesh"

    def edges(self, config) -> List[TopoEdge]:
        n = config.n_clusters
        return [
            TopoEdge(src, dst)
            for src in range(n)
            for dst in range(n)
            if src != dst
        ]

    def multi_hop(self, config) -> bool:
        return False

    def describe(self, config) -> str:
        n = config.n_clusters
        return f"mesh: full bipartite, {n * (n - 1)} directed links, 1 hop"


class RingTopology(TopologySpec):
    """Adjacent-neighbour links; shortest-path routes, clockwise ties.

    With two clusters the ring degenerates to the mesh (both directions
    of one link), exactly as the original hard-wired builder did.
    """

    name = "ring"

    def _degenerate(self, config) -> bool:
        return config.n_clusters <= 2

    def edges(self, config) -> List[TopoEdge]:
        n = config.n_clusters
        if self._degenerate(config):
            return MeshTopology().edges(config)
        return [
            TopoEdge(src, dst)
            for src in range(n)
            for dst in ((src + 1) % n, (src - 1) % n)
        ]

    def routes(self, config) -> Dict[Tuple[int, int], int]:
        # shortest-path next hops, distance ties broken clockwise;
        # packets reassemble at every intermediate switch
        # (store-and-forward per hop), pay its pipeline latency, and
        # re-enter that hop's egress controller — so NetCrafter stitches
        # per link, consistent with the paper's same-route constraint
        if self._degenerate(config):
            return {}
        n = config.n_clusters
        table: Dict[Tuple[int, int], int] = {}
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                clockwise = (dst - src) % n
                counter = (src - dst) % n
                via = (src + 1) % n if clockwise <= counter else (src - 1) % n
                table[(src, dst)] = via
        return table

    def multi_hop(self, config) -> bool:
        return not self._degenerate(config)

    def describe(self, config) -> str:
        n = config.n_clusters
        return f"ring: {len(self.edges(config))} directed links, <= {n // 2} hops"


class StarTopology(TopologySpec):
    """DGX-style central switch tier: every cluster hangs off one hub.

    The hub is a virtual switch (node id ``n_clusters``) owning no GPUs;
    every cluster-to-cluster path is exactly two hops through it.  Leaf
    uplinks carry class ``up``, hub downlinks class ``down``, so the two
    directions can run at different bandwidths.
    """

    name = "star"
    bw_classes = ("up", "down")

    def validate(self, config) -> None:
        if config.n_clusters < 2:
            raise ValueError("star topology needs at least 2 clusters")

    def n_nodes(self, config) -> int:
        return config.n_clusters + 1

    def hub(self, config) -> int:
        return config.n_clusters

    def edges(self, config) -> List[TopoEdge]:
        n = config.n_clusters
        hub = self.hub(config)
        up = [TopoEdge(src, hub, "up") for src in range(n)]
        down = [TopoEdge(hub, dst, "down") for dst in range(n)]
        return up + down

    def routes(self, config) -> Dict[Tuple[int, int], int]:
        n = config.n_clusters
        hub = self.hub(config)
        table: Dict[Tuple[int, int], int] = {}
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    table[(src, dst)] = hub
        for dst in range(n):
            table[(hub, dst)] = dst
        return table

    def describe(self, config) -> str:
        n = config.n_clusters
        return f"star: 1 hub switch, {2 * n} directed links, 2 hops"


class FatTreeTopology(TopologySpec):
    """Two-level leaf/spine fat tree with configurable oversubscription.

    ``spines = max(1, n_clusters // (2 * oversubscription))`` — at
    oversubscription 1 this is the classic full-bisection leaf/spine
    (half as many spines as leaves); each doubling of the factor halves
    the spine tier.  Spines are virtual switches (ids ``n_clusters ..``).
    Routing spreads destinations across spines deterministically
    (``spine = dst % spines``), the static analogue of ECMP hashing.
    """

    name = "fat_tree"
    bw_classes = ("up", "down")

    def validate(self, config) -> None:
        if config.n_clusters < 2:
            raise ValueError("fat_tree topology needs at least 2 clusters")
        oversub = getattr(config, "fat_tree_oversubscription", 1)
        if oversub < 1:
            raise ValueError(
                f"fat_tree_oversubscription must be >= 1, got {oversub}"
            )

    def spines(self, config) -> int:
        oversub = getattr(config, "fat_tree_oversubscription", 1)
        return max(1, config.n_clusters // (2 * oversub))

    def n_nodes(self, config) -> int:
        return config.n_clusters + self.spines(config)

    def edges(self, config) -> List[TopoEdge]:
        n = config.n_clusters
        spines = self.spines(config)
        out: List[TopoEdge] = []
        for leaf in range(n):
            for spine in range(spines):
                out.append(TopoEdge(leaf, n + spine, "up"))
        for spine in range(spines):
            for leaf in range(n):
                out.append(TopoEdge(n + spine, leaf, "down"))
        return out

    def routes(self, config) -> Dict[Tuple[int, int], int]:
        n = config.n_clusters
        spines = self.spines(config)
        table: Dict[Tuple[int, int], int] = {}
        for leaf in range(n):
            for dst in range(n):
                if leaf != dst:
                    table[(leaf, dst)] = n + (dst % spines)
        for spine in range(spines):
            for dst in range(n):
                table[(n + spine, dst)] = dst
        return table

    def describe(self, config) -> str:
        spines = self.spines(config)
        return (
            f"fat_tree: {spines} spine(s), "
            f"{len(self.edges(config))} directed links, 2 hops"
        )


def default_torus_dims(n: int) -> Tuple[int, int, int]:
    """The most cube-like ``(x, y, z)`` factorization of ``n``.

    Deterministic: among all ``x <= y <= z`` with ``x*y*z == n``, the
    one maximizing ``x`` then ``y`` (8 -> 2x2x2, 4 -> 1x2x2, 6 -> 1x2x3).
    """
    best = (1, 1, n)
    for x in range(1, n + 1):
        if x * x * x > n:
            break
        if n % x:
            continue
        rest = n // x
        for y in range(x, rest + 1):
            if y * y > rest:
                break
            if rest % y:
                continue
            best = (x, y, rest // y)
    return best


class Torus3dTopology(TopologySpec):
    """APEnet+-style 3D torus: wraparound neighbour links per dimension.

    Clusters sit on an ``X x Y x Z`` grid (``torus_dims``, defaulting to
    the most cube-like factorization of ``n_clusters``); node
    ``(ix, iy, iz)`` is cluster ``(ix * Y + iy) * Z + iz``.  Each node
    links to its +/- neighbour in every dimension of size > 1 (a
    dimension of size 2 has one neighbour, not two), with per-dimension
    bandwidth classes ``x``/``y``/``z``.  Routing is dimension-ordered
    (x, then y, then z), shortest direction per dimension with the ring's
    clockwise (+) tie-break — a 1x1xN torus is exactly the ring.
    """

    name = "torus3d"
    bw_classes = ("x", "y", "z")

    def dims(self, config) -> Tuple[int, int, int]:
        dims = getattr(config, "torus_dims", None)
        if dims is None:
            return default_torus_dims(config.n_clusters)
        return tuple(dims)

    def validate(self, config) -> None:
        dims = self.dims(config)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise ValueError(f"torus_dims must be 3 positive ints, got {dims}")
        x, y, z = dims
        if x * y * z != config.n_clusters:
            raise ValueError(
                f"torus_dims {x}x{y}x{z} != n_clusters ({config.n_clusters})"
            )

    def _coords(self, node: int, dims) -> Tuple[int, int, int]:
        _x, y, z = dims
        return (node // (y * z), (node // z) % y, node % z)

    def _node(self, coords, dims) -> int:
        _x, y, z = dims
        ix, iy, iz = coords
        return (ix * y + iy) * z + iz

    def edges(self, config) -> List[TopoEdge]:
        dims = self.dims(config)
        out: List[TopoEdge] = []
        for node in range(config.n_clusters):
            coords = self._coords(node, dims)
            for axis, cls in enumerate(self.bw_classes):
                size = dims[axis]
                if size <= 1:
                    continue
                steps = (1,) if size == 2 else (1, -1)
                for step in steps:
                    neigh = list(coords)
                    neigh[axis] = (coords[axis] + step) % size
                    out.append(TopoEdge(node, self._node(neigh, dims), cls))
        return out

    def routes(self, config) -> Dict[Tuple[int, int], int]:
        dims = self.dims(config)
        table: Dict[Tuple[int, int], int] = {}
        for src in range(config.n_clusters):
            s = self._coords(src, dims)
            for dst in range(config.n_clusters):
                if src == dst:
                    continue
                d = self._coords(dst, dims)
                for axis in range(3):
                    if s[axis] == d[axis]:
                        continue
                    size = dims[axis]
                    forward = (d[axis] - s[axis]) % size
                    backward = (s[axis] - d[axis]) % size
                    step = 1 if forward <= backward else -1
                    via = list(s)
                    via[axis] = (s[axis] + step) % size
                    table[(src, dst)] = self._node(via, dims)
                    break
        return table

    def multi_hop(self, config) -> bool:
        return config.n_clusters > 2

    def describe(self, config) -> str:
        x, y, z = self.dims(config)
        return (
            f"torus3d: {x}x{y}x{z} grid, "
            f"{len(self.edges(config))} directed links, "
            f"<= {x // 2 + y // 2 + z // 2} hops"
        )


_REGISTRY: Dict[str, TopologySpec] = {}


def register_topology(spec: TopologySpec) -> TopologySpec:
    """Add ``spec`` to the zoo (last registration of a name wins)."""
    if not spec.name:
        raise ValueError("topology spec needs a name")
    _REGISTRY[spec.name] = spec
    return spec


def get_topology(name: str) -> TopologySpec:
    """Look up a registered topology by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown inter_topology {name!r}; "
            f"registered: {', '.join(topology_names())}"
        ) from None


def topology_names() -> List[str]:
    """Registered topology names, sorted."""
    return sorted(_REGISTRY)


for _spec in (
    MeshTopology(),
    RingTopology(),
    StarTopology(),
    FatTreeTopology(),
    Torus3dTopology(),
):
    register_topology(_spec)
