"""Bandwidth-serialized links.

Two granularities are modeled:

* :class:`FlitLink` — used on the inter-GPU-cluster hop, where the
  NetCrafter controller operates on individual flits.  One flit occupies
  the wire for ``flit_size / bytes_per_cycle`` cycles.
* :class:`PacketLink` — used inside a cluster (GPU <-> switch), where a
  whole packet occupies the wire for its flit count's worth of cycles.
  This is flit-accurate in time without paying one simulation event per
  flit on uncongested links.

With the 1 GHz clock of Table 2, bandwidth in GB/s equals bytes per
cycle; e.g. the 16 GB/s inter-cluster fabric moves one 16-byte flit per
cycle, and the 128 GB/s intra-cluster fabric moves eight.

Timekeeping is exact.  Both link classes used to accumulate a float
``_next_free`` by repeated ``size / bytes_per_cycle`` additions, which
drifts on non-power-of-two bandwidths — after enough flits the wire's
busy time could exceed the elapsed time and spuriously trip
:class:`LinkStats` strict overcount detection.  Serialization is now
tracked as an integer byte count within the current busy burst, with the
bandwidth held as an exact integer ratio (``float.as_integer_ratio``),
so every readiness comparison and arrival ceiling is integer arithmetic:
``next_free = anchor + sent_bytes / bpc`` is never materialized as an
accumulated float.  Busy time likewise accumulates *bytes* and divides
once at query time.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.tracer import Traced
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.queues import BoundedQueue
from repro.network.flit import Flit
from repro.network.packet import Packet

__all__ = [
    "DELIVERY_RANK_SPAN",
    "DELIVERY_SKEY_BASE",
    "FlitLink",
    "LinkStats",
    "PacketLink",
    "UtilizationOvercountError",
]

#: schedule-key offset placing flit deliveries before every same-cycle
#: locally scheduled event (whose skeys are non-negative cycle numbers)
DELIVERY_SKEY_BASE = -(1 << 60)
#: per-sequence spread of delivery ranks; bounds ``delivery_rank`` (one
#: rank per directed inter-cluster link: src * n_clusters + dst < 64**2)
DELIVERY_RANK_SPAN = 4096


class UtilizationOvercountError(RuntimeError):
    """Raised in strict mode when busy cycles exceed elapsed cycles."""


class LinkStats:
    """Wire-level counters for one unidirectional link.

    ``busy_cycles`` is derived from the exact byte count at query time
    (one division), so it carries at most one ulp of rounding error no
    matter how many transmissions were accumulated — which is why
    ``OVERCOUNT_TOLERANCE`` can be this tight.  Tests may still *assign*
    ``busy_cycles`` directly to fabricate a stat; the assigned value then
    overrides the byte-derived one.
    """

    #: rounding headroom before busy > elapsed counts as a bug; a single
    #: division's worth of float error, not an accumulation allowance
    OVERCOUNT_TOLERANCE = 1e-9
    #: when True, :meth:`utilization` raises instead of clamping — turn
    #: on in tests/debugging so accounting bugs fail loudly (the silent
    #: clamp hid PR 1's stitched-byte double count)
    strict = False

    def __init__(self, bytes_per_cycle: float = 1.0) -> None:
        num, den = float(bytes_per_cycle).as_integer_ratio()
        self._bpc_num = num
        self._bpc_den = den
        #: exact bytes serialized onto the wire (busy time numerator)
        self.busy_bytes = 0
        self._busy_override: Optional[float] = None
        self.flits = 0
        self.packets = 0
        self.wire_bytes = 0
        self.useful_bytes = 0
        #: worst busy-beyond-elapsed excess ever observed by
        #: :meth:`utilization`; nonzero means some counter double-counted
        self.overcount_cycles = 0.0

    @property
    def busy_cycles(self) -> float:
        """Cycles the wire spent serializing (bytes / bandwidth, once)."""
        if self._busy_override is not None:
            return self._busy_override
        return self.busy_bytes * self._bpc_den / self._bpc_num

    @busy_cycles.setter
    def busy_cycles(self, value: float) -> None:
        self._busy_override = float(value)

    @property
    def overcounted(self) -> bool:
        return self.overcount_cycles > 0.0

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the wire was occupied.

        A physical wire cannot be busy for more cycles than elapsed, so
        ``busy_cycles > elapsed_cycles`` is always an accounting bug
        upstream.  The return value stays clamped to 1.0 (plots must not
        explode), but the excess is recorded in ``overcount_cycles`` —
        and raised as :class:`UtilizationOvercountError` when ``strict``.
        """
        if elapsed_cycles <= 0:
            return 0.0
        busy = self.busy_cycles
        excess = busy - elapsed_cycles
        if excess > self.OVERCOUNT_TOLERANCE * elapsed_cycles:
            self.overcount_cycles = max(self.overcount_cycles, excess)
            if self.strict:
                raise UtilizationOvercountError(
                    f"busy {busy:.2f} cycles > elapsed "
                    f"{elapsed_cycles} cycles (excess {excess:.2f})"
                )
            return 1.0
        return min(1.0, busy / elapsed_cycles)


class FlitLink(Traced, Component):
    """A unidirectional link transmitting one flit at a time.

    The owner (an egress controller) is responsible for pacing: it must
    only call :meth:`send` when :meth:`ready_at` <= now.  Delivery happens
    ``latency`` cycles after serialization completes.

    Deliveries carry a *deterministic sub-cycle order*: within their
    arrival cycle they execute before every locally scheduled event,
    mutually ordered by per-link sequence number then ``delivery_rank``
    (the directed link's topology index).  This makes same-cycle
    tie-breaking at the receiver a pure function of wire traffic rather
    than of global event interleaving — the property cluster-sharded
    execution needs to reproduce a single shared engine exactly.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        latency: int,
        sink: Callable[[Flit], None],
    ) -> None:
        super().__init__(engine, name)
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.bytes_per_cycle = float(bytes_per_cycle)
        self._bpc_num, self._bpc_den = self.bytes_per_cycle.as_integer_ratio()
        self.latency = int(latency)
        self.sink = sink
        self.stats = LinkStats(self.bytes_per_cycle)
        #: cycle the current busy burst started serializing
        self._anchor = 0
        #: bytes serialized since the anchor; the wire frees up at
        #: ``anchor + sent_bytes / bytes_per_cycle`` exactly
        self._sent_bytes = 0
        #: topology rank breaking same-cycle ties between links (set by
        #: the topology builder to ``src * n_clusters + dst``)
        self.delivery_rank = 0
        #: per-link delivery counter, first component of the sub-cycle key
        self._delivery_seq = 0

    def _next_free_cycle_floor(self) -> int:
        return self._anchor + (self._sent_bytes * self._bpc_den) // self._bpc_num

    def ready_at(self) -> int:
        """First integer cycle during which a new flit may start."""
        now = self.engine._now
        free = self._anchor + (self._sent_bytes * self._bpc_den) // self._bpc_num
        return free if free > now else now

    def is_ready(self) -> bool:
        """A flit may start serializing within the current cycle.

        The engine ticks integer cycles but serialization is fractional
        (a 16 B flit on a 128 B/cycle link occupies 1/8 cycle), so a fast
        link accepts several flits within one cycle; it is "ready" while
        the next transmission can still *start* before the cycle ends.
        """
        # next_free < now + 1, cross-multiplied to stay in integers
        return self._sent_bytes * self._bpc_den < (
            self.engine._now + 1 - self._anchor
        ) * self._bpc_num

    def send(self, flit: Flit) -> None:
        """Serialize ``flit`` onto the wire and schedule its delivery."""
        now = self.engine._now
        num, den = self._bpc_num, self._bpc_den
        sent = self._sent_bytes
        if sent * den <= (now - self._anchor) * num:
            # the wire caught up (or idled): a new busy burst starts now
            self._anchor = now
            sent = 0
        elif sent * den >= (now + 1 - self._anchor) * num:
            raise RuntimeError(
                f"{self.name}: send at cycle {now} before ready "
                f"(next free {self._anchor + sent * den / num:.2f})"
            )
        size = flit.flit_size
        sent += size
        self._sent_bytes = sent
        stats = self.stats
        stats.busy_bytes += size
        stats.flits += 1
        stats.wire_bytes += size
        stats.useful_bytes += flit.useful_payload_bytes
        # ceil(anchor + sent/bpc) + latency, in exact integer arithmetic
        arrival = self._anchor - ((-sent * den) // num) + self.latency
        if self._trace_on:
            self._tracer.flit_event(
                now,
                "wire_start",
                flit,
                link=self.name,
                dur=size * den / num,
                bytes=size,
                stitched=len(flit.segments),
            )
        self._deliver(arrival, flit)

    def _next_delivery_skey(self) -> int:
        """The sub-cycle schedule key for this link's next delivery."""
        seq = self._delivery_seq
        self._delivery_seq = seq + 1
        return DELIVERY_SKEY_BASE + seq * DELIVERY_RANK_SPAN + self.delivery_rank

    def _deliver(self, arrival: int, flit: Flit) -> None:
        """Hand the flit to the sink at ``arrival``.

        Hook point for shard-boundary links, which capture the flit into
        an outbox for cross-shard mailbox delivery instead of scheduling
        it on the local engine.  Both paths use the same sub-cycle key,
        so delivery order is identical however the flit travels.
        """
        self.engine.inject(arrival, self._next_delivery_skey(), self.sink, flit)


class PacketLink(Component):
    """A unidirectional link carrying whole packets with flit-count timing.

    Packets enter a bounded queue and drain in FIFO order at the link's
    bandwidth; :meth:`send` returns ``False`` under backpressure, in which
    case the producer should retry via :meth:`notify_on_space`.

    Draining is batched: one wakeup serializes every packet whose
    transmission can start within the current cycle, instead of paying a
    zero-delay engine event per packet.  Batching is *order-preserving*:
    the next queued packet is drained inline only when the engine has no
    other event pending at the current cycle — exactly the situation in
    which the old per-packet zero-delay chain would have executed the
    follow-up drain as the very next event with nothing in between, so
    eliding that bookkeeping event shifts every later event's sequence
    number uniformly without reordering any pair of events.  When another
    same-cycle event *is* pending, the zero-delay chain is kept so the
    interleaving (and therefore same-cycle FIFO tie-breaking downstream)
    stays bit-identical to the unbatched implementation.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        latency: int,
        flit_size: int,
        sink: Callable[[Packet], None],
        buffer_entries: int = 1024,
    ) -> None:
        super().__init__(engine, name)
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.bytes_per_cycle = float(bytes_per_cycle)
        self._bpc_num, self._bpc_den = self.bytes_per_cycle.as_integer_ratio()
        self.latency = int(latency)
        self.flit_size = int(flit_size)
        self.sink = sink
        self.queue = BoundedQueue(buffer_entries, name=f"{name}.buf")
        self.stats = LinkStats(self.bytes_per_cycle)
        self._draining = False
        self._anchor = 0
        self._sent_bytes = 0

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; ``False`` when full."""
        if not self.queue.push(packet):
            return False
        if not self._draining:
            self._draining = True
            self.schedule(0, self._drain)
        return True

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self.queue.notify_on_space(callback)

    def _drain(self) -> None:
        queue = self.queue
        if queue.is_empty():
            self._draining = False
            return
        engine = self.engine
        now = engine._now
        num, den = self._bpc_num, self._bpc_den
        anchor, sent = self._anchor, self._sent_bytes
        if sent * den >= (now + 1 - anchor) * num:
            # wire busy past this cycle: resume when it frees up
            self.schedule(anchor + (sent * den) // num - now, self._drain)
            return
        if sent * den <= (now - anchor) * num:
            # the wire caught up (or idled): a new busy burst starts now
            anchor, sent = now, 0
        budget = (now + 1 - anchor) * num
        stats = self.stats
        flit_size = self.flit_size
        latency = self.latency
        sink = self.sink
        peek_time = engine.peek_time
        schedule_at = engine.schedule_at
        while True:
            packet = queue.pop()
            wire_bytes = packet.bytes_occupied(flit_size)
            sent += wire_bytes
            stats.busy_bytes += wire_bytes
            stats.packets += 1
            stats.flits += packet.flit_count(flit_size)
            stats.wire_bytes += wire_bytes
            stats.useful_bytes += packet.bytes_required
            # delivery once serialization completes: ceil(next_free) + latency
            schedule_at(anchor - ((-sent * den) // num) + latency, sink, packet)
            if peek_time() == now:
                # another event is pending this cycle; chain through a
                # zero-delay event so it interleaves exactly as before
                self._anchor, self._sent_bytes = anchor, sent
                self.schedule(0, self._drain)
                return
            # nothing else can run before the chained drain would: inline it
            if queue.is_empty():
                self._anchor, self._sent_bytes = anchor, sent
                self._draining = False
                return
            if sent * den >= budget:
                self._anchor, self._sent_bytes = anchor, sent
                self.schedule(anchor + (sent * den) // num - now, self._drain)
                return
