"""Bandwidth-serialized links.

Two granularities are modeled:

* :class:`FlitLink` — used on the inter-GPU-cluster hop, where the
  NetCrafter controller operates on individual flits.  One flit occupies
  the wire for ``flit_size / bytes_per_cycle`` cycles.
* :class:`PacketLink` — used inside a cluster (GPU <-> switch), where a
  whole packet occupies the wire for its flit count's worth of cycles.
  This is flit-accurate in time without paying one simulation event per
  flit on uncongested links.

With the 1 GHz clock of Table 2, bandwidth in GB/s equals bytes per
cycle; e.g. the 16 GB/s inter-cluster fabric moves one 16-byte flit per
cycle, and the 128 GB/s intra-cluster fabric moves eight.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.obs.tracer import NULL_TRACER
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.queues import BoundedQueue
from repro.network.flit import Flit
from repro.network.packet import Packet


class UtilizationOvercountError(RuntimeError):
    """Raised in strict mode when busy cycles exceed elapsed cycles."""


class LinkStats:
    """Wire-level counters for one unidirectional link."""

    #: float-accumulation headroom before busy > elapsed counts as a bug
    OVERCOUNT_TOLERANCE = 1e-6
    #: when True, :meth:`utilization` raises instead of clamping — turn
    #: on in tests/debugging so accounting bugs fail loudly (the silent
    #: clamp hid PR 1's stitched-byte double count)
    strict = False

    def __init__(self) -> None:
        self.busy_cycles = 0.0
        self.flits = 0
        self.packets = 0
        self.wire_bytes = 0
        self.useful_bytes = 0
        #: worst busy-beyond-elapsed excess ever observed by
        #: :meth:`utilization`; nonzero means some counter double-counted
        self.overcount_cycles = 0.0

    @property
    def overcounted(self) -> bool:
        return self.overcount_cycles > 0.0

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the wire was occupied.

        A physical wire cannot be busy for more cycles than elapsed, so
        ``busy_cycles > elapsed_cycles`` is always an accounting bug
        upstream.  The return value stays clamped to 1.0 (plots must not
        explode), but the excess is recorded in ``overcount_cycles`` —
        and raised as :class:`UtilizationOvercountError` when ``strict``.
        """
        if elapsed_cycles <= 0:
            return 0.0
        excess = self.busy_cycles - elapsed_cycles
        if excess > self.OVERCOUNT_TOLERANCE * elapsed_cycles:
            self.overcount_cycles = max(self.overcount_cycles, excess)
            if self.strict:
                raise UtilizationOvercountError(
                    f"busy {self.busy_cycles:.2f} cycles > elapsed "
                    f"{elapsed_cycles} cycles (excess {excess:.2f})"
                )
            return 1.0
        return min(1.0, self.busy_cycles / elapsed_cycles)


class FlitLink(Component):
    """A unidirectional link transmitting one flit at a time.

    The owner (an egress controller) is responsible for pacing: it must
    only call :meth:`send` when :meth:`ready_at` <= now.  Delivery happens
    ``latency`` cycles after serialization completes.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        latency: int,
        sink: Callable[[Flit], None],
    ) -> None:
        super().__init__(engine, name)
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.bytes_per_cycle = float(bytes_per_cycle)
        self.latency = int(latency)
        self.sink = sink
        self.stats = LinkStats()
        #: lifecycle tracer (assigned by the observability wiring)
        self.tracer = NULL_TRACER
        self._next_free = 0.0

    def ready_at(self) -> int:
        """First integer cycle during which a new flit may start."""
        return max(self.now, int(math.floor(self._next_free)))

    def is_ready(self) -> bool:
        """A flit may start serializing within the current cycle.

        The engine ticks integer cycles but serialization is fractional
        (a 16 B flit on a 128 B/cycle link occupies 1/8 cycle), so a fast
        link accepts several flits within one cycle; it is "ready" while
        the next transmission can still *start* before the cycle ends.
        """
        return self._next_free < self.now + 1

    def send(self, flit: Flit) -> None:
        """Serialize ``flit`` onto the wire and schedule its delivery."""
        if not self.is_ready():
            raise RuntimeError(
                f"{self.name}: send at cycle {self.now} before ready "
                f"(next free {self._next_free:.2f})"
            )
        tx_cycles = flit.flit_size / self.bytes_per_cycle
        start = max(float(self.now), self._next_free)
        self._next_free = start + tx_cycles
        self.stats.busy_cycles += tx_cycles
        self.stats.flits += 1
        self.stats.wire_bytes += flit.flit_size
        self.stats.useful_bytes += flit.useful_payload_bytes
        arrival = math.ceil(self._next_free) + self.latency
        if self.tracer.enabled:
            self.tracer.flit_event(
                self.now,
                "wire_start",
                flit,
                link=self.name,
                dur=tx_cycles,
                bytes=flit.flit_size,
                stitched=len(flit.segments),
            )
        self.engine.schedule_at(arrival, self.sink, flit)


class PacketLink(Component):
    """A unidirectional link carrying whole packets with flit-count timing.

    Packets enter a bounded queue and drain in FIFO order at the link's
    bandwidth; :meth:`send` returns ``False`` under backpressure, in which
    case the producer should retry via :meth:`notify_on_space`.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        latency: int,
        flit_size: int,
        sink: Callable[[Packet], None],
        buffer_entries: int = 1024,
    ) -> None:
        super().__init__(engine, name)
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.bytes_per_cycle = float(bytes_per_cycle)
        self.latency = int(latency)
        self.flit_size = int(flit_size)
        self.sink = sink
        self.queue = BoundedQueue(buffer_entries, name=f"{name}.buf")
        self.stats = LinkStats()
        self._draining = False
        self._next_free = 0.0

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; ``False`` when full."""
        if not self.queue.push(packet):
            return False
        if not self._draining:
            self._draining = True
            self.schedule(0, self._drain)
        return True

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self.queue.notify_on_space(callback)

    def _drain(self) -> None:
        if self.queue.is_empty():
            self._draining = False
            return
        if self._next_free >= self.now + 1:
            # wire busy past this cycle: resume when it frees up
            self.schedule(int(math.floor(self._next_free)) - self.now, self._drain)
            return
        packet = self.queue.pop()
        wire_bytes = packet.bytes_occupied(self.flit_size)
        tx_cycles = wire_bytes / self.bytes_per_cycle
        start = max(float(self.now), self._next_free)
        self._next_free = start + tx_cycles
        self.stats.busy_cycles += tx_cycles
        self.stats.packets += 1
        self.stats.flits += packet.flit_count(self.flit_size)
        self.stats.wire_bytes += wire_bytes
        self.stats.useful_bytes += packet.bytes_required
        arrival = math.ceil(self._next_free) + self.latency
        self.engine.schedule_at(arrival, self.sink, packet)
        self.schedule(0, self._drain)
