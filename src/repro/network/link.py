"""Bandwidth-serialized links.

Two granularities are modeled:

* :class:`FlitLink` — used on the inter-GPU-cluster hop, where the
  NetCrafter controller operates on individual flits.  One flit occupies
  the wire for ``flit_size / bytes_per_cycle`` cycles.
* :class:`PacketLink` — used inside a cluster (GPU <-> switch), where a
  whole packet occupies the wire for its flit count's worth of cycles.
  This is flit-accurate in time without paying one simulation event per
  flit on uncongested links.

With the 1 GHz clock of Table 2, bandwidth in GB/s equals bytes per
cycle; e.g. the 16 GB/s inter-cluster fabric moves one 16-byte flit per
cycle, and the 128 GB/s intra-cluster fabric moves eight.

Timekeeping is exact.  Both link classes used to accumulate a float
``_next_free`` by repeated ``size / bytes_per_cycle`` additions, which
drifts on non-power-of-two bandwidths — after enough flits the wire's
busy time could exceed the elapsed time and spuriously trip
:class:`LinkStats` strict overcount detection.  Serialization is now
tracked as an integer byte count within the current busy burst, with the
bandwidth held as an exact integer ratio (``float.as_integer_ratio``),
so every readiness comparison and arrival ceiling is integer arithmetic:
``next_free = anchor + sent_bytes / bpc`` is never materialized as an
accumulated float.  Busy time likewise accumulates *bytes* and divides
once at query time.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.faults.process import FATE_CORRUPT, FATE_OK, CorruptedTransmission
from repro.obs.tracer import Traced
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.queues import BoundedQueue
from repro.network.flit import Flit
from repro.network.packet import Packet

__all__ = [
    "DELIVERY_RANK_SPAN",
    "DELIVERY_SKEY_BASE",
    "FlitLink",
    "LinkStats",
    "PacketLink",
    "UtilizationOvercountError",
]

#: schedule-key offset placing flit deliveries before every same-cycle
#: locally scheduled event (whose skeys are non-negative cycle numbers)
DELIVERY_SKEY_BASE = -(1 << 60)
#: default per-sequence spread of delivery ranks (one rank per directed
#: inter-cluster link: src * n_nodes + dst).  Sufficient for fabrics of
#: up to 64 switch nodes; the topology builder installs a wider
#: ``delivery_span`` on every link of larger fabrics
#: (:func:`repro.network.topology.delivery_span_for`), because a rank
#: >= the span would alias with the next sequence step of another link
#: and corrupt deterministic same-cycle delivery order
DELIVERY_RANK_SPAN = 4096


class UtilizationOvercountError(RuntimeError):
    """Raised in strict mode when busy cycles exceed elapsed cycles."""


class LinkStats:
    """Wire-level counters for one unidirectional link.

    ``busy_cycles`` is derived from the exact byte count at query time
    (one division), so it carries at most one ulp of rounding error no
    matter how many transmissions were accumulated — which is why
    ``OVERCOUNT_TOLERANCE`` can be this tight.  Tests may still *assign*
    ``busy_cycles`` directly to fabricate a stat; the assigned value then
    overrides the byte-derived one.
    """

    #: rounding headroom before busy > elapsed counts as a bug; a single
    #: division's worth of float error, not an accumulation allowance
    OVERCOUNT_TOLERANCE = 1e-9
    #: when True, :meth:`utilization` raises instead of clamping — turn
    #: on in tests/debugging so accounting bugs fail loudly (the silent
    #: clamp hid PR 1's stitched-byte double count)
    strict = False

    def __init__(self, bytes_per_cycle: float = 1.0) -> None:
        num, den = float(bytes_per_cycle).as_integer_ratio()
        self._bpc_num = num
        self._bpc_den = den
        #: exact bytes serialized onto the wire (busy time numerator)
        self.busy_bytes = 0
        self._busy_override: Optional[float] = None
        self.flits = 0
        self.packets = 0
        self.wire_bytes = 0
        self.useful_bytes = 0
        #: bytes transmitted at degraded (flapped) bandwidth, keyed by
        #: the exact rate regime ``(num, den, nom_num, nom_den)``; the
        #: extra busy time is derived by division once at query time
        #: (:attr:`busy_extra`), never by accumulating per-flit floats
        self._degraded_bytes: Dict[Tuple[int, int, int, int], int] = {}
        self._busy_extra_override = 0.0
        #: worst busy-beyond-elapsed excess ever observed by
        #: :meth:`utilization`; nonzero means some counter double-counted
        self.overcount_cycles = 0.0

    def add_degraded_bytes(
        self, nbytes: int, num: int, den: int, nom_num: int, nom_den: int
    ) -> None:
        """Account ``nbytes`` serialized at ``num/den`` B/cycle while the
        nominal rate is ``nom_num/nom_den`` (a bandwidth flap)."""
        key = (num, den, nom_num, nom_den)
        self._degraded_bytes[key] = self._degraded_bytes.get(key, 0) + nbytes

    @property
    def busy_extra(self) -> float:
        """Extra busy time from degraded-rate transmissions, beyond what
        ``busy_bytes`` at the nominal rate accounts for; only ever
        nonzero under fault-injected flaps.  Derived per rate regime
        with one division each, so it carries a few ulps of rounding no
        matter how many flits a flap covered."""
        extra = self._busy_extra_override
        for (num, den, nom_num, nom_den), nbytes in self._degraded_bytes.items():
            extra += (nbytes * den) / num - (nbytes * nom_den) / nom_num
        return extra

    @busy_extra.setter
    def busy_extra(self, value: float) -> None:
        self._degraded_bytes.clear()
        self._busy_extra_override = float(value)

    @property
    def busy_cycles(self) -> float:
        """Cycles the wire spent serializing (bytes / bandwidth, once)."""
        if self._busy_override is not None:
            return self._busy_override
        busy = self.busy_bytes * self._bpc_den / self._bpc_num
        if self.busy_extra:
            busy += self.busy_extra
        return busy

    @busy_cycles.setter
    def busy_cycles(self, value: float) -> None:
        self._busy_override = float(value)

    @property
    def overcounted(self) -> bool:
        return self.overcount_cycles > 0.0

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the wire was occupied.

        A physical wire cannot be busy for more cycles than elapsed, so
        ``busy_cycles > elapsed_cycles`` is always an accounting bug
        upstream.  The return value stays clamped to 1.0 (plots must not
        explode), but the excess is recorded in ``overcount_cycles`` —
        and raised as :class:`UtilizationOvercountError` when ``strict``.
        """
        if elapsed_cycles <= 0:
            return 0.0
        busy = self.busy_cycles
        excess = busy - elapsed_cycles
        if excess > self.OVERCOUNT_TOLERANCE * elapsed_cycles:
            self.overcount_cycles = max(self.overcount_cycles, excess)
            if self.strict:
                raise UtilizationOvercountError(
                    f"busy {busy:.2f} cycles > elapsed "
                    f"{elapsed_cycles} cycles (excess {excess:.2f})"
                )
            return 1.0
        return min(1.0, busy / elapsed_cycles)


class FlitLink(Traced, Component):
    """A unidirectional link transmitting one flit at a time.

    The owner (an egress controller) is responsible for pacing: it must
    only call :meth:`send` when :meth:`ready_at` <= now.  Delivery happens
    ``latency`` cycles after serialization completes.

    Deliveries carry a *deterministic sub-cycle order*: within their
    arrival cycle they execute before every locally scheduled event,
    mutually ordered by per-link sequence number then ``delivery_rank``
    (the directed link's topology index).  This makes same-cycle
    tie-breaking at the receiver a pure function of wire traffic rather
    than of global event interleaving — the property cluster-sharded
    execution needs to reproduce a single shared engine exactly.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        latency: int,
        sink: Callable[[Flit], None],
    ) -> None:
        super().__init__(engine, name)
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.bytes_per_cycle = float(bytes_per_cycle)
        self._bpc_num, self._bpc_den = self.bytes_per_cycle.as_integer_ratio()
        self.latency = int(latency)
        self.sink = sink
        self.stats = LinkStats(self.bytes_per_cycle)
        #: cycle the current busy burst started serializing
        self._anchor = 0
        #: bytes serialized since the anchor; the wire frees up at
        #: ``anchor + sent_bytes / bytes_per_cycle`` exactly
        self._sent_bytes = 0
        #: topology rank breaking same-cycle ties between links (set by
        #: the topology builder to ``src * n_nodes + dst``)
        self.delivery_rank = 0
        #: per-sequence rank spread; the topology builder widens it on
        #: fabrics with more than 64 switch nodes so ranks never alias
        #: into the next sequence step of another link
        self.delivery_span = DELIVERY_RANK_SPAN
        #: per-link delivery counter, first component of the sub-cycle key
        self._delivery_seq = 0

    # -- fault layer (repro.faults), attached only when active ------------
    #: class-attribute defaults keep the fault-free hot path to a single
    #: falsy check and existing pickles/tests unaffected
    _faults = None
    _fault_stats = None
    _flap_edges = ()
    _flap_idx = 0
    _degraded = False
    _nom_num = 0
    _nom_den = 1

    def attach_faults(self, process, fault_stats) -> None:
        """Attach a :class:`~repro.faults.process.LinkFaultProcess`."""
        self._faults = process
        self._fault_stats = fault_stats
        self._nom_num, self._nom_den = self._bpc_num, self._bpc_den
        self._flap_edges = process.regime_edges(self.bytes_per_cycle)
        self._flap_idx = 0
        self._degraded = False

    def _sync_regime(self) -> None:
        """Apply any flap edges at or before the current cycle.

        The in-flight burst retires at the old rate (its flits finish
        serializing as started); the new rate anchors at the later of
        the edge cycle and the burst's free cycle, so timing stays exact
        integer arithmetic across every regime switch.
        """
        edges = self._flap_edges
        idx = self._flap_idx
        now = self.engine._now
        if idx >= len(edges) or edges[idx][0] > now:
            return
        num, den = self._bpc_num, self._bpc_den
        anchor, sent = self._anchor, self._sent_bytes
        degraded = self._degraded
        while idx < len(edges) and edges[idx][0] <= now:
            cycle, new_num, new_den, degraded = edges[idx]
            free_ceil = anchor - ((-sent * den) // num)
            anchor = max(cycle, free_ceil)
            sent = 0
            num, den = new_num, new_den
            idx += 1
        self._flap_idx = idx
        self._anchor, self._sent_bytes = anchor, sent
        self._bpc_num, self._bpc_den = num, den
        self._degraded = degraded

    def _next_free_cycle_floor(self) -> int:
        return self._anchor + (self._sent_bytes * self._bpc_den) // self._bpc_num

    def ready_at(self) -> int:
        """First integer cycle during which a new flit may start."""
        if self._flap_edges:
            self._sync_regime()
        now = self.engine._now
        free = self._anchor + (self._sent_bytes * self._bpc_den) // self._bpc_num
        return free if free > now else now

    def is_ready(self) -> bool:
        """A flit may start serializing within the current cycle.

        The engine ticks integer cycles but serialization is fractional
        (a 16 B flit on a 128 B/cycle link occupies 1/8 cycle), so a fast
        link accepts several flits within one cycle; it is "ready" while
        the next transmission can still *start* before the cycle ends.
        """
        if self._flap_edges:
            self._sync_regime()
        # next_free < now + 1, cross-multiplied to stay in integers
        return self._sent_bytes * self._bpc_den < (
            self.engine._now + 1 - self._anchor
        ) * self._bpc_num

    def send(self, flit: Flit) -> None:
        """Serialize ``flit`` onto the wire and schedule its delivery."""
        if self._faults is not None:
            self._transmit_faulty(flit, 0, self.engine._now)
            return
        now = self.engine._now
        num, den = self._bpc_num, self._bpc_den
        sent = self._sent_bytes
        if sent * den <= (now - self._anchor) * num:
            # the wire caught up (or idled): a new busy burst starts now
            self._anchor = now
            sent = 0
        elif sent * den >= (now + 1 - self._anchor) * num:
            raise RuntimeError(
                f"{self.name}: send at cycle {now} before ready "
                f"(next free {self._anchor + sent * den / num:.2f})"
            )
        size = flit.flit_size
        sent += size
        self._sent_bytes = sent
        stats = self.stats
        stats.busy_bytes += size
        stats.flits += 1
        stats.wire_bytes += size
        stats.useful_bytes += flit.useful_payload_bytes
        # ceil(anchor + sent/bpc) + latency, in exact integer arithmetic
        arrival = self._anchor - ((-sent * den) // num) + self.latency
        if self._trace_on:
            self._tracer.flit_event(
                now,
                "wire_start",
                flit,
                link=self.name,
                dur=size * den / num,
                bytes=size,
                stitched=len(flit.segments),
            )
        self._deliver(arrival, flit)

    def _transmit_faulty(self, flit: Flit, attempt: int, first_cycle: int) -> None:
        """:meth:`send` with a fault process attached.

        Serialization timing and wire accounting are identical to the
        clean path (every transmission — including retransmissions of
        corrupted or dropped flits — occupies the wire and counts toward
        ``busy_bytes``/``wire_bytes``); only ``useful_bytes`` is gated on
        clean delivery, which is what separates goodput from raw
        throughput under faults.
        """
        if self._flap_edges:
            self._sync_regime()
        now = self.engine._now
        num, den = self._bpc_num, self._bpc_den
        sent = self._sent_bytes
        if sent * den <= (now - self._anchor) * num:
            self._anchor = now
            sent = 0
        elif sent * den >= (now + 1 - self._anchor) * num:
            raise RuntimeError(
                f"{self.name}: send at cycle {now} before ready "
                f"(next free {self._anchor + sent * den / num:.2f})"
            )
        size = flit.flit_size
        sent += size
        self._sent_bytes = sent
        stats = self.stats
        stats.busy_bytes += size
        stats.flits += 1
        stats.wire_bytes += size
        fstats = self._fault_stats
        if self._degraded:
            # busy_bytes assumes the nominal rate; record the extra wire
            # time a degraded-rate transmission actually took, as exact
            # bytes per rate regime (divided once at query time)
            fstats.degraded_flits += 1
            stats.add_degraded_bytes(
                size, num, den, self._nom_num, self._nom_den
            )
        arrival = self._anchor - ((-sent * den) // num) + self.latency
        if self._trace_on:
            self._tracer.flit_event(
                now,
                "wire_start",
                flit,
                link=self.name,
                dur=size * den / num,
                bytes=size,
                stitched=len(flit.segments),
            )
        fate = self._faults.fate(flit, attempt)
        if fate == FATE_OK:
            stats.useful_bytes += flit.useful_payload_bytes
            if attempt:
                fstats.recovery_latency.record(now - first_cycle)
            self._deliver(arrival, flit)
            return
        cfg = self._faults.config
        if fate == FATE_CORRUPT:
            # the damaged copy still travels the wire; the receiving
            # switch fails its CRC and discards it, while the sender
            # learns of the failure one NACK trip after arrival
            fstats.flits_corrupted += 1
            fstats.bytes_corrupted += size
            self._deliver(arrival, CorruptedTransmission(flit))
            nack = (
                cfg.nack_latency if cfg.nack_latency is not None else self.latency
            )
            retry_at = arrival + cfg.crc_latency + nack
        else:  # FATE_DROP: nothing arrives; only the timeout recovers it
            fstats.flits_dropped += 1
            fstats.bytes_dropped += size
            if self._trace_on:
                self._tracer.flit_event(now, "drop", flit, link=self.name)
            retry_at = now + cfg.drop_timeout
        if attempt + 1 > cfg.max_link_retries:
            fstats.flits_abandoned += 1
            return
        self.engine.schedule_at(
            retry_at, self._retransmit, flit, attempt + 1, first_cycle
        )

    def _retransmit(self, flit: Flit, attempt: int, first_cycle: int) -> None:
        """Re-send a corrupted/dropped flit once the wire is free.

        Counts and traces only when the transmission actually starts; a
        busy wire just requeues at its next free cycle.
        """
        if not self.is_ready():
            self.engine.schedule_at(
                self.ready_at(), self._retransmit, flit, attempt, first_cycle
            )
            return
        fstats = self._fault_stats
        fstats.flits_retransmitted += 1
        fstats.bytes_retransmitted += flit.flit_size
        if self._trace_on:
            self._tracer.flit_event(
                self.engine._now, "retransmit", flit, link=self.name, attempt=attempt
            )
        self._transmit_faulty(flit, attempt, first_cycle)

    def _next_delivery_skey(self) -> int:
        """The sub-cycle schedule key for this link's next delivery."""
        seq = self._delivery_seq
        self._delivery_seq = seq + 1
        return DELIVERY_SKEY_BASE + seq * self.delivery_span + self.delivery_rank

    def _deliver(self, arrival: int, flit: Flit) -> None:
        """Hand the flit to the sink at ``arrival``.

        Hook point for shard-boundary links, which capture the flit into
        an outbox for cross-shard mailbox delivery instead of scheduling
        it on the local engine.  Both paths use the same sub-cycle key,
        so delivery order is identical however the flit travels.
        """
        self.engine.inject(arrival, self._next_delivery_skey(), self.sink, flit)


class PacketLink(Component):
    """A unidirectional link carrying whole packets with flit-count timing.

    Packets enter a bounded queue and drain in FIFO order at the link's
    bandwidth; :meth:`send` returns ``False`` under backpressure, in which
    case the producer should retry via :meth:`notify_on_space`.

    Draining is batched: one wakeup serializes every packet whose
    transmission can start within the current cycle, instead of paying a
    zero-delay engine event per packet.  Batching is *order-preserving*:
    the next queued packet is drained inline only when the engine has no
    other event pending at the current cycle — exactly the situation in
    which the old per-packet zero-delay chain would have executed the
    follow-up drain as the very next event with nothing in between, so
    eliding that bookkeeping event shifts every later event's sequence
    number uniformly without reordering any pair of events.  When another
    same-cycle event *is* pending, the zero-delay chain is kept so the
    interleaving (and therefore same-cycle FIFO tie-breaking downstream)
    stays bit-identical to the unbatched implementation.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bytes_per_cycle: float,
        latency: int,
        flit_size: int,
        sink: Callable[[Packet], None],
        buffer_entries: int = 1024,
    ) -> None:
        super().__init__(engine, name)
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.bytes_per_cycle = float(bytes_per_cycle)
        self._bpc_num, self._bpc_den = self.bytes_per_cycle.as_integer_ratio()
        self.latency = int(latency)
        self.flit_size = int(flit_size)
        self.sink = sink
        self.queue = BoundedQueue(buffer_entries, name=f"{name}.buf")
        self.stats = LinkStats(self.bytes_per_cycle)
        self._draining = False
        self._anchor = 0
        self._sent_bytes = 0

    def send(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission; ``False`` when full."""
        if not self.queue.push(packet):
            return False
        if not self._draining:
            self._draining = True
            self.schedule(0, self._drain)
        return True

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self.queue.notify_on_space(callback)

    def _drain(self) -> None:
        queue = self.queue
        if queue.is_empty():
            self._draining = False
            return
        engine = self.engine
        now = engine._now
        num, den = self._bpc_num, self._bpc_den
        anchor, sent = self._anchor, self._sent_bytes
        if sent * den >= (now + 1 - anchor) * num:
            # wire busy past this cycle: resume when it frees up
            self.schedule(anchor + (sent * den) // num - now, self._drain)
            return
        if sent * den <= (now - anchor) * num:
            # the wire caught up (or idled): a new busy burst starts now
            anchor, sent = now, 0
        budget = (now + 1 - anchor) * num
        flit_size = self.flit_size
        latency = self.latency
        sink = self.sink
        peek_time = engine.peek_time
        schedule_at = engine.schedule_at
        # stats accumulate in locals and flush once per drain burst: the
        # five per-packet counter bumps otherwise dominate this loop
        n_packets = n_flits = n_wire = n_useful = 0
        while True:
            packet = queue.pop()
            wire_bytes = packet.bytes_occupied(flit_size)
            sent += wire_bytes
            n_packets += 1
            n_flits += packet.flit_count(flit_size)
            n_wire += wire_bytes
            n_useful += packet.bytes_required
            # delivery once serialization completes: ceil(next_free) + latency
            schedule_at(anchor - ((-sent * den) // num) + latency, sink, packet)
            if peek_time() == now:
                # another event is pending this cycle; chain through a
                # zero-delay event so it interleaves exactly as before
                self._anchor, self._sent_bytes = anchor, sent
                self._flush_stats(n_packets, n_flits, n_wire, n_useful)
                self.schedule(0, self._drain)
                return
            # nothing else can run before the chained drain would: inline it
            if queue.is_empty():
                self._anchor, self._sent_bytes = anchor, sent
                self._flush_stats(n_packets, n_flits, n_wire, n_useful)
                self._draining = False
                return
            if sent * den >= budget:
                self._anchor, self._sent_bytes = anchor, sent
                self._flush_stats(n_packets, n_flits, n_wire, n_useful)
                self.schedule(anchor + (sent * den) // num - now, self._drain)
                return

    def _flush_stats(
        self, n_packets: int, n_flits: int, n_wire: int, n_useful: int
    ) -> None:
        stats = self.stats
        stats.busy_bytes += n_wire
        stats.packets += n_packets
        stats.flits += n_flits
        stats.wire_bytes += n_wire
        stats.useful_bytes += n_useful
