"""Packet model for the simplified PCIe-style inter-GPU protocol.

The paper (Section 4.1, Table 1) assumes six packet types.  Each packet
has a header (4 bytes of metadata plus, for request-style packets, an
8-byte address field) and an optional payload:

============  ======  =======  ==============================
type          header  payload  contents
============  ======  =======  ==============================
READ_REQ      12      0        8 B address in header
WRITE_REQ     12      64       address + cache line
PT_REQ        12      0        page-table walk read
READ_RSP      4       64       cache line data
WRITE_RSP     4       0        acknowledgement in header
PT_RSP        4       8        translated physical address
============  ======  =======  ==============================

``bytes_required = header + payload``; when segmented into fixed-size
flits, the remainder of the final flit is padding (Observation 1).
Three otherwise-unused address bits are repurposed as *trim* bits: one
"sector request" flag and a two-bit sector offset within the 64 B line
(Section 4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.network.ids import PACKET_IDS

CACHE_LINE_BYTES = 64


class PacketType(enum.Enum):
    """The six traffic categories of Table 1, plus two extension types.

    ``INV_REQ``/``INV_RSP`` implement the hardware-coherence extension
    the paper leaves as future work (Section 4.5: "the fine-grained
    nature of hardware coherence traffic presents additional
    opportunities for stitching").  They are not part of the Table 1
    census and only appear when ``SystemConfig.coherence="hardware"``.
    """

    READ_REQ = "read_req"
    READ_RSP = "read_rsp"
    WRITE_REQ = "write_req"
    WRITE_RSP = "write_rsp"
    PT_REQ = "pt_req"
    PT_RSP = "pt_rsp"
    INV_REQ = "inv_req"
    INV_RSP = "inv_rsp"

    @property
    def is_ptw(self) -> bool:
        """Whether this type belongs to page-table-walk traffic."""
        return self in (PacketType.PT_REQ, PacketType.PT_RSP)

    @property
    def is_response(self) -> bool:
        return self in (
            PacketType.READ_RSP,
            PacketType.WRITE_RSP,
            PacketType.PT_RSP,
            PacketType.INV_RSP,
        )

    @property
    def is_coherence(self) -> bool:
        """Hardware-coherence extension traffic (not in Table 1)."""
        return self in (PacketType.INV_REQ, PacketType.INV_RSP)


#: Header size per packet type (bytes).  Requests carry a full 12-byte
#: header (4 B metadata + 8 B address); responses carry 4 B of metadata
#: (footnote 2 of the paper).  PT_RSP carries its 8 B physical address as
#: payload, matching Table 1's 12 required bytes.
HEADER_BYTES: Dict[PacketType, int] = {
    PacketType.READ_REQ: 12,
    PacketType.WRITE_REQ: 12,
    PacketType.PT_REQ: 12,
    PacketType.READ_RSP: 4,
    PacketType.WRITE_RSP: 4,
    PacketType.PT_RSP: 4,
    PacketType.INV_REQ: 12,  # 4 B metadata + 8 B line address
    PacketType.INV_RSP: 4,   # acknowledgement in the header
}

#: Default payload size per packet type (bytes), before any trimming.
PAYLOAD_BYTES: Dict[PacketType, int] = {
    PacketType.READ_REQ: 0,
    PacketType.WRITE_REQ: CACHE_LINE_BYTES,
    PacketType.PT_REQ: 0,
    PacketType.READ_RSP: CACHE_LINE_BYTES,
    PacketType.WRITE_RSP: 0,
    PacketType.PT_RSP: 8,
    PacketType.INV_REQ: 0,
    PacketType.INV_RSP: 0,
}

#: per-type ``(header_bytes, payload_bytes, is_ptw)``, folded into one
#: dict so packet construction pays a single Enum-keyed lookup
_TYPE_META: Dict[PacketType, Tuple[int, int, bool]] = {
    t: (HEADER_BYTES[t], PAYLOAD_BYTES[t], t.is_ptw) for t in PacketType
}

#: the Table 1 census covers only the paper's six base categories
TABLE1_TYPES = (
    PacketType.READ_REQ,
    PacketType.WRITE_REQ,
    PacketType.PT_REQ,
    PacketType.READ_RSP,
    PacketType.WRITE_RSP,
    PacketType.PT_RSP,
)

@dataclass(eq=False, slots=True)
class Packet:
    """One network transaction between two GPUs.

    Identity semantics (``eq=False``): two packets are the same only if
    they are the same object, and packets are hashable by identity —
    reassembly and stats code keeps them in sets/dicts.

    ``payload_bytes`` may shrink below the type default when the Trim
    Engine removes unneeded sectors from a READ_RSP; any mutation of the
    payload size must go through :meth:`resize_payload` so the cached
    flit-count layout stays coherent.  ``on_delivery`` is invoked by the
    destination GPU's RDMA engine once the reassembled packet arrives.
    """

    ptype: PacketType
    src_gpu: int
    dst_gpu: int
    addr: int = 0
    payload_bytes: int = -1
    #: bytes the requesting wavefront actually needs from the line
    bytes_needed: int = CACHE_LINE_BYTES
    #: sector offset (in sectors) within the 64 B line, for trim bits
    sector_offset: int = 0
    #: set by the requester when trim bits are encoded in the address field
    trim_allowed: bool = False
    #: sector-cache mode: the requester asks for only its sectors up front
    sector_fetch: bool = False
    #: set on responses: bitmask of 16 B (or configured) sectors actually
    #: carried; ``None`` means the full line
    filled_sector_mask: Optional[int] = None
    #: opaque requester context, copied onto the response by the home GPU
    #: (simulation-level plumbing for completion callbacks)
    context: Any = None
    on_delivery: Optional[Callable[["Packet"], None]] = None
    #: identifier used for flit reassembly and stitching metadata
    pid: int = field(default_factory=PACKET_IDS)
    #: filled by the Trim Engine: original payload size before trimming
    original_payload_bytes: Optional[int] = None
    #: cycle the packet was injected into the network (stats)
    inject_cycle: Optional[int] = None
    #: cached ``(flit_size, flit_count, bytes_occupied)`` — packets cross
    #: several links and the stitch scan asks for the layout of every
    #: staged flit's packet, so the ceil-division is paid once per
    #: (packet, flit size)
    _layout: Optional[Tuple[int, int, int]] = field(default=None, repr=False)
    #: header size, resolved once from ``ptype`` (Enum-keyed dict lookups
    #: hash the member name on every probe, which showed up in profiles)
    _hdr: int = field(default=0, repr=False)
    #: cached ``ptype.is_ptw`` (queried per flit on every CQ push)
    _ptw: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        hdr, payload, ptw = _TYPE_META[self.ptype]
        if self.payload_bytes < 0:
            self.payload_bytes = payload
        self._hdr = hdr
        self._ptw = ptw

    @property
    def header_bytes(self) -> int:
        return self._hdr

    @property
    def bytes_required(self) -> int:
        """Useful (non-padding) bytes: header plus payload."""
        return self._hdr + self.payload_bytes

    def resize_payload(self, payload_bytes: int) -> None:
        """Change the payload size, invalidating the cached flit layout.

        The Trim Engine is the only legitimate caller: packets shrink
        before segmentation, never after.
        """
        self.payload_bytes = payload_bytes
        self._layout = None

    @property
    def is_ptw(self) -> bool:
        return self._ptw

    @property
    def trimmed(self) -> bool:
        return self.original_payload_bytes is not None

    def flit_count(self, flit_size: int) -> int:
        """Number of fixed-size flits this packet occupies."""
        layout = self._layout
        if layout is not None and layout[0] == flit_size:
            return layout[1]
        # bytes_required >= 4 (every type has a header), so the ceil
        # division is always at least 1
        count = -(-(self._hdr + self.payload_bytes) // flit_size)
        self._layout = (flit_size, count, count * flit_size)
        return count

    def bytes_occupied(self, flit_size: int) -> int:
        """Total bytes on the wire including padding."""
        layout = self._layout
        if layout is not None and layout[0] == flit_size:
            return layout[2]
        return self.flit_count(flit_size) * flit_size

    def bytes_padded(self, flit_size: int) -> int:
        """Padding bytes appended to fill the final flit."""
        return self.bytes_occupied(flit_size) - self.bytes_required

    # Packets cross the shard boundary inside pickled mail batches every
    # lookahead window; the default slotted-dataclass protocol builds a
    # {slot: value} dict per object, which dominates serialization time.
    # A flat tuple keeps the wire format compact and ~2x faster.
    def __getstate__(self):
        return (
            self.ptype,
            self.src_gpu,
            self.dst_gpu,
            self.addr,
            self.payload_bytes,
            self.bytes_needed,
            self.sector_offset,
            self.trim_allowed,
            self.sector_fetch,
            self.filled_sector_mask,
            self.context,
            self.on_delivery,
            self.pid,
            self.original_payload_bytes,
            self.inject_cycle,
            self._layout,
            self._hdr,
            self._ptw,
        )

    def __setstate__(self, state):
        (
            self.ptype,
            self.src_gpu,
            self.dst_gpu,
            self.addr,
            self.payload_bytes,
            self.bytes_needed,
            self.sector_offset,
            self.trim_allowed,
            self.sector_fetch,
            self.filled_sector_mask,
            self.context,
            self.on_delivery,
            self.pid,
            self.original_payload_bytes,
            self.inject_cycle,
            self._layout,
            self._hdr,
            self._ptw,
        ) = state


def packet_census_row(ptype: PacketType, flit_size: int = 16) -> Dict[str, int]:
    """Reproduce one row of Table 1 analytically from the packet layout."""
    pkt = Packet(ptype=ptype, src_gpu=0, dst_gpu=1)
    return {
        "bytes_occupied": pkt.bytes_occupied(flit_size),
        "bytes_required": pkt.bytes_required,
        "bytes_padded": pkt.bytes_padded(flit_size),
        "flits_occupied": pkt.flit_count(flit_size),
    }
