"""Workload registry: Table 3's application list, by name."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadGenerator
from repro.workloads.collective import collective_generators
from repro.workloads.dnn import Lenet, Resnet18, Vgg16
from repro.workloads.synthetic import (
    Atax,
    BlackScholes,
    Gups,
    Im2Col,
    LargeGemm,
    MatrixTranspose,
    MaximalIndependentSet,
    Mm2,
    Mvt,
    PageRank,
    ShocReduction,
    Spmv,
    Syr2k,
)

#: Table 3 order
_TABLE3_GENERATORS = [
    Gups(),
    MatrixTranspose(),
    MaximalIndependentSet(),
    Im2Col(),
    Atax(),
    BlackScholes(),
    Mm2(),
    Mvt(),
    Spmv(),
    PageRank(),
    ShocReduction(),
    Syr2k(),
    Vgg16(),
    Lenet(),
    Resnet18(),
]

WORKLOADS: Dict[str, WorkloadGenerator] = {gen.name: gen for gen in _TABLE3_GENERATORS}
#: extra workloads used by specific experiments (not in Table 3)
WORKLOADS["gemm_large"] = LargeGemm()
#: collective-communication family (repro.workloads.collective)
_COLLECTIVE_GENERATORS = collective_generators()
for _gen in _COLLECTIVE_GENERATORS:
    WORKLOADS[_gen.name] = _gen


def get_workload(name: str) -> WorkloadGenerator:
    """Look up a generator by its Table 3 abbreviation (case-insensitive)."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(sorted(WORKLOADS))}"
        ) from None


def all_workload_names() -> List[str]:
    """The 15 evaluated applications, in Table 3 order."""
    return [gen.name for gen in _TABLE3_GENERATORS]


def collective_workload_names() -> List[str]:
    """The collective-communication family, in presentation order."""
    return [gen.name for gen in _COLLECTIVE_GENERATORS]


def workload_table() -> List[Dict[str, str]]:
    """Rows reproducing Table 3 (abbr, pattern, suite)."""
    return [
        {"abbr": gen.name.upper(), "pattern": gen.pattern, "suite": gen.suite}
        for gen in _TABLE3_GENERATORS
    ]
