"""Collective-communication workload family, driven by chunk schedules.

Table 3 covers compute kernels; this family models the *other* major
traffic class on multi-GPU nodes — bulk collectives: NCCL-style ring
and tree all-reduce, all-to-all (expert/shuffle) exchange, and the
DP/TP/PP phase mix of one distributed-training step.

Every workload is policy-as-data: a list of :class:`PolicyEntry` steps,
each naming its phase label, chunk size, and peer map.  Schedules are
plain data, so an experiment point can swap one in via
:meth:`CollectiveWorkload.with_schedule` without touching generator
code.

Communication mapping under single-ownership memory (LASP places each
page on exactly one GPU): "GPU ``g`` receives a chunk from peer ``p``"
is modeled as ``g`` issuing remote full-line reads into ``p``'s block
of the shared buffer, plus local full-line writes into ``g``'s own
block — the reduce/accumulate half.  The peer map therefore decides
exactly which inter-cluster links carry traffic each step (ring ->
neighbour links only, tree -> tree edges, all-to-all -> every pair),
and the step index rotates the offsets so steps touch distinct lines.
A peer of ``-1`` idles the GPU for the step (a pipeline bubble, zero
accesses) — which also exercises the zero-access stats edges end to
end.

Each schedule step becomes one kernel; kernels sharing a
:attr:`~repro.gpu.cta.KernelTrace.phase` label aggregate into one
:class:`~repro.stats.collectors.PhaseStats` block on the run result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.gpu.cta import KernelTrace, LINE_BYTES, MemAccess
from repro.workloads.base import Array, Scale, WorkloadGenerator


@dataclass(frozen=True)
class PolicyEntry:
    """One schedule step: which phase, how much data, who pulls from whom.

    ``peers[g]`` is the GPU that ``g`` pulls its chunk from during this
    step, or ``-1`` when ``g`` sits the step out.  ``chunk_lines`` sizes
    the pull: each wavefront reads that many remote lines and writes
    half as many local lines (the reduction).
    """

    step: int
    phase: str
    chunk_lines: int
    peers: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.chunk_lines < 0:
            raise ValueError(f"step {self.step}: chunk_lines must be >= 0")
        if not self.phase:
            raise ValueError(f"step {self.step}: phase label must be non-empty")
        n = len(self.peers)
        for gpu, peer in enumerate(self.peers):
            if peer == gpu:
                raise ValueError(
                    f"step {self.step}: GPU {gpu} pulls from itself"
                )
            if peer < -1 or peer >= n:
                raise ValueError(
                    f"step {self.step}: GPU {gpu} has peer {peer} "
                    f"outside -1..{n - 1}"
                )


def _peer(gpu: int, peer: int, n_gpus: int) -> int:
    """Wrap ``peer`` into range; ``-1`` when it degenerates to ``gpu``."""
    peer %= n_gpus
    return -1 if peer == gpu else peer


def ring_allreduce_schedule(n_gpus: int, chunk_lines: int) -> List[PolicyEntry]:
    """Ring all-reduce: ``n-1`` reduce-scatter then ``n-1`` all-gather
    steps, every GPU pulling from its left neighbour — the bandwidth-
    optimal schedule; traffic stays on neighbour links only."""
    entries: List[PolicyEntry] = []
    step = 0
    for phase in ("reduce_scatter", "all_gather"):
        for _ in range(max(1, n_gpus - 1)):
            peers = tuple(_peer(g, g - 1, n_gpus) for g in range(n_gpus))
            entries.append(PolicyEntry(step, phase, chunk_lines, peers))
            step += 1
    return entries


def tree_allreduce_schedule(n_gpus: int, chunk_lines: int) -> List[PolicyEntry]:
    """Binary-tree all-reduce: an up-sweep (parents pull partials from
    children) then a mirrored down-sweep (children pull the result back)
    — latency-optimal, log-depth, but idles half the GPUs per level."""
    up_levels: List[Tuple[int, ...]] = []
    stride = 1
    while stride < n_gpus:
        peers = [-1] * n_gpus
        for g in range(0, n_gpus, 2 * stride):
            if g + stride < n_gpus:
                peers[g] = g + stride
        up_levels.append(tuple(peers))
        stride *= 2
    entries: List[PolicyEntry] = []
    step = 0
    for peers in up_levels:
        entries.append(PolicyEntry(step, "reduce", chunk_lines, peers))
        step += 1
    for peers in reversed(up_levels):
        down = [-1] * n_gpus
        for parent, child in enumerate(peers):
            if child >= 0:
                down[child] = parent
        entries.append(PolicyEntry(step, "broadcast", chunk_lines, tuple(down)))
        step += 1
    if not entries:  # single GPU: one bubble step so the trace validates
        entries.append(PolicyEntry(0, "reduce", 0, (-1,) * n_gpus))
    return entries


def all_to_all_schedule(n_gpus: int, chunk_lines: int) -> List[PolicyEntry]:
    """Pairwise exchange: step ``k`` has every GPU pull from
    ``(g + k) % n`` — over all steps every GPU pair exchanges a chunk,
    loading every inter-cluster link (MoE expert dispatch / shuffle)."""
    entries: List[PolicyEntry] = []
    for k in range(1, max(2, n_gpus)):
        peers = tuple(_peer(g, g + k, n_gpus) for g in range(n_gpus))
        entries.append(PolicyEntry(k - 1, "exchange", chunk_lines, peers))
    return entries


def train_mix_schedule(n_gpus: int, chunk_lines: int) -> List[PolicyEntry]:
    """One distributed-training step: a TP activation all-reduce (heavy
    chunks), a pipeline bubble (every GPU idle), then a DP gradient
    all-reduce (half-size chunks) — three phases with very different
    traffic intensity in one run."""
    entries: List[PolicyEntry] = []
    step = 0
    for _ in range(max(1, n_gpus - 1)):
        peers = tuple(_peer(g, g - 1, n_gpus) for g in range(n_gpus))
        entries.append(PolicyEntry(step, "tp_allreduce", chunk_lines, peers))
        step += 1
    entries.append(PolicyEntry(step, "pp_bubble", 0, (-1,) * n_gpus))
    step += 1
    for _ in range(max(1, n_gpus - 1)):
        peers = tuple(_peer(g, g + 1, n_gpus) for g in range(n_gpus))
        entries.append(
            PolicyEntry(step, "dp_allreduce", max(1, chunk_lines // 2), peers)
        )
        step += 1
    return entries


#: signature every schedule builder satisfies
ScheduleBuilder = Callable[[int, int], List[PolicyEntry]]


class CollectiveWorkload(WorkloadGenerator):
    """A collective driven by a policy-as-data chunk schedule."""

    pattern = "collective"
    suite = "NCCL-style"

    def __init__(
        self,
        name: str,
        schedule_builder: ScheduleBuilder,
        schedule: Optional[Sequence[PolicyEntry]] = None,
    ) -> None:
        self.name = name
        self._builder = schedule_builder
        self._schedule_override = list(schedule) if schedule is not None else None

    def with_schedule(self, schedule: Sequence[PolicyEntry]) -> "CollectiveWorkload":
        """A copy pinned to an explicit schedule (per experiment point)."""
        return CollectiveWorkload(self.name, self._builder, schedule)

    def schedule_for(self, n_gpus: int, scale: Scale) -> List[PolicyEntry]:
        """The effective schedule: the override if pinned, else the
        builder at the scale-derived chunk size."""
        if self._schedule_override is not None:
            return list(self._schedule_override)
        return self._builder(n_gpus, scale.collective_chunk_lines())

    def _kernels(
        self, n_gpus: int, scale: Scale, rng: random.Random
    ) -> List[KernelTrace]:
        buffer = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        schedule = self.schedule_for(n_gpus, scale)
        if not schedule:
            raise ValueError(f"collective {self.name!r}: empty schedule")
        return [
            self._step_kernel(entry, buffer, n_gpus, scale)
            for entry in sorted(schedule, key=lambda e: e.step)
        ]

    def _step_kernel(
        self, entry: PolicyEntry, buffer: Array, n_gpus: int, scale: Scale
    ) -> KernelTrace:
        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            peer = entry.peers[gpu] if gpu < len(entry.peers) else -1
            if peer < 0 or entry.chunk_lines == 0:
                return []  # bubble: this GPU sits the step out
            src = buffer.gpu_block_range(peer)
            dst = buffer.gpu_block_range(gpu)
            src_lines = max(1, len(src) // LINE_BYTES)
            dst_lines = max(1, len(dst) // LINE_BYTES)
            slot = (cta * scale.wavefronts_per_cta + wf) * entry.chunk_lines
            accesses: List[MemAccess] = []
            for i in range(entry.chunk_lines):
                line = (slot + i + entry.step * 7) % src_lines
                accesses.append(
                    MemAccess(
                        vaddr=buffer.addr(src.start + line * LINE_BYTES),
                        nbytes=LINE_BYTES,
                    )
                )
            for i in range(max(1, entry.chunk_lines // 2)):
                line = (slot + i + entry.step * 7) % dst_lines
                accesses.append(
                    MemAccess(
                        vaddr=buffer.addr(dst.start + line * LINE_BYTES),
                        nbytes=LINE_BYTES,
                        is_write=True,
                    )
                )
            return accesses

        kernel = self._make_kernel(
            f"{self.name}_s{entry.step}", n_gpus, scale, [buffer], wavefront
        )
        kernel.phase = entry.phase
        return kernel


def collective_generators() -> List[CollectiveWorkload]:
    """The registered family, in presentation order."""
    return [
        CollectiveWorkload("ar_ring", ring_allreduce_schedule),
        CollectiveWorkload("ar_tree", tree_allreduce_schedule),
        CollectiveWorkload("a2a", all_to_all_schedule),
        CollectiveWorkload("trainmix", train_mix_schedule),
    ]
