"""Workload trace serialization: dump and reload traces as JSON.

Useful for archiving the exact traffic an experiment saw, diffing
generator changes, and feeding externally-captured traces (e.g. from a
real profiler) into the simulator.  The format is versioned and
validated on load; addresses are stored as hex strings so dumps are
human-auditable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.gpu.cta import (
    CtaTrace,
    KernelTrace,
    MemAccess,
    WavefrontTrace,
    WorkloadTrace,
)

FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """Raised when a serialized trace is malformed or unsupported."""


def trace_to_dict(trace: WorkloadTrace) -> Dict[str, Any]:
    """Convert a workload trace into a JSON-safe dictionary."""
    return {
        "format": "repro-netcrafter-trace",
        "version": FORMAT_VERSION,
        "name": trace.name,
        "kernels": [
            {
                "name": kernel.name,
                # phase key present only when labelled, so pre-phase dumps
                # and unlabelled traces serialize byte-identically
                **({"phase": kernel.phase} if kernel.phase is not None else {}),
                "page_owner": {hex(vpn): owner for vpn, owner in kernel.page_owner.items()},
                "ctas": [
                    {
                        "gpu": cta.gpu,
                        "wavefronts": [
                            [
                                [hex(acc.vaddr), acc.nbytes, int(acc.is_write)]
                                for acc in wf.accesses
                            ]
                            for wf in cta.wavefronts
                        ],
                    }
                    for cta in kernel.ctas
                ],
            }
            for kernel in trace.kernels
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> WorkloadTrace:
    """Rebuild a workload trace from :func:`trace_to_dict` output."""
    if not isinstance(data, dict):
        raise TraceFormatError("trace document must be a JSON object")
    if data.get("format") != "repro-netcrafter-trace":
        raise TraceFormatError("not a repro trace document")
    if data.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {data.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        kernels = []
        for kernel_doc in data["kernels"]:
            ctas = []
            for cta_doc in kernel_doc["ctas"]:
                wavefronts = [
                    WavefrontTrace(
                        accesses=[
                            MemAccess(
                                vaddr=int(vaddr, 16),
                                nbytes=int(nbytes),
                                is_write=bool(is_write),
                            )
                            for vaddr, nbytes, is_write in wf_doc
                        ]
                    )
                    for wf_doc in cta_doc["wavefronts"]
                ]
                ctas.append(CtaTrace(gpu=int(cta_doc["gpu"]), wavefronts=wavefronts))
            page_owner = {
                int(vpn, 16): int(owner)
                for vpn, owner in kernel_doc["page_owner"].items()
            }
            phase = kernel_doc.get("phase")
            kernels.append(
                KernelTrace(
                    name=str(kernel_doc["name"]),
                    ctas=ctas,
                    page_owner=page_owner,
                    phase=None if phase is None else str(phase),
                )
            )
        trace = WorkloadTrace(name=str(data["name"]), kernels=kernels)
    except TraceFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed trace document: {exc}") from exc
    trace.validate()
    return trace


def save_trace(trace: WorkloadTrace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> WorkloadTrace:
    """Load and validate a trace previously written by :func:`save_trace`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"invalid JSON in {path}: {exc}") from exc
    return trace_from_dict(data)
