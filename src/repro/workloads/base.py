"""Workload-generation framework: scales, virtual arrays, the generator ABC.

A workload generator produces a :class:`~repro.gpu.cta.WorkloadTrace`
for a given system shape and scale.  Generators also encode the *result*
of LASP's static analysis: each CTA carries its assigned GPU and each
kernel carries a page->owner map (Section 2.2).
"""

from __future__ import annotations

import abc
import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gpu.cta import (
    CtaTrace,
    KernelTrace,
    LINE_BYTES,
    MemAccess,
    WavefrontTrace,
    WorkloadTrace,
)
from repro.vm.page_table import PAGE_SIZE

#: virtual arrays are spaced 1 GB apart so they never share a 2 MB region
ARRAY_STRIDE = 1 << 30


@dataclass(frozen=True)
class Scale:
    """Knobs controlling trace size (simulation cost) per workload."""

    ctas_per_gpu: int = 16
    wavefronts_per_cta: int = 6
    accesses_per_wavefront: int = 16
    #: data pages per GPU per major array
    pages_per_gpu: int = 32

    @classmethod
    def tiny(cls) -> "Scale":
        """For unit tests: completes in tens of milliseconds."""
        return cls(ctas_per_gpu=2, wavefronts_per_cta=1, accesses_per_wavefront=6, pages_per_gpu=8)

    @classmethod
    def small(cls) -> "Scale":
        """For quick experiments and CI benchmarks.

        Sized so remote-heavy workloads keep the inter-cluster link busy
        (the congestion regime of Section 3.1) while a full run stays
        under a second of wall clock.
        """
        return cls(ctas_per_gpu=16, wavefronts_per_cta=4, accesses_per_wavefront=10, pages_per_gpu=16)

    @classmethod
    def default(cls) -> "Scale":
        return cls()

    def collective_chunk_lines(self) -> int:
        """Default chunk size (cache lines pulled per wavefront per
        schedule step) for the collective workload family.

        Communication-dominated kernels have no compute knob to size
        them, so the chunk derives from the existing access knob — a
        *method*, not a new field, because the result cache fingerprints
        ``asdict(scale)`` and a new field would invalidate every cached
        run.
        """
        return max(1, self.accesses_per_wavefront // 2)


class Array:
    """A virtual array with a page-ownership (placement) policy.

    ``policy`` is ``"interleave"`` (pages round-robin across GPUs — shared
    structures reached randomly) or ``"block"`` (contiguous page blocks
    per GPU — LASP's partitioned placement for streaming arrays).
    """

    def __init__(
        self,
        index: int,
        pages: int,
        n_gpus: int,
        policy: str = "block",
    ) -> None:
        if policy not in ("interleave", "block"):
            raise ValueError(f"unknown placement policy {policy!r}")
        if pages < n_gpus:
            pages = n_gpus  # every GPU owns at least one page
        self.base = (index + 1) * ARRAY_STRIDE
        self.pages = pages
        self.n_gpus = n_gpus
        self.policy = policy

    @property
    def size_bytes(self) -> int:
        return self.pages * PAGE_SIZE

    def addr(self, offset: int) -> int:
        """Virtual address ``offset`` bytes into the array (wraps)."""
        return self.base + (offset % self.size_bytes)

    def owner_of_page(self, page_index: int) -> int:
        page_index %= self.pages
        if self.policy == "interleave":
            return page_index % self.n_gpus
        pages_per_gpu = max(1, self.pages // self.n_gpus)
        return min(self.n_gpus - 1, page_index // pages_per_gpu)

    def page_owner_map(self) -> Dict[int, int]:
        """vpn -> owner for every page of the array."""
        first_vpn = self.base // PAGE_SIZE
        return {
            first_vpn + p: self.owner_of_page(p) for p in range(self.pages)
        }

    def gpu_block_range(self, gpu: int) -> range:
        """Byte-offset range of the block owned by ``gpu`` (block policy)."""
        pages_per_gpu = max(1, self.pages // self.n_gpus)
        start = gpu * pages_per_gpu * PAGE_SIZE
        return range(start, start + pages_per_gpu * PAGE_SIZE)


def aligned_access(array: Array, offset: int, nbytes: int, is_write: bool = False) -> MemAccess:
    """Build an access that never straddles a cache line."""
    addr = array.addr(offset)
    room = LINE_BYTES - (addr % LINE_BYTES)
    return MemAccess(vaddr=addr, nbytes=min(nbytes, room), is_write=is_write)


class WorkloadGenerator(abc.ABC):
    """Base class for all Table 3 workload models."""

    #: short name as in Table 3 (e.g. ``"gups"``)
    name: str = ""
    #: access pattern label as in Table 3
    pattern: str = ""
    #: originating benchmark suite, for the Table 3 reproduction
    suite: str = ""

    def build(
        self,
        n_gpus: int,
        scale: Optional[Scale] = None,
        seed: int = 0,
    ) -> WorkloadTrace:
        """Generate the deterministic trace for this workload."""
        scale = scale or Scale.default()
        # crc32, NOT hash(): str hashes are randomized per process
        # (PYTHONHASHSEED), which would make traces differ between runs
        # and between pool workers
        rng = random.Random((zlib.crc32(self.name.encode()) ^ seed) & 0xFFFFFFFF)
        kernels = self._kernels(n_gpus, scale, rng)
        trace = WorkloadTrace(name=self.name, kernels=kernels)
        trace.validate()
        return trace

    @abc.abstractmethod
    def _kernels(
        self, n_gpus: int, scale: Scale, rng: random.Random
    ) -> List[KernelTrace]:
        """Produce the kernel sequence."""

    # -- shared helpers -------------------------------------------------------

    def _make_kernel(
        self,
        kernel_name: str,
        n_gpus: int,
        scale: Scale,
        arrays: List[Array],
        wavefront_builder,
    ) -> KernelTrace:
        """Standard kernel shape: ``ctas_per_gpu`` CTAs on each GPU.

        ``wavefront_builder(gpu, cta_index, wf_index) -> List[MemAccess]``.
        """
        ctas: List[CtaTrace] = []
        for gpu in range(n_gpus):
            for cta_index in range(scale.ctas_per_gpu):
                wavefronts = [
                    WavefrontTrace(
                        accesses=wavefront_builder(gpu, cta_index, wf_index)
                    )
                    for wf_index in range(scale.wavefronts_per_cta)
                ]
                ctas.append(CtaTrace(gpu=gpu, wavefronts=wavefronts))
        page_owner: Dict[int, int] = {}
        for array in arrays:
            page_owner.update(array.page_owner_map())
        return KernelTrace(name=kernel_name, ctas=ctas, page_owner=page_owner)
