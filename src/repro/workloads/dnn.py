"""Data-parallel DNN training workloads (DNNMark models).

Section 5.1: VGG16 and ResNet18 train on Tiny-ImageNet-200 and LeNet on
MNIST under data parallelism.  Each GPU holds a weight replica and its
own batch shard, so forward/backward kernels are local and streaming,
while the per-layer gradient exchange reads gradient shards from every
other GPU — the classic all-reduce traffic that stresses the
inter-cluster network with full-line transfers.

The layer graphs are reduced to per-layer traffic *weights* (relative
parameter/activation volume); what matters to NetCrafter is the traffic
shape, not the arithmetic (DESIGN.md §5).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.gpu.cta import KernelTrace, LINE_BYTES, MemAccess
from repro.workloads.base import Array, Scale, WorkloadGenerator


class DnnTraining(WorkloadGenerator):
    """Shared machinery: per-layer compute + gradient-exchange kernels."""

    pattern = "data-parallel"
    suite = "DNNMark"
    #: relative traffic weight per layer (subclasses define)
    layer_weights: Sequence[float] = ()
    #: cap on simulated layers so tiny scales stay tiny
    max_layers: int = 20

    @staticmethod
    def _per_layer_scale(scale: Scale) -> Scale:
        """DNN workloads run many kernels (2 per layer); shrink each one so
        the total trace volume stays comparable to the other workloads."""
        return Scale(
            ctas_per_gpu=max(1, scale.ctas_per_gpu // 2),
            wavefronts_per_cta=1,
            accesses_per_wavefront=max(2, scale.accesses_per_wavefront // 2),
            pages_per_gpu=scale.pages_per_gpu,
        )

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        scale = self._per_layer_scale(scale)
        activations = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        weights = Array(1, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        gradients = Array(2, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        arrays = [activations, weights, gradients]
        kernels: List[KernelTrace] = []
        for layer, weight in enumerate(self.layer_weights[: self.max_layers]):
            kernels.append(
                self._compute_kernel(
                    f"{self.name}_l{layer}_fwdbwd", n_gpus, scale, arrays, weight
                )
            )
            kernels.append(
                self._exchange_kernel(
                    f"{self.name}_l{layer}_allreduce",
                    n_gpus,
                    scale,
                    arrays,
                    gradients,
                    weight,
                    rng,
                )
            )
        return kernels

    def _scaled_accesses(self, scale: Scale, weight: float) -> int:
        return max(2, int(round(scale.accesses_per_wavefront * weight)))

    def _compute_kernel(
        self,
        kernel_name: str,
        n_gpus: int,
        scale: Scale,
        arrays: List[Array],
        weight: float,
    ) -> KernelTrace:
        activations, weights, gradients = arrays
        n_accesses = self._scaled_accesses(scale, weight)

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            block = activations.gpu_block_range(gpu)
            lines = max(1, len(block) // LINE_BYTES)
            base_slot = (cta * scale.wavefronts_per_cta + wf) * n_accesses
            for i in range(n_accesses):
                offset = block.start + ((base_slot + i) % lines) * LINE_BYTES
                if i % 3 == 2:
                    accesses.append(
                        MemAccess(
                            vaddr=gradients.addr(offset), nbytes=LINE_BYTES, is_write=True
                        )
                    )
                elif i % 3 == 1:
                    accesses.append(MemAccess(vaddr=weights.addr(offset), nbytes=LINE_BYTES))
                else:
                    accesses.append(
                        MemAccess(vaddr=activations.addr(offset), nbytes=LINE_BYTES)
                    )
            return accesses

        return self._make_kernel(kernel_name, n_gpus, scale, arrays, wavefront)

    def _exchange_kernel(
        self,
        kernel_name: str,
        n_gpus: int,
        scale: Scale,
        arrays: List[Array],
        gradients: Array,
        weight: float,
        rng: random.Random,
    ) -> KernelTrace:
        n_accesses = self._scaled_accesses(scale, weight)

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(n_accesses):
                if i % 4 == 3:
                    # accumulate locally
                    block = gradients.gpu_block_range(gpu)
                    lines = max(1, len(block) // LINE_BYTES)
                    offset = block.start + (
                        (cta * scale.wavefronts_per_cta + wf + i) % lines
                    ) * LINE_BYTES
                    accesses.append(
                        MemAccess(
                            vaddr=gradients.addr(offset), nbytes=LINE_BYTES, is_write=True
                        )
                    )
                else:
                    # read a peer GPU's gradient shard (full lines)
                    peer = rng.randrange(n_gpus - 1)
                    if peer >= gpu:
                        peer += 1
                    block = gradients.gpu_block_range(peer)
                    lines = max(1, len(block) // LINE_BYTES)
                    offset = block.start + (
                        (cta * scale.wavefronts_per_cta + wf + i * 7) % lines
                    ) * LINE_BYTES
                    accesses.append(
                        MemAccess(vaddr=gradients.addr(offset), nbytes=LINE_BYTES)
                    )
            return accesses

        return self._make_kernel(kernel_name, n_gpus, scale, arrays, wavefront)


class Vgg16(DnnTraining):
    """VGG16 on Tiny-ImageNet-200: deep stack of heavy conv/FC layers."""

    name = "vgg16"
    # 13 conv layers growing in parameter volume plus 3 fat FC layers
    layer_weights = (0.3, 0.3, 0.5, 0.5, 0.7, 0.7, 0.7, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.5, 1.2, 0.6)
    max_layers = 16


class Lenet(DnnTraining):
    """LeNet-5 on MNIST: five small layers."""

    name = "lenet"
    layer_weights = (0.4, 0.6, 0.8, 0.6, 0.3)
    max_layers = 5


class Resnet18(DnnTraining):
    """ResNet18 on Tiny-ImageNet-200: residual blocks of moderate size."""

    name = "rnet18"
    layer_weights = (0.4,) + (0.6,) * 8 + (0.8,) * 6 + (1.0,) * 3
    max_layers = 18
