"""Workload models: the 15 applications of Table 3 as trace generators.

Real kernels are replaced by deterministic generators that reproduce
each benchmark's *memory access pattern* (random / gather / scatter /
adjacent / partitioned, plus data-parallel DNN training), including the
per-wavefront bytes-needed distributions that drive Observation 2 and
the remote-access mix that drives the network results.  See DESIGN.md §5
for the substitution rationale.
"""

from repro.workloads.base import Scale, WorkloadGenerator, Array
from repro.workloads.registry import (
    get_workload,
    all_workload_names,
    workload_table,
    WORKLOADS,
)

__all__ = [
    "Scale",
    "WorkloadGenerator",
    "Array",
    "get_workload",
    "all_workload_names",
    "workload_table",
    "WORKLOADS",
]
