"""The twelve non-DNN workloads of Table 3, as access-pattern models.

Each class reproduces the benchmark's memory behaviour as seen by the
network: the mix of streaming (adjacent), gather, scatter, random and
partitioned accesses, the per-request bytes-needed distribution
(Figure 7), and LASP's CTA/page placement.  Sizes follow the
:class:`~repro.workloads.base.Scale` knobs rather than the original
problem sizes (DESIGN.md §5).
"""

from __future__ import annotations

import random
from typing import List

from repro.gpu.cta import KernelTrace, LINE_BYTES, MemAccess
from repro.workloads.base import Array, Scale, WorkloadGenerator, aligned_access


def _sequential_offset(
    array: Array, gpu: int, cta: int, wf: int, i: int, scale: Scale
) -> int:
    """Disjoint, streaming line offsets within the GPU's own block."""
    block = array.gpu_block_range(gpu)
    lines_in_block = max(1, len(block) // LINE_BYTES)
    slot = (cta * scale.wavefronts_per_cta + wf) * scale.accesses_per_wavefront + i
    return block.start + (slot % lines_in_block) * LINE_BYTES


class Gups(WorkloadGenerator):
    """Multi-threaded random 8-byte read-modify-write over a huge table."""

    name = "gups"
    pattern = "random"
    suite = "MGPUSim"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        table = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "interleave")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for _ in range(max(1, scale.accesses_per_wavefront // 2)):
                offset = (rng.randrange(table.size_bytes) // 8) * 8
                accesses.append(aligned_access(table, offset, 8))
                accesses.append(aligned_access(table, offset, 8, is_write=True))
            return accesses

        return [self._make_kernel("gups_update", n_gpus, scale, [table], wavefront)]


class MatrixTranspose(WorkloadGenerator):
    """Column-wise gather reads, row-wise streaming writes (AMDAPPSDK MT)."""

    name = "mt"
    pattern = "gather"
    suite = "AMDAPPSDK"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        src = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        dst = Array(1, scale.pages_per_gpu * n_gpus, n_gpus, "block")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            # Tiled transpose: each gathered source line is read as two
            # 16 B tile rows separated in time by the destination writes
            # of the first tile — intra-line reuse that conventional line
            # fills exploit and sectored/trimmed fills forfeit (Fig 16).
            n = scale.accesses_per_wavefront
            n_lines = max(1, n // 4)
            bases = [
                (rng.randrange(src.size_bytes) // LINE_BYTES) * LINE_BYTES
                for _ in range(n_lines)
            ]
            accesses: List[MemAccess] = [
                aligned_access(src, base, 16) for base in bases
            ]
            for i in range(max(0, n - 2 * n_lines)):
                offset = _sequential_offset(dst, gpu, cta, wf, i, scale)
                accesses.append(
                    MemAccess(vaddr=dst.addr(offset), nbytes=LINE_BYTES, is_write=True)
                )
            accesses.extend(aligned_access(src, base + 16, 16) for base in bases)
            return accesses

        return [self._make_kernel("mt_transpose", n_gpus, scale, [src, dst], wavefront)]


class MaximalIndependentSet(WorkloadGenerator):
    """Pannotia MIS: random small reads over an interleaved graph."""

    name = "mis"
    pattern = "random"
    suite = "Pannotia"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        nodes = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "interleave")
        adjacency = Array(1, scale.pages_per_gpu * n_gpus, n_gpus, "block")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(scale.accesses_per_wavefront):
                roll = rng.random()
                if roll < 0.6:
                    # neighbour status probe: 8 B at a random node
                    offset = (rng.randrange(nodes.size_bytes) // 8) * 8
                    accesses.append(aligned_access(nodes, offset, 8))
                elif roll < 0.9:
                    # local adjacency-list scan
                    offset = _sequential_offset(adjacency, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=adjacency.addr(offset), nbytes=LINE_BYTES))
                else:
                    # mark node removed
                    offset = (rng.randrange(nodes.size_bytes) // 8) * 8
                    accesses.append(aligned_access(nodes, offset, 8, is_write=True))
            return accesses

        return [
            self._make_kernel("mis_select", n_gpus, scale, [nodes, adjacency], wavefront)
        ]


class Im2Col(WorkloadGenerator):
    """DNNMark im2col: streaming adjacent reads/writes, high locality."""

    name = "im2col"
    pattern = "adjacent"
    suite = "DNNMark"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        image = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        columns = Array(1, scale.pages_per_gpu * n_gpus, n_gpus, "block")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            neighbor = (gpu + 1) % n_gpus
            for i in range(scale.accesses_per_wavefront):
                if i % 2 == 0:
                    # halo rows occasionally come from the neighbouring block
                    source_gpu = neighbor if rng.random() < 0.15 else gpu
                    offset = _sequential_offset(image, source_gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=image.addr(offset), nbytes=LINE_BYTES))
                else:
                    offset = _sequential_offset(columns, gpu, cta, wf, i, scale)
                    accesses.append(
                        MemAccess(vaddr=columns.addr(offset), nbytes=LINE_BYTES, is_write=True)
                    )
            return accesses

        return [self._make_kernel("im2col", n_gpus, scale, [image, columns], wavefront)]


class Atax(WorkloadGenerator):
    """Polybench ATAX: local row streaming, scattered vector updates."""

    name = "atax"
    pattern = "scatter"
    suite = "Polybench"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        matrix = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        x_vec = Array(1, n_gpus * 2, n_gpus, "interleave")
        y_vec = Array(2, n_gpus * 2, n_gpus, "interleave")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(scale.accesses_per_wavefront):
                roll = i % 3
                if roll == 0:
                    offset = _sequential_offset(matrix, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=matrix.addr(offset), nbytes=LINE_BYTES))
                elif roll == 1:
                    offset = (rng.randrange(x_vec.size_bytes) // 8) * 8
                    accesses.append(aligned_access(x_vec, offset, 8))
                else:
                    offset = (rng.randrange(y_vec.size_bytes) // 8) * 8
                    accesses.append(aligned_access(y_vec, offset, 8, is_write=True))
            return accesses

        return [
            self._make_kernel("atax", n_gpus, scale, [matrix, x_vec, y_vec], wavefront)
        ]


class BlackScholes(WorkloadGenerator):
    """AMDAPPSDK BlackScholes: perfectly partitioned streaming."""

    name = "bs"
    pattern = "partitioned"
    suite = "AMDAPPSDK"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        options = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        prices = Array(1, scale.pages_per_gpu * n_gpus, n_gpus, "block")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(scale.accesses_per_wavefront):
                if i % 2 == 0:
                    offset = _sequential_offset(options, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=options.addr(offset), nbytes=LINE_BYTES))
                else:
                    offset = _sequential_offset(prices, gpu, cta, wf, i, scale)
                    accesses.append(
                        MemAccess(vaddr=prices.addr(offset), nbytes=LINE_BYTES, is_write=True)
                    )
            return accesses

        return [
            self._make_kernel("blackscholes", n_gpus, scale, [options, prices], wavefront)
        ]


class Mm2(WorkloadGenerator):
    """Polybench 2MM: two chained GEMMs with column gathers."""

    name = "mm2"
    pattern = "gather"
    suite = "Polybench"

    def _gemm_kernel(
        self,
        kernel_name: str,
        n_gpus: int,
        scale: Scale,
        rng: random.Random,
        array_base: int,
        gather_bytes: int = 16,
    ) -> KernelTrace:
        a_mat = Array(array_base, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        b_mat = Array(array_base + 1, scale.pages_per_gpu * n_gpus, n_gpus, "interleave")
        c_mat = Array(array_base + 2, scale.pages_per_gpu * n_gpus, n_gpus, "block")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            # The inner GEMM loop revisits each gathered B line for its
            # next sub-tile (spatial intra-line reuse): sweep chunk 0 of
            # every line, do the local streaming work, then sweep chunk 1.
            # This is what conventional line fills exploit and sectored /
            # trimmed fills forfeit (Figures 16 and 17).
            n = scale.accesses_per_wavefront
            n_lines = max(1, n // 4)
            bases = [
                (rng.randrange(b_mat.size_bytes) // LINE_BYTES) * LINE_BYTES
                for _ in range(n_lines)
            ]
            accesses: List[MemAccess] = [
                aligned_access(b_mat, base, gather_bytes) for base in bases
            ]
            for i in range(max(0, n - 2 * n_lines)):
                if i % 2 == 0:
                    offset = _sequential_offset(a_mat, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=a_mat.addr(offset), nbytes=LINE_BYTES))
                else:
                    offset = _sequential_offset(c_mat, gpu, cta, wf, i, scale)
                    accesses.append(
                        MemAccess(vaddr=c_mat.addr(offset), nbytes=LINE_BYTES, is_write=True)
                    )
            accesses.extend(
                aligned_access(b_mat, base + gather_bytes, gather_bytes)
                for base in bases
            )
            return accesses

        return self._make_kernel(
            kernel_name, n_gpus, scale, [a_mat, b_mat, c_mat], wavefront
        )

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        return [
            self._gemm_kernel("mm2_first", n_gpus, scale, rng, array_base=0),
            self._gemm_kernel("mm2_second", n_gpus, scale, rng, array_base=3),
        ]


class Mvt(WorkloadGenerator):
    """Polybench MVT: A*y1 gather then A^T*y2 scatter."""

    name = "mvt"
    pattern = "scatter,gather"
    suite = "Polybench"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        matrix = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        vec_in = Array(1, n_gpus * 2, n_gpus, "interleave")
        vec_out = Array(2, n_gpus * 2, n_gpus, "interleave")

        def gather_wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(scale.accesses_per_wavefront):
                if i % 2 == 0:
                    offset = _sequential_offset(matrix, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=matrix.addr(offset), nbytes=LINE_BYTES))
                else:
                    offset = (rng.randrange(vec_in.size_bytes) // 8) * 8
                    accesses.append(aligned_access(vec_in, offset, 8))
            return accesses

        def scatter_wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(scale.accesses_per_wavefront):
                if i % 2 == 0:
                    offset = _sequential_offset(matrix, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=matrix.addr(offset), nbytes=LINE_BYTES))
                else:
                    offset = (rng.randrange(vec_out.size_bytes) // 8) * 8
                    accesses.append(aligned_access(vec_out, offset, 8, is_write=True))
            return accesses

        arrays = [matrix, vec_in, vec_out]
        return [
            self._make_kernel("mvt_gather", n_gpus, scale, arrays, gather_wavefront),
            self._make_kernel("mvt_scatter", n_gpus, scale, arrays, scatter_wavefront),
        ]


class Spmv(WorkloadGenerator):
    """SHOC SpMV: local CSR streaming plus random x-vector gathers."""

    name = "spmv"
    pattern = "random"
    suite = "SHOC"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        csr = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        x_vec = Array(1, scale.pages_per_gpu * n_gpus, n_gpus, "interleave")
        y_vec = Array(2, n_gpus * 2, n_gpus, "block")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(scale.accesses_per_wavefront):
                roll = i % 4
                if roll == 0:
                    offset = _sequential_offset(csr, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=csr.addr(offset), nbytes=LINE_BYTES))
                elif roll == 3:
                    offset = _sequential_offset(y_vec, gpu, cta, wf, i, scale)
                    accesses.append(
                        MemAccess(vaddr=y_vec.addr(offset), nbytes=8, is_write=True)
                    )
                else:
                    # sparse x[col] gathers dominate the network traffic
                    offset = (rng.randrange(x_vec.size_bytes) // 8) * 8
                    accesses.append(aligned_access(x_vec, offset, 8))
            return accesses

        return [
            self._make_kernel("spmv", n_gpus, scale, [csr, x_vec, y_vec], wavefront)
        ]


class PageRank(WorkloadGenerator):
    """Hetero-Mark PR: random rank-vector probes over two iterations."""

    name = "pr"
    pattern = "random"
    suite = "Hetero-Mark"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        links = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        ranks = Array(1, scale.pages_per_gpu * n_gpus, n_gpus, "interleave")
        arrays = [links, ranks]

        def iteration(kernel_name: str) -> KernelTrace:
            def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
                # PR walks adjacency lists in 32 B chunks, coming back for
                # the second half of each cache line after probing ranks:
                # spatial reuse that a 16 B sector cache forfeits (the
                # paper notes PR regresses with 16 B sectors, Fig 16).
                n = scale.accesses_per_wavefront
                n_adj = max(1, n // 4)
                bases = [
                    (rng.randrange(links.size_bytes) // LINE_BYTES) * LINE_BYTES
                    for _ in range(n_adj)
                ]
                accesses: List[MemAccess] = [
                    aligned_access(links, base, 32) for base in bases
                ]
                for _i in range(max(0, n - 2 * n_adj)):
                    if rng.random() < 0.25:
                        offset = (rng.randrange(ranks.size_bytes) // 8) * 8
                        accesses.append(aligned_access(ranks, offset, 8, is_write=True))
                    else:
                        offset = (rng.randrange(ranks.size_bytes) // 8) * 8
                        accesses.append(aligned_access(ranks, offset, 8))
                accesses.extend(
                    aligned_access(links, base + 32, 32) for base in bases
                )
                return accesses

            return self._make_kernel(kernel_name, n_gpus, scale, arrays, wavefront)

        return [iteration("pr_iter0"), iteration("pr_iter1")]


class ShocReduction(WorkloadGenerator):
    """SHOC reduction: local streaming then a cross-GPU gather of partials."""

    name = "sr"
    pattern = "gather"
    suite = "SHOC"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        data = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        partials = Array(1, n_gpus, n_gpus, "interleave")
        arrays = [data, partials]

        def reduce_wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(scale.accesses_per_wavefront):
                if i == scale.accesses_per_wavefront - 1:
                    offset = (rng.randrange(partials.size_bytes) // 8) * 8
                    accesses.append(aligned_access(partials, offset, 8, is_write=True))
                elif i % 3 == 2:
                    # gather partial sums produced by other GPUs
                    offset = (rng.randrange(partials.size_bytes) // 8) * 8
                    accesses.append(aligned_access(partials, offset, 8))
                else:
                    offset = _sequential_offset(data, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=data.addr(offset), nbytes=LINE_BYTES))
            return accesses

        return [self._make_kernel("sr_reduce", n_gpus, scale, arrays, reduce_wavefront)]


class Syr2k(WorkloadGenerator):
    """Polybench SYR2K: adjacent rank-2k update with modest remote reads."""

    name = "syr2k"
    pattern = "adjacent"
    suite = "Polybench"

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        a_mat = Array(0, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        b_mat = Array(1, scale.pages_per_gpu * n_gpus, n_gpus, "block")
        c_mat = Array(2, scale.pages_per_gpu * n_gpus, n_gpus, "block")

        def wavefront(gpu: int, cta: int, wf: int) -> List[MemAccess]:
            accesses: List[MemAccess] = []
            for i in range(scale.accesses_per_wavefront):
                roll = i % 4
                if roll == 0:
                    offset = _sequential_offset(a_mat, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=a_mat.addr(offset), nbytes=LINE_BYTES))
                elif roll == 1:
                    # the transposed operand occasionally crosses blocks
                    source_gpu = rng.randrange(n_gpus) if rng.random() < 0.3 else gpu
                    offset = _sequential_offset(b_mat, source_gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=b_mat.addr(offset), nbytes=LINE_BYTES))
                elif roll == 2:
                    offset = _sequential_offset(c_mat, gpu, cta, wf, i, scale)
                    accesses.append(MemAccess(vaddr=c_mat.addr(offset), nbytes=LINE_BYTES))
                else:
                    offset = _sequential_offset(c_mat, gpu, cta, wf, i, scale)
                    accesses.append(
                        MemAccess(vaddr=c_mat.addr(offset), nbytes=LINE_BYTES, is_write=True)
                    )
            return accesses

        return [
            self._make_kernel("syr2k", n_gpus, scale, [a_mat, b_mat, c_mat], wavefront)
        ]


class LargeGemm(Mm2):
    """Large GEMM kernels for the Figure 17 trim-granularity study."""

    name = "gemm_large"
    pattern = "gather"
    suite = "synthetic"

    def __init__(self, gather_bytes: int = 8) -> None:
        self.gather_bytes = gather_bytes

    def _kernels(self, n_gpus: int, scale: Scale, rng: random.Random) -> List[KernelTrace]:
        return [
            self._gemm_kernel(
                "gemm_large",
                n_gpus,
                scale,
                rng,
                array_base=0,
                gather_bytes=self.gather_bytes,
            )
        ]
