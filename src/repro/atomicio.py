"""Crash-safe file publication: write-temp, fsync, rename.

Both the persistent result cache and the checkpoint subsystem publish
files that a crash must never leave half-written: a torn JSON entry
poisons figure sweeps, a torn snapshot bricks a resume.  POSIX gives the
needed primitive — ``os.replace`` is atomic on the same filesystem — but
only if the temp file's contents are durably on disk *before* the
rename, hence the explicit flush + fsync.  Directory entries are synced
too (best effort) so the rename itself survives a power cut.

Writers that die between creating the temp file and renaming it leave
an orphan ``*.tmp`` behind; :func:`sweep_orphans` removes them on the
next open of the owning store.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

#: suffix of in-flight temp files (swept by :func:`sweep_orphans`)
TMP_SUFFIX = ".tmp"


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so a just-renamed file survives a crash.

    Best effort: some filesystems refuse O_RDONLY fsync on directories;
    losing it degrades durability, not atomicity.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically publish ``data`` at ``path`` (flush + fsync + replace).

    Readers either see the old file or the complete new one — never a
    prefix.  The temp file is created in the target directory (same
    filesystem, so the rename is atomic) with the :data:`TMP_SUFFIX`
    suffix so a crashed writer's leftovers are recognizable.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=TMP_SUFFIX)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Text-mode convenience over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def sweep_orphans(root: Union[str, Path], recursive: bool = True) -> int:
    """Remove stale ``*.tmp`` files under ``root``; returns the count.

    Call when opening a store, i.e. when no writer can be mid-publish;
    anything with the temp suffix is then a crashed writer's leftover.
    """
    root = Path(root)
    if not root.is_dir():
        return 0
    pattern = f"**/*{TMP_SUFFIX}" if recursive else f"*{TMP_SUFFIX}"
    removed = 0
    for orphan in root.glob(pattern):
        try:
            orphan.unlink()
            removed += 1
        except OSError:
            pass
    return removed
