"""Canonical result assembly from row-level stat snapshots.

:class:`~repro.gpu.system.MultiGpuSystem` and the cluster-sharded
coordinator (:mod:`repro.shard`) must produce **byte-identical**
:class:`~repro.stats.report.RunResult` payloads for the same simulated
run.  The only parts of assembly that are sensitive to evaluation order
are floating-point accumulations (link busy-cycle sums); everything else
is integer arithmetic.  Both paths therefore funnel through this module:
each extracts per-link / per-controller *rows* (ints plus one
already-divided busy-cycle float each) in the topology's canonical
order, and :func:`assemble_result` folds them with a fixed operation
order.  A sharded run concatenates its shards' row lists — which, for
contiguous cluster ownership, reproduces the global topology order — and
gets the same float accumulation sequence as the single-engine run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.stats.collectors import RunStats
from repro.stats.energy import energy_from_totals
from repro.stats.report import RunResult

__all__ = [
    "ControllerRow",
    "LinkRow",
    "assemble_result",
    "controller_row",
    "link_row",
]

#: (flits, wire_bytes, useful_bytes, busy_cycles) snapshot of one link.
#: ``busy_cycles`` is the single exact division done by
#: :class:`~repro.network.link.LinkStats`; shipping the float (rather
#: than the byte numerator) is safe because the division happens once
#: per link either way, on identical operands.
LinkRow = Tuple[int, int, int, float]


@dataclass
class ControllerRow:
    """Snapshot of one egress controller's result-relevant counters."""

    flits_entered: int
    flits_absorbed: int
    parents_stitched: int
    ptw_flits: int
    data_flits: int
    ptw_bytes: int
    data_bytes: int
    packets_trimmed: int
    trim_bytes_saved: int
    occupancy: Counter = field(default_factory=Counter)


def link_row(link) -> LinkRow:
    """Extract a :data:`LinkRow` from a live link."""
    stats = link.stats
    return (stats.flits, stats.wire_bytes, stats.useful_bytes, stats.busy_cycles)


def controller_row(controller) -> ControllerRow:
    """Extract a :class:`ControllerRow` from a live controller."""
    stats = controller.stats
    return ControllerRow(
        flits_entered=stats.flits_entered,
        flits_absorbed=stats.flits_absorbed,
        parents_stitched=stats.parents_stitched,
        ptw_flits=stats.ptw_flits,
        data_flits=stats.data_flits,
        ptw_bytes=stats.ptw_bytes,
        data_bytes=stats.data_bytes,
        packets_trimmed=controller.packets_trimmed,
        trim_bytes_saved=controller.trim_bytes_saved,
        occupancy=Counter(stats.occupancy),
    )


def assemble_result(
    workload: str,
    config_label: str,
    cycles: int,
    stats: RunStats,
    events_processed: int,
    inter_rows: List[LinkRow],
    intra_rows: List[LinkRow],
    controller_rows: List[ControllerRow],
    l2_accesses: int,
    dram_accesses: int,
) -> RunResult:
    """Fold rows into a :class:`RunResult` with a fixed operation order.

    Callers must pass rows in the topology's canonical order (the order
    ``Topology.inter_links`` / ``intra_links()`` / ``controllers``
    iterate) so the float accumulations below see the same addend
    sequence regardless of how the run was executed.
    """
    result = RunResult(
        workload=workload,
        config_label=config_label,
        cycles=cycles,
        stats=stats,
        events_processed=events_processed,
    )
    for flits, wire_bytes, useful_bytes, busy_cycles in inter_rows:
        result.inter_flits_sent += flits
        result.inter_wire_bytes += wire_bytes
        result.inter_useful_bytes += useful_bytes
        result.inter_busy_cycles += min(busy_cycles, float(result.cycles))
    result.inter_links = len(inter_rows)
    for _flits, _wire_bytes, _useful_bytes, busy_cycles in intra_rows:
        result.intra_busy_cycles += busy_cycles
    result.intra_links = len(intra_rows)
    for row in controller_rows:
        result.flits_entered += row.flits_entered
        result.flits_absorbed += row.flits_absorbed
        result.parents_stitched += row.parents_stitched
        result.ptw_flits += row.ptw_flits
        result.data_flits += row.data_flits
        result.ptw_bytes += row.ptw_bytes
        result.data_bytes += row.data_bytes
        result.packets_trimmed += row.packets_trimmed
        result.trim_bytes_saved += row.trim_bytes_saved
        result.occupancy.update(row.occupancy)
    # energy inputs are pure int sums (order-independent); the breakdown
    # itself is one int*const product per component
    inter_bytes = sum(row[1] for row in inter_rows)
    intra_bytes = sum(row[1] for row in intra_rows)
    switch_flits = sum(row[0] for row in inter_rows) + sum(
        row[0] for row in intra_rows
    )
    cq_flits = sum(row.flits_entered for row in controller_rows)
    result.energy = energy_from_totals(
        inter_bytes,
        intra_bytes,
        switch_flits,
        cq_flits,
        stats.l1_accesses,
        l2_accesses,
        dram_accesses,
    )
    return result
