"""Statistics: counters, histograms, and per-run reports."""

from repro.stats.collectors import LatencyStat, RunStats
from repro.stats.coord import CoordStats
from repro.stats.report import RunResult, geometric_mean

__all__ = ["CoordStats", "LatencyStat", "RunStats", "RunResult", "geometric_mean"]
