"""Run-wide statistic collectors shared by simulator components."""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional

_MASK64 = (1 << 64) - 1


def _mix64(value: int, occurrence: int) -> int:
    """Deterministic 64-bit hash of a (value, duplicate-index) pair.

    splitmix64-style finalizer: stable across processes and Python
    versions (unlike ``hash``), cheap, and well-scrambled so bottom-k
    selection behaves like uniform sampling.
    """
    x = (value * 0x9E3779B97F4A7C15 + occurrence * 0xBF58476D1CE4E5B9 + 1) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class LatencyStat:
    """Mean/max/percentiles over recorded latencies.

    Keeps every sample up to a bound (simulation runs are small) plus a
    fixed-bucket histogram that never drops anything; percentiles come
    from the raw samples while they are complete and degrade to
    histogram resolution (~12.5% relative error) beyond the bound or
    after a serialization round-trip.
    """

    #: above this many samples, stop retaining them raw
    MAX_SAMPLES = 200_000
    #: log2 sub-bucket resolution of the fixed histogram: each power-of-
    #: two range splits into 2**HIST_SUB_BITS linear buckets, bounding
    #: relative quantization error at 2**-HIST_SUB_BITS
    HIST_SUB_BITS = 3

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.max = 0
        self._samples = []
        #: bucket floor -> sample count; see :meth:`bucket_floor`
        self._hist: Counter = Counter()

    @classmethod
    def bucket_floor(cls, value: int) -> int:
        """Lower edge of the fixed histogram bucket containing ``value``."""
        if value <= 0:
            return 0
        msb = value.bit_length() - 1
        if msb <= cls.HIST_SUB_BITS:
            return value  # exact below 2**(HIST_SUB_BITS+1)
        width = 1 << (msb - cls.HIST_SUB_BITS)
        return value - (value % width)

    def record(self, latency: int) -> None:
        self.count += 1
        self.total += latency
        if latency > self.max:
            self.max = latency
        if len(self._samples) < self.MAX_SAMPLES:
            self._samples.append(latency)
        self._hist[self.bucket_floor(latency)] += 1

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @staticmethod
    def _rank(p: float, n: int) -> int:
        """Floor-based nearest-rank index into ``n`` ordered samples.

        ``round()`` (banker's rounding) made p50/p99 depend on
        sample-count parity and let the raw-sample and histogram paths
        disagree at bucket edges; one shared floor rule keeps both paths
        on the same rank.  ``p * (n - 1)`` before the division so integer
        percentiles stay exact in floating point.
        """
        return max(0, min(n - 1, math.floor(p * (n - 1) / 100)))

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) by floor-based nearest-rank.

        Computed over the raw samples when any are retained; otherwise
        (after deserialization) over the histogram, answering with the
        bucket's lower edge.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within 0..100")
        if self._samples:
            ordered = sorted(self._samples)
            return float(ordered[self._rank(p, len(ordered))])
        n = sum(self._hist.values())
        if n == 0:
            return 0.0
        rank = self._rank(p, n)
        cumulative = 0
        for floor in sorted(self._hist):
            cumulative += self._hist[floor]
            if cumulative > rank:
                return float(floor)
        return float(max(self._hist))  # pragma: no cover - defensive

    def merge(self, other: "LatencyStat") -> None:
        """Fold ``other`` in; merged percentiles are order-independent.

        The retained-sample union is capped by a deterministic bottom-k
        selection over the combined *multiset* (see :meth:`_bottom_k`),
        so the merge is commutative **and** associative: any merge tree
        over the same stats keeps exactly the same samples — unlike the
        former "first ``room`` of ``other``" rule, which systematically
        over-weighted the self/earlier stat's distribution in merged
        percentiles.
        """
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        self._hist.update(other._hist)
        combined = self._samples + other._samples
        if len(combined) > self.MAX_SAMPLES:
            combined = self._bottom_k(combined, self.MAX_SAMPLES)
        self._samples = combined

    @staticmethod
    def _bottom_k(samples: List[int], k: int) -> List[int]:
        """The ``k`` samples with the smallest stable selection keys.

        Each copy of a value is keyed ``(duplicate-index, hash(value,
        duplicate-index))``: a pure function of the multiset (duplicate
        indices are enumerated over the sorted samples), so any merge
        order selects the same survivors.  Ordering by duplicate index
        *first* makes the survivors of every value a prefix of its
        copies, so truncation never re-keys a survivor — which is what
        makes the capped merge associative, not just commutative:
        ``bottom_k(bottom_k(A|B) | C) == bottom_k(A|B|C)`` because every
        element keeps the same key in both evaluations (the standard
        mergeable bottom-k sketch argument).  The cost is a mild bias
        toward distinct values over heavy hitters in the retained set;
        the histogram keeps full counts either way.
        """
        occurrences: Counter = Counter()
        keyed = []
        for value in sorted(samples):
            index = occurrences[value]
            keyed.append((index, _mix64(value, index), value))
            occurrences[value] += 1
        keyed.sort()
        return sorted(value for _, _, value in keyed[:k])

    # -- serialization (persistent result cache) ---------------------------
    #
    # Raw samples are NOT serialized: a single run records hundreds of
    # thousands of latencies per stat, which used to balloon every cache
    # entry by megabytes of JSON.  The fixed-bucket histogram preserves
    # percentile queries to bounded relative error at a few hundred
    # buckets.  Legacy "samples" payloads predate the histogram and are
    # rejected so cache reads treat them as misses, never as results
    # with silently empty percentiles.

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "hist": sorted(self._hist.items()),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyStat":
        if "hist" not in data:
            raise ValueError(
                "legacy LatencyStat payload (raw samples, no histogram)"
            )
        stat = cls()
        stat.count = int(data["count"])
        stat.total = int(data["total"])
        stat.max = int(data["max"])
        stat._hist = Counter({int(floor): int(n) for floor, n in data["hist"]})
        return stat


class FaultStats:
    """Fault-injection and reliability-layer counters for one run.

    Exists only when the fault subsystem is attached
    (``RunStats.faults`` stays ``None`` otherwise, keeping fault-free
    serialization byte-identical to builds without the subsystem).
    Merging is deterministic: plain counters sum and the recovery
    histogram merges through :class:`LatencyStat`'s order-independent
    bottom-k, so sharded runs aggregate to the single-engine totals.
    """

    def __init__(self) -> None:
        # link-level fault events (wire transmissions, not unique flits:
        # a flit corrupted twice counts twice)
        self.flits_corrupted = 0
        self.bytes_corrupted = 0
        self.flits_dropped = 0
        self.bytes_dropped = 0
        # reliability-layer recoveries
        self.flits_retransmitted = 0
        self.bytes_retransmitted = 0
        #: faulted transmissions the link layer gave up on (recovery
        #: falls to the RDMA backstop); conservation invariant:
        #: corrupted + dropped == retransmitted + abandoned at drain
        self.flits_abandoned = 0
        # switch-ingress CRC outcomes (wire flits, stitched or not)
        self.crc_ok = 0
        self.crc_fail = 0
        # requester-level backstop
        self.rdma_retries = 0
        self.rdma_duplicate_responses = 0
        # flap bookkeeping: transmissions started at degraded bandwidth
        self.degraded_flits = 0
        #: cycles from a flit's first faulted transmission to its first
        #: clean delivery
        self.recovery_latency = LatencyStat()

    def merge(self, other: "FaultStats") -> None:
        for key, value in vars(other).items():
            mine = getattr(self, key)
            if isinstance(value, LatencyStat):
                mine.merge(value)
            else:
                setattr(self, key, mine + value)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for key, value in vars(self).items():
            if isinstance(value, LatencyStat):
                out[key] = {"__latency__": value.to_dict()}
            else:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultStats":
        stats = cls()
        for key, value in data.items():
            if isinstance(value, dict) and "__latency__" in value:
                setattr(stats, key, LatencyStat.from_dict(value["__latency__"]))
            else:
                setattr(stats, key, value)
        return stats


class PhaseStats:
    """Per-phase traffic and latency breakdown for one workload phase.

    Collective workloads label their kernels with a phase name
    (``KernelTrace.phase``); the executing system attributes quiesced
    boundary-to-boundary deltas of the inter-cluster link and egress
    controller counters to the finished kernel's phase, and the RDMA
    engines route inter-cluster read latencies into the live phase.

    Merge semantics are chosen so sharded runs reproduce the single
    engine byte-for-byte: traffic counters are per-shard-disjoint and
    *sum*; ``kernels``/``cycles`` are run-global milestones every shard
    observes identically (kernel boundaries are proven globally) and
    merge by *max*; the latency histogram merges through
    :class:`LatencyStat`'s order-independent bottom-k.
    """

    #: run-global fields every shard reports identically (max-merge)
    _GLOBAL_FIELDS = ("kernels", "cycles")

    def __init__(self) -> None:
        #: kernels executed under this phase label
        self.kernels = 0
        #: cycles between the phase's kernel boundaries
        self.cycles = 0
        # inter-cluster link deltas (FlitStats slice)
        self.inter_flits = 0
        self.inter_wire_bytes = 0
        self.inter_useful_bytes = 0
        # egress-controller deltas (stitching effectiveness per phase)
        self.flits_entered = 0
        self.flits_absorbed = 0
        #: inter-cluster remote-read latencies recorded during the phase
        self.read_latency_inter = LatencyStat()

    def stitch_rate(self) -> float:
        if self.flits_entered == 0:
            return 0.0
        return self.flits_absorbed / self.flits_entered

    def merge(self, other: "PhaseStats") -> None:
        for key, value in vars(other).items():
            mine = getattr(self, key)
            if isinstance(value, LatencyStat):
                mine.merge(value)
            elif key in self._GLOBAL_FIELDS:
                setattr(self, key, max(mine, value))
            else:
                setattr(self, key, mine + value)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for key, value in vars(self).items():
            if isinstance(value, LatencyStat):
                out[key] = {"__latency__": value.to_dict()}
            else:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PhaseStats":
        stats = cls()
        for key, value in data.items():
            if isinstance(value, dict) and "__latency__" in value:
                setattr(stats, key, LatencyStat.from_dict(value["__latency__"]))
            else:
                setattr(stats, key, value)
        return stats


class RunStats:
    """Counters updated in place by CUs, GMMUs, RDMA engines, etc.

    One instance exists per simulation run; the experiment harness reads
    it (together with link and controller stats) into a
    :class:`~repro.stats.report.RunResult`.
    """

    def __init__(self) -> None:
        # instruction/work proxies
        self.mem_ops = 0
        self.reads = 0
        self.writes = 0
        # L1 behaviour (aggregated over all CUs)
        self.l1_hits = 0
        self.l1_misses = 0
        self.l1_sector_misses = 0
        self.l1_refetches = 0  # waiter re-issues after an incompatible sector fill
        self.l1_mshr_stall_retries = 0
        # locality of read fills
        self.local_reads = 0
        self.remote_reads_intra = 0
        self.remote_reads_inter = 0
        self.remote_writes_intra = 0
        self.remote_writes_inter = 0
        self.local_writes = 0
        # Figure 7: bytes the wavefront needs per inter-cluster read request
        self.read_req_bytes_hist: Counter = Counter()
        # remote access latency, split by whether it crossed clusters
        self.remote_read_latency_inter = LatencyStat()
        self.remote_read_latency_intra = LatencyStat()
        # page-table walks
        self.ptw_walks = 0
        self.ptw_latency = LatencyStat()
        self.ptw_pte_accesses = 0
        self.ptw_remote_pte_accesses = 0
        self.ptw_inter_pte_accesses = 0
        # hardware-coherence extension traffic
        self.coherence_inv_sent = 0
        self.coherence_inv_sent_inter = 0
        self.coherence_inv_received = 0
        # fault-injection / reliability counters; created lazily by the
        # fault layer so fault-free runs serialize without the block
        # (digest discipline: off means byte-identical output)
        self.faults: Optional[FaultStats] = None
        # per-phase breakdown; created lazily on the first phase-labelled
        # kernel, so workloads without phases serialize without the block
        self.phases: Optional[Dict[str, PhaseStats]] = None
        #: live phase pointer for record-time routing; underscore
        #: attributes are transient bookkeeping — excluded from merge and
        #: serialization
        self._phase: Optional[str] = None
        # execution milestones
        self.kernel_count = 0
        self.finish_cycle: Optional[int] = None

    # -- per-phase breakdown -------------------------------------------------

    def phase(self, name: str) -> PhaseStats:
        """The (lazily created) :class:`PhaseStats` block for ``name``."""
        if self.phases is None:
            self.phases = {}
        block = self.phases.get(name)
        if block is None:
            block = self.phases[name] = PhaseStats()
        return block

    def set_live_phase(self, name: Optional[str]) -> None:
        """Point record-time routing at ``name`` (``None``: no phase)."""
        self._phase = name
        if name is not None:
            self.phase(name)  # materialize so hot-path routing is a lookup

    def record_phase_read_latency(self, latency: int) -> None:
        """Route an inter-cluster read latency into the live phase."""
        if self._phase is not None:
            self.phases[self._phase].read_latency_inter.record(latency)

    # -- derived metrics ---------------------------------------------------

    @property
    def l1_accesses(self) -> int:
        return self.l1_hits + self.l1_misses + self.l1_sector_misses

    def l1_mpki(self) -> float:
        """L1 misses per kilo memory-operation (instruction proxy)."""
        if self.mem_ops == 0:
            return 0.0
        return 1000.0 * (self.l1_misses + self.l1_sector_misses) / self.mem_ops

    def record_read_request_bytes(self, bytes_needed: int) -> None:
        """Bucket an inter-cluster read by needed bytes (<=16/32/48/64)."""
        bucket = min(64, ((max(1, bytes_needed) + 15) // 16) * 16)
        self.read_req_bytes_hist[bucket] += 1

    def fraction_requests_at_most(self, nbytes: int) -> float:
        total = sum(self.read_req_bytes_hist.values())
        if total == 0:
            return 0.0
        small = sum(
            count for bucket, count in self.read_req_bytes_hist.items() if bucket <= nbytes
        )
        return small / total

    def merge(self, other: "RunStats") -> None:
        """Fold another run's counters in (cluster-shard aggregation).

        Generic over attribute additions, like serialization below: ints
        sum, Counters update, LatencyStats merge deterministically.
        ``kernel_count`` and ``finish_cycle`` are run-global milestones
        owned by the sharding coordinator, not per-shard partial sums, so
        they are skipped here and assigned explicitly after merging.
        """
        for key, value in vars(other).items():
            if (
                key in ("kernel_count", "finish_cycle")
                or key.startswith("_")
                or value is None
            ):
                continue
            mine = getattr(self, key)
            if isinstance(value, LatencyStat):
                mine.merge(value)
            elif isinstance(value, Counter):
                mine.update(value)
            elif isinstance(value, FaultStats):
                if mine is None:
                    mine = FaultStats()
                    setattr(self, key, mine)
                mine.merge(value)
            elif key == "phases":
                for name, block in value.items():
                    self.phase(name).merge(block)
            else:
                setattr(self, key, mine + value)

    # -- serialization (persistent result cache) ---------------------------
    #
    # Counters and latency stats are wrapped in tagged dicts so the format
    # stays generic over attribute additions: any plain-scalar counter added
    # to ``__init__`` round-trips with no serializer change.  Counter keys
    # are kept as ``[key, count]`` pairs because JSON object keys must be
    # strings.

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for key, value in vars(self).items():
            if key.startswith("_"):
                # transient routing pointers, not run results
                continue
            if isinstance(value, LatencyStat):
                out[key] = {"__latency__": value.to_dict()}
            elif isinstance(value, Counter):
                out[key] = {"__counter__": sorted(value.items())}
            elif isinstance(value, FaultStats):
                out[key] = {"__faults__": value.to_dict()}
            elif key == "phases" and value is not None:
                out[key] = {
                    "__phases__": {
                        name: value[name].to_dict() for name in sorted(value)
                    }
                }
            elif value is None and key != "finish_cycle":
                # optional sub-stat blocks (``faults``, ``phases``) are
                # omitted when absent, so enabling-capable builds
                # serialize byte-identically to builds without them
                continue
            else:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunStats":
        stats = cls()
        for key, value in data.items():
            if isinstance(value, dict) and "__latency__" in value:
                setattr(stats, key, LatencyStat.from_dict(value["__latency__"]))
            elif isinstance(value, dict) and "__counter__" in value:
                pairs: List = value["__counter__"]
                setattr(stats, key, Counter({int(k): int(v) for k, v in pairs}))
            elif isinstance(value, dict) and "__faults__" in value:
                setattr(stats, key, FaultStats.from_dict(value["__faults__"]))
            elif isinstance(value, dict) and "__phases__" in value:
                setattr(
                    stats,
                    key,
                    {
                        name: PhaseStats.from_dict(block)
                        for name, block in value["__phases__"].items()
                    },
                )
            else:
                setattr(stats, key, value)
        return stats
