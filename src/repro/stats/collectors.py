"""Run-wide statistic collectors shared by simulator components."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional


class LatencyStat:
    """Mean/max/percentiles over recorded latencies.

    Keeps every sample up to a bound (simulation runs are small), then
    degrades gracefully to streaming mean/max only.
    """

    #: above this many samples, stop retaining them (percentiles freeze)
    MAX_SAMPLES = 200_000

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.max = 0
        self._samples = []

    def record(self, latency: int) -> None:
        self.count += 1
        self.total += latency
        if latency > self.max:
            self.max = latency
        if len(self._samples) < self.MAX_SAMPLES:
            self._samples.append(latency)

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100) by nearest-rank."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within 0..100")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
        return float(ordered[rank])

    def merge(self, other: "LatencyStat") -> None:
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        room = self.MAX_SAMPLES - len(self._samples)
        if room > 0:
            self._samples.extend(other._samples[:room])

    # -- serialization (persistent result cache) ---------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "samples": list(self._samples),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyStat":
        stat = cls()
        stat.count = int(data["count"])
        stat.total = int(data["total"])
        stat.max = int(data["max"])
        stat._samples = [int(v) for v in data["samples"]]
        return stat


class RunStats:
    """Counters updated in place by CUs, GMMUs, RDMA engines, etc.

    One instance exists per simulation run; the experiment harness reads
    it (together with link and controller stats) into a
    :class:`~repro.stats.report.RunResult`.
    """

    def __init__(self) -> None:
        # instruction/work proxies
        self.mem_ops = 0
        self.reads = 0
        self.writes = 0
        # L1 behaviour (aggregated over all CUs)
        self.l1_hits = 0
        self.l1_misses = 0
        self.l1_sector_misses = 0
        self.l1_refetches = 0  # waiter re-issues after an incompatible sector fill
        self.l1_mshr_stall_retries = 0
        # locality of read fills
        self.local_reads = 0
        self.remote_reads_intra = 0
        self.remote_reads_inter = 0
        self.remote_writes_intra = 0
        self.remote_writes_inter = 0
        self.local_writes = 0
        # Figure 7: bytes the wavefront needs per inter-cluster read request
        self.read_req_bytes_hist: Counter = Counter()
        # remote access latency, split by whether it crossed clusters
        self.remote_read_latency_inter = LatencyStat()
        self.remote_read_latency_intra = LatencyStat()
        # page-table walks
        self.ptw_walks = 0
        self.ptw_latency = LatencyStat()
        self.ptw_pte_accesses = 0
        self.ptw_remote_pte_accesses = 0
        self.ptw_inter_pte_accesses = 0
        # hardware-coherence extension traffic
        self.coherence_inv_sent = 0
        self.coherence_inv_sent_inter = 0
        self.coherence_inv_received = 0
        # execution milestones
        self.kernel_count = 0
        self.finish_cycle: Optional[int] = None

    # -- derived metrics ---------------------------------------------------

    @property
    def l1_accesses(self) -> int:
        return self.l1_hits + self.l1_misses + self.l1_sector_misses

    def l1_mpki(self) -> float:
        """L1 misses per kilo memory-operation (instruction proxy)."""
        if self.mem_ops == 0:
            return 0.0
        return 1000.0 * (self.l1_misses + self.l1_sector_misses) / self.mem_ops

    def record_read_request_bytes(self, bytes_needed: int) -> None:
        """Bucket an inter-cluster read by needed bytes (<=16/32/48/64)."""
        bucket = min(64, ((max(1, bytes_needed) + 15) // 16) * 16)
        self.read_req_bytes_hist[bucket] += 1

    def fraction_requests_at_most(self, nbytes: int) -> float:
        total = sum(self.read_req_bytes_hist.values())
        if total == 0:
            return 0.0
        small = sum(
            count for bucket, count in self.read_req_bytes_hist.items() if bucket <= nbytes
        )
        return small / total

    # -- serialization (persistent result cache) ---------------------------
    #
    # Counters and latency stats are wrapped in tagged dicts so the format
    # stays generic over attribute additions: any plain-scalar counter added
    # to ``__init__`` round-trips with no serializer change.  Counter keys
    # are kept as ``[key, count]`` pairs because JSON object keys must be
    # strings.

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for key, value in vars(self).items():
            if isinstance(value, LatencyStat):
                out[key] = {"__latency__": value.to_dict()}
            elif isinstance(value, Counter):
                out[key] = {"__counter__": sorted(value.items())}
            else:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunStats":
        stats = cls()
        for key, value in data.items():
            if isinstance(value, dict) and "__latency__" in value:
                setattr(stats, key, LatencyStat.from_dict(value["__latency__"]))
            elif isinstance(value, dict) and "__counter__" in value:
                pairs: List = value["__counter__"]
                setattr(stats, key, Counter({int(k): int(v) for k, v in pairs}))
            else:
                setattr(stats, key, value)
        return stats
