"""Energy accounting: representative per-event costs over a finished run.

The paper reports performance only; energy is a natural companion
metric for a traffic-reduction technique, so this model tallies the
major contributors from the run's event counters:

* wire energy per byte, split inter-cluster (off-package SerDes) vs
  intra-cluster (on-package links);
* switch pipeline and Cluster Queue SRAM energy per flit;
* cache and DRAM access energy per event.

The default constants are *representative* of published ranges for
HBM-class memory and package links (order-of-magnitude correct, not
calibrated to any product); every figure derived from them is a relative
comparison between configurations under the same constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs in picojoules."""

    inter_link_pj_per_byte: float = 10.0  # off-package SerDes
    intra_link_pj_per_byte: float = 4.0   # on-package link
    switch_pj_per_flit: float = 5.0
    cq_sram_pj_per_flit: float = 2.0
    l1_pj_per_access: float = 25.0
    l2_pj_per_access: float = 200.0
    dram_pj_per_access: float = 2000.0


@dataclass
class EnergyBreakdown:
    """Picojoule totals per contributor for one run."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        return sum(self.components.values())

    @property
    def network_pj(self) -> float:
        """The traffic-dependent share NetCrafter can influence."""
        return sum(
            self.components.get(key, 0.0)
            for key in ("inter_links", "intra_links", "switches", "cluster_queues")
        )

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {"components": dict(self.components)}

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, float]]) -> "EnergyBreakdown":
        return cls(components={k: float(v) for k, v in data["components"].items()})

    def as_rows(self) -> str:
        lines = [
            f"{name:16s} {value / 1e6:10.3f} uJ"
            for name, value in sorted(self.components.items())
        ]
        lines.append(f"{'total':16s} {self.total_pj / 1e6:10.3f} uJ")
        return "\n".join(lines)


def energy_from_totals(
    inter_bytes: int,
    intra_bytes: int,
    switch_flits: int,
    cq_flits: int,
    l1_accesses: int,
    l2_accesses: int,
    dram_accesses: int,
    model: EnergyModel = None,
) -> EnergyBreakdown:
    """Build a breakdown from pre-summed integer event totals.

    Every component is a single ``int * float-constant`` product, so a
    breakdown computed from totals summed across cluster shards is
    bit-identical to one computed over the unsharded system.
    """
    model = model or EnergyModel()
    breakdown = EnergyBreakdown()
    breakdown.components["inter_links"] = inter_bytes * model.inter_link_pj_per_byte
    breakdown.components["intra_links"] = intra_bytes * model.intra_link_pj_per_byte
    breakdown.components["switches"] = switch_flits * model.switch_pj_per_flit
    breakdown.components["cluster_queues"] = cq_flits * model.cq_sram_pj_per_flit
    breakdown.components["l1_caches"] = l1_accesses * model.l1_pj_per_access
    breakdown.components["l2_caches"] = l2_accesses * model.l2_pj_per_access
    breakdown.components["dram"] = dram_accesses * model.dram_pj_per_access
    return breakdown


def estimate_energy(system, result, model: EnergyModel = None) -> EnergyBreakdown:
    """Tally energy from a finished :class:`MultiGpuSystem` run."""
    topo = system.topology
    inter_bytes = sum(link.stats.wire_bytes for link in topo.inter_links)
    intra_bytes = sum(link.stats.wire_bytes for link in topo.intra_links())
    switch_flits = sum(link.stats.flits for link in topo.inter_links) + sum(
        link.stats.flits for link in topo.intra_links()
    )
    cq_flits = sum(c.stats.flits_entered for c in topo.controllers)
    l2_accesses = sum(
        gpu.l2.read_requests + gpu.l2.write_requests for gpu in system.gpus.values()
    )
    dram_accesses = sum(
        gpu.dram.reads + gpu.dram.writes for gpu in system.gpus.values()
    )
    return energy_from_totals(
        inter_bytes,
        intra_bytes,
        switch_flits,
        cq_flits,
        result.stats.l1_accesses,
        l2_accesses,
        dram_accesses,
        model,
    )
