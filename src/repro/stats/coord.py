"""Coordination-overhead counters for sharded runs.

Sharded execution pays three taxes the single-engine run does not:
verb round-trips over the worker pipes, pickle bytes for the command
and mailbox traffic crossing those pipes, and coordinator idle time
spent waiting for the slowest shard of each window.  :class:`CoordStats`
accumulates all three so the ``sharded_speedup`` benchmark can record a
per-window breakdown and CI can gate on boundary-path regressions
(see ``repro.bench.harness.compare_reports``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CoordStats:
    """Per-run coordination-overhead breakdown for a sharded run.

    ``pickle_bytes_out``/``pickle_bytes_in`` count the exact serialized
    command/reply payloads crossing worker pipes (process-parallel mode
    only; sequential-windowed mode moves live objects and pickles
    nothing).  ``idle_wait_seconds`` is wall time the coordinator spent
    blocked on worker replies — parallelism payoff hides shard compute
    inside it, so on a single CPU it approximates the whole simulation.
    """

    windows: int = 0
    launches: int = 0
    verb_round_trips: int = 0
    pickle_bytes_out: int = 0
    pickle_bytes_in: int = 0
    mail_items: int = 0
    idle_wait_seconds: float = 0.0

    @property
    def pickle_bytes(self) -> int:
        return self.pickle_bytes_out + self.pickle_bytes_in

    @property
    def pickle_bytes_per_window(self) -> float:
        if self.windows == 0:
            return 0.0
        return self.pickle_bytes / self.windows

    def to_dict(self) -> dict:
        """Flat mapping for bench-report ``extra`` fields."""
        return {
            "windows": self.windows,
            "launches": self.launches,
            "verb_round_trips": self.verb_round_trips,
            "pickle_bytes_out": self.pickle_bytes_out,
            "pickle_bytes_in": self.pickle_bytes_in,
            "pickle_bytes_per_window": round(self.pickle_bytes_per_window, 1),
            "mail_items": self.mail_items,
            "idle_wait_seconds": round(self.idle_wait_seconds, 4),
        }
