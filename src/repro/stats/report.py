"""Per-run results assembled by the experiment harness."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, Optional

from repro.stats.collectors import RunStats
from repro.stats.energy import EnergyBreakdown


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the conventional average for speedup series."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class RunResult:
    """Everything an experiment needs from one finished simulation."""

    workload: str
    config_label: str
    cycles: int
    stats: RunStats
    #: inter-cluster wire traffic, summed over both directions
    inter_flits_sent: int = 0
    inter_wire_bytes: int = 0
    inter_useful_bytes: int = 0
    inter_busy_cycles: float = 0.0
    #: controller-level counters, summed over all egress controllers
    flits_entered: int = 0
    flits_absorbed: int = 0
    parents_stitched: int = 0
    packets_trimmed: int = 0
    trim_bytes_saved: int = 0
    ptw_flits: int = 0
    data_flits: int = 0
    ptw_bytes: int = 0
    data_bytes: int = 0
    occupancy: Counter = field(default_factory=Counter)
    #: intra-cluster (GPU<->switch) aggregate busy time, for utilization
    intra_busy_cycles: float = 0.0
    intra_links: int = 0
    inter_links: int = 0
    #: per-contributor energy estimate (repro.stats.energy), attached by
    #: MultiGpuSystem at collection time
    energy: Optional[object] = None
    #: observability artifacts written for this run (None when tracing /
    #: metrics / profiling were off); set by the experiment runner
    trace_path: Optional[str] = None
    trace_chrome_path: Optional[str] = None
    metrics_path: Optional[str] = None
    profile_path: Optional[str] = None
    #: engine events the run dispatched — simulator *effort*, not simulated
    #: behaviour (hot-path optimizations legitimately change it), so
    #: semantic comparisons must exclude it
    events_processed: int = 0

    # -- serialization (persistent result cache) ----------------------------

    #: bump when the meaning of any serialized field changes
    #: (2: LatencyStat payloads switched from raw samples to histograms,
    #: observability artifact paths added; 3: events_processed added —
    #: the bump also invalidates cache entries from the slower engine)
    SCHEMA_VERSION = 3

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict capturing every field, for the on-disk cache."""
        out: Dict[str, object] = {"schema": self.SCHEMA_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "stats":
                out[f.name] = value.to_dict()
            elif f.name == "occupancy":
                # Counter keys are ints; JSON object keys must be strings,
                # so store sorted [used_bytes, count] pairs instead
                out[f.name] = sorted(value.items())
            elif f.name == "energy":
                out[f.name] = value.to_dict() if value is not None else None
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        data = dict(data)
        schema = data.pop("schema", None)
        if schema != cls.SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunResult schema {schema!r} "
                f"(expected {cls.SCHEMA_VERSION})"
            )
        data["stats"] = RunStats.from_dict(data["stats"])
        data["occupancy"] = Counter(
            {int(used): int(count) for used, count in data["occupancy"]}
        )
        if data.get("energy") is not None:
            data["energy"] = EnergyBreakdown.from_dict(data["energy"])
        return cls(**data)

    # -- derived ------------------------------------------------------------

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline cycles / our cycles (>1 means faster)."""
        if self.cycles <= 0:
            raise ValueError("run has no cycles")
        return baseline.cycles / self.cycles

    def inter_utilization(self) -> float:
        """Mean utilization of inter-cluster links over the run."""
        if self.cycles <= 0 or self.inter_links == 0:
            return 0.0
        return min(1.0, self.inter_busy_cycles / (self.cycles * self.inter_links))

    def stitch_rate(self) -> float:
        if self.flits_entered == 0:
            return 0.0
        return self.flits_absorbed / self.flits_entered

    def ptw_traffic_fraction(self) -> float:
        """PTW share of useful bytes on the inter-cluster network (Fig 9)."""
        total = self.ptw_bytes + self.data_bytes
        if total == 0:
            return 0.0
        return self.ptw_bytes / total

    def padded_fraction_distribution(self, flit_size: int) -> Dict[float, float]:
        """Fraction of flits by padded share (Figure 6), normalized."""
        total = sum(self.occupancy.values())
        if total == 0:
            return {}
        dist: Dict[float, float] = {}
        for used, count in self.occupancy.items():
            padded = round((flit_size - used) / flit_size, 2)
            dist[padded] = dist.get(padded, 0.0) + count / total
        return dist

    def mean_inter_read_latency(self) -> float:
        return self.stats.remote_read_latency_inter.mean()

    def phase_breakdown(self) -> Dict[str, object]:
        """Per-phase stats blocks, keyed by phase label (sorted).

        Populated only for phase-labelled workloads (the collective
        family); empty for Table-3 traces.
        """
        if self.stats.phases is None:
            return {}
        return {name: self.stats.phases[name] for name in sorted(self.stats.phases)}

    # -- fault injection (repro.faults) -------------------------------------

    def raw_throughput(self) -> float:
        """Inter-cluster wire bytes per cycle, faults and retries included."""
        if self.cycles <= 0:
            return 0.0
        return self.inter_wire_bytes / self.cycles

    def goodput(self) -> float:
        """Inter-cluster *cleanly delivered* useful bytes per cycle.

        ``inter_useful_bytes`` only counts transmissions that arrived
        intact (corrupted/dropped copies and the padding on every copy
        are excluded), so under fault injection ``goodput() <
        raw_throughput()`` and their ratio is the wire efficiency.
        """
        if self.cycles <= 0:
            return 0.0
        return self.inter_useful_bytes / self.cycles

    def goodput_ratio(self) -> float:
        """Goodput as a fraction of raw wire throughput (1.0 fault-free
        modulo padding; degrades with corruption, drops and retries)."""
        if self.inter_wire_bytes == 0:
            return 0.0
        return self.inter_useful_bytes / self.inter_wire_bytes

    @property
    def fault_stats(self):
        """The run's fault counters, or ``None`` when faults were off."""
        return self.stats.faults
