"""Traffic-conservation verification: analytic cross-checks of a run.

The memory system's event counters predict, exactly, how many packets of
each type must have crossed the inter-cluster egress controllers:

* every inter-cluster read fetch issues one READ_REQ one way and one
  READ_RSP back;
* every inter-cluster write issues one WRITE_REQ and one WRITE_RSP;
* every inter-cluster PTE access issues one PT_REQ and one PT_RSP;
* every inter-cluster invalidation issues one INV_REQ and one INV_RSP.

``verify_traffic`` recomputes those predictions from the
:class:`~repro.stats.collectors.RunStats` counters and compares them
against the per-type packet counts the controllers actually observed.
A non-empty result means the simulator lost, duplicated, or misrouted
traffic — integration tests assert it is empty for every configuration.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.network.packet import PacketType


def expected_inter_packets(stats) -> Dict[PacketType, int]:
    """Predict per-type inter-cluster packet counts from event counters."""
    reads = stats.remote_reads_inter
    writes = stats.remote_writes_inter
    pt_reads = stats.ptw_inter_pte_accesses
    invalidations = stats.coherence_inv_sent_inter
    return {
        PacketType.READ_REQ: reads,
        PacketType.READ_RSP: reads,
        PacketType.WRITE_REQ: writes,
        PacketType.WRITE_RSP: writes,
        PacketType.PT_REQ: pt_reads,
        PacketType.PT_RSP: pt_reads,
        PacketType.INV_REQ: invalidations,
        PacketType.INV_RSP: invalidations,
    }


def observed_inter_packets(system) -> Dict[PacketType, int]:
    """Per-type packet counts summed over all egress controllers."""
    observed: Counter = Counter()
    for controller in system.topology.controllers:
        observed.update(controller.stats.packets_by_type)
    return {ptype: observed.get(ptype, 0) for ptype in PacketType}


def verify_traffic(system, result) -> List[str]:
    """Compare predictions to observations; returns discrepancy strings.

    An empty list means every packet the memory system generated is
    accounted for at the egress controllers — nothing lost, duplicated,
    or misrouted.  Only exact for single-hop topologies (mesh, and
    shapes that degenerate to it): multi-hop forwarding legitimately
    re-counts packets at intermediate switches.
    """
    from repro.network.topologies import get_topology

    config = system.config
    if get_topology(config.inter_topology).multi_hop(config):
        raise ValueError(
            "verify_traffic is exact only for single-hop (mesh-like) "
            f"topologies; {config.inter_topology!r} forwarding re-counts "
            "packets at intermediate hops"
        )
    problems: List[str] = []
    expected = expected_inter_packets(result.stats)
    observed = observed_inter_packets(system)
    for ptype in PacketType:
        want = expected.get(ptype, 0)
        got = observed.get(ptype, 0)
        if want != got:
            problems.append(
                f"{ptype.value}: expected {want} inter-cluster packets, "
                f"controllers saw {got}"
            )
    total_flits = sum(
        c.stats.flits_sent + c.stats.flits_absorbed
        for c in system.topology.controllers
    )
    entered = sum(c.stats.flits_entered for c in system.topology.controllers)
    if total_flits != entered:
        problems.append(
            f"flit conservation: {entered} entered vs {total_flits} left"
        )
    return problems
