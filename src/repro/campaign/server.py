"""The campaign server: a long-lived experiment-serving front end.

A single-process asyncio server that accepts campaigns
(:mod:`repro.campaign.spec`), executes their points through the existing
runner on a bounded worker pool, and serves results from the shared
:class:`~repro.experiments.cache.ResultCache` — with three guarantees:

**Dedupe.**  Points are identified by
:func:`~repro.experiments.cache.fingerprint`.  Concurrent campaigns
containing the same point share one in-process task (and therefore one
execution); across *processes* the cache dir's in-flight claims extend
the same guarantee to external ``run_many`` clients — whoever wins the
claim executes, everyone else follows the published result.

**Streaming progress.**  Clients subscribe to per-campaign event streams
(newline-delimited JSON over a localhost TCP socket): every point's
``queued -> running -> served`` transitions with its source
(``executed``/``cache``/``peer``) and wall time, plus campaign-level
completion carrying :class:`~repro.obs.CounterSet`-style hit/miss
counters.

**Durability.**  Campaign membership journals through
:mod:`repro.atomicio` (:class:`~repro.campaign.journal.CampaignJournal`)
and results live in the content-addressed cache, so a restarted server
resumes unfinished campaigns and re-serves completed ones without
re-executing anything whose result survived.

Scheduling is priority-first (higher ``priority`` campaigns dispatch
before lower, FIFO within a priority); a point shared between campaigns
runs at the highest priority any of them asked for.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.campaign.journal import CampaignJournal
from repro.campaign.spec import (
    CampaignSpec,
    CampaignSpecError,
    parse_campaign,
    point_from_descriptor,
)
from repro.experiments.cache import ResultCache, point_descriptor
from repro.experiments.runner import ExperimentPoint, execute_point
from repro.obs import CounterSet

#: protocol version stamped on every response/event line
PROTOCOL_VERSION = 1

#: how often a point following a cross-process claim re-polls the cache
PEER_POLL_SECONDS = 0.05


@dataclass
class PointTask:
    """One in-flight unique point, shared by every campaign naming it."""

    fingerprint: str
    point: ExperimentPoint
    label: str
    priority: int
    seq: int
    state: str = "queued"  # queued | running | done
    source: Optional[str] = None  # executed | cache | peer
    wall_seconds: float = 0.0
    campaigns: Set[str] = field(default_factory=set)


@dataclass
class CampaignState:
    """One submitted campaign: ordered membership plus its watchers."""

    id: str
    name: str
    priority: int
    #: (fingerprint, label) in submission order — fetch/digest order
    points: List[Tuple[str, str]]
    submitted_at: float
    #: full point descriptors keyed by fingerprint, journaled so a
    #: restarted server can re-execute pruned points from scratch
    descriptors: Dict[str, Dict[str, object]] = field(default_factory=dict)
    done: Set[str] = field(default_factory=set)
    watchers: List[asyncio.Queue] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return len(self.done) >= len(self.points)

    def progress(self) -> Dict[str, int]:
        return {"points": len(self.points), "done": len(self.done)}


class CampaignServer:
    """Serve campaigns over newline-delimited JSON on a local socket."""

    def __init__(
        self,
        cache_dir: str,
        journal_dir: str,
        jobs: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: Optional[Executor] = None,
        execute_fn: Optional[Callable] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir)
        self.journal = CampaignJournal(journal_dir)
        self.jobs = max(1, int(jobs))
        self.host = host
        self.port = port
        self.metrics = CounterSet()
        self.campaigns: Dict[str, CampaignState] = {}
        self.tasks: Dict[str, PointTask] = {}
        #: lazy-invalidation priority heap of (-priority, seq, fingerprint)
        self._queue: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._running = 0
        self._wake = asyncio.Event()
        self._stopping = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._point_tasks: Set[asyncio.Task] = set()
        self._owns_executor = executor is None and execute_fn is None
        self._executor = executor
        self._execute = execute_fn or execute_point

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind, recover journaled campaigns, and begin dispatching."""
        if self._owns_executor:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.journal.publish_endpoint(self.host, self.port)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def serve_forever(self) -> None:
        await self._stopping.wait()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, let running points finish."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self._point_tasks:
            await asyncio.gather(*self._point_tasks, return_exceptions=True)
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
        self.journal.clear_endpoint()
        self._stopping.set()

    def _recover(self) -> None:
        """Replay the journal: re-serve complete campaigns, re-enqueue
        unfinished points (cached results count as already done)."""
        for record in self.journal.load_all():
            campaign = CampaignState(
                id=record["id"],
                name=record.get("name", record["id"]),
                priority=int(record.get("priority", 0)),
                points=[(p["fingerprint"], p["label"]) for p in record["points"]],
                submitted_at=float(record.get("submitted_at", 0.0)),
                descriptors={
                    p["fingerprint"]: p["descriptor"]
                    for p in record["points"]
                    if p.get("descriptor") is not None
                },
            )
            self.campaigns[campaign.id] = campaign
            for entry in record["points"]:
                fp = entry["fingerprint"]
                if self.cache.get_by_key(fp) is not None:
                    campaign.done.add(fp)
                    continue
                # the cached result is gone (pruned, or never finished):
                # rebuild the point from its journaled descriptor and
                # queue a re-execution
                point = point_from_descriptor(entry["descriptor"])
                self._enqueue_point(fp, point, entry["label"], campaign)
                self.metrics.inc("points_recovered")
            if campaign.done and not campaign.complete:
                self._journal_campaign(campaign)
            self.metrics.inc("campaigns_recovered")

    # -- submission & scheduling ---------------------------------------------

    def _enqueue_point(
        self, fp: str, point: ExperimentPoint, label: str, campaign: CampaignState
    ) -> PointTask:
        task = self.tasks.get(fp)
        if task is not None and task.state != "done":
            task.campaigns.add(campaign.id)
            if campaign.priority > task.priority and task.state == "queued":
                # shared points run at the highest interested priority
                task.priority = campaign.priority
                heapq.heappush(self._queue, (-task.priority, task.seq, fp))
            self.metrics.inc("points_deduped_inflight")
            return task
        self._seq += 1
        task = PointTask(
            fingerprint=fp,
            point=point,
            label=label,
            priority=campaign.priority,
            seq=self._seq,
            campaigns={campaign.id},
        )
        self.tasks[fp] = task
        heapq.heappush(self._queue, (-task.priority, task.seq, fp))
        self._wake.set()
        return task

    def submit(self, spec: CampaignSpec) -> Dict[str, object]:
        """Register a campaign; returns the submission summary."""
        cid = spec.campaign_id
        self.metrics.inc("campaigns_submitted")
        self.metrics.inc("points_requested", len(spec.points))
        existing = self.campaigns.get(cid)
        if existing is not None:
            # content-addressed resubmission: same points, same campaign.
            # Raise the priority of anything still pending if asked.
            self.metrics.inc("campaigns_resubmitted")
            if spec.priority > existing.priority:
                existing.priority = spec.priority
                for fp, _ in existing.points:
                    task = self.tasks.get(fp)
                    if task is not None and task.state == "queued":
                        task.priority = max(task.priority, spec.priority)
                        heapq.heappush(self._queue, (-task.priority, task.seq, fp))
                self._wake.set()
                self._journal_campaign(existing)
            return self._submission_summary(existing, resubmitted=True)

        campaign = CampaignState(
            id=cid,
            name=spec.name,
            priority=spec.priority,
            points=[
                (fp, point.label())
                for fp, point in zip(spec.fingerprints, spec.points)
            ],
            submitted_at=time.time(),
            descriptors={
                fp: point_descriptor(point)
                for fp, point in zip(spec.fingerprints, spec.points)
            },
        )
        self.campaigns[cid] = campaign
        for fp, point in zip(spec.fingerprints, spec.points):
            done_task = self.tasks.get(fp)
            if done_task is not None and done_task.state == "done":
                campaign.done.add(fp)
                self.metrics.inc("points_served_memo")
                continue
            if done_task is None and self.cache.get_by_key(fp) is not None:
                campaign.done.add(fp)
                self.metrics.inc("points_served_cache")
                continue
            self._enqueue_point(fp, point, point.label(), campaign)
        self._journal_campaign(campaign)
        self._emit(
            campaign,
            {
                "event": "campaign",
                "state": "accepted" if not campaign.complete else "complete",
                **campaign.progress(),
            },
        )
        return self._submission_summary(campaign, resubmitted=False)

    def _submission_summary(
        self, campaign: CampaignState, resubmitted: bool
    ) -> Dict[str, object]:
        pending = [fp for fp, _ in campaign.points if fp not in campaign.done]
        return {
            "campaign": campaign.id,
            "name": campaign.name,
            "priority": campaign.priority,
            "points": len(campaign.points),
            "pending": len(pending),
            "complete": campaign.complete,
            "resubmitted": resubmitted,
        }

    def _journal_campaign(self, campaign: CampaignState) -> None:
        record_points = [
            {
                "fingerprint": fp,
                "label": label,
                "descriptor": campaign.descriptors.get(fp),
            }
            for fp, label in campaign.points
        ]
        self.journal.save(
            {
                "id": campaign.id,
                "name": campaign.name,
                "priority": campaign.priority,
                "submitted_at": campaign.submitted_at,
                "state": "complete" if campaign.complete else "active",
                "points": record_points,
                "done": sorted(campaign.done),
            }
        )

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            while self._queue and self._running < self.jobs:
                _, _, fp = heapq.heappop(self._queue)
                task = self.tasks.get(fp)
                if task is None or task.state != "queued":
                    continue  # lazily-invalidated heap entry
                task.state = "running"
                self._running += 1
                runner = asyncio.create_task(self._run_point(task))
                self._point_tasks.add(runner)
                runner.add_done_callback(self._point_tasks.discard)
            self._wake.clear()
            await self._wake.wait()

    async def _run_point(self, task: PointTask) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        self._emit_point(task, "running")
        try:
            result = self.cache.get(task.point)
            if result is not None:
                task.source = "cache"
                self.metrics.inc("points_served_cache")
            else:
                result = await self._execute_or_follow(loop, task)
        except Exception as exc:
            task.state = "done"
            task.source = "error"
            self.metrics.inc("points_failed")
            self._finish_point(task, error=f"{type(exc).__name__}: {exc}")
            return
        finally:
            self._running -= 1
            self._wake.set()
        task.wall_seconds = time.perf_counter() - started
        task.state = "done"
        self._finish_point(task)

    async def _execute_or_follow(self, loop, task: PointTask):
        """Claim-then-execute, or follow a peer process's execution."""
        while True:
            if self.cache.claim(task.fingerprint):
                try:
                    # a peer may have published between the miss and the
                    # claim win; its result is authoritative
                    result = self.cache.get(task.point)
                    if result is not None:
                        task.source = "peer"
                        self.metrics.inc("points_served_peer")
                        return result
                    result, seconds = await loop.run_in_executor(
                        self._executor, self._execute, task.point
                    )
                    self.cache.put(task.point, result)
                    task.source = "executed"
                    self.metrics.inc("points_executed")
                    self.metrics.inc("exec_seconds", seconds)
                    return result
                finally:
                    self.cache.release(task.fingerprint)
            result = self.cache.get(task.point)
            if result is not None:
                task.source = "peer"
                self.metrics.inc("points_served_peer")
                return result
            await asyncio.sleep(PEER_POLL_SECONDS)

    def _finish_point(self, task: PointTask, error: Optional[str] = None) -> None:
        for cid in sorted(task.campaigns):
            campaign = self.campaigns.get(cid)
            if campaign is None:
                continue
            if error is None:
                campaign.done.add(task.fingerprint)
            self._journal_campaign(campaign)
            self._emit_point(task, "served" if error is None else "failed", cid, error)
            if campaign.complete:
                self._emit(
                    campaign,
                    {
                        "event": "campaign",
                        "state": "complete",
                        **campaign.progress(),
                        "counters": self.metrics.to_dict(),
                    },
                )

    # -- events --------------------------------------------------------------

    def _emit(self, campaign: CampaignState, event: Dict[str, object]) -> None:
        payload = {"v": PROTOCOL_VERSION, "campaign": campaign.id, **event}
        for queue in list(campaign.watchers):
            queue.put_nowait(payload)

    def _emit_point(
        self,
        task: PointTask,
        state: str,
        only_campaign: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        for cid in sorted(task.campaigns):
            if only_campaign is not None and cid != only_campaign:
                continue
            campaign = self.campaigns.get(cid)
            if campaign is None:
                continue
            event = {
                "event": "point",
                "state": state,
                "label": task.label,
                "fingerprint": task.fingerprint,
            }
            if task.source is not None:
                event["source"] = task.source
            if state == "served":
                event["wall_seconds"] = round(task.wall_seconds, 6)
                event.update(campaign.progress())
            if error is not None:
                event["error"] = error
            self._emit(campaign, event)

    # -- protocol ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError:
                await self._send(writer, {"ok": False, "error": "bad JSON request"})
                return
            op = request.get("op")
            handler = {
                "ping": self._op_ping,
                "submit": self._op_submit,
                "status": self._op_status,
                "fetch": self._op_fetch,
                "watch": self._op_watch,
                "shutdown": self._op_shutdown,
            }.get(op)
            if handler is None:
                await self._send(
                    writer, {"ok": False, "error": f"unknown op {op!r}"}
                )
                return
            await handler(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: Dict) -> None:
        payload.setdefault("v", PROTOCOL_VERSION)
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    async def _op_ping(self, request, writer) -> None:
        await self._send(
            writer,
            {
                "ok": True,
                "campaigns": len(self.campaigns),
                "queued": sum(
                    1 for t in self.tasks.values() if t.state == "queued"
                ),
                "running": self._running,
                "counters": self.metrics.to_dict(),
            },
        )

    async def _op_submit(self, request, writer) -> None:
        try:
            spec = parse_campaign(
                request.get("campaign"), request.get("default_name", "campaign")
            )
        except CampaignSpecError as exc:
            await self._send(writer, {"ok": False, "error": str(exc)})
            return
        summary = self.submit(spec)
        await self._send(writer, {"ok": True, **summary})

    def _campaign_status(self, campaign: CampaignState) -> Dict[str, object]:
        states: Dict[str, int] = {"done": len(campaign.done), "queued": 0, "running": 0}
        for fp, _ in campaign.points:
            if fp in campaign.done:
                continue
            task = self.tasks.get(fp)
            state = task.state if task is not None else "queued"
            states[state] = states.get(state, 0) + 1
        return {
            "campaign": campaign.id,
            "name": campaign.name,
            "priority": campaign.priority,
            "complete": campaign.complete,
            **campaign.progress(),
            "states": states,
        }

    async def _op_status(self, request, writer) -> None:
        cid = request.get("campaign")
        if cid is not None:
            campaign = self.campaigns.get(cid)
            if campaign is None:
                await self._send(
                    writer, {"ok": False, "error": f"unknown campaign {cid!r}"}
                )
                return
            await self._send(
                writer,
                {
                    "ok": True,
                    **self._campaign_status(campaign),
                    "counters": self.metrics.to_dict(),
                },
            )
            return
        await self._send(
            writer,
            {
                "ok": True,
                "campaigns": [
                    self._campaign_status(c)
                    for c in sorted(
                        self.campaigns.values(), key=lambda c: c.submitted_at
                    )
                ],
                "counters": self.metrics.to_dict(),
            },
        )

    async def _op_fetch(self, request, writer) -> None:
        cid = request.get("campaign")
        campaign = self.campaigns.get(cid)
        if campaign is None:
            await self._send(
                writer, {"ok": False, "error": f"unknown campaign {cid!r}"}
            )
            return
        if not campaign.complete:
            await self._send(
                writer,
                {
                    "ok": False,
                    "error": "campaign incomplete",
                    **self._campaign_status(campaign),
                },
            )
            return
        results = []
        missing = []
        for fp, label in campaign.points:
            result = self.cache.get_by_key(fp)
            if result is None:
                missing.append({"fingerprint": fp, "label": label})
            else:
                results.append(result.to_dict())
        if missing:
            # cached results were pruned after completion: demote the
            # campaign and re-enqueue so a follow-up fetch succeeds
            labels = dict(campaign.points)
            for entry in missing:
                fp = entry["fingerprint"]
                campaign.done.discard(fp)
                point = point_from_descriptor(campaign.descriptors[fp])
                self._enqueue_point(fp, point, labels[fp], campaign)
            self._journal_campaign(campaign)
            await self._send(
                writer,
                {
                    "ok": False,
                    "error": "results pruned; re-executing",
                    "missing": missing,
                },
            )
            return
        from repro.bench.smoke import results_digest

        await self._send(
            writer,
            {
                "ok": True,
                "campaign": cid,
                "points": len(results),
                "results": results,
                "digest": results_digest(results),
            },
        )

    async def _op_watch(self, request, writer) -> None:
        cid = request.get("campaign")
        campaign = self.campaigns.get(cid)
        if campaign is None:
            await self._send(
                writer, {"ok": False, "error": f"unknown campaign {cid!r}"}
            )
            return
        queue: asyncio.Queue = asyncio.Queue()
        campaign.watchers.append(queue)
        try:
            await self._send(
                writer, {"ok": True, "event": "snapshot", **self._campaign_status(campaign)}
            )
            if campaign.complete:
                await self._send(
                    writer,
                    {
                        "event": "campaign",
                        "campaign": cid,
                        "state": "complete",
                        **campaign.progress(),
                        "counters": self.metrics.to_dict(),
                    },
                )
                return
            while True:
                event = await queue.get()
                await self._send(writer, event)
                if event.get("event") == "campaign" and event.get("state") in (
                    "complete",
                ):
                    return
        finally:
            try:
                campaign.watchers.remove(queue)
            except ValueError:
                pass

    async def _op_shutdown(self, request, writer) -> None:
        await self._send(writer, {"ok": True, "stopping": True})
        asyncio.get_running_loop().create_task(self.stop())
