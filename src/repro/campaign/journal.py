"""Durable campaign state, journaled through :mod:`repro.atomicio`.

The server's source of truth splits in two: *results* live in the
content-addressed :class:`~repro.experiments.cache.ResultCache`
(fingerprint-keyed, shared with every other tool), while *campaign
membership* — which ordered fingerprints a campaign id maps to, its
name, priority and point descriptors — lives here, one JSON record per
campaign, published atomically so a crash mid-write can never tear a
record.  A restarted server replays the journal: campaigns whose points
are all cached re-serve without execution, anything unfinished is
re-enqueued.

Point descriptors are stored in full (the same normalized configuration
content the fingerprint hashes) so recovery can *re-execute* lost
points, not merely re-serve cached ones.
"""

from __future__ import annotations

import enum
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.atomicio import atomic_write_text, sweep_orphans

JOURNAL_FORMAT_VERSION = 1


def _json_default(obj: object) -> object:
    """Point descriptors carry config enums (e.g. ``PriorityMode``);
    journal them by value, the same flattening the cache applies."""
    if isinstance(obj, enum.Enum):
        return obj.value
    raise TypeError(f"cannot journal {type(obj).__name__}: {obj!r}")


def default_journal_dir() -> str:
    """``$REPRO_CAMPAIGN_DIR`` if set, else ``.repro_campaigns``."""
    import os

    return os.environ.get("REPRO_CAMPAIGN_DIR", ".repro_campaigns")


class CampaignJournal:
    """One-record-per-campaign durable store plus the endpoint file."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.campaign_dir = self.root / "campaigns"
        self.campaign_dir.mkdir(parents=True, exist_ok=True)
        # writers that died mid-publish leave *.tmp orphans; opening the
        # journal is the no-writer moment to sweep them
        self.swept_orphans = sweep_orphans(self.root)

    def _path(self, campaign_id: str) -> Path:
        return self.campaign_dir / f"{campaign_id}.json"

    def save(self, record: Dict[str, object]) -> None:
        """Atomically publish one campaign record (keyed by its id)."""
        record = dict(record)
        record["format"] = JOURNAL_FORMAT_VERSION
        record.setdefault("updated_at", time.time())
        atomic_write_text(
            self._path(str(record["id"])),
            json.dumps(record, sort_keys=True, default=_json_default),
        )

    def load(self, campaign_id: str) -> Optional[Dict[str, object]]:
        """One campaign record, or ``None`` (missing/corrupt reads as absent)."""
        try:
            record = json.loads(self._path(campaign_id).read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return None
        if record.get("format") != JOURNAL_FORMAT_VERSION:
            return None
        return record

    def load_all(self) -> List[Dict[str, object]]:
        """Every readable campaign record, oldest submission first."""
        records = []
        for path in self.campaign_dir.glob("*.json"):
            record = self.load(path.stem)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.get("submitted_at", 0.0), r.get("id", "")))
        return records

    # -- endpoint discovery --------------------------------------------------
    #
    # ``serve`` binds an ephemeral port by default; clients discover it
    # through this file rather than configuration.  The pid lets a client
    # distinguish "server gone" (stale file) from "server busy".

    @property
    def endpoint_path(self) -> Path:
        return self.root / "server.json"

    def publish_endpoint(self, host: str, port: int) -> None:
        import os

        atomic_write_text(
            self.endpoint_path,
            json.dumps(
                {
                    "host": host,
                    "port": port,
                    "pid": os.getpid(),
                    "started_at": time.time(),
                }
            ),
        )

    def read_endpoint(self) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self.endpoint_path.read_text())
        except (OSError, ValueError):
            return None

    def clear_endpoint(self) -> None:
        try:
            self.endpoint_path.unlink()
        except OSError:
            pass
