"""Blocking client for the campaign server's NDJSON protocol.

One request per connection: the client opens a localhost TCP socket,
writes a single JSON request line, and reads either one response line
(``submit``/``status``/``fetch``) or a stream of event lines until the
campaign completes (``watch``).  Used by the ``python -m repro.campaign``
CLI and by tests; servers are discovered through the journal directory's
endpoint file when no explicit ``host:port`` is given.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Iterator, Optional, Tuple

from repro.campaign.journal import CampaignJournal, default_journal_dir


class CampaignClientError(RuntimeError):
    """Connection failures and server-side error responses."""


def discover_endpoint(journal_dir: Optional[str] = None) -> Tuple[str, int]:
    """The serving endpoint published in ``<journal_dir>/server.json``."""
    journal = CampaignJournal(journal_dir or default_journal_dir())
    endpoint = journal.read_endpoint()
    if endpoint is None:
        raise CampaignClientError(
            f"no campaign server endpoint under {journal.root} "
            "(is `python -m repro.campaign serve` running?)"
        )
    return str(endpoint["host"]), int(endpoint["port"])


def parse_endpoint(value: str) -> Tuple[str, int]:
    """``host:port`` -> tuple, with a loud error on malformed input."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise CampaignClientError(f"endpoint must be host:port, got {value!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise CampaignClientError(f"bad endpoint port in {value!r}") from exc


def _connect(endpoint: Tuple[str, int], timeout: float) -> socket.socket:
    try:
        return socket.create_connection(endpoint, timeout=timeout)
    except OSError as exc:
        raise CampaignClientError(
            f"cannot reach campaign server at {endpoint[0]}:{endpoint[1]}: {exc}"
        ) from exc


def request(
    endpoint: Tuple[str, int], payload: Dict[str, object], timeout: float = 600.0
) -> Dict[str, object]:
    """One request/response round trip; raises on transport errors.

    Server-side failures come back as ``{"ok": false, "error": ...}`` —
    returned, not raised, so callers can inspect structured context
    (e.g. an incomplete campaign's progress block).
    """
    with _connect(endpoint, timeout) as sock:
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            line = stream.readline()
    if not line:
        raise CampaignClientError("server closed the connection without replying")
    return json.loads(line)


def watch(
    endpoint: Tuple[str, int], campaign_id: str, timeout: float = 3600.0
) -> Iterator[Dict[str, object]]:
    """Stream a campaign's events until it completes (or errors)."""
    with _connect(endpoint, timeout) as sock:
        sock.sendall(
            json.dumps({"op": "watch", "campaign": campaign_id}).encode("utf-8")
            + b"\n"
        )
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                event = json.loads(line)
                yield event
                if event.get("ok") is False:
                    return
                if (
                    event.get("event") == "campaign"
                    and event.get("state") == "complete"
                ):
                    return


def wait_complete(
    endpoint: Tuple[str, int],
    campaign_id: str,
    timeout: float = 3600.0,
    poll: float = 0.2,
) -> Dict[str, object]:
    """Block until the campaign reports complete; returns final status."""
    deadline = time.monotonic() + timeout
    while True:
        status = request(
            endpoint, {"op": "status", "campaign": campaign_id}, timeout=30.0
        )
        if not status.get("ok"):
            raise CampaignClientError(str(status.get("error")))
        if status.get("complete"):
            return status
        if time.monotonic() > deadline:
            raise CampaignClientError(
                f"campaign {campaign_id} incomplete after {timeout:.0f}s: "
                f"{status.get('states')}"
            )
        time.sleep(poll)
