"""Experiment campaigns as data.

A campaign is a declarative description of a set of simulation points —
workloads x NetCrafter variants x scales x system configs x topologies x
fault options — written as a JSON (or YAML, when PyYAML is installed)
file and expanded here into ordered
:class:`~repro.experiments.runner.ExperimentPoint`\\ s.  Expansion order
is deterministic and workload-major, matching the smoke grid's
convention, so a campaign reproducing the committed quick sweep digests
byte-identically against ``SMOKE_digest.json``.

Schema (all keys optional except that at least one point must result)::

    {
      "name": "nightly-mesh",        # metadata, defaults to the file stem
      "priority": 10,                # higher runs first (default 0)
      "grid": {                      # cross product, expanded in order:
        "workloads": ["gups", "mt"], #   workload-major,
        "variants": ["baseline", "full"],  # then variant,
        "topologies": ["mesh"],      #   then topology,
        "seeds": [0],                #   then seed
        "scale": "small",            # "tiny"|"small"|"default" or {...fields}
        "system": {...},             # SystemConfig field overrides
        "faults": {...}              # FaultConfig fields
      },
      "points": [                    # and/or explicit points, same keys
        {"workload": "gups", "variant": "full", "seed": 1}
      ]
    }

A ``variant`` is ``"baseline"``/``"full"`` or a dict of
:class:`~repro.core.config.NetCrafterConfig` field overrides (with an
optional ``"base"`` naming the preset to start from).

The campaign *id* is content-addressed — a hash over the ordered point
fingerprints — so resubmitting the same point set (under any name or
priority) addresses the same campaign, which is what makes restart
re-serving and cross-client dedupe natural.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SystemConfig
from repro.core.config import NetCrafterConfig
from repro.experiments.cache import fingerprint
from repro.experiments.runner import ExperimentPoint
from repro.workloads.base import Scale
from repro.workloads.registry import all_workload_names

#: campaign priorities are clamped to this inclusive range
MIN_PRIORITY, MAX_PRIORITY = 0, 100


class CampaignSpecError(ValueError):
    """A campaign file that cannot be expanded into valid points."""


_SCALES = {
    "tiny": Scale.tiny,
    "small": Scale.small,
    "default": Scale.default,
}

_VARIANTS = {
    "baseline": NetCrafterConfig.baseline,
    "full": NetCrafterConfig.full,
}


def _require_mapping(value, where: str) -> dict:
    if not isinstance(value, dict):
        raise CampaignSpecError(f"{where} must be an object, got {type(value).__name__}")
    return value


def _build_scale(value, where: str) -> Scale:
    if value is None:
        return Scale.small()
    if isinstance(value, str):
        factory = _SCALES.get(value)
        if factory is None:
            raise CampaignSpecError(
                f"{where}: unknown scale {value!r} (one of: {', '.join(sorted(_SCALES))})"
            )
        return factory()
    fields = {f.name for f in dataclasses.fields(Scale)}
    mapping = _require_mapping(value, where)
    unknown = set(mapping) - fields
    if unknown:
        raise CampaignSpecError(f"{where}: unknown scale fields {sorted(unknown)}")
    try:
        return Scale(**mapping)
    except TypeError as exc:
        raise CampaignSpecError(f"{where}: {exc}") from exc


def _build_netcrafter(value, where: str) -> NetCrafterConfig:
    if value is None:
        return NetCrafterConfig.baseline()
    if isinstance(value, str):
        factory = _VARIANTS.get(value)
        if factory is None:
            raise CampaignSpecError(
                f"{where}: unknown variant {value!r} "
                f"(one of: {', '.join(sorted(_VARIANTS))}, or a field object)"
            )
        return factory()
    mapping = dict(_require_mapping(value, where))
    base_name = mapping.pop("base", "baseline")
    base_factory = _VARIANTS.get(base_name)
    if base_factory is None:
        raise CampaignSpecError(f"{where}: unknown variant base {base_name!r}")
    fields = {f.name for f in dataclasses.fields(NetCrafterConfig)}
    unknown = set(mapping) - fields
    if unknown:
        raise CampaignSpecError(f"{where}: unknown netcrafter fields {sorted(unknown)}")
    try:
        return dataclasses.replace(base_factory(), **mapping)
    except (TypeError, ValueError) as exc:
        raise CampaignSpecError(f"{where}: {exc}") from exc


def _build_system(
    overrides: Optional[dict],
    faults: Optional[dict],
    topology: Optional[str],
    where: str,
) -> Optional[SystemConfig]:
    """None when everything is default (keeps points minimal/normalizable)."""
    if not overrides and not faults and topology is None:
        return None
    merged: Dict[str, object] = dict(overrides or {})
    if topology is not None:
        if "inter_topology" in merged and merged["inter_topology"] != topology:
            raise CampaignSpecError(
                f"{where}: topology {topology!r} conflicts with "
                f"system.inter_topology={merged['inter_topology']!r}"
            )
        merged["inter_topology"] = topology
    if faults:
        from repro.faults.config import FaultConfig

        fault_fields = {f.name for f in dataclasses.fields(FaultConfig)}
        unknown = set(faults) - fault_fields
        if unknown:
            raise CampaignSpecError(f"{where}: unknown fault fields {sorted(unknown)}")
        try:
            merged["faults"] = FaultConfig(**faults)
        except (TypeError, ValueError) as exc:
            raise CampaignSpecError(f"{where}: bad faults block: {exc}") from exc
    # torus_dims and link_bw_overrides arrive as JSON lists; SystemConfig
    # wants tuples for hashability
    if isinstance(merged.get("torus_dims"), list):
        merged["torus_dims"] = tuple(merged["torus_dims"])
    if isinstance(merged.get("link_bw_overrides"), (list, dict)):
        pairs = (
            merged["link_bw_overrides"].items()
            if isinstance(merged["link_bw_overrides"], dict)
            else merged["link_bw_overrides"]
        )
        merged["link_bw_overrides"] = tuple(
            (str(name), float(bw)) for name, bw in pairs
        )
    try:
        return SystemConfig.default().with_overrides(**merged)
    except (TypeError, ValueError) as exc:
        raise CampaignSpecError(f"{where}: bad system config: {exc}") from exc


def _check_workload(name, where: str) -> str:
    known = all_workload_names()
    if name not in known:
        raise CampaignSpecError(
            f"{where}: unknown workload {name!r} (one of: {', '.join(known)})"
        )
    return name


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed campaign: ordered points plus scheduling metadata."""

    name: str
    priority: int
    points: Tuple[ExperimentPoint, ...]
    #: fingerprint per point, aligned with ``points``
    fingerprints: Tuple[str, ...]

    @property
    def campaign_id(self) -> str:
        return campaign_id(self.fingerprints)

    def labels(self) -> List[str]:
        return [p.label() for p in self.points]


def campaign_id(fingerprints: Sequence[str]) -> str:
    """Content address of an ordered point set (order matters: fetch
    serves results in submission order and digests over that order)."""
    blob = "\n".join(fingerprints).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def _expand_grid(grid: dict, where: str) -> List[ExperimentPoint]:
    allowed = {
        "workloads",
        "variants",
        "topologies",
        "seeds",
        "scale",
        "system",
        "faults",
    }
    unknown = set(grid) - allowed
    if unknown:
        raise CampaignSpecError(f"{where}: unknown grid keys {sorted(unknown)}")
    workloads = grid.get("workloads")
    if not workloads:
        raise CampaignSpecError(f"{where}: grid.workloads must be a non-empty list")
    variants = grid.get("variants") or ["baseline"]
    topologies = grid.get("topologies") or [None]
    seeds = grid.get("seeds") or [0]
    scale = _build_scale(grid.get("scale"), f"{where}.scale")
    points = []
    for workload in workloads:
        _check_workload(workload, f"{where}.workloads")
        for variant in variants:
            netcrafter = _build_netcrafter(variant, f"{where}.variants")
            for topology in topologies:
                system = _build_system(
                    grid.get("system"), grid.get("faults"), topology, where
                )
                for seed in seeds:
                    points.append(
                        ExperimentPoint(
                            workload=workload,
                            system=system,
                            netcrafter=netcrafter,
                            scale=scale,
                            seed=int(seed),
                        ).normalized()
                    )
    return points


def _expand_point(entry: dict, where: str) -> ExperimentPoint:
    allowed = {"workload", "variant", "scale", "seed", "system", "faults", "topology"}
    unknown = set(entry) - allowed
    if unknown:
        raise CampaignSpecError(f"{where}: unknown point keys {sorted(unknown)}")
    if "workload" not in entry:
        raise CampaignSpecError(f"{where}: point needs a workload")
    return ExperimentPoint(
        workload=_check_workload(entry["workload"], where),
        system=_build_system(
            entry.get("system"), entry.get("faults"), entry.get("topology"), where
        ),
        netcrafter=_build_netcrafter(entry.get("variant"), f"{where}.variant"),
        scale=_build_scale(entry.get("scale"), f"{where}.scale"),
        seed=int(entry.get("seed", 0)),
    ).normalized()


def parse_campaign(data: dict, default_name: str = "campaign") -> CampaignSpec:
    """Expand a campaign mapping into an ordered, validated spec."""
    data = _require_mapping(data, "campaign")
    allowed = {"name", "priority", "grid", "points"}
    unknown = set(data) - allowed
    if unknown:
        raise CampaignSpecError(f"campaign: unknown keys {sorted(unknown)}")
    name = data.get("name", default_name)
    if not isinstance(name, str) or not name:
        raise CampaignSpecError("campaign.name must be a non-empty string")
    priority = data.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise CampaignSpecError("campaign.priority must be an integer")
    if not MIN_PRIORITY <= priority <= MAX_PRIORITY:
        raise CampaignSpecError(
            f"campaign.priority must be in [{MIN_PRIORITY}, {MAX_PRIORITY}]"
        )

    points: List[ExperimentPoint] = []
    if "grid" in data:
        points.extend(_expand_grid(_require_mapping(data["grid"], "grid"), "grid"))
    for index, entry in enumerate(data.get("points", ())):
        points.append(_expand_point(_require_mapping(entry, f"points[{index}]"), f"points[{index}]"))
    if not points:
        raise CampaignSpecError("campaign expands to zero points")

    # duplicate points inside one campaign collapse to the first
    # occurrence: fetch order stays deterministic and the dedupe
    # guarantee starts at home
    seen: Dict[str, None] = {}
    unique: List[ExperimentPoint] = []
    for point in points:
        fp = fingerprint(point)
        if fp in seen:
            continue
        seen[fp] = None
        unique.append(point)
    return CampaignSpec(
        name=name,
        priority=priority,
        points=tuple(unique),
        fingerprints=tuple(seen),
    )


def point_from_descriptor(descriptor: Dict[str, object]) -> ExperimentPoint:
    """Rebuild a normalized point from its journaled cache descriptor.

    The journal stores :func:`repro.experiments.cache.point_descriptor`
    content (JSON-safe: enums flattened to values, tuples to lists) so a
    restarted server can *re-execute* points whose cached results were
    pruned, not just re-serve surviving ones.  The round trip is exact:
    the rebuilt point fingerprints identically to the original.
    """
    from repro.core.config import PriorityMode
    from repro.faults.config import FaultConfig, FlapWindow

    system_data = dict(descriptor["system"])
    faults_data = dict(system_data.pop("faults"))
    faults_data["flaps"] = tuple(
        FlapWindow(**window) for window in faults_data.get("flaps", ())
    )
    system_data["faults"] = FaultConfig(**faults_data)
    netcrafter_data = dict(descriptor["netcrafter"])
    mode = netcrafter_data.get("priority_mode")
    if not isinstance(mode, PriorityMode):
        netcrafter_data["priority_mode"] = PriorityMode(mode)
    return ExperimentPoint(
        workload=descriptor["workload"],
        system=SystemConfig(**system_data),
        netcrafter=NetCrafterConfig(**netcrafter_data),
        scale=Scale(**descriptor["scale"]),
        seed=int(descriptor["seed"]),
    ).normalized()


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    """Parse a campaign file (JSON always; YAML when PyYAML is present)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CampaignSpecError(f"cannot read campaign file {path}: {exc}") from exc
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise CampaignSpecError(
                f"{path}: YAML campaigns need PyYAML installed; "
                "re-encode as JSON or install pyyaml"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise CampaignSpecError(f"{path}: bad YAML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignSpecError(f"{path}: bad JSON: {exc}") from exc
    return parse_campaign(data, default_name=path.stem)
