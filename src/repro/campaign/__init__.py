"""Campaign service: a long-lived experiment-serving front end.

The "heavy traffic" layer over the experiment runner: campaigns are
declarative point sets (:mod:`repro.campaign.spec`), a single-process
asyncio server (:mod:`repro.campaign.server`) executes them through
:func:`repro.experiments.runner.execute_point` on a bounded worker pool,
concurrent clients deduplicate on
:func:`~repro.experiments.cache.fingerprint` (in-process task sharing
plus cross-process cache-dir claims), progress streams as
newline-delimited JSON (:mod:`repro.campaign.client`), and campaign
state journals durably through :mod:`repro.atomicio`
(:mod:`repro.campaign.journal`) so restarts re-serve instead of
re-executing.

CLI: ``python -m repro.campaign serve|submit|status|fetch``.
"""

from repro.campaign.journal import CampaignJournal, default_journal_dir
from repro.campaign.spec import (
    CampaignSpec,
    CampaignSpecError,
    campaign_id,
    load_campaign,
    parse_campaign,
    point_from_descriptor,
)

__all__ = [
    "CampaignJournal",
    "CampaignSpec",
    "CampaignSpecError",
    "campaign_id",
    "default_journal_dir",
    "load_campaign",
    "parse_campaign",
    "point_from_descriptor",
]
