"""Campaign service CLI.

Usage::

    # serve: run the long-lived front end (Ctrl-C to stop)
    python -m repro.campaign serve --jobs 4
    python -m repro.campaign serve --journal-dir /srv/campaigns \\
        --cache-dir /srv/cache --port 7791

    # submit a campaign file; --wait blocks and prints the final summary,
    # --watch streams per-point progress events as they happen
    python -m repro.campaign submit examples/campaigns/smoke_quick.json --wait
    python -m repro.campaign submit nightly.yaml --watch

    # inspect and retrieve
    python -m repro.campaign status
    python -m repro.campaign status CAMPAIGN_ID
    python -m repro.campaign fetch CAMPAIGN_ID --out results/campaign.json

    # digest gate (CI): fail unless the fetched digest matches a key in
    # a committed digest file
    python -m repro.campaign submit smoke.json --wait \\
        --expect-digest-file SMOKE_digest.json --expect-digest-key quick

Clients discover the server through ``<journal-dir>/server.json``
(written atomically on bind); ``--endpoint host:port`` overrides.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.campaign.client import (
    CampaignClientError,
    discover_endpoint,
    parse_endpoint,
    request,
    watch,
)
from repro.campaign.journal import default_journal_dir
from repro.campaign.spec import CampaignSpecError, load_campaign
from repro.experiments.cache import default_cache_dir


def _endpoint(args) -> tuple:
    if args.endpoint:
        return parse_endpoint(args.endpoint)
    return discover_endpoint(args.journal_dir)


def _cmd_serve(args) -> int:
    from repro.campaign.server import CampaignServer

    server = CampaignServer(
        cache_dir=args.cache_dir or default_cache_dir(),
        journal_dir=args.journal_dir,
        jobs=args.jobs,
        host=args.host,
        port=args.port,
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"campaign server on {server.host}:{server.port} "
            f"(journal {server.journal.root}, cache {server.cache.root}, "
            f"{server.jobs} worker{'s' if server.jobs != 1 else ''})",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("campaign server stopped", file=sys.stderr)
    return 0


def _print_event(event: dict) -> None:
    print(json.dumps(event), flush=True)


def _cmd_submit(args) -> int:
    try:
        spec = load_campaign(args.file)
    except CampaignSpecError as exc:
        print(f"bad campaign file: {exc}", file=sys.stderr)
        return 2
    endpoint = _endpoint(args)
    payload = {
        "op": "submit",
        "campaign": _campaign_data(args.file),
        "default_name": Path(args.file).stem,
    }
    response = request(endpoint, payload)
    if not response.get("ok"):
        print(f"submit failed: {response.get('error')}", file=sys.stderr)
        return 1
    cid = response["campaign"]
    print(json.dumps(response), flush=True)
    if not (args.wait or args.watch or args.expect_digest_file):
        return 0

    if args.watch:
        for event in watch(endpoint, cid):
            _print_event(event)
            if event.get("ok") is False:
                return 1
    else:
        from repro.campaign.client import wait_complete

        wait_complete(endpoint, cid, timeout=args.timeout)

    fetched = request(endpoint, {"op": "fetch", "campaign": cid})
    if not fetched.get("ok"):
        print(f"fetch failed: {fetched.get('error')}", file=sys.stderr)
        return 1
    status = request(endpoint, {"op": "status", "campaign": cid})
    summary = {
        "campaign": cid,
        "name": spec.name,
        "points": fetched["points"],
        "digest": fetched["digest"],
        "counters": status.get("counters", {}),
    }
    print(json.dumps(summary), flush=True)

    if args.expect_digest_file:
        expected = json.loads(Path(args.expect_digest_file).read_text())
        key = args.expect_digest_key
        if key not in expected:
            print(
                f"digest file {args.expect_digest_file} has no key {key!r}",
                file=sys.stderr,
            )
            return 1
        if fetched["digest"] != expected[key]:
            print(
                f"digest mismatch for {key!r}: served {fetched['digest']}, "
                f"expected {expected[key]}",
                file=sys.stderr,
            )
            return 1
        print(f"digest matches {args.expect_digest_file}[{key!r}]")
    return 0


def _campaign_data(path: str) -> dict:
    """The raw campaign mapping (parsed client-side for YAML support)."""
    source = Path(path)
    if source.suffix.lower() in (".yaml", ".yml"):
        import yaml

        return yaml.safe_load(source.read_text())
    return json.loads(source.read_text())


def _cmd_status(args) -> int:
    payload = {"op": "status"}
    if args.campaign:
        payload["campaign"] = args.campaign
    response = request(_endpoint(args), payload)
    print(json.dumps(response, indent=2))
    return 0 if response.get("ok") else 1


def _cmd_fetch(args) -> int:
    response = request(
        _endpoint(args), {"op": "fetch", "campaign": args.campaign}
    )
    if not response.get("ok"):
        print(f"fetch failed: {response.get('error')}", file=sys.stderr)
        return 1
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(json.dumps(response, indent=2))
        print(
            f"{response['points']} results -> {args.out} "
            f"(digest {response['digest']})"
        )
    else:
        print(json.dumps(response, indent=2))
    return 0


def _cmd_shutdown(args) -> int:
    response = request(_endpoint(args), {"op": "shutdown"})
    print(json.dumps(response))
    return 0 if response.get("ok") else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Long-lived experiment-serving front end over the "
        "runner and result cache.",
    )
    parser.add_argument(
        "--journal-dir",
        default=default_journal_dir(),
        metavar="DIR",
        help="campaign journal + endpoint discovery directory "
        "(default: $REPRO_CAMPAIGN_DIR or .repro_campaigns)",
    )
    parser.add_argument(
        "--endpoint",
        default=None,
        metavar="HOST:PORT",
        help="explicit server endpoint (default: discovered from the "
        "journal dir's server.json)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the campaign server")
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        ".repro_cache; shared with run_many clients)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (default: ephemeral)"
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a campaign file")
    submit.add_argument("file", help="campaign JSON/YAML file")
    submit.add_argument(
        "--wait", action="store_true", help="block until complete, then fetch"
    )
    submit.add_argument(
        "--watch",
        action="store_true",
        help="stream progress events (NDJSON) until complete, then fetch",
    )
    submit.add_argument(
        "--timeout", type=float, default=3600.0, help="--wait timeout seconds"
    )
    submit.add_argument(
        "--expect-digest-file",
        default=None,
        metavar="FILE",
        help="after completion, compare the served digest against this "
        "committed digest file (implies --wait)",
    )
    submit.add_argument(
        "--expect-digest-key",
        default="quick",
        metavar="KEY",
        help="key inside --expect-digest-file (default: quick)",
    )
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="server or campaign status")
    status.add_argument("campaign", nargs="?", default=None)
    status.set_defaults(func=_cmd_status)

    fetch = sub.add_parser("fetch", help="fetch a completed campaign's results")
    fetch.add_argument("campaign")
    fetch.add_argument(
        "--out", default=None, metavar="FILE", help="write results JSON here"
    )
    fetch.set_defaults(func=_cmd_fetch)

    shutdown = sub.add_parser("shutdown", help="stop the server gracefully")
    shutdown.set_defaults(func=_cmd_shutdown)

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        parser.error("--jobs must be >= 1")
    try:
        return args.func(args)
    except CampaignClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
