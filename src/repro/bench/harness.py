"""Benchmark harness: timing, RSS tracking, report assembly, comparison.

Every benchmark is a no-argument callable returning ``(work_units,
extra)`` where ``work_units`` is the benchmark's throughput numerator
(engine events, flits, scans, ...) and ``extra`` is a dict of
benchmark-specific fields merged into the record.  The harness wraps the
call with wall-clock timing and peak-RSS sampling and normalizes
everything into :class:`BenchRecord` rows.

``ru_maxrss`` is a process-lifetime high-water mark, so per-benchmark
peak RSS is monotonically non-decreasing across the run; it answers
"how much memory did the suite need by this point", not "how much did
this benchmark allocate".
"""

from __future__ import annotations

import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.schema import BENCH_SCHEMA_VERSION


def peak_rss_kb() -> int:
    """Process peak resident set size in KiB (Linux ``ru_maxrss`` unit)."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    rss = usage.ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - darwin reports bytes
        rss //= 1024
    return int(rss)


@dataclass
class BenchRecord:
    """One benchmark's measured row in ``BENCH_core.json``."""

    name: str
    kind: str  # "micro" | "e2e"
    work_units: int
    wall_seconds: float
    peak_rss_kb: int
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def rate(self) -> float:
        """Work units per second (the regression-tracked figure)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.work_units / self.wall_seconds

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "work_units": self.work_units,
            "wall_seconds": self.wall_seconds,
            "units_per_second": self.rate,
            "peak_rss_kb": self.peak_rss_kb,
        }
        out.update(self.extra)
        return out


@dataclass
class BenchReport:
    """The full ``BENCH_core.json`` document."""

    records: List[BenchRecord]
    quick: bool
    comparison: Optional[Dict[str, object]] = None

    def record(self, name: str) -> Optional[BenchRecord]:
        for rec in self.records:
            if rec.name == name:
                return rec
        return None

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": BENCH_SCHEMA_VERSION,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": self.quick,
            "benchmarks": [rec.to_dict() for rec in self.records],
        }
        if self.comparison is not None:
            doc["comparison"] = self.comparison
        return doc


Benchmark = Tuple[str, str, Callable[[], Tuple[int, Dict[str, object]]]]


def measure(
    name: str,
    kind: str,
    fn: Callable[[], Tuple[int, Dict[str, object]]],
    repeats: int = 1,
) -> BenchRecord:
    """Run one benchmark callable under timing + RSS instrumentation.

    With ``repeats > 1`` the callable runs that many times and the
    *minimum* wall time is reported: every benchmark in the suite is
    deterministic, so the spread between repeats is scheduler/frequency
    noise and the minimum is the least-contaminated estimate of the
    code's cost.  The ``extra`` fields come from the fastest repeat too,
    so timing-derived extras (``sharded_wall_seconds``, idle waits) stay
    consistent with the reported wall time.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    wall = float("inf")
    best_extra: Dict[str, object] = {}
    for _ in range(repeats):
        start = time.perf_counter()
        work_units, run_extra = fn()
        elapsed = time.perf_counter() - start
        if elapsed < wall:
            wall = elapsed
            best_extra = run_extra
    extra = best_extra
    record = BenchRecord(
        name=name,
        kind=kind,
        work_units=int(work_units),
        wall_seconds=wall,
        peak_rss_kb=peak_rss_kb(),
        extra=dict(extra),
    )
    record.extra.setdefault("repeats", repeats)
    return record


def default_suite(quick: bool) -> List[Benchmark]:
    """The standard benchmark suite, sized for full or quick (CI) runs."""
    from repro.bench import micro, smoke

    return [
        ("engine_dispatch", "micro", lambda: micro.bench_engine_dispatch(quick)),
        ("flit_link_throughput", "micro", lambda: micro.bench_flit_link(quick)),
        ("packet_link_throughput", "micro", lambda: micro.bench_packet_link(quick)),
        ("cluster_queue_stitch_scan", "micro", lambda: micro.bench_stitch_scan(quick)),
        ("smoke_sweep", "e2e", lambda: smoke.bench_smoke_sweep(quick)),
        ("sharded_speedup", "e2e", lambda: smoke.bench_sharded_speedup(quick)),
    ]


def run_benchmarks(
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> BenchReport:
    """Run the suite (optionally a named subset) and assemble the report."""
    suite = default_suite(quick)
    if only:
        wanted = set(only)
        known = {name for name, _, _ in suite}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown benchmark(s): {sorted(unknown)}; known: {sorted(known)}"
            )
        suite = [bench for bench in suite if bench[0] in wanted]
    records = [measure(name, kind, fn, repeats=repeats) for name, kind, fn in suite]
    return BenchReport(records=records, quick=quick)


#: a benchmark whose serialized coordination traffic more than doubles
#: per window has structurally regressed, regardless of wall clock
PICKLE_BYTES_FAIL_RATIO = 2.0

#: per-row overhead fields surfaced in comparison tables when present
_OVERHEAD_FIELDS = (
    "verb_round_trips",
    "pickle_bytes_per_window",
    "idle_wait_seconds",
)


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    fail_threshold: float = 1.3,
) -> Dict[str, object]:
    """Diff ``current`` against ``baseline`` (both ``to_dict`` documents).

    Returns a comparison block with, per benchmark present in both:
    ``speedup`` (current rate / baseline rate, >1 means faster now),
    the two rates, and the threshold applied.  A baseline row may carry
    its own ``fail_threshold`` (for benchmarks known to be noisy on CI
    runners); rows without one use the global default.  ``regressions``
    lists benchmarks slower than their threshold; ``digest_match`` is
    ``False`` when any shared e2e benchmark's result digest moved, i.e.
    simulator semantics changed.

    Two special gates:

    * On a single-CPU host a sharded benchmark's ``units_per_second``
      mixes the single-engine and sharded phases, and "speedup" over
      serialized processes is meaningless — so when both rows record
      ``sharded_wall_seconds`` and the current host has ``cpus <= 1``,
      the row is gated on the wall-clock ratio of the sharded phase
      alone (``gated_on`` names the field).
    * When both rows record ``pickle_bytes_per_window``, the current
      value may not exceed :data:`PICKLE_BYTES_FAIL_RATIO` times the
      baseline — coordination traffic is deterministic, so growth there
      is a real structural regression, not machine noise.
    """
    cur_by_name = {b["name"]: b for b in current.get("benchmarks", [])}
    base_by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    rows: List[Dict[str, object]] = []
    regressions: List[str] = []
    for name, cur in cur_by_name.items():
        base = base_by_name.get(name)
        if base is None:
            continue
        cur_rate = float(cur["units_per_second"])
        base_rate = float(base["units_per_second"])
        speedup = cur_rate / base_rate if base_rate > 0 else 0.0
        threshold = float(base.get("fail_threshold", fail_threshold))
        row: Dict[str, object] = {
            "name": name,
            "baseline_units_per_second": base_rate,
            "current_units_per_second": cur_rate,
            "speedup": speedup,
            "fail_threshold": threshold,
        }
        cur_wall = cur.get("sharded_wall_seconds")
        base_wall = base.get("sharded_wall_seconds")
        if (
            cur_wall is not None
            and base_wall is not None
            and int(cur.get("cpus", 0) or 0) <= 1
        ):
            wall_speedup = (
                float(base_wall) / float(cur_wall) if float(cur_wall) > 0 else 0.0
            )
            row["gated_on"] = "sharded_wall_seconds"
            row["baseline_sharded_wall_seconds"] = float(base_wall)
            row["current_sharded_wall_seconds"] = float(cur_wall)
            row["speedup"] = wall_speedup
        gate_speedup = float(row["speedup"])
        for key in _OVERHEAD_FIELDS:
            if key in cur:
                row[key] = cur[key]
        rows.append(row)
        if gate_speedup > 0 and gate_speedup < 1.0 / threshold:
            regressions.append(name)
        cur_pickle = cur.get("pickle_bytes_per_window")
        base_pickle = base.get("pickle_bytes_per_window")
        if cur_pickle and base_pickle:
            ratio = float(cur_pickle) / float(base_pickle)
            row["pickle_bytes_ratio"] = round(ratio, 3)
            if ratio > PICKLE_BYTES_FAIL_RATIO:
                regressions.append(f"{name} (pickle bytes)")

    digest_match: Optional[bool] = None
    for name, cur in cur_by_name.items():
        base = base_by_name.get(name)
        if base is None:
            continue
        cur_digest = cur.get("results_digest")
        base_digest = base.get("results_digest")
        if cur_digest is None or base_digest is None:
            continue
        # digests only compare like with like (same point grid)
        if cur.get("points") == base.get("points") and bool(
            current.get("quick")
        ) == bool(baseline.get("quick")):
            same = cur_digest == base_digest
            digest_match = same if digest_match in (None, True) else False

    return {
        "baseline_python": baseline.get("python"),
        "fail_threshold": fail_threshold,
        "benchmarks": rows,
        "regressions": regressions,
        "digest_match": digest_match,
    }


def comparison_lines(comparison: Dict[str, object]) -> List[str]:
    """Human-readable rendering of a :func:`compare_reports` block."""
    lines = [
        "benchmark                        baseline/s      current/s"
        "   speedup  threshold"
    ]
    for row in comparison["benchmarks"]:
        threshold = row.get("fail_threshold", comparison["fail_threshold"])
        lines.append(
            f"{row['name']:<30} {row['baseline_units_per_second']:>13.0f} "
            f"{row['current_units_per_second']:>14.0f} "
            f"{row['speedup']:>8.2f}x "
            f"{threshold:>9.2f}x"
        )
        if row.get("gated_on") == "sharded_wall_seconds":
            lines.append(
                f"{'':<30} (single-CPU host: gated on sharded wall "
                f"{row['baseline_sharded_wall_seconds']:.3f}s -> "
                f"{row['current_sharded_wall_seconds']:.3f}s)"
            )
    if comparison["regressions"]:
        lines.append(
            "REGRESSIONS (slower than their threshold): "
            + ", ".join(comparison["regressions"])
        )
    if comparison.get("digest_match") is False:
        lines.append(
            "RESULT DIGEST MISMATCH: an e2e benchmark no longer produces "
            "bit-identical stats (simulator semantics changed)"
        )
    return lines


def overhead_markdown(rows: List[Dict[str, object]]) -> List[str]:
    """Markdown table of coordination-overhead counters, when recorded.

    ``rows`` may be comparison rows or raw benchmark records — anything
    carrying ``verb_round_trips`` / ``pickle_bytes_per_window`` /
    ``idle_wait_seconds`` fields.  Empty when no row records them.
    """
    with_overhead = [
        row for row in rows if any(key in row for key in _OVERHEAD_FIELDS)
    ]
    if not with_overhead:
        return []
    lines = [
        "",
        "#### Coordination overhead",
        "",
        "| benchmark | verb round trips | pickle bytes/window "
        "| vs baseline | idle wait |",
        "|---|---:|---:|---:|---:|",
    ]
    for row in with_overhead:
        trips = row.get("verb_round_trips")
        per_window = row.get("pickle_bytes_per_window")
        ratio = row.get("pickle_bytes_ratio")
        idle = row.get("idle_wait_seconds")
        lines.append(
            f"| {row['name']} "
            f"| {trips if trips is not None else '—'} "
            f"| {f'{per_window:,.0f}' if per_window is not None else '—'} "
            f"| {f'{ratio:.2f}x' if ratio is not None else '—'} "
            f"| {f'{idle:.3f}s' if idle is not None else '—'} |"
        )
    return lines


def comparison_markdown(comparison: Dict[str, object]) -> List[str]:
    """GitHub-flavoured markdown table of a :func:`compare_reports` block.

    CI appends this to the job's step summary so per-benchmark deltas
    are readable without digging into the JSON artifact.
    """
    lines = [
        "| benchmark | baseline/s | current/s | speedup | threshold | status |",
        "|---|---:|---:|---:|---:|---|",
    ]
    regressed = set(comparison["regressions"])
    for row in comparison["benchmarks"]:
        threshold = row.get("fail_threshold", comparison["fail_threshold"])
        name = row["name"]
        status = (
            "regressed"
            if name in regressed or f"{name} (pickle bytes)" in regressed
            else "ok"
        )
        shown = (
            f"{row['speedup']:.2f}x (wall)"
            if row.get("gated_on") == "sharded_wall_seconds"
            else f"{row['speedup']:.2f}x"
        )
        lines.append(
            f"| {name} "
            f"| {row['baseline_units_per_second']:,.0f} "
            f"| {row['current_units_per_second']:,.0f} "
            f"| {shown} "
            f"| {threshold:.2f}x "
            f"| {status} |"
        )
    lines.extend(overhead_markdown(comparison["benchmarks"]))
    digest_match = comparison.get("digest_match")
    if digest_match is False:
        lines.append("")
        lines.append(
            "**RESULT DIGEST MISMATCH** — an e2e benchmark no longer "
            "reproduces the baseline's bit-identical stats."
        )
    elif digest_match is True:
        lines.append("")
        lines.append("Result digests match the baseline (bit-identical stats).")
    return lines
