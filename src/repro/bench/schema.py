"""Schema for ``BENCH_core.json``, mirroring :mod:`repro.obs.schema`.

Hand-rolled validation (no jsonschema dependency): :func:`validate_report`
raises :class:`BenchSchemaError` describing the first violation, so the
CLI self-checks every document before writing it and CI can validate the
committed baseline.
"""

from __future__ import annotations

from typing import Dict, List

#: bump when the meaning of any report field changes
BENCH_SCHEMA_VERSION = 1

#: required fields of the top-level document
_TOP_FIELDS: Dict[str, type] = {
    "schema": int,
    "python": str,
    "platform": str,
    "quick": bool,
    "benchmarks": list,
}

#: required fields of each benchmark row
_ROW_FIELDS: Dict[str, type] = {
    "name": str,
    "kind": str,
    "work_units": int,
    "wall_seconds": (int, float),
    "units_per_second": (int, float),
    "peak_rss_kb": int,
}

_KINDS = ("micro", "e2e")


class BenchSchemaError(ValueError):
    """A ``BENCH_core.json`` document violates the schema."""


def _check_fields(obj: dict, spec: Dict[str, type], where: str) -> None:
    for key, expected in spec.items():
        if key not in obj:
            raise BenchSchemaError(f"{where}: missing required field {key!r}")
        value = obj[key]
        # bool is an int subclass; reject it where an int is required
        if expected is int and isinstance(value, bool):
            raise BenchSchemaError(f"{where}: field {key!r} must be an int, got bool")
        if not isinstance(value, expected):
            raise BenchSchemaError(
                f"{where}: field {key!r} must be {expected}, "
                f"got {type(value).__name__}"
            )


def validate_report(doc: object) -> None:
    """Raise :class:`BenchSchemaError` unless ``doc`` is a valid report."""
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"report must be an object, got {type(doc).__name__}")
    _check_fields(doc, _TOP_FIELDS, "report")
    if doc["schema"] != BENCH_SCHEMA_VERSION:
        raise BenchSchemaError(
            f"unsupported schema {doc['schema']!r} (expected {BENCH_SCHEMA_VERSION})"
        )
    rows: List[object] = doc["benchmarks"]
    if not rows:
        raise BenchSchemaError("report: benchmarks list is empty")
    seen = set()
    for idx, row in enumerate(rows):
        where = f"benchmarks[{idx}]"
        if not isinstance(row, dict):
            raise BenchSchemaError(f"{where}: must be an object")
        _check_fields(row, _ROW_FIELDS, where)
        if row["kind"] not in _KINDS:
            raise BenchSchemaError(
                f"{where}: kind must be one of {_KINDS}, got {row['kind']!r}"
            )
        if row["name"] in seen:
            raise BenchSchemaError(f"{where}: duplicate benchmark name {row['name']!r}")
        seen.add(row["name"])
        if row["wall_seconds"] < 0:
            raise BenchSchemaError(f"{where}: wall_seconds must be non-negative")
        if row["work_units"] < 0:
            raise BenchSchemaError(f"{where}: work_units must be non-negative")
        if row["kind"] == "e2e" and "results_digest" in row:
            digest = row["results_digest"]
            if not (isinstance(digest, str) and len(digest) == 64):
                raise BenchSchemaError(
                    f"{where}: results_digest must be a sha256 hex string"
                )
        if "fail_threshold" in row:
            threshold = row["fail_threshold"]
            if (
                isinstance(threshold, bool)
                or not isinstance(threshold, (int, float))
                or threshold < 1.0
            ):
                raise BenchSchemaError(
                    f"{where}: fail_threshold must be a number >= 1.0"
                )
